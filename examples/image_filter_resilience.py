#!/usr/bin/env python3
"""Data-dependent resilience of approximate image filtering (Fig. 10).

Filters the 7-image content-class suite with the accurate and several
approximate low-pass filter accelerators, scores the degradation with
SSIM and PSNR, and demonstrates the paper's Sec. 6.2 point: the *same*
approximate hardware yields different psycho-visual quality depending on
image content -- motivating run-time, data-driven approximation control
(shown here with the ApproximationManager).

Run:  python3 examples/image_filter_resilience.py
"""

from repro.accelerators.filters import LowPassFilterAccelerator
from repro.accelerators.manager import (
    AcceleratorMode,
    AcceleratorProfile,
    ApplicationRequest,
    ApproximationManager,
)
from repro.errors.metrics import psnr
from repro.media.ssim import ssim
from repro.media.synthetic import standard_images


def main() -> None:
    images = standard_images(64)
    exact = LowPassFilterAccelerator()
    variants = {
        "ApxFA1/4": LowPassFilterAccelerator(fa="ApxFA1", approx_lsbs=4),
        "ApxFA2/5": LowPassFilterAccelerator(fa="ApxFA2", approx_lsbs=5),
        "ApxFA5/4": LowPassFilterAccelerator(fa="ApxFA5", approx_lsbs=4),
    }

    print("== Fig. 10: SSIM per image, same filter hardware ==\n")
    header = f"{'image':14s}" + "".join(f"{name:>12s}" for name in variants)
    print(header)
    per_variant_scores = {name: [] for name in variants}
    for image_name, image in images.items():
        reference = exact.apply(image)
        row = f"{image_name:14s}"
        for variant_name, accelerator in variants.items():
            score = ssim(reference, accelerator.apply(image))
            per_variant_scores[variant_name].append((image_name, score))
            row += f"{score:12.4f}"
        print(row)

    print("\nSpread per variant (data-dependent resilience):")
    for variant_name, scored in per_variant_scores.items():
        values = [s for _, s in scored]
        worst = min(scored, key=lambda t: t[1])
        best = max(scored, key=lambda t: t[1])
        print(f"  {variant_name}: best {best[1]:.4f} ({best[0]}), "
              f"worst {worst[1]:.4f} ({worst[0]}), "
              f"spread {best[1] - worst[1]:.4f}")

    # ------------------------------------------------------------------
    print("\n== Run-time approximation control ==")
    # Characterize mode qualities on a calibration image, then let the
    # manager pick modes for applications with different SSIM targets.
    calibration = images["blobs"]
    reference = exact.apply(calibration)
    modes = [AcceleratorMode("exact", 1.0, exact.area_ge)]
    for variant_name, accelerator in variants.items():
        quality = ssim(reference, accelerator.apply(calibration))
        modes.append(
            AcceleratorMode(variant_name, quality, accelerator.area_ge)
        )
    manager = ApproximationManager(
        [AcceleratorProfile("lowpass", tuple(modes))]
    )
    for app, target in (("preview", 0.95), ("archival", 0.999)):
        result = manager.select_modes(
            [ApplicationRequest(app, "lowpass", target)]
        )
        mode = result.assignments[app]
        print(f"  {app} (SSIM >= {target}): mode {mode.name} "
              f"(quality {mode.quality:.4f}, cost {mode.power_nw:.0f})")
    print("\n-> smooth content tolerates aggressive approximation; "
          "high-frequency content does not; a management unit can "
          "exploit that at run time.")


if __name__ == "__main__":
    main()
