#!/usr/bin/env python3
"""Approximate HLS: synthesizing accelerators under an error budget.

The paper (Sec. 6) generates its accelerators manually and calls
HLS-for-approximate-computing "an interesting research problem".  This
example runs our baseline solution on an 8-term SAD datapath: for a
sweep of worst-case output-error budgets, the synthesizer assigns the
cheapest approximate adder ladder rung to every node such that the
*guaranteed* (interval-analysis) bound meets the budget.

Run:  python3 examples/approximate_hls.py
"""

import numpy as np

from repro.accelerators.dataflow import DataflowAccelerator
from repro.accelerators.hls import ApproximateSynthesizer

N_TERMS = 8


def sad_template() -> DataflowAccelerator:
    acc = DataflowAccelerator(f"sad{N_TERMS}")
    a = [acc.add_input(f"a{i}") for i in range(N_TERMS)]
    b = [acc.add_input(f"b{i}") for i in range(N_TERMS)]
    diffs = [
        acc.add_node("abs", [acc.add_node("sub", [a[i], b[i]])])
        for i in range(N_TERMS)
    ]
    while len(diffs) > 1:
        diffs = [
            acc.add_node("add", [diffs[i], diffs[i + 1]])
            for i in range(0, len(diffs), 2)
        ]
    acc.set_output(diffs[0])
    return acc


def main() -> None:
    ranges = {f"{p}{i}": (0, 255) for p in "ab" for i in range(N_TERMS)}
    synthesizer = ApproximateSynthesizer()
    rng = np.random.default_rng(11)
    stim = {name: rng.integers(0, 256, 30_000) for name in ranges}
    exact_output = sad_template().evaluate(stim)

    print(f"datapath: SAD over {N_TERMS} pixel pairs "
          f"({N_TERMS} sub + {N_TERMS} abs + {N_TERMS - 1} add nodes)")
    print(f"\n{'budget':>8s} {'bound':>7s} {'obs.max':>8s} {'obs.MED':>8s} "
          f"{'area GE':>8s}  assignment mix")
    for budget in (0, 16, 64, 256, 1024, 4096):
        acc = sad_template()
        result = synthesizer.synthesize(acc, ranges, error_budget=budget)
        observed = np.abs(acc.evaluate(stim) - exact_output)
        mix = {}
        for name in result.assignment.values():
            mix[name] = mix.get(name, 0) + 1
        mix_text = ", ".join(f"{v}x{k}" for k, v in sorted(mix.items()))
        print(f"{budget:8d} {result.error_bound:7d} {observed.max():8d} "
              f"{observed.mean():8.2f} {result.area_ge:8.0f}  {mix_text}")
        assert observed.max() <= result.error_bound  # soundness

    print("\n-> tighter budgets buy exact units near the output (high "
          "significance), looser budgets push approximation everywhere; "
          "the guaranteed bound is never violated by simulation.")


if __name__ == "__main__":
    main()
