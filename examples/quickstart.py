#!/usr/bin/env python3
"""Quickstart: the cross-layer approximate computing library in 5 minutes.

Walks the paper's stack bottom-up:

1. 1-bit approximate full adders (Table III) and their characterization,
2. multi-bit adders (ripple with approximated LSBs; GeAr with error
   correction),
3. 2x2 and multi-bit approximate multipliers (Fig. 5 / Fig. 6),
4. a complete approximate accelerator (SAD) with quality metrics.

Run:  python3 examples/quickstart.py
"""

import numpy as np

from repro.accelerators.sad import SADAccelerator
from repro.adders.fulladder import FULL_ADDER_NAMES, FULL_ADDERS
from repro.adders.gear import GeArAdder, GeArConfig
from repro.adders.ripple import ApproximateRippleAdder
from repro.errors.metrics import compute_error_metrics
from repro.logic.simulate import estimate_power
from repro.multipliers.mul2x2 import multiplier_2x2
from repro.multipliers.recursive import RecursiveMultiplier


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    print("== 1. 1-bit full adders (Table III) ==")
    for name in FULL_ADDER_NAMES:
        fa = FULL_ADDERS[name]
        netlist = fa.netlist()
        power = estimate_power(netlist)
        print(
            f"  {name}: {fa.n_error_cases} error cases, "
            f"{netlist.area_ge:5.2f} GE, {power.total_nw:6.1f} nW, "
            f"{netlist.delay_ps():5.1f} ps -- {fa.description}"
        )

    # ------------------------------------------------------------------
    print("\n== 2a. 8-bit ripple adder with 4 approximated LSBs ==")
    adder = ApproximateRippleAdder(8, approx_fa="ApxFA1", num_approx_lsbs=4)
    a = rng.integers(0, 256, 20_000)
    b = rng.integers(0, 256, 20_000)
    metrics = compute_error_metrics(adder.add(a, b), a + b)
    print(f"  {adder.name}: ER={metrics.error_rate:.3f}, "
          f"MED={metrics.mean_error_distance:.2f}, "
          f"max ED={metrics.max_error_distance:.0f}, "
          f"area={adder.area_ge:.1f} GE (exact: "
          f"{ApproximateRippleAdder(8).area_ge:.1f} GE)")

    print("\n== 2b. GeAr accuracy-configurable adder ==")
    gear = GeArAdder(GeArConfig(n=16, r=4, p=4))
    x = rng.integers(0, 1 << 16, 20_000)
    y = rng.integers(0, 1 << 16, 20_000)
    approx = gear.add(x, y)
    corrected, iterations = gear.add_with_correction(x, y)
    print(f"  {gear.name}: raw ER={np.mean(approx != x + y):.4f}, "
          f"corrected ER={np.mean(corrected != x + y):.4f} "
          f"(mean {iterations.mean():.3f} correction iterations)")
    print(f"  carry chain shortened {16 / gear.config.l:.1f}x "
          f"(delay {gear.delay_ps:.0f} ps vs "
          f"{ApproximateRippleAdder(16).delay_ps:.0f} ps)")

    # ------------------------------------------------------------------
    print("\n== 3. Approximate multipliers ==")
    for name in ("AccMul", "ApxMulSoA", "ApxMulOur"):
        spec = multiplier_2x2(name)
        print(f"  {name}: {spec.n_error_cases} error cases, "
              f"max error {spec.max_error_value}, {spec.area_ge:.2f} GE")
    mul8 = RecursiveMultiplier(8, leaf_mul="ApxMulOur", leaf_policy="low_half")
    p = mul8.multiply(a, b)
    metrics = compute_error_metrics(p, a * b)
    print(f"  {mul8.name}: ER={metrics.error_rate:.3f}, "
          f"NMED={metrics.normalized_med:.5f}")

    # ------------------------------------------------------------------
    print("\n== 4. SAD accelerator (the paper's case study) ==")
    blocks_a = rng.integers(0, 256, (5_000, 64))
    blocks_b = rng.integers(0, 256, (5_000, 64))
    exact_sad = SADAccelerator(n_pixels=64)
    truth = exact_sad.sad(blocks_a, blocks_b)
    for lsbs in (2, 4, 6):
        acc = SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=lsbs)
        result = acc.sad(blocks_a, blocks_b)
        saving = 100 * (1 - acc.energy_per_op_fj / exact_sad.energy_per_op_fj)
        print(f"  ApxSAD2 with {lsbs} LSBs: "
              f"MRED={np.mean(np.abs(result - truth) / np.maximum(truth, 1)):.4f}, "
              f"energy saving {saving:.1f}%")
    print("\nDone. See examples/motion_estimation_hevc.py for the full "
          "cross-layer case study.")


if __name__ == "__main__":
    main()
