#!/usr/bin/env python3
"""The paper's HEVC case study end-to-end (Sec. 6, Fig. 8 and Fig. 9).

Encodes a synthetic video with the HEVC-lite encoder while swapping the
motion-estimation SAD accelerator between the accurate version and
approximate variants, then reports:

* one block's SAD surface under exact vs approximate hardware (Fig. 8),
* bit-rate increase and PSNR per variant and LSB count (Fig. 9),
* the accelerator energy model backing the paper's "4-bit approximation
  costs less power than 2-bit" observation.

Run:  python3 examples/motion_estimation_hevc.py
"""

import numpy as np

from repro.accelerators.sad import SADAccelerator
from repro.media.synthetic import moving_sequence
from repro.video.codec import HevcLiteEncoder
from repro.video.motion import full_search, sad_surface


def show_surface(title: str, surface: np.ndarray, search: int) -> None:
    print(f"  {title}")
    for dy in range(surface.shape[0]):
        row = " ".join(
            f"{int(v):5d}" if v < (1 << 62) else "    ." for v in surface[dy]
        )
        print(f"    dy={dy - search:+d}: {row}")


def main() -> None:
    frames = moving_sequence(n_frames=4, size=64, noise_sigma=3.0)
    print(f"Sequence: {len(frames)} frames of {frames[0].shape}, "
          "global pan (2, 1) + moving object")

    # ------------------------------------------------------------------
    print("\n== Fig. 8: SAD surface, exact vs approximate ==")
    exact = SADAccelerator(n_pixels=64)
    approx = SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=4)
    block, search = (48, 48), 3
    surf_exact = sad_surface(frames[1], frames[0], block, 8, search, exact)
    surf_apx = sad_surface(frames[1], frames[0], block, 8, search, approx)
    show_surface("exact SAD surface:", surf_exact, search)
    show_surface("ApxSAD2 (4 LSBs) surface:", surf_apx, search)
    mv_e = full_search(frames[1], frames[0], block, 8, search, exact)
    mv_a = full_search(frames[1], frames[0], block, 8, search, approx)
    print(f"  exact motion vector:  (dx={mv_e.dx}, dy={mv_e.dy})  "
          f"SAD={mv_e.sad}")
    print(f"  approx motion vector: (dx={mv_a.dx}, dy={mv_a.dy})  "
          f"SAD={mv_a.sad}")
    print("  -> surface values shift, the global minimum survives.")

    # ------------------------------------------------------------------
    print("\n== Fig. 9: bit-rate impact of approximate motion estimation ==")
    encoder = HevcLiteEncoder(search_range=4, qp=4)
    baseline = encoder.encode(frames, exact)
    print(f"  baseline: {baseline.total_bits} bits, "
          f"PSNR {baseline.psnr_db:.2f} dB")
    print(f"  {'variant':10s} {'LSBs':>4s} {'bits':>8s} "
          f"{'increase':>9s} {'PSNR':>7s} {'energy/op':>10s}")
    for cell in ("ApxFA1", "ApxFA2", "ApxFA3", "ApxFA4", "ApxFA5"):
        for lsbs in (2, 4, 6):
            acc = SADAccelerator(n_pixels=64, fa=cell, approx_lsbs=lsbs)
            result = encoder.encode(frames, acc)
            incr = result.bitrate_increase_percent(baseline)
            print(f"  {cell:10s} {lsbs:4d} {result.total_bits:8d} "
                  f"{incr:8.2f}% {result.psnr_db:6.2f} "
                  f"{acc.energy_per_op_fj:9.0f}fJ")
    print("  -> 2/4 LSBs: marginal bit-rate cost; 6 LSBs: clearly larger;"
          "\n     4-LSB variants always burn less energy than 2-LSB ones,"
          "\n     so ApxSAD with 4 approximated bits is the sweet spot "
          "(the paper's conclusion).")


if __name__ == "__main__":
    main()
