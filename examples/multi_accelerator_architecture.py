#!/usr/bin/env python3
"""The Sec. 6 vision end-to-end: a managed sea of approximate accelerators.

Builds a small multi-accelerator architecture whose profiles come from
*real* characterization of this library's components (SAD energy model +
HEVC-lite bit-rate quality; low-pass filter SSIM), runs three concurrent
applications with run-time quality feedback over several epochs, and
reports the energy saved against an always-exact baseline.

Run:  python3 examples/multi_accelerator_architecture.py
"""

from repro.accelerators.bank import (
    MultiAcceleratorArchitecture,
    RunningApplication,
)
from repro.accelerators.filters import LowPassFilterAccelerator
from repro.accelerators.manager import AcceleratorMode, AcceleratorProfile
from repro.accelerators.sad import SADAccelerator
from repro.media.ssim import ssim
from repro.media.synthetic import moving_sequence, standard_images
from repro.video.codec import HevcLiteEncoder


def characterize_sad_profile() -> AcceleratorProfile:
    print("characterizing SAD modes on a calibration sequence ...")
    frames = moving_sequence(n_frames=2, size=32, noise_sigma=2.0)
    encoder = HevcLiteEncoder(search_range=2, qp=4)
    baseline = encoder.encode(frames, SADAccelerator(n_pixels=64))
    modes = []
    for label, lsbs in (("exact", 0), ("apx2", 2), ("apx4", 4), ("apx6", 6)):
        accelerator = SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=lsbs)
        result = encoder.encode(frames, accelerator)
        quality = min(1.0, baseline.total_bits / max(result.total_bits, 1))
        energy = accelerator.energy_per_op_fj
        print(f"  sad/{label}: quality {quality:.4f}, {energy:.0f} fJ/op")
        modes.append(AcceleratorMode(label, quality, energy))
    return AcceleratorProfile("sad", tuple(modes))


def characterize_filter_profile() -> AcceleratorProfile:
    print("characterizing low-pass filter modes on calibration images ...")
    image = standard_images(64)["blobs"]
    exact = LowPassFilterAccelerator()
    reference = exact.apply(image)
    modes = [AcceleratorMode("exact", 1.0, exact.area_ge)]
    print(f"  lowpass/exact: quality 1.0000, cost {exact.area_ge:.0f}")
    for label, (fa, lsbs) in (
        ("apx4", ("ApxFA1", 4)), ("apx6", ("ApxFA5", 6)),
    ):
        accelerator = LowPassFilterAccelerator(fa=fa, approx_lsbs=lsbs)
        quality = ssim(reference, accelerator.apply(image))
        print(f"  lowpass/{label}: quality {quality:.4f}, "
              f"cost {accelerator.area_ge:.0f}")
        modes.append(AcceleratorMode(label, quality, accelerator.area_ge))
    return AcceleratorProfile("lowpass", tuple(modes))


def main() -> None:
    architecture = MultiAcceleratorArchitecture(
        [characterize_sad_profile(), characterize_filter_profile()]
    )

    def scene_change_monitor(mode: AcceleratorMode, epoch: int) -> float:
        # A scene change at epoch 3 makes approximate modes under-deliver.
        penalty = 0.03 if epoch in (3, 4) and mode.name != "exact" else 0.0
        return mode.quality - penalty

    applications = [
        RunningApplication("encoder", "sad", min_quality=0.97,
                           ops_per_epoch=50_000,
                           quality_monitor=scene_change_monitor),
        RunningApplication("denoiser", "lowpass", min_quality=0.99,
                           ops_per_epoch=5_000),
        RunningApplication("thumbnailer", "lowpass", min_quality=0.9,
                           ops_per_epoch=500),
    ]

    print("\nrunning 8 epochs with run-time quality feedback:")
    records = architecture.run(applications, n_epochs=8)
    for record in records:
        modes = "  ".join(f"{a}={m}" for a, m in record.modes.items())
        flags = f"  !! {','.join(record.violations)}" if record.violations else ""
        print(f"  epoch {record.epoch}: {modes}{flags}")

    baseline = architecture.exact_baseline_energy(applications, len(records))
    total = architecture.total_energy()
    print(f"\nenergy: managed {total:.3g} vs always-exact {baseline:.3g} "
          f"({100 * (1 - total / baseline):.1f}% saved)")
    print("violations handled adaptively:",
          {a.name: architecture.violation_epochs(a.name)
           for a in applications})


if __name__ == "__main__":
    main()
