#!/usr/bin/env python3
"""Building a custom approximate accelerator (the Fig. 7 methodology).

Follows the paper's flow for a new accelerator -- a 4-tap weighted-sum
(FIR-like) datapath:

1. pick approximate components from the characterized library,
2. compose them in the dataflow framework,
3. predict output quality *statistically* (error-PMF propagation,
   Sec. 6's "statistical error analysis ... without extensive numerical
   simulations"),
4. validate the prediction against simulation,
5. attach a Consolidated Error Correction unit (Sec. 6.1).

Run:  python3 examples/accelerator_builder.py
"""

import numpy as np

from repro.accelerators.cec import ConsolidatedErrorCorrection
from repro.accelerators.dataflow import DataflowAccelerator
from repro.adders.gear import GeArAdder, GeArConfig
from repro.errors.pmf import ErrorPMF

WEIGHTS = (1, 2, 4, 1)  # power-of-two FIR taps


class GeArUnit:
    """Dataflow-unit adapter around a GeAr adder.

    GeAr only *misses* carries, so its errors are one-sided -- exactly
    the structure the Consolidated Error Correction unit exploits.
    """

    def __init__(self, config: GeArConfig) -> None:
        self._adder = GeArAdder(config)
        self.area_ge = self._adder.area_ge
        self.name = self._adder.name

    def add(self, a, b):
        return self._adder.add(a, b)

    def sub(self, a, b):  # pragma: no cover - unused in this datapath
        raise NotImplementedError


def build_fir(unit) -> DataflowAccelerator:
    acc = DataflowAccelerator("fir4", default_unit=unit)
    taps = [acc.add_input(f"x{i}") for i in range(4)]
    weighted = [
        acc.add_node("shl", [tap], param=int(w).bit_length() - 1)
        for tap, w in zip(taps, WEIGHTS)
    ]
    s1 = acc.add_node("add", [weighted[0], weighted[1]])
    s2 = acc.add_node("add", [weighted[2], weighted[3]])
    acc.set_output(acc.add_node("add", [s1, s2]))
    return acc


def main() -> None:
    rng = np.random.default_rng(3)

    # 1-2. Compose exact and approximate versions of the same datapath.
    exact_fir = build_fir(None)
    unit = GeArUnit(GeArConfig(n=12, r=3, p=3))
    approx_fir = build_fir(unit)
    print(f"datapath: y = sum(w_i * x_i), w = {WEIGHTS}")
    print(f"approximate unit: {unit.name}, accelerator area "
          f"{approx_fir.area_ge:.0f} GE")

    # 3. Statistical quality prediction (Sec. 6): characterize each
    # adder node once on the operand statistics it actually sees, then
    # convolve the per-node error PMFs -- no datapath simulation needed.
    n_cal = 50_000
    xs = [rng.integers(0, 256, n_cal) for _ in range(4)]
    w_shift = [int(w).bit_length() - 1 for w in WEIGHTS]
    s1_in = (xs[0] << w_shift[0], xs[1] << w_shift[1])
    s2_in = (xs[2] << w_shift[2], xs[3] << w_shift[3])
    node_pmfs = []
    node_outputs = []
    for a_op, b_op in (s1_in, s2_in):
        out = unit.add(a_op, b_op)
        node_pmfs.append(ErrorPMF.from_pairs(out, a_op + b_op))
        node_outputs.append(out)
    final_out = unit.add(node_outputs[0], node_outputs[1])
    node_pmfs.append(
        ErrorPMF.from_pairs(final_out, node_outputs[0] + node_outputs[1])
    )
    predicted = node_pmfs[0].convolve(node_pmfs[1]).convolve(node_pmfs[2])
    print(f"\npredicted output error: mean={predicted.mean:+.3f}, "
          f"MED={predicted.mean_abs:.3f}, ER={predicted.error_rate:.3f}")

    # 4. Validate against full simulation on fresh inputs.
    stim = {f"x{i}": rng.integers(0, 256, 50_000) for i in range(4)}
    y_exact = exact_fir.evaluate(stim)
    y_approx = approx_fir.evaluate(stim)
    observed = ErrorPMF.from_pairs(y_approx, y_exact)
    print(f"observed  output error: mean={observed.mean:+.3f}, "
          f"MED={observed.mean_abs:.3f}, ER={observed.error_rate:.3f}")
    print("(GeAr errors are one-sided: it can only *miss* carries)")

    # 5. Consolidated error correction (Sec. 6.1).  CEC pays off when
    # the accumulated error concentrates around specific offsets; the
    # classic case is a truncated multiplier, whose dropped partial-
    # product mass is a biased, narrow distribution.
    from repro.multipliers.wallace import WallaceMultiplier

    truncated = WallaceMultiplier(8, truncate_columns=5)
    exact_mul = WallaceMultiplier(8)
    cec = ConsolidatedErrorCorrection(truncated.multiply, exact_mul.multiply)
    cal = (rng.integers(0, 256, 40_000), rng.integers(0, 256, 40_000))
    offset = cec.calibrate(*cal)
    test = (rng.integers(0, 256, 20_000), rng.integers(0, 256, 20_000))
    truth = exact_mul.multiply(*test)
    raw_med = float(np.abs(truncated.multiply(*test) - truth).mean())
    cec_med = float(np.abs(cec(*test) - truth).mean())
    print(f"\nCEC on a truncated 8x8 Wallace multiplier: offset {offset:+d}, "
          f"MED {raw_med:.2f} -> {cec_med:.2f} "
          f"({100 * (1 - cec_med / max(raw_med, 1e-9)):.0f}% recovered by "
          "one shared corrector instead of per-adder EDC)")


if __name__ == "__main__":
    main()
