#!/usr/bin/env python3
"""Approximate ML inference: the paper's resilience claim, measured.

Trains a small MLP classifier (pure NumPy), quantizes it to int8 with
calibration, then runs inference with increasingly approximate
multiply-accumulate hardware from this library:

* signed radix-4 Booth multipliers with truncated partial products,
* approximate accumulation adders (Table III cells in the LSBs),

showing the accuracy/arithmetic-cost trade-off that makes "recognition
and machine learning" the paper's flagship approximate-computing
workload.

Run:  python3 examples/approximate_inference.py
"""

from repro.accelerators.neural import MLPClassifier, make_classification_data
from repro.adders.ripple import ApproximateRippleAdder
from repro.multipliers.booth import BoothMultiplier


def main() -> None:
    X, y = make_classification_data(n_samples=600, n_classes=3,
                                    n_features=4, seed=5)
    split = len(X) * 2 // 3
    x_train, y_train = X[:split], y[:split]
    x_test, y_test = X[split:], y[split:]

    print("training a 4-8-3 MLP with NumPy gradient descent ...")
    mlp = MLPClassifier.train(x_train, y_train, hidden=8, epochs=300, seed=5)
    print(f"  float accuracy:      train {mlp.accuracy(x_train, y_train):.3f}"
          f"  test {mlp.accuracy(x_test, y_test):.3f}")

    quantized = mlp.quantize(x_train)
    print(f"  int8 accuracy:       train "
          f"{quantized.accuracy(x_train, y_train):.3f}"
          f"  test {quantized.accuracy(x_test, y_test):.3f}")

    print("\ninference through approximate MAC hardware:")
    print(f"  {'datapath':34s} {'test acc':>8s} {'MAC cost':>9s}")
    for trunc in (0, 1, 2, 3, 4):
        multiplier = BoothMultiplier(16, truncate_digits=trunc)
        accuracy = quantized.accuracy(x_test, y_test, multiplier=multiplier)
        cost = 1 - trunc / 8
        label = "exact Booth" if trunc == 0 else f"Booth trunc={trunc}"
        print(f"  {label:34s} {accuracy:8.3f} {cost:8.0%}")
    for cell, lsbs in (("ApxFA1", 6), ("ApxFA5", 8)):
        accumulator = ApproximateRippleAdder(24, approx_fa=cell,
                                             num_approx_lsbs=lsbs)
        accuracy = quantized.accuracy(
            x_test, y_test, multiplier=BoothMultiplier(16),
            accumulator=accumulator,
        )
        cost = accumulator.area_ge / ApproximateRippleAdder(24).area_ge
        print(f"  {'accumulator ' + cell + 'x' + str(lsbs):34s} "
              f"{accuracy:8.3f} {cost:8.0%}")

    print("\n-> one to two truncated Booth digits (12-25% of the partial-"
          "product\n   work removed) cost essentially no accuracy; the "
          "cliff only comes later\n   -- the inherent-resilience argument "
          "of the paper's introduction.")


if __name__ == "__main__":
    main()
