#!/usr/bin/env python3
"""Design-space exploration of GeAr adders (Table IV / Fig. 4).

Enumerates every valid (R, P) configuration of an N-bit GeAr adder,
evaluates the analytic error model (no simulation needed), extracts the
Pareto front, and answers the paper's two selection queries.  Also maps
published adders (ACA-I/ACA-II/ETAII/GDA) into the same space.

Run:  python3 examples/design_space_exploration.py [N]
"""

import sys

from repro.adders.gear import GeArConfig
from repro.adders.gear_error import exact_error_probability
from repro.adders.variants import known_adder_configs
from repro.characterization.report import format_records
from repro.dse.explorer import explore_gear_space
from repro.dse.pareto import pareto_front
from repro.dse.selection import select_max_accuracy, select_min_area


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    print(f"== GeAr design space for N = {n} ==\n")
    records = explore_gear_space(n)
    for record in records:
        record["accuracy_percent"] = round(record["accuracy_percent"], 2)
    print(format_records(
        records,
        columns=["r", "p", "k", "l", "accuracy_percent", "lut_count",
                 "delay_ps"],
        title=f"All {len(records)} valid approximate configurations",
    ))

    front = pareto_front(
        records, [("lut_count", True), ("accuracy_percent", False)]
    )
    print("\nPareto front (LUTs vs accuracy):")
    for record in sorted(front, key=lambda r: r["lut_count"]):
        print(f"  R={record['r']:2d} P={record['p']:2d}: "
              f"{record['accuracy_percent']:6.2f}% @ "
              f"{record['lut_count']} LUTs")

    best = select_max_accuracy(records)
    print(f"\nMax-accuracy configuration: {best['name']} "
          f"({best['accuracy_percent']:.2f}%)")
    try:
        pick = select_min_area(records, 90.0)
        print(f"Min-area with >= 90% accuracy: {pick['name']} "
              f"({pick['lut_count']} LUTs, {pick['accuracy_percent']:.2f}%)")
    except ValueError as exc:
        print(f"No configuration reaches 90%: {exc}")

    if n >= 16 and n % 8 == 0:
        print("\n== Published adders as GeAr configurations ==")
        for name, config in known_adder_configs(n).items():
            p_err = exact_error_probability(config)
            print(f"  {name:16s} -> {config.name:22s} "
                  f"accuracy {100 * (1 - p_err):6.2f}%")


if __name__ == "__main__":
    main()
