"""Tests for synthetic media generation."""

import numpy as np
import pytest

from repro.media.synthetic import (
    blobs_image,
    checkerboard_image,
    edges_image,
    flat_noisy_image,
    gradient_image,
    moving_sequence,
    sinusoid_image,
    standard_images,
    value_noise_image,
)

GENERATORS = [
    gradient_image,
    checkerboard_image,
    sinusoid_image,
    blobs_image,
    edges_image,
    value_noise_image,
    flat_noisy_image,
]


class TestImages:
    @pytest.mark.parametrize("gen", GENERATORS)
    def test_shape_and_dtype(self, gen):
        img = gen(32)
        assert img.shape == (32, 32)
        assert img.dtype == np.uint8

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_deterministic(self, gen):
        assert np.array_equal(gen(32), gen(32))

    def test_gradient_monotone_along_diagonal(self):
        img = gradient_image(32).astype(int)
        diag = np.diagonal(img)
        assert all(a <= b for a, b in zip(diag, diag[1:]))

    def test_checkerboard_two_levels(self):
        assert set(np.unique(checkerboard_image(32))) == {0, 255}

    def test_flat_noisy_centered(self):
        img = flat_noisy_image(64)
        assert 100 < img.mean() < 156

    def test_standard_set_has_seven_distinct_images(self):
        images = standard_images(32)
        assert len(images) == 7
        flat = [img.tobytes() for img in images.values()]
        assert len(set(flat)) == 7

    def test_content_classes_span_smoothness(self):
        """The set must include both smooth and high-frequency content
        (what drives the Fig. 10 spread)."""
        images = standard_images(64)

        def roughness(img):
            d = np.abs(np.diff(img.astype(int), axis=1))
            return float(d.mean())

        values = {name: roughness(img) for name, img in images.items()}
        assert values["checkerboard"] > 10 * values["gradient"]


class TestMovingSequence:
    def test_frame_count_and_shape(self):
        frames = moving_sequence(n_frames=3, size=32)
        assert len(frames) == 3
        assert all(f.shape == (32, 32) for f in frames)

    def test_deterministic(self):
        f1 = moving_sequence(n_frames=2, size=32, seed=9)
        f2 = moving_sequence(n_frames=2, size=32, seed=9)
        assert all(np.array_equal(a, b) for a, b in zip(f1, f2))

    def test_consecutive_frames_differ_but_correlate(self):
        frames = moving_sequence(n_frames=2, size=64, noise_sigma=0.0)
        a, b = frames[0].astype(float), frames[1].astype(float)
        assert not np.array_equal(a, b)
        corr = np.corrcoef(a.ravel(), b.ravel())[0, 1]
        assert corr > 0.5

    def test_background_motion_recoverable(self):
        """The commanded global pan must be the best block match."""
        from repro.accelerators.sad import SADAccelerator
        from repro.video.motion import full_search

        frames = moving_sequence(
            n_frames=2, size=64, motion=(2, 1), noise_sigma=0.0
        )
        acc = SADAccelerator(n_pixels=64)
        # Pick a background block away from the moving blob.
        mv = full_search(frames[1], frames[0], (48, 48), 8, 4, acc)
        assert (mv.dx, mv.dy) == (2, 1)
