"""Test package."""
