"""Tests for multi-scale SSIM."""

import numpy as np
import pytest

from repro.media.msssim import ms_ssim
from repro.media.ssim import ssim
from repro.media.synthetic import standard_images


class TestMsSsim:
    def test_identical_images_score_one(self, rng):
        img = rng.integers(0, 256, (64, 64)).astype(float)
        assert ms_ssim(img, img) == pytest.approx(1.0)

    def test_monotone_in_noise(self, rng):
        img = standard_images(64)["blobs"].astype(float)
        scores = []
        for noise_sigma in (2, 10, 40):
            noisy = np.clip(img + rng.normal(0, noise_sigma, img.shape), 0, 255)
            scores.append(ms_ssim(img, noisy))
        assert scores[0] > scores[1] > scores[2]

    def test_bounded(self, rng):
        img = rng.integers(0, 256, (48, 48)).astype(float)
        noisy = np.clip(img + rng.normal(0, 15, img.shape), 0, 255)
        assert 0.0 < ms_ssim(img, noisy) <= 1.0

    def test_adapts_scales_to_small_images(self):
        img = np.tile(np.arange(16, dtype=float), (16, 1)) * 10
        # Only one usable scale at 16x16 with an 11-tap window.
        assert ms_ssim(img, img) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            ms_ssim(np.zeros((32, 32)), np.zeros((32, 16)))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="window"):
            ms_ssim(np.zeros((8, 8)), np.zeros((8, 8)))

    def test_empty_weights_rejected(self, rng):
        img = rng.integers(0, 256, (32, 32)).astype(float)
        with pytest.raises(ValueError, match="weight"):
            ms_ssim(img, img, weights=[])

    def test_high_frequency_error_less_penalized_at_scale(self, rng):
        """MS-SSIM forgives pure high-frequency error more than
        single-scale SSIM does -- the psycho-visual point of Fig. 10."""
        img = standard_images(64)["blobs"].astype(float)
        checker = np.indices(img.shape).sum(axis=0) % 2
        distorted = np.clip(img + 6 * (2 * checker - 1), 0, 255)
        single = ssim(img, distorted)
        multi = ms_ssim(img, distorted)
        assert multi > single

    def test_tracks_approximate_filter_quality(self):
        from repro.accelerators.filters import LowPassFilterAccelerator

        img = standard_images(64)["value_noise"]
        exact = LowPassFilterAccelerator().apply(img).astype(float)
        mild = LowPassFilterAccelerator(fa="ApxFA1", approx_lsbs=3).apply(img)
        harsh = LowPassFilterAccelerator(fa="ApxFA5", approx_lsbs=7).apply(img)
        assert ms_ssim(exact, mild.astype(float)) > ms_ssim(
            exact, harsh.astype(float)
        )
