"""Tests for the SSIM implementation."""

import numpy as np
import pytest

from repro.media.ssim import gaussian_window, ssim, ssim_map
from repro.media.synthetic import standard_images


class TestGaussianWindow:
    def test_normalized(self):
        assert gaussian_window().sum() == pytest.approx(1.0)

    def test_symmetric(self):
        w = gaussian_window(11, 1.5)
        assert np.allclose(w, w.T)
        assert np.allclose(w, w[::-1, ::-1])

    def test_peak_at_center(self):
        w = gaussian_window(11, 1.5)
        assert w[5, 5] == w.max()

    def test_even_size_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            gaussian_window(10)


class TestSsim:
    def test_identical_images_score_one(self, rng):
        img = rng.integers(0, 256, (32, 32)).astype(float)
        assert ssim(img, img) == pytest.approx(1.0)

    def test_severe_distortion_scores_low(self, rng):
        img = rng.integers(0, 256, (32, 32)).astype(float)
        inverted = 255.0 - img
        assert ssim(img, inverted) < 0.2

    def test_monotone_in_noise_level(self, rng):
        img = standard_images(64)["blobs"].astype(float)
        scores = []
        for sigma in (2, 8, 32):
            noisy = img + rng.normal(0, sigma, img.shape)
            scores.append(ssim(img, np.clip(noisy, 0, 255)))
        assert scores[0] > scores[1] > scores[2]

    def test_luminance_shift_penalized_gently(self):
        img = np.tile(np.arange(64, dtype=float), (64, 1)) * 2
        shifted = img + 5
        assert 0.9 < ssim(img, shifted) < 1.0

    def test_symmetry(self, rng):
        a = rng.integers(0, 256, (32, 32)).astype(float)
        b = np.clip(a + rng.normal(0, 10, a.shape), 0, 255)
        assert ssim(a, b) == pytest.approx(ssim(b, a), abs=1e-9)

    def test_bounded_above_by_one(self, rng):
        a = rng.integers(0, 256, (32, 32)).astype(float)
        b = np.clip(a + rng.normal(0, 3, a.shape), 0, 255)
        assert ssim(a, b) <= 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            ssim(np.zeros((16, 16)), np.zeros((16, 8)))

    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            ssim(np.zeros(100), np.zeros(100))

    def test_window_larger_than_image_rejected(self):
        with pytest.raises(ValueError, match="smaller"):
            ssim(np.zeros((4, 4)), np.zeros((4, 4)))


class TestSsimMap:
    def test_valid_output_shape(self):
        img = np.zeros((32, 32))
        out = ssim_map(img, img)
        assert out.shape == (22, 22)  # 32 - 11 + 1

    def test_local_distortion_localized(self, rng):
        img = rng.integers(0, 256, (48, 48)).astype(float)
        distorted = img.copy()
        distorted[:16, :16] = rng.integers(0, 256, (16, 16))
        smap = ssim_map(img, distorted)
        corrupted_zone = smap[:6, :6].mean()
        clean_zone = smap[-6:, -6:].mean()
        assert clean_zone > corrupted_zone


class TestVarianceClamp:
    """Regression: flat regions must not produce negative variances.

    ``E[x^2] - E[x]^2`` can cancel to a tiny negative number on constant
    patches, which skewed the Fig. 10 resilience curves; the reference
    implementation clamps at 0.
    """

    def test_constant_image_ssim_is_one(self):
        # The clamp keeps the tiny E[x^2] - mu^2 cancellation error from
        # turning into a negative variance; the unclamped covariance may
        # still carry +/- 1 ulp, hence approx rather than exact equality.
        for value in (63.0, 77.0, 137.0, 200.0):
            img = np.full((32, 32), value)
            assert ssim(img, img) == pytest.approx(1.0, abs=1e-12)
            assert ssim(img, img) <= 1.0

    def test_constant_image_map_near_one_everywhere(self):
        img = np.full((24, 24), 200.0)
        smap = ssim_map(img, img)
        assert np.all(smap <= 1.0)
        assert np.all(smap == pytest.approx(1.0, abs=1e-12))

    def test_flat_plus_speck_never_exceeds_one(self):
        img = np.full((32, 32), 63.0)
        distorted = img.copy()
        distorted[16, 16] += 1.0
        smap = ssim_map(img, distorted)
        assert np.all(smap <= 1.0)
        assert ssim(img, img) >= ssim(img, distorted)

    def test_identical_images_ssim_one_any_content(self, rng):
        img = rng.integers(0, 256, (40, 40)).astype(float)
        assert ssim(img, img) == pytest.approx(1.0, abs=1e-12)
