"""Tests for the seeded transient FaultPlan primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import FAULT_LAYERS, FaultPlan


class TestValidation:
    def test_bad_layer_rejected(self):
        with pytest.raises(ValueError, match="layer"):
            FaultPlan(seed=0, rate=0.1, layer="physics")

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_bad_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan(seed=0, rate=rate, layer="logic")

    def test_sites_coerced_to_tuple(self):
        plan = FaultPlan(0, 0.1, "logic", sites=["a", "b"])
        assert plan.sites == ("a", "b")

    def test_bit_width_bounds(self):
        plan = FaultPlan(0, 0.5, "datapath")
        with pytest.raises(ValueError, match="bit_width"):
            plan.flip_mask("s", (4,), 0)
        with pytest.raises(ValueError, match="bit_width"):
            plan.flip_mask("s", (4,), 63)


class TestSiteSelection:
    def test_none_applies_everywhere(self):
        assert FaultPlan(0, 0.1, "logic").applies_to("anything")

    def test_whitelist(self):
        plan = FaultPlan(0, 0.1, "logic", sites=("x",))
        assert plan.applies_to("x")
        assert not plan.applies_to("y")

    def test_excluded_site_mask_is_zero(self):
        plan = FaultPlan(0, 1.0, "datapath", sites=("x",))
        assert not plan.flip_mask("y", (8,), 4).any()
        assert not plan.lane_flips("y", 64).any()


class TestDeterminism:
    def test_zero_rate_is_all_zero(self):
        plan = FaultPlan(3, 0.0, "architecture")
        assert not plan.flip_mask("acc", (16,), 10).any()
        assert not plan.lane_flips("net", 100).any()

    def test_rate_one_flips_every_bit(self):
        plan = FaultPlan(3, 1.0, "datapath")
        mask = plan.flip_mask("operand_a", (5,), 6)
        assert (mask == (1 << 6) - 1).all()
        assert plan.lane_flips("net", 10).all()

    def test_sites_decorrelated(self):
        plan = FaultPlan(7, 0.5, "datapath")
        a = plan.flip_mask("operand_a", (64,), 16)
        b = plan.flip_mask("operand_b", (64,), 16)
        assert (a != b).any()

    def test_context_decorrelates(self):
        plan = FaultPlan(7, 0.5, "datapath")
        assert (plan.flip_mask("carry", (64,), 1, 0)
                != plan.flip_mask("carry", (64,), 1, 1)).any()

    def test_independent_of_query_order(self):
        plan = FaultPlan(11, 0.3, "logic")
        first = plan.lane_flips("n1", 128)
        plan.lane_flips("n2", 128)  # interleaved query
        again = plan.lane_flips("n1", 128)
        assert (first == again).all()


class TestRoundTrip:
    @pytest.mark.parametrize("sites", [None, ("a", "b")])
    def test_as_dict_from_dict(self, sites):
        plan = FaultPlan(5, 0.25, "architecture", sites=sites)
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_dict_is_json_plain(self):
        import json

        plan = FaultPlan(5, 0.25, "logic", sites=("n",))
        assert json.loads(json.dumps(plan.as_dict())) == plan.as_dict()


class TestSeedEqualityProperty:
    """Identical plans yield identical flip sequences at every layer."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        rate=st.floats(min_value=0.0, max_value=1.0,
                       allow_nan=False, allow_infinity=False),
        layer=st.sampled_from(FAULT_LAYERS),
        site=st.text(
            alphabet="abcdefghij_0123456789", min_size=1, max_size=12
        ),
        n=st.integers(min_value=1, max_value=200),
        width=st.integers(min_value=1, max_value=62),
    )
    def test_equal_plans_equal_flips(self, seed, rate, layer, site, n, width):
        p1 = FaultPlan(seed=seed, rate=rate, layer=layer)
        p2 = FaultPlan(seed=seed, rate=rate, layer=layer)
        np.testing.assert_array_equal(
            p1.flip_mask(site, (n,), width, "ctx"),
            p2.flip_mask(site, (n,), width, "ctx"),
        )
        np.testing.assert_array_equal(
            p1.lane_flips(site, n), p2.lane_flips(site, n)
        )

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        layer=st.sampled_from(FAULT_LAYERS),
    )
    def test_different_seeds_decorrelate(self, seed, layer):
        a = FaultPlan(seed, 0.5, layer).flip_mask("s", (256,), 8)
        b = FaultPlan(seed + 1, 0.5, layer).flip_mask("s", (256,), 8)
        assert (a != b).any()
