"""Tests for logic-layer transient fault injection on the bitsim engine."""

import numpy as np
import pytest

from repro.adders.fulladder import FULL_ADDERS
from repro.logic import bitsim
from repro.logic.simulate import exhaustive_stimuli
from repro.resilience import (
    FaultPlan,
    packed_flip_overlay,
    transient_fault_run,
)


def _netlist():
    return FULL_ADDERS["AccuFA"].netlist()


class TestRunPackedFlipOverlay:
    def test_zero_overlay_matches_golden(self):
        netlist = _netlist()
        compiled = bitsim.compile_netlist(netlist)
        stimuli = exhaustive_stimuli(list(netlist.inputs))
        packed = {n: bitsim.pack_lanes(stimuli[n]) for n in netlist.inputs}
        n_words = bitsim.n_words_for(8)
        golden = compiled.run_packed(packed, n_words)
        flipped = compiled.run_packed(packed, n_words, flip={})
        np.testing.assert_array_equal(golden, flipped)

    def test_output_net_flip_inverts_lanes(self):
        netlist = _netlist()
        compiled = bitsim.compile_netlist(netlist)
        stimuli = exhaustive_stimuli(list(netlist.inputs))
        packed = {n: bitsim.pack_lanes(stimuli[n]) for n in netlist.inputs}
        n_words = bitsim.n_words_for(8)
        mask = bitsim.pack_lanes(np.array([True, False] * 4))
        out = netlist.outputs[0]
        golden = compiled.run_packed(packed, n_words)
        faulty = compiled.run_packed(packed, n_words, flip={out: mask})
        slot = compiled.slot_of(out)
        np.testing.assert_array_equal(
            faulty[slot], golden[slot] ^ np.asarray(mask, dtype=np.uint64)
        )

    def test_input_flip_propagates(self):
        netlist = _netlist()
        compiled = bitsim.compile_netlist(netlist)
        stimuli = exhaustive_stimuli(list(netlist.inputs))
        packed = {n: bitsim.pack_lanes(stimuli[n]) for n in netlist.inputs}
        n_words = bitsim.n_words_for(8)
        all_lanes = bitsim.pack_lanes(np.ones(8, dtype=bool))
        # Flipping input "a" everywhere == simulating with ~a.
        faulty = compiled.run_packed(packed, n_words, flip={"a": all_lanes})
        swapped = dict(packed)
        swapped["a"] = np.asarray(packed["a"]) ^ bitsim.lane_mask(8)
        reference = compiled.run_packed(swapped, n_words)
        for out in netlist.outputs:
            slot = compiled.slot_of(out)
            valid = bitsim.lane_mask(8)
            np.testing.assert_array_equal(
                np.asarray(faulty[slot]) & valid,
                np.asarray(reference[slot]) & valid,
            )

    def test_stuck_wins_over_flip(self):
        netlist = _netlist()
        compiled = bitsim.compile_netlist(netlist)
        stimuli = exhaustive_stimuli(list(netlist.inputs))
        packed = {n: bitsim.pack_lanes(stimuli[n]) for n in netlist.inputs}
        n_words = bitsim.n_words_for(8)
        out = netlist.outputs[0]
        all_lanes = bitsim.pack_lanes(np.ones(8, dtype=bool))
        run = compiled.run_packed(
            packed, n_words, stuck={out: 0}, flip={out: all_lanes}
        )
        assert not (np.asarray(run[compiled.slot_of(out)])
                    & bitsim.lane_mask(8)).any()


class TestPackedFlipOverlay:
    def test_sparse_only_flipped_nets(self):
        plan = FaultPlan(1, 0.05, "logic")
        overlay = packed_flip_overlay(plan, ["n1", "n2", "n3"], 256)
        for net, mask in overlay.items():
            assert bitsim.popcount(np.asarray(mask)) > 0, net

    def test_zero_rate_empty(self):
        plan = FaultPlan(1, 0.0, "logic")
        assert packed_flip_overlay(plan, ["n1", "n2"], 256) == {}


class TestTransientFaultRun:
    def test_layer_enforced(self):
        with pytest.raises(ValueError, match="logic"):
            transient_fault_run(_netlist(), FaultPlan(0, 0.1, "datapath"))

    def test_zero_rate_no_errors(self):
        report = transient_fault_run(_netlist(), FaultPlan(0, 0.0, "logic"))
        assert report.n_flips == 0
        assert report.n_output_errors == 0
        assert report.error_rate == 0.0

    def test_flip_accounting_consistent(self):
        report = transient_fault_run(_netlist(), FaultPlan(3, 0.25, "logic"))
        assert report.n_flips == sum(report.flips_per_site.values())
        assert report.n_sites == len(report.flips_per_site)
        assert 0 <= report.n_output_errors <= report.n_vectors
        assert report.error_rate == pytest.approx(
            report.n_output_errors / report.n_vectors
        )

    def test_reproducible(self):
        plan = FaultPlan(9, 0.1, "logic")
        r1 = transient_fault_run(_netlist(), plan)
        r2 = transient_fault_run(_netlist(), plan)
        assert r1 == r2

    def test_site_whitelist_restricts_flips(self):
        netlist = _netlist()
        out = netlist.outputs[0]
        plan = FaultPlan(2, 0.5, "logic", sites=(out,))
        report = transient_fault_run(netlist, plan)
        assert set(report.flips_per_site) <= {out}

    def test_output_site_flips_always_error(self):
        """A flip directly on a primary output must show as an error."""
        netlist = _netlist()
        out = netlist.outputs[0]
        plan = FaultPlan(2, 0.5, "logic", sites=(out,))
        report = transient_fault_run(netlist, plan)
        assert report.n_output_errors == report.n_flips > 0

    def test_to_record_is_json_plain(self):
        import json

        report = transient_fault_run(_netlist(), FaultPlan(5, 0.2, "logic"))
        record = report.to_record()
        assert json.loads(json.dumps(record)) == record
