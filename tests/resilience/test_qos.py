"""Tests for the QosGuard graceful-degradation controller."""

import numpy as np
import pytest

from repro.accelerators.sad import SADAccelerator
from repro.adders.gear import GeArAdder, GeArConfig
from repro.errors.pmf import ErrorPMF
from repro.resilience import (
    DegradationLog,
    FaultPlan,
    FaultySADAccelerator,
    QosGuard,
    residual_within_pmf,
)


def _golden(x):
    return np.asarray(x) * 2


def _broken(x):
    return np.asarray(x) * 2 + 1


class TestConstruction:
    def test_bad_check_rejected(self):
        with pytest.raises(ValueError, match="check"):
            QosGuard(_golden, [], check="sometimes")

    def test_bad_canary_fraction_rejected(self):
        with pytest.raises(ValueError, match="canary_fraction"):
            QosGuard(_golden, [], canary_fraction=0.0)


class TestAcceptPath:
    def test_clean_stage_accepted(self):
        guard = QosGuard(_golden, [("stage0", _golden)], check="full")
        out, log = guard.run(np.arange(16))
        np.testing.assert_array_equal(out, _golden(np.arange(16)))
        assert log.final_stage == "stage0"
        assert not log.degraded
        assert log.events[0].action == "accept"

    def test_no_stages_runs_golden(self):
        guard = QosGuard(_golden, [])
        out, log = guard.run(np.arange(8))
        np.testing.assert_array_equal(out, _golden(np.arange(8)))
        assert log.final_stage == "golden"
        assert log.events[-1].action == "fallback"

    def test_tolerance_accepts_small_errors(self):
        guard = QosGuard(_golden, [("off_by_one", _broken)],
                         check="full", tolerance=1.0)
        out, log = guard.run(np.arange(16))
        assert log.final_stage == "off_by_one"
        np.testing.assert_array_equal(out, _broken(np.arange(16)))


class TestEscalation:
    def test_ladder_walks_to_first_clean_stage(self):
        guard = QosGuard(
            _golden,
            [("bad", _broken), ("good", _golden)],
            check="full",
        )
        out, log = guard.run(np.arange(16))
        assert log.final_stage == "good"
        assert [e.action for e in log.events] == ["escalate", "accept"]
        assert "escalating to good" in log.events[0].detail
        np.testing.assert_array_equal(out, _golden(np.arange(16)))

    def test_all_rejected_falls_back_to_golden(self):
        guard = QosGuard(_golden, [("bad", _broken)], check="full")
        out, log = guard.run(np.arange(16))
        assert log.final_stage == "golden"
        assert log.degraded
        assert log.events[-1].detail == "exact path restored"
        np.testing.assert_array_equal(out, _golden(np.arange(16)))

    def test_violating_indices_are_exact(self):
        def selective(x):
            out = _golden(x).copy()
            out[3] += 7
            out[11] -= 2
            return out

        guard = QosGuard(_golden, [("selective", selective)], check="full")
        _, log = guard.run(np.arange(16))
        assert log.events[0].violating_indices == (3, 11)
        assert log.fault_affected_indices == (3, 11)


class TestCanary:
    def test_canary_checks_subset_only(self):
        guard = QosGuard(_golden, [("s", _golden)], check="canary",
                         canary_fraction=0.25, seed=7)
        _, log = guard.run(np.arange(100))
        assert log.events[0].n_checked == 25
        assert log.events[0].check == "canary"

    def test_canary_subset_is_deterministic(self):
        g1 = QosGuard(_golden, [], check="canary", seed=3)
        g2 = QosGuard(_golden, [], check="canary", seed=3)
        np.testing.assert_array_equal(
            g1._canary_indices(64), g2._canary_indices(64)
        )

    def test_canary_catches_dense_corruption(self):
        guard = QosGuard(_golden, [("bad", _broken)], check="canary",
                         canary_fraction=0.1)
        out, log = guard.run(np.arange(64))
        assert log.final_stage == "golden"
        np.testing.assert_array_equal(out, _golden(np.arange(64)))


class TestDetector:
    def test_gear_detector_drives_escalation(self):
        adder = GeArAdder(GeArConfig(n=8, r=2, p=2))
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, 512)
        b = rng.integers(0, 256, 512)
        exact = a + b
        guard = QosGuard(
            golden_fn=lambda x, y: np.asarray(x) + np.asarray(y),
            stages=[("gear", adder.add)],
            detector_fn=adder.detect_errors,
        )
        out, log = guard.run(a, b)
        assert log.events[0].check == "detector"
        if log.final_stage == "golden":
            np.testing.assert_array_equal(out, exact)
            # Detection is first-pass local: every flagged index is real.
            flagged = set(log.events[0].violating_indices)
            wrong = set(np.flatnonzero(adder.add(a, b) != exact))
            assert flagged and flagged <= wrong


class TestResidualPmf:
    def test_bound_from_support(self):
        pmf = ErrorPMF.from_samples(np.array([0, -1, 2, 0, 1]))
        residuals = np.array([0, 2, -2, 3, -5])
        np.testing.assert_array_equal(
            residual_within_pmf(residuals, pmf),
            [True, True, True, False, False],
        )

    def test_slack_widens_bound(self):
        pmf = ErrorPMF.from_samples(np.array([0, 1]))
        assert residual_within_pmf(np.array([2]), pmf, slack=1).all()


class TestLogRecords:
    def test_to_record_is_json_plain(self):
        import json

        guard = QosGuard(_golden, [("bad", _broken)], check="full")
        _, log = guard.run(np.arange(8))
        record = log.to_record()
        assert json.loads(json.dumps(record)) == record
        assert record["final_stage"] == "golden"
        assert record["degraded"] is True

    def test_empty_log_properties(self):
        log = DegradationLog(guard="g")
        assert not log.degraded
        assert log.fault_affected_indices == ()


class TestGuardedFaultySAD:
    def test_fallback_restores_exact_and_accounts_for_faults(self):
        """Acceptance: guard detects upsets, restores exact output, and
        the log names every fault-affected block."""
        n_pixels, n_blocks = 16, 256
        rng = np.random.default_rng(5)
        a = rng.integers(0, 256, (n_blocks, n_pixels))
        b = rng.integers(0, 256, (n_blocks, n_pixels))
        golden = SADAccelerator(n_pixels)
        faulty = FaultySADAccelerator(
            golden, FaultPlan(seed=6, rate=0.002, layer="architecture")
        )
        exact = golden.sad(a, b)
        affected = np.flatnonzero(faulty.sad(a, b) != exact)
        assert affected.size > 0, "fault rate too low for the test"
        guard = QosGuard(golden.sad, [("faulty", faulty.sad)], check="full")
        out, log = guard.run(a, b)
        assert log.final_stage == "golden"
        np.testing.assert_array_equal(out, exact)
        assert log.fault_affected_indices == tuple(int(i) for i in affected)
