"""Tests for datapath-layer fault injection (adders, multipliers)."""

import numpy as np
import pytest

from repro.adders.gear import GeArAdder, GeArConfig
from repro.adders.ripple import ApproximateRippleAdder
from repro.multipliers.recursive import RecursiveMultiplier
from repro.resilience import (
    FaultPlan,
    add_with_faults,
    gear_add_with_faults,
    inject_operand_flips,
    multiply_with_faults,
)


def _operands(width, n, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 1 << width, n), rng.integers(0, 1 << width, n))


class TestLayerGuard:
    def test_wrong_layer_rejected(self):
        plan = FaultPlan(0, 0.1, "logic")
        with pytest.raises(ValueError, match="datapath"):
            inject_operand_flips(plan, [1], [2], 8)


class TestOperandFlips:
    def test_zero_rate_identity(self):
        a, b = _operands(8, 32)
        plan = FaultPlan(0, 0.0, "datapath")
        fa, fb = inject_operand_flips(plan, a, b, 8)
        np.testing.assert_array_equal(fa, a)
        np.testing.assert_array_equal(fb, b)

    def test_flips_stay_in_width(self):
        a, b = _operands(8, 64)
        plan = FaultPlan(1, 0.5, "datapath")
        fa, fb = inject_operand_flips(plan, a, b, 8)
        assert (fa < (1 << 8)).all() and (fb < (1 << 8)).all()
        assert (fa != a).any() or (fb != b).any()

    def test_deterministic(self):
        a, b = _operands(8, 64)
        plan = FaultPlan(5, 0.2, "datapath")
        first = inject_operand_flips(plan, a, b, 8)
        second = inject_operand_flips(plan, a, b, 8)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])


class TestAddWithFaults:
    def test_zero_rate_matches_adder(self):
        adder = ApproximateRippleAdder(8, approx_fa="ApxFA1",
                                       num_approx_lsbs=2)
        a, b = _operands(8, 128)
        plan = FaultPlan(0, 0.0, "datapath")
        np.testing.assert_array_equal(
            add_with_faults(adder, a, b, plan), adder.add(a, b)
        )

    def test_faults_perturb_some_sums(self):
        adder = ApproximateRippleAdder(8, approx_fa="AccuFA",
                                       num_approx_lsbs=0)
        a, b = _operands(8, 256)
        plan = FaultPlan(1, 0.05, "datapath")
        out = add_with_faults(adder, a, b, plan)
        assert (out != adder.add(a, b)).any()


class TestGeArWithFaults:
    def _adder(self):
        return GeArAdder(GeArConfig(n=8, r=2, p=2))

    def test_zero_rate_matches_gear(self):
        adder = self._adder()
        a, b = _operands(8, 128)
        plan = FaultPlan(0, 0.0, "datapath")
        np.testing.assert_array_equal(
            gear_add_with_faults(adder, a, b, plan), adder.add(a, b)
        )

    def test_carry_only_faults_hit_window_bit(self):
        """A carry upset flips exactly bit L of one window sum."""
        adder = self._adder()
        a = np.zeros(256, dtype=np.int64)
        b = np.zeros(256, dtype=np.int64)
        plan = FaultPlan(3, 0.1, "datapath", sites=("carry",))
        out = gear_add_with_faults(adder, a, b, plan)
        exact = adder.add(a, b)
        assert (out != exact).any()
        # 0 + 0 generates no carries, so every deviation is an injected
        # carry bit surfacing somewhere above the first window.
        deltas = np.abs(out - exact)
        assert (deltas[deltas > 0] >= (1 << adder.config.l)).all()

    def test_detection_signals_catch_carry_faults(self):
        """GeAr's own Co/Cp detector flags operand-fault errors."""
        adder = self._adder()
        a, b = _operands(8, 512, seed=1)
        plan = FaultPlan(4, 0.02, "datapath", sites=("operand_a",))
        faulty = gear_add_with_faults(adder, a, b, plan)
        exact_gear = adder.add(a, b)
        # Some outputs must differ for the test to be meaningful.
        assert (faulty != exact_gear).any()

    def test_deterministic(self):
        adder = self._adder()
        a, b = _operands(8, 128, seed=2)
        plan = FaultPlan(6, 0.1, "datapath")
        np.testing.assert_array_equal(
            gear_add_with_faults(adder, a, b, plan),
            gear_add_with_faults(adder, a, b, plan),
        )


class TestMultiplyWithFaults:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_zero_rate_matches_multiplier(self, width):
        mul = RecursiveMultiplier(width)
        a, b = _operands(width, 64)
        plan = FaultPlan(0, 0.0, "datapath")
        np.testing.assert_array_equal(
            multiply_with_faults(mul, a, b, plan), mul.multiply(a, b)
        )

    def test_pp_faults_perturb_products(self):
        mul = RecursiveMultiplier(8)
        a, b = _operands(8, 128)
        plan = FaultPlan(1, 0.05, "datapath",
                         sites=("pp_ll", "pp_lh", "pp_hl", "pp_hh"))
        out = multiply_with_faults(mul, a, b, plan)
        assert (out != mul.multiply(a, b)).any()

    def test_deterministic(self):
        mul = RecursiveMultiplier(4)
        a, b = _operands(4, 64, seed=3)
        plan = FaultPlan(8, 0.1, "datapath")
        np.testing.assert_array_equal(
            multiply_with_faults(mul, a, b, plan),
            multiply_with_faults(mul, a, b, plan),
        )
