"""Test package."""
