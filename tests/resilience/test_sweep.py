"""Tests for fault-rate sweeps through the hardened campaign engine."""

import pytest

from repro.resilience.sweep import (
    WORKLOAD_LAYERS,
    fault_sweep_tasks,
    resilience_record,
    run_fault_sweep,
)


class TestTaskConstruction:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            fault_sweep_tasks("gpu", [0.1])

    def test_one_task_per_rate(self):
        tasks = fault_sweep_tasks("cell", [0.0, 0.01, 0.1], seed=3)
        assert [t.params["rate"] for t in tasks] == [0.0, 0.01, 0.1]
        assert all(t.kind == "resilience" for t in tasks)
        assert all(t.seed == 3 for t in tasks)

    def test_extra_params_forwarded(self):
        (task,) = fault_sweep_tasks("sad", [0.01], qos=True, n_pixels=8)
        assert task.params["qos"] is True
        assert task.params["n_pixels"] == 8


class TestResilienceRecord:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            resilience_record({"workload": "gpu", "rate": 0.1}, seed=0)

    @pytest.mark.parametrize("workload", sorted(WORKLOAD_LAYERS))
    def test_each_workload_produces_json_record(self, workload):
        import json

        params = {"workload": workload, "rate": 0.01,
                  "n_samples": 200, "n_blocks": 2, "size": 32}
        record = resilience_record(params, seed=1)
        assert record["layer"] == WORKLOAD_LAYERS[workload]
        assert record["rate"] == 0.01
        assert json.loads(json.dumps(record)) == record

    def test_zero_rate_cell_has_no_errors(self):
        record = resilience_record({"workload": "cell", "rate": 0.0}, seed=0)
        assert record["n_flips"] == 0 and record["error_rate"] == 0.0

    def test_record_reproducible(self):
        params = {"workload": "gear", "rate": 0.02, "n_samples": 500}
        assert resilience_record(params, 7) == resilience_record(params, 7)


class TestGuardedSweepAcceptance:
    """The ISSUE acceptance scenario: a SAD transient sweep where the
    QosGuard detects violations and golden fallback restores exact
    output, bit-identical across worker counts."""

    RATES = [0.0, 0.001, 0.01]

    def _run(self, n_workers, cache_dir=None):
        return run_fault_sweep(
            "sad", self.RATES, seed=11, n_workers=n_workers,
            cache_dir=cache_dir, qos=True, n_pixels=16, n_samples=128,
        )

    def test_guard_restores_exact_output_with_full_accounting(self):
        result = self._run(n_workers=1)
        assert result.ok
        by_rate = {r["rate"]: r for r in result.results}
        quiet = by_rate[0.0]
        assert quiet["n_fault_affected"] == 0
        assert quiet["qos"]["final_stage"] == "faulty_approx"
        assert quiet["qos"]["exact_match"] is True
        for rate in self.RATES[1:]:
            record = by_rate[rate]
            assert record["n_fault_affected"] > 0, rate
            qos = record["qos"]
            assert qos["final_stage"] == "golden"
            assert qos["exact_match"] is True
            # The log accounts for every fault-affected block.
            assert (len(qos["fault_affected_indices"])
                    == record["n_fault_affected"])

    def test_bit_identical_across_worker_counts(self, tmp_path):
        serial = self._run(n_workers=1, cache_dir=str(tmp_path / "c1"))
        parallel = self._run(n_workers=4, cache_dir=str(tmp_path / "c4"))
        # Drop wall-clock fields before comparing.
        def strip(records):
            out = []
            for record in records:
                record = dict(record)
                qos = dict(record["qos"])
                qos.pop("wall_s")
                record["qos"] = qos
                out.append(record)
            return out

        assert strip(serial.results) == strip(parallel.results)

    def test_resume_recomputes_nothing(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = self._run(n_workers=2, cache_dir=cache)
        warm = self._run(n_workers=2, cache_dir=cache)
        assert warm.stats.n_executed == 0
        assert warm.stats.n_cache_hits == len(self.RATES)
        assert cold.results == warm.results
