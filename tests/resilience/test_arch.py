"""Tests for architecture-layer fault injection (accelerator wrappers)."""

import numpy as np
import pytest

from repro.accelerators.dct import ApproximateDCT8x8
from repro.accelerators.filters import (
    LowPassFilterAccelerator,
    gaussian3x3_exact,
)
from repro.accelerators.sad import SADAccelerator
from repro.resilience import (
    FaultPlan,
    FaultyDCT8x8,
    FaultyLowPassFilter,
    FaultySADAccelerator,
)


def _zero_plan():
    return FaultPlan(0, 0.0, "architecture")


def _plan(seed=1, rate=0.01, sites=None):
    return FaultPlan(seed, rate, "architecture", sites=sites)


class TestLayerGuard:
    def test_wrong_layer_rejected(self):
        with pytest.raises(ValueError, match="architecture"):
            FaultySADAccelerator(SADAccelerator(4), FaultPlan(0, 0.1, "logic"))


class TestFaultySAD:
    def _stimulus(self, n_pixels=16, n=64, seed=0):
        rng = np.random.default_rng(seed)
        return (rng.integers(0, 256, (n, n_pixels)),
                rng.integers(0, 256, (n, n_pixels)))

    def test_zero_rate_identity(self):
        base = SADAccelerator(16)
        a, b = self._stimulus()
        np.testing.assert_array_equal(
            FaultySADAccelerator(base, _zero_plan()).sad(a, b),
            base.sad(a, b),
        )

    def test_zero_rate_identity_approximate_variant(self):
        base = SADAccelerator(16, fa="ApxFA2", approx_lsbs=4)
        a, b = self._stimulus()
        np.testing.assert_array_equal(
            FaultySADAccelerator(base, _zero_plan()).sad(a, b),
            base.sad(a, b),
        )

    def test_odd_pixel_count_supported(self):
        base = SADAccelerator(9)
        a, b = self._stimulus(n_pixels=9)
        np.testing.assert_array_equal(
            FaultySADAccelerator(base, _zero_plan()).sad(a, b),
            base.sad(a, b),
        )

    def test_faults_perturb_outputs(self):
        base = SADAccelerator(16)
        a, b = self._stimulus(n=256)
        faulty = FaultySADAccelerator(base, _plan(rate=0.005))
        assert (faulty.sad(a, b) != base.sad(a, b)).any()

    def test_deterministic(self):
        base = SADAccelerator(16)
        a, b = self._stimulus(n=128)
        plan = _plan(seed=4, rate=0.01)
        np.testing.assert_array_equal(
            FaultySADAccelerator(base, plan).sad(a, b),
            FaultySADAccelerator(base, plan).sad(a, b),
        )

    def test_shape_validated(self):
        faulty = FaultySADAccelerator(SADAccelerator(16), _zero_plan())
        with pytest.raises(ValueError, match="pixels"):
            faulty.sad(np.zeros((4, 8)), np.zeros((4, 8)))


class TestFaultyFilter:
    def _image(self, size=32, seed=0):
        return np.random.default_rng(seed).integers(0, 256, (size, size))

    def test_zero_rate_identity_exact_cells(self):
        base = LowPassFilterAccelerator()
        image = self._image()
        np.testing.assert_array_equal(
            FaultyLowPassFilter(base, _zero_plan()).apply(image),
            gaussian3x3_exact(image),
        )

    def test_zero_rate_identity_approx_cells(self):
        base = LowPassFilterAccelerator(fa="ApxFA1", approx_lsbs=4)
        image = self._image()
        np.testing.assert_array_equal(
            FaultyLowPassFilter(base, _zero_plan()).apply(image),
            base.apply(image),
        )

    def test_faults_stay_in_pixel_range(self):
        base = LowPassFilterAccelerator()
        out = FaultyLowPassFilter(base, _plan(rate=0.01)).apply(self._image())
        assert out.min() >= 0 and out.max() <= 255

    def test_linebuffer_site_only(self):
        base = LowPassFilterAccelerator()
        image = self._image()
        faulty = FaultyLowPassFilter(
            base, _plan(rate=0.02, sites=("linebuffer",))
        )
        assert (faulty.apply(image) != gaussian3x3_exact(image)).any()

    def test_non_2d_rejected(self):
        faulty = FaultyLowPassFilter(LowPassFilterAccelerator(), _zero_plan())
        with pytest.raises(ValueError, match="2-D"):
            faulty.apply(np.zeros(8))


class TestFaultyDCT:
    def _block(self, seed=0):
        return np.random.default_rng(seed).integers(0, 256, (8, 8))

    def test_zero_rate_identity(self):
        dct = ApproximateDCT8x8()
        block = self._block()
        np.testing.assert_array_equal(
            FaultyDCT8x8(dct, _zero_plan()).forward(block),
            dct.forward(block),
        )

    def test_faults_perturb_coefficients(self):
        dct = ApproximateDCT8x8()
        plan = _plan(seed=2, rate=0.02)
        faulty = FaultyDCT8x8(dct, plan)
        perturbed = any(
            (faulty.forward(self._block(s)) != dct.forward(self._block(s))).any()
            for s in range(8)
        )
        assert perturbed

    def test_deterministic(self):
        dct = ApproximateDCT8x8()
        plan = _plan(seed=3, rate=0.05)
        block = self._block(1)
        np.testing.assert_array_equal(
            FaultyDCT8x8(dct, plan).forward(block),
            FaultyDCT8x8(dct, plan).forward(block),
        )

    def test_bad_shape_rejected(self):
        faulty = FaultyDCT8x8(ApproximateDCT8x8(), _zero_plan())
        with pytest.raises(ValueError, match="8x8"):
            faulty.forward(np.zeros((4, 4)))
