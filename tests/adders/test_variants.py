"""Tests for the published-adder-to-GeAr mappings."""

import pytest

from repro.adders.gear import GeArConfig
from repro.adders.variants import aca_i, aca_ii, etaii, gda, known_adder_configs


class TestMappings:
    def test_aca_i(self):
        cfg = aca_i(16, 4)
        assert (cfg.n, cfg.r, cfg.p) == (16, 1, 3)
        assert cfg.l == 4

    def test_aca_ii(self):
        cfg = aca_ii(16, 8)
        assert (cfg.r, cfg.p) == (4, 4)

    def test_aca_ii_odd_width_rejected(self):
        with pytest.raises(ValueError, match="even"):
            aca_ii(16, 5)

    def test_etaii(self):
        cfg = etaii(16, 4)
        assert (cfg.r, cfg.p) == (4, 4)

    def test_gda(self):
        cfg = gda(16, 2, 2)
        assert (cfg.r, cfg.p) == (2, 2)

    def test_invalid_mapping_surfaces_gear_error(self):
        with pytest.raises(ValueError, match="divide"):
            gda(16, 4, 2)


class TestKnownConfigs:
    def test_returns_all_four_designs(self):
        configs = known_adder_configs(16)
        names = " ".join(configs)
        for design in ("ACA-I", "ACA-II", "ETAII", "GDA"):
            assert design in names

    def test_all_configs_valid(self):
        for cfg in known_adder_configs(16).values():
            assert isinstance(cfg, GeArConfig)

    def test_width_32(self):
        configs = known_adder_configs(32)
        assert all(c.n == 32 for c in configs.values())

    def test_too_small_width_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            known_adder_configs(4)

    def test_etaii_equals_aca_ii_structure(self):
        """The GeAr paper maps both to R = P sub-adders."""
        assert etaii(16, 4) == gda(16, 4, 4)
