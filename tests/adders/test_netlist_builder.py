"""Tests for structural multi-bit adder netlists."""

import numpy as np
import pytest

from repro.adders.netlist_builder import (
    build_ripple_adder_netlist,
    build_subtractor_netlist,
    evaluate_adder_netlist,
)
from repro.adders.ripple import ApproximateRippleAdder
from repro.logic.simulate import estimate_power


class TestRippleAdderNetlist:
    @pytest.mark.parametrize(
        "fa, lsbs", [("AccuFA", 0), ("ApxFA1", 3), ("ApxFA2", 4),
                     ("ApxFA3", 8), ("ApxFA4", 2), ("ApxFA5", 5)],
    )
    def test_netlist_matches_behavioural_model(self, fa, lsbs, rng):
        adder = ApproximateRippleAdder(8, approx_fa=fa, num_approx_lsbs=lsbs)
        netlist = build_ripple_adder_netlist(adder)
        a = rng.integers(0, 256, 400)
        b = rng.integers(0, 256, 400)
        assert np.array_equal(
            evaluate_adder_netlist(netlist, a, b), adder.add(a, b)
        )

    def test_carry_in_honoured(self):
        adder = ApproximateRippleAdder(8)
        netlist = build_ripple_adder_netlist(adder)
        a, b = np.array([200]), np.array([55])
        assert int(evaluate_adder_netlist(netlist, a, b, cin=1)[0]) == 256

    def test_interface_nets(self):
        netlist = build_ripple_adder_netlist(ApproximateRippleAdder(4))
        assert set(netlist.inputs) == {
            "a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3", "cin"
        }
        assert set(netlist.outputs) == {"s0", "s1", "s2", "s3", "cout"}

    def test_area_matches_behavioural_rollup(self):
        adder = ApproximateRippleAdder(8, approx_fa="ApxFA3", num_approx_lsbs=4)
        netlist = build_ripple_adder_netlist(adder)
        assert netlist.area_ge == pytest.approx(adder.area_ge)

    def test_power_decreases_with_approximation(self):
        exact = build_ripple_adder_netlist(ApproximateRippleAdder(8))
        approx = build_ripple_adder_netlist(
            ApproximateRippleAdder(8, approx_fa="ApxFA5", num_approx_lsbs=6)
        )
        p_exact = estimate_power(exact, n_random_vectors=512).total_nw
        p_approx = estimate_power(approx, n_random_vectors=512).total_nw
        assert p_approx < p_exact


class TestSubtractorNetlist:
    @pytest.mark.parametrize("fa, lsbs", [("AccuFA", 0), ("ApxFA2", 4)])
    def test_matches_behavioural_sub(self, fa, lsbs, rng):
        adder = ApproximateRippleAdder(8, approx_fa=fa, num_approx_lsbs=lsbs)
        netlist = build_subtractor_netlist(adder)
        a = rng.integers(0, 256, 300)
        b = rng.integers(0, 256, 300)
        raw = evaluate_adder_netlist(netlist, a, b, cin=None)
        assert np.array_equal(raw - 256, adder.sub(a, b))

    def test_no_cin_port(self):
        netlist = build_subtractor_netlist(ApproximateRippleAdder(4))
        assert "cin" not in netlist.inputs

    def test_inverter_rank_counted(self):
        adder = ApproximateRippleAdder(4)
        sub = build_subtractor_netlist(adder)
        add = build_ripple_adder_netlist(adder)
        assert sub.cell_counts().get("INV", 0) >= add.cell_counts().get("INV", 0) + 4
