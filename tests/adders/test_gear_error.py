"""Tests for the GeAr error-probability models (paper vs. exact vs. sim)."""

import numpy as np
import pytest

from repro.adders.gear import GeArConfig
from repro.adders.gear_error import (
    accuracy_percent,
    error_events,
    exact_error_probability,
    exhaustive_error_rate,
    monte_carlo_error_rate,
    paper_error_probability,
)


class TestErrorEvents:
    def test_event_count_is_r_times_k_minus_1(self):
        cfg = GeArConfig(12, 4, 4)
        assert len(error_events(cfg)) == cfg.r * (cfg.k - 1)

    def test_event_probability_formula(self):
        cfg = GeArConfig(12, 4, 4)
        events = error_events(cfg)
        # Event with generate right below the window: 1/4 * (1/2)**P.
        nearest = min(events, key=lambda e: len(e.propagate_bits))
        assert nearest.probability == pytest.approx(0.25 * 0.5**cfg.p)

    def test_events_reference_valid_bits(self):
        cfg = GeArConfig(16, 2, 2)
        for event in error_events(cfg):
            assert 0 <= event.generate_bit < cfg.n
            assert all(0 <= b < cfg.n for b in event.propagate_bits)


class TestModelAgreement:
    @pytest.mark.parametrize(
        "cfg",
        [(6, 1, 1), (6, 2, 2), (8, 2, 2), (8, 1, 3), (12, 3, 3), (10, 2, 4),
         (8, 2, 4), (9, 3, 3)],
    )
    def test_exact_dp_matches_exhaustive(self, cfg):
        config = GeArConfig(*cfg)
        dp = exact_error_probability(config)
        exhaustive = exhaustive_error_rate(config)
        assert dp == pytest.approx(exhaustive, abs=1e-12)

    @pytest.mark.parametrize("cfg", [(12, 4, 4), (16, 4, 4), (16, 2, 2)])
    def test_exact_dp_matches_monte_carlo(self, cfg):
        config = GeArConfig(*cfg)
        dp = exact_error_probability(config)
        mc = monte_carlo_error_rate(config, n_samples=400_000, seed=0)
        assert mc == pytest.approx(dp, abs=0.004)

    @pytest.mark.parametrize("cfg", [(8, 2, 2), (12, 4, 4), (8, 1, 3)])
    def test_paper_model_close_to_exact(self, cfg):
        """The inclusion-exclusion model tracks ground truth closely.

        It may slightly underestimate (far carries are not modelled) but
        must stay within one percentage point on these configurations.
        """
        config = GeArConfig(*cfg)
        paper = paper_error_probability(config)
        exact = exact_error_probability(config)
        assert paper <= exact + 1e-12
        assert paper == pytest.approx(exact, abs=0.01)

    def test_single_subadder_has_zero_error(self):
        config = GeArConfig(8, 4, 4)
        assert exact_error_probability(config) == 0.0
        assert paper_error_probability(config) == 0.0


class TestProbabilityBehaviour:
    def test_probability_decreases_with_p(self):
        # Same R, increasing P: more prediction bits -> fewer errors.
        p_errs = [
            exact_error_probability(GeArConfig(11, 1, p))
            for p in range(1, 10)
        ]
        assert all(a > b for a, b in zip(p_errs, p_errs[1:]))

    def test_probability_in_unit_interval(self):
        for config in GeArConfig.all_valid(11):
            p = exact_error_probability(config)
            assert 0.0 <= p <= 1.0

    def test_paper_model_in_unit_interval(self):
        for config in GeArConfig.all_valid(11):
            p = paper_error_probability(config)
            assert 0.0 <= p <= 1.0

    def test_intractable_event_count_guarded(self):
        config = GeArConfig(32, 1, 1)  # 31 events
        with pytest.raises(ValueError, match="max_order"):
            paper_error_probability(config)

    def test_truncated_inclusion_exclusion(self):
        config = GeArConfig(32, 1, 1)
        first_order = paper_error_probability(config, max_order=1)
        second_order = paper_error_probability(config, max_order=2)
        exact = exact_error_probability(config)
        # First order over-counts (union bound); second subtracts.
        assert first_order >= exact - 1e-12
        assert second_order <= first_order


class TestAccuracyPercent:
    def test_models_agree_on_accuracy(self):
        config = GeArConfig(12, 4, 4)
        exact = accuracy_percent(config, model="exact")
        paper = accuracy_percent(config, model="paper")
        assert exact == pytest.approx(paper, abs=1.0)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="model"):
            accuracy_percent(GeArConfig(12, 4, 4), model="vibes")

    def test_max_accuracy_config_for_n11(self):
        """Paper: GeAr(R=1, P=9) is the most accurate N=11 configuration."""
        best = max(
            GeArConfig.all_valid(11),
            key=lambda c: accuracy_percent(c, model="exact"),
        )
        assert (best.r, best.p) == (1, 9)

    def test_exhaustive_guard(self):
        with pytest.raises(ValueError, match="too many"):
            exhaustive_error_rate(GeArConfig(16, 2, 2))
