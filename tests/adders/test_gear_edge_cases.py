"""Edge-case coverage for the GeAr model (P=0 blocks, extremes)."""

import numpy as np
import pytest

from repro.adders.gear import GeArAdder, GeArConfig
from repro.adders.gear_error import (
    exact_error_probability,
    exhaustive_error_rate,
    paper_error_probability,
)


class TestZeroPrediction:
    """P = 0 degenerates to plain block-partitioned (ETA-like) adders."""

    def test_config_valid(self):
        cfg = GeArConfig(8, 4, 0)
        assert cfg.k == 2
        assert cfg.l == 4

    def test_blocks_are_independent(self):
        adder = GeArAdder(GeArConfig(8, 4, 0))
        # Any carry from the low block is dropped.
        assert int(adder.add(0x0F, 0x01)) == 0x00
        assert int(adder.add(0xF0, 0x10)) == 0x100

    def test_error_rate_is_carry_probability(self):
        # P(error) = P(carry out of low 4-bit block) for uniform inputs.
        cfg = GeArConfig(8, 4, 0)
        expected = exhaustive_error_rate(cfg)
        assert exact_error_probability(cfg) == pytest.approx(expected)
        # Carry-out of a 4-bit add of uniform operands:
        # P(a+b >= 16) over 16x16 pairs = 120/256.
        assert expected == pytest.approx(120 / 256)

    def test_paper_model_handles_p0(self):
        cfg = GeArConfig(8, 4, 0)
        assert paper_error_probability(cfg) == pytest.approx(
            exact_error_probability(cfg)
        )

    def test_correction_exact_for_p0(self, rng):
        adder = GeArAdder(GeArConfig(12, 4, 0))
        a = rng.integers(0, 4096, 2000)
        b = rng.integers(0, 4096, 2000)
        result, _ = adder.add_with_correction(a, b)
        assert np.array_equal(result, a + b)

    def test_detection_fires_on_any_block_carry(self):
        adder = GeArAdder(GeArConfig(8, 4, 0))
        flags = adder.detect_errors(0x0F, 0x01)
        assert bool(flags[..., 0])


class TestExtremes:
    def test_all_ones_operands(self):
        for cfg in ((8, 2, 2), (12, 4, 4), (16, 1, 3)):
            adder = GeArAdder(GeArConfig(*cfg))
            n = cfg[0]
            hi = (1 << n) - 1
            # All-propagate operands: a = 0 pattern keeps carries dead.
            assert int(adder.add(hi, 0)) == hi
            result, _ = adder.add_with_correction(hi, hi)
            assert int(result) == 2 * hi

    def test_zero_plus_zero(self):
        adder = GeArAdder(GeArConfig(8, 2, 2))
        assert int(adder.add(0, 0)) == 0

    def test_maximal_ripple_chain(self):
        """The worst carry chain (0xFF..F + 1) loses exactly the carries
        at every sub-adder boundary."""
        cfg = GeArConfig(12, 4, 4)
        adder = GeArAdder(cfg)
        raw = int(adder.add(0xFFF, 0x001))
        assert raw != 0x1000
        corrected, iters = adder.add_with_correction(0xFFF, 0x001)
        assert int(corrected) == 0x1000
        assert int(iters) >= 1

    def test_broadcasting_scalar_array(self, rng):
        adder = GeArAdder(GeArConfig(8, 2, 2))
        b = rng.integers(0, 256, 100)
        out = adder.add(7, b)
        assert out.shape == (100,)

    def test_2d_operands(self, rng):
        adder = GeArAdder(GeArConfig(8, 2, 2))
        a = rng.integers(0, 256, (5, 7))
        b = rng.integers(0, 256, (5, 7))
        result, _ = adder.add_with_correction(a, b)
        assert result.shape == (5, 7)
        assert np.array_equal(result, a + b)


class TestErrorModelEdges:
    def test_probability_of_trivial_config(self):
        # k = 2, P = N - R - ... smallest error surface.
        cfg = GeArConfig(4, 1, 2)
        assert exact_error_probability(cfg) == pytest.approx(
            exhaustive_error_rate(cfg)
        )

    def test_wide_p0_etaii_like(self):
        cfg = GeArConfig(16, 4, 0)
        dp = exact_error_probability(cfg)
        mc = exhaustive_error_rate(GeArConfig(12, 4, 0))
        assert 0 < dp < 1
        # More blocks -> strictly more error than the 12-bit version.
        assert dp > exact_error_probability(GeArConfig(12, 4, 0)) - 1e-12
