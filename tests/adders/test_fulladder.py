"""Tests for the Table III 1-bit full adders."""

import numpy as np
import pytest

from repro.adders.fulladder import (
    FULL_ADDER_NAMES,
    FULL_ADDERS,
    accurate_full_adder,
    full_adder,
)
from repro.characterization.paperdata import TABLE_III_ERROR_CASES
from repro.logic.simulate import exhaustive_stimuli


class TestLookup:
    def test_all_six_adders_present(self):
        assert FULL_ADDER_NAMES == (
            "AccuFA", "ApxFA1", "ApxFA2", "ApxFA3", "ApxFA4", "ApxFA5",
        )

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="ApxFA1"):
            full_adder("ApxFA9")

    def test_accurate_helper(self):
        assert accurate_full_adder().name == "AccuFA"


class TestAccurateSemantics:
    def test_accufa_is_exact(self):
        fa = FULL_ADDERS["AccuFA"]
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    s, co = fa.evaluate(a, b, c)
                    assert 2 * int(co) + int(s) == a + b + c

    def test_vectorized_evaluation(self):
        fa = FULL_ADDERS["AccuFA"]
        a = np.array([0, 1, 1])
        b = np.array([1, 1, 0])
        c = np.array([1, 1, 0])
        s, co = fa.evaluate(a, b, c)
        assert list(s) == [0, 1, 1]
        assert list(co) == [1, 1, 0]


class TestErrorCases:
    @pytest.mark.parametrize("name", FULL_ADDER_NAMES)
    def test_error_case_counts_match_table_iii(self, name):
        assert FULL_ADDERS[name].n_error_cases == TABLE_III_ERROR_CASES[name]

    def test_apxfa5_is_pass_through(self):
        fa = FULL_ADDERS["ApxFA5"]
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    s, co = fa.evaluate(a, b, c)
                    assert int(s) == b and int(co) == a

    def test_apxfa3_sum_is_not_cout(self):
        fa = FULL_ADDERS["ApxFA3"]
        assert all(s == 1 - co for s, co in fa.table)

    def test_apxfa2_cout_is_exact_majority(self):
        fa = FULL_ADDERS["ApxFA2"]
        acc = FULL_ADDERS["AccuFA"]
        assert [row[1] for row in fa.table] == [row[1] for row in acc.table]

    def test_error_magnitudes_bounded_by_pm2(self):
        for name in FULL_ADDER_NAMES:
            mags = FULL_ADDERS[name].error_magnitudes()
            assert all(abs(m) <= 2 for m in mags)

    def test_accufa_has_zero_error_magnitudes(self):
        assert FULL_ADDERS["AccuFA"].error_magnitudes() == [0] * 8


class TestNetlists:
    @pytest.mark.parametrize("name", FULL_ADDER_NAMES)
    def test_structural_netlist_matches_table(self, name):
        fa = FULL_ADDERS[name]
        nl = fa.netlist()
        stim = exhaustive_stimuli(["a", "b", "cin"])
        out = nl.evaluate(stim)
        index = (
            (stim["a"].astype(int) << 2)
            | (stim["b"].astype(int) << 1)
            | stim["cin"].astype(int)
        )
        assert np.array_equal(out["sum"], fa.sum_lut[index])
        assert np.array_equal(out["cout"], fa.cout_lut[index])

    @pytest.mark.parametrize("name", FULL_ADDER_NAMES)
    def test_sop_netlist_matches_table(self, name):
        fa = FULL_ADDERS[name]
        nl = fa.sop_netlist()
        stim = exhaustive_stimuli(["a", "b", "cin"])
        out = nl.evaluate(stim)
        index = (
            (stim["a"].astype(int) << 2)
            | (stim["b"].astype(int) << 1)
            | stim["cin"].astype(int)
        )
        assert np.array_equal(out["sum"], fa.sum_lut[index])
        assert np.array_equal(out["cout"], fa.cout_lut[index])

    def test_area_ordering_matches_table_iii(self):
        # Paper: AccuFA > ApxFA1 > ApxFA2 > ApxFA4 > ApxFA3 > ApxFA5 = 0.
        areas = {name: FULL_ADDERS[name].area_ge for name in FULL_ADDER_NAMES}
        assert areas["AccuFA"] > areas["ApxFA1"] > areas["ApxFA2"]
        assert areas["ApxFA2"] > areas["ApxFA4"] > areas["ApxFA3"]
        assert areas["ApxFA5"] == 0.0

    def test_delay_decreases_with_approximation(self):
        assert (
            FULL_ADDERS["AccuFA"].delay_ps
            > FULL_ADDERS["ApxFA3"].delay_ps
            > FULL_ADDERS["ApxFA5"].delay_ps
        )
