"""Tests for the GeAr adder behavioural model and error correction."""

import numpy as np
import pytest

from repro.adders.gear import GeArAdder, GeArConfig


class TestConfigValidity:
    def test_paper_example(self):
        cfg = GeArConfig(n=12, r=4, p=4)
        assert cfg.l == 8
        assert cfg.k == 2
        assert cfg.sub_adder_windows() == [(0, 8), (4, 8)]

    def test_k_formula(self):
        cfg = GeArConfig(n=16, r=2, p=2)
        assert cfg.k == (16 - 4) // 2 + 1

    def test_indivisible_configuration_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            GeArConfig(n=16, r=4, p=2)  # (16-6) % 4 != 0

    def test_window_wider_than_operand_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            GeArConfig(n=4, r=3, p=3)

    @pytest.mark.parametrize("bad", [dict(n=0, r=1, p=1), dict(n=8, r=0, p=1),
                                     dict(n=8, r=1, p=-1)])
    def test_bad_parameters_rejected(self, bad):
        with pytest.raises(ValueError):
            GeArConfig(**bad)

    def test_degenerate_single_subadder_is_exact(self):
        cfg = GeArConfig(n=8, r=4, p=4)
        assert cfg.k == 1
        assert cfg.is_exact

    def test_all_valid_enumerates_only_valid(self):
        for cfg in GeArConfig.all_valid(11):
            assert (cfg.n - cfg.l) % cfg.r == 0
            assert cfg.k >= 2
            assert cfg.p >= 1

    def test_all_valid_count_n11(self):
        # 17 genuinely approximate (R, P) pairs exist for N = 11.
        assert len(GeArConfig.all_valid(11)) == 17

    def test_name(self):
        assert GeArConfig(12, 4, 4).name == "GeAr(N=12,R=4,P=4)"


class TestApproximateAddition:
    def test_no_carry_cases_are_exact(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        # Operands without inter-window carries add exactly.
        assert int(adder.add(0x111, 0x222)) == 0x333

    def test_missed_carry_example(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        # 0x0FF + 0x001 generates a carry at bit 8 that the second
        # sub-adder's prediction window (bits 4..7, all propagating)
        # should carry into bit 8 -- the approximate adder misses it.
        assert int(adder.add(0x0FF, 0x001)) == 0x0FF + 0x001 - 0x100

    def test_single_subadder_config_is_exact(self, rng):
        adder = GeArAdder(GeArConfig(8, 4, 4))
        a = rng.integers(0, 256, 500)
        b = rng.integers(0, 256, 500)
        assert np.array_equal(adder.add(a, b), a + b)

    @pytest.mark.parametrize("cfg", [(8, 2, 2), (8, 1, 3), (12, 4, 4),
                                     (16, 4, 4), (16, 2, 2)])
    def test_result_never_exceeds_exact_bound(self, cfg, rng):
        config = GeArConfig(*cfg)
        adder = GeArAdder(config)
        hi = 1 << config.n
        a = rng.integers(0, hi, 2000)
        b = rng.integers(0, hi, 2000)
        result = adder.add(a, b)
        assert np.all(result >= 0)
        assert np.all(result < (1 << (config.n + 1)))

    @pytest.mark.parametrize("cfg", [(8, 2, 2), (8, 1, 3), (12, 4, 4)])
    def test_errors_only_lose_carries(self, cfg, rng):
        """GeAr can only *miss* carries, so approx <= exact always."""
        config = GeArConfig(*cfg)
        adder = GeArAdder(config)
        hi = 1 << config.n
        a = rng.integers(0, hi, 5000)
        b = rng.integers(0, hi, 5000)
        assert np.all(adder.add(a, b) <= a + b)

    def test_final_carry_bit_present(self):
        adder = GeArAdder(GeArConfig(8, 2, 2))
        assert int(adder.add(0xFF, 0xFF)) >> 8 == 1


class TestErrorDetection:
    def test_flags_shape(self, rng):
        cfg = GeArConfig(12, 4, 4)
        adder = GeArAdder(cfg)
        a = rng.integers(0, 4096, 100)
        b = rng.integers(0, 4096, 100)
        flags = adder.detect_errors(a, b)
        assert flags.shape == (100, cfg.k - 1)

    def test_flag_raised_on_missed_carry(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        flags = adder.detect_errors(0x0FF, 0x001)
        assert bool(flags[..., 0])

    def test_no_flag_without_carry(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        flags = adder.detect_errors(0x111, 0x222)
        assert not np.any(flags)


class TestErrorCorrection:
    @pytest.mark.parametrize(
        "cfg", [(8, 1, 1), (8, 2, 2), (8, 1, 3), (12, 4, 4), (16, 2, 2),
                (16, 1, 3), (20, 4, 4)]
    )
    def test_full_correction_is_exact(self, cfg, rng):
        config = GeArConfig(*cfg)
        adder = GeArAdder(config)
        hi = 1 << config.n
        a = rng.integers(0, hi, 3000)
        b = rng.integers(0, hi, 3000)
        result, _ = adder.add_with_correction(a, b)
        assert np.array_equal(result, a + b)

    def test_correction_exhaustive_small(self):
        config = GeArConfig(6, 1, 1)
        adder = GeArAdder(config)
        values = np.arange(64)
        a = np.repeat(values, 64)
        b = np.tile(values, 64)
        result, _ = adder.add_with_correction(a, b)
        assert np.array_equal(result, a + b)

    def test_zero_iterations_when_no_error(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        result, iters = adder.add_with_correction(0x111, 0x222)
        assert int(iters) == 0
        assert int(result) == 0x333

    def test_limited_iterations_partial_correction(self, rng):
        """With max_iterations=1 the result is at least as good as raw."""
        config = GeArConfig(16, 2, 2)
        adder = GeArAdder(config)
        a = rng.integers(0, 1 << 16, 3000)
        b = rng.integers(0, 1 << 16, 3000)
        raw_errors = np.abs(adder.add(a, b) - (a + b)).sum()
        one_round, _ = adder.add_with_correction(a, b, max_iterations=1)
        one_round_errors = np.abs(one_round - (a + b)).sum()
        assert one_round_errors <= raw_errors

    def test_iterations_bounded_by_k(self, rng):
        config = GeArConfig(16, 1, 1)
        adder = GeArAdder(config)
        a = rng.integers(0, 1 << 16, 1000)
        b = rng.integers(0, 1 << 16, 1000)
        _, iters = adder.add_with_correction(a, b)
        assert int(iters.max()) <= config.k

    def test_all_propagate_cascade_needs_k_minus_1_rounds(self):
        """Regression: 0xFF + 0x01 on GeAr(8,1,1) cascades one missed
        carry through every sub-adder boundary.  Round-start detection
        (Fig. 3) resolves one boundary per round, so the fixpoint takes
        exactly k - 1 = 6 rounds.  An earlier revision applied
        injections sequentially within a round and reported 1."""
        config = GeArConfig(8, 1, 1)
        adder = GeArAdder(config)
        result, iters = adder.add_with_correction(0xFF, 0x01)
        assert int(result) == 0x100
        assert int(iters) == config.k - 1

    def test_capped_cascade_is_genuinely_partial(self):
        """With the cascade above, a one-round cap must NOT be exact --
        pre-fix it silently was, collapsing every intermediate accuracy
        mode of the configurable adder."""
        adder = GeArAdder(GeArConfig(8, 1, 1))
        result, iters = adder.add_with_correction(
            0xFF, 0x01, max_iterations=1
        )
        assert int(iters) == 1
        assert int(result) != 0x100

    def test_capped_correction_converges_without_overshoot(self, rng):
        """Each extra round fixes more elements and never overshoots.

        Note the *magnitude* of the residual error is deliberately not
        asserted monotone: a mid-cascade round can wrap a block's kept
        bits (e.g. 111 -> 000 with a carry-out) before the next round
        injects that carry downstream, transiently growing ``|err|``.
        The per-element *count* of inexact results does shrink, and the
        corrected sum never exceeds the exact one."""
        config = GeArConfig(12, 1, 2)
        adder = GeArAdder(config)
        a = rng.integers(0, 1 << 12, 2000)
        b = rng.integers(0, 1 << 12, 2000)
        exact = a + b
        previous = None
        for cap in range(config.k):
            result, _ = adder.add_with_correction(a, b, max_iterations=cap)
            assert np.all(result <= exact)
            inexact = int((result != exact).sum())
            if previous is not None:
                assert inexact <= previous
            previous = inexact
        full, _ = adder.add_with_correction(a, b)
        assert np.array_equal(full, exact)


class TestPhysicalModels:
    def test_lut_count_model(self):
        adder = GeArAdder(GeArConfig(11, 3, 5))
        assert adder.lut_count == 2 * 8

    def test_delay_below_full_ripple(self):
        gear = GeArAdder(GeArConfig(16, 4, 4))
        from repro.adders.ripple import ApproximateRippleAdder

        assert gear.delay_ps < ApproximateRippleAdder(16).delay_ps

    def test_area_exceeds_plain_ripple(self):
        """Overlapping sub-adders cost more area than one N-bit RCA."""
        gear = GeArAdder(GeArConfig(16, 4, 4))
        from repro.adders.ripple import ApproximateRippleAdder

        assert gear.area_ge > ApproximateRippleAdder(16).area_ge
