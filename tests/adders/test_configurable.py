"""Tests for the accuracy-configurable GeAr adder."""

import numpy as np
import pytest

from repro.adders.configurable import ConfigurableGeArAdder
from repro.adders.gear import GeArConfig


@pytest.fixture
def adder():
    return ConfigurableGeArAdder(GeArConfig(n=16, r=2, p=2))


class TestModes:
    def test_mode_count_is_k(self, adder):
        assert adder.n_modes == adder.config.k

    def test_default_mode_zero(self, adder):
        assert adder.mode == 0

    def test_invalid_mode_rejected(self, adder):
        with pytest.raises(ValueError, match="mode"):
            adder.set_mode(adder.n_modes)
        with pytest.raises(ValueError, match="mode"):
            adder.set_mode(-1)

    def test_mode_zero_is_raw_approximate(self, adder, rng):
        from repro.adders.gear import GeArAdder

        raw = GeArAdder(adder.config)
        a = rng.integers(0, 1 << 16, 500)
        b = rng.integers(0, 1 << 16, 500)
        adder.set_mode(0)
        assert np.array_equal(adder.add(a, b), raw.add(a, b))

    def test_highest_mode_is_exact(self, adder, rng):
        adder.set_mode(adder.n_modes - 1)
        a = rng.integers(0, 1 << 16, 2000)
        b = rng.integers(0, 1 << 16, 2000)
        assert np.array_equal(adder.add(a, b), a + b)

    def test_error_rate_monotone_in_mode(self, adder, rng):
        a = rng.integers(0, 1 << 16, 5000)
        b = rng.integers(0, 1 << 16, 5000)
        rates = []
        for mode in range(adder.n_modes):
            adder.set_mode(mode)
            rates.append(float(np.mean(adder.add(a, b) != a + b)))
        assert all(x >= y for x, y in zip(rates, rates[1:]))
        assert rates[0] > 0.0
        assert rates[-1] == 0.0

    def test_cycles_reflect_corrections(self, adder):
        adder.set_mode(adder.n_modes - 1)
        _, cycles = adder.add_with_stats(0x00FF, 0x0001)
        assert int(cycles) >= 2  # at least one correction fired
        _, cycles = adder.add_with_stats(0x0101, 0x0202)
        assert int(cycles) == 1  # nothing to correct

    def test_name_mentions_mode(self, adder):
        adder.set_mode(1)
        assert "mode1" in adder.name


class TestCharacterization:
    def test_per_mode_records(self, adder):
        records = adder.characterize_modes(n_samples=20_000)
        assert len(records) == adder.n_modes
        error_rates = [r.error_rate for r in records]
        assert error_rates == sorted(error_rates, reverse=True)
        assert records[-1].error_rate == 0.0

    def test_latency_energy_grow_with_mode(self, adder):
        records = adder.characterize_modes(n_samples=20_000)
        cycles = [r.mean_cycles for r in records]
        energy = [r.relative_energy for r in records]
        assert cycles[0] == 1.0
        assert all(x <= y + 1e-12 for x, y in zip(cycles, cycles[1:]))
        assert energy[0] == 1.0
        assert energy[-1] > 1.0

    def test_mode_restored_after_characterization(self, adder):
        adder.set_mode(1)
        adder.characterize_modes(n_samples=1000)
        assert adder.mode == 1
