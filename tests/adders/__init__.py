"""Test package."""
