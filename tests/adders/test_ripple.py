"""Tests for the multi-bit approximate ripple-carry adder."""

import numpy as np
import pytest

from repro.adders.fulladder import FULL_ADDERS
from repro.adders.ripple import ApproximateRippleAdder, ExactAdder


class TestExactAdder:
    def test_add(self, operand_pairs_8bit):
        a, b = operand_pairs_8bit
        adder = ExactAdder(8)
        assert np.array_equal(adder.add(a, b), a + b)

    def test_sub(self, operand_pairs_8bit):
        a, b = operand_pairs_8bit
        adder = ExactAdder(8)
        assert np.array_equal(adder.sub(a, b), a - b)

    def test_metadata(self):
        adder = ExactAdder(8)
        assert adder.num_approx_lsbs == 0
        assert adder.area_ge > 0


class TestConstruction:
    def test_invalid_width(self):
        with pytest.raises(ValueError, match="width"):
            ApproximateRippleAdder(0)

    def test_invalid_lsb_count(self):
        with pytest.raises(ValueError, match="num_approx_lsbs"):
            ApproximateRippleAdder(8, num_approx_lsbs=9)

    def test_cell_at_boundary(self):
        adder = ApproximateRippleAdder(8, approx_fa="ApxFA2", num_approx_lsbs=3)
        assert adder.cell_at(0).name == "ApxFA2"
        assert adder.cell_at(2).name == "ApxFA2"
        assert adder.cell_at(3).name == "AccuFA"

    def test_cell_at_out_of_range(self):
        adder = ApproximateRippleAdder(8)
        with pytest.raises(ValueError, match="position"):
            adder.cell_at(8)

    def test_accepts_spec_objects(self):
        adder = ApproximateRippleAdder(
            4, approx_fa=FULL_ADDERS["ApxFA5"], num_approx_lsbs=2
        )
        assert adder.approx_fa.name == "ApxFA5"


class TestExactness:
    @pytest.mark.parametrize("width", [1, 4, 8, 16])
    def test_no_approx_lsbs_is_exact(self, width, rng):
        adder = ApproximateRippleAdder(width)
        hi = 1 << width
        a = rng.integers(0, hi, 500)
        b = rng.integers(0, hi, 500)
        assert np.array_equal(adder.add(a, b), a + b)

    def test_carry_in(self):
        adder = ApproximateRippleAdder(8)
        assert int(adder.add(100, 100, cin=1)) == 201

    def test_result_carries_width_plus_one_bits(self):
        adder = ApproximateRippleAdder(8)
        assert int(adder.add(255, 255)) == 510

    def test_add_modular_truncates(self):
        adder = ApproximateRippleAdder(8)
        assert int(adder.add_modular(255, 255)) == 510 % 256

    def test_sub_full_signed_range(self, rng):
        adder = ApproximateRippleAdder(8)
        a = rng.integers(0, 256, 2000)
        b = rng.integers(0, 256, 2000)
        assert np.array_equal(adder.sub(a, b), a - b)

    def test_negative_operand_rejected(self):
        adder = ApproximateRippleAdder(8)
        with pytest.raises(ValueError, match="non-negative"):
            adder.add(np.array([-1]), np.array([1]))


class TestApproximation:
    @pytest.mark.parametrize("fa", ["ApxFA1", "ApxFA2", "ApxFA3", "ApxFA4", "ApxFA5"])
    def test_errors_confined_near_approx_lsbs(self, fa, rng):
        """Approximating k LSBs perturbs the result by less than 2**(k+2).

        The k approximate positions plus one erroneous carry into
        position k bound the deviation.
        """
        k = 4
        adder = ApproximateRippleAdder(8, approx_fa=fa, num_approx_lsbs=k)
        a = rng.integers(0, 256, 2000)
        b = rng.integers(0, 256, 2000)
        errors = np.abs(adder.add(a, b) - (a + b))
        assert errors.max() < (1 << (k + 2))

    def test_zero_approx_lsbs_ignores_cell_choice(self, rng):
        adder = ApproximateRippleAdder(8, approx_fa="ApxFA5", num_approx_lsbs=0)
        a = rng.integers(0, 256, 200)
        b = rng.integers(0, 256, 200)
        assert np.array_equal(adder.add(a, b), a + b)

    def test_more_approx_lsbs_more_error(self, rng):
        a = rng.integers(0, 256, 4000)
        b = rng.integers(0, 256, 4000)
        meds = []
        for k in (0, 2, 4, 6):
            adder = ApproximateRippleAdder(8, approx_fa="ApxFA5", num_approx_lsbs=k)
            meds.append(float(np.mean(np.abs(adder.add(a, b) - (a + b)))))
        assert meds[0] == 0.0
        assert meds[0] < meds[1] < meds[2] < meds[3]

    def test_scalar_operands(self):
        adder = ApproximateRippleAdder(8, approx_fa="ApxFA1", num_approx_lsbs=2)
        result = adder.add(3, 5)
        assert result.shape == ()


class TestPhysical:
    def test_area_decreases_with_approximation(self):
        exact = ApproximateRippleAdder(8)
        approx = ApproximateRippleAdder(8, approx_fa="ApxFA3", num_approx_lsbs=4)
        assert approx.area_ge < exact.area_ge

    def test_area_scales_with_width(self):
        assert (
            ApproximateRippleAdder(16).area_ge
            == pytest.approx(2 * ApproximateRippleAdder(8).area_ge)
        )

    def test_delay_decreases_with_approximation(self):
        exact = ApproximateRippleAdder(8)
        approx = ApproximateRippleAdder(8, approx_fa="ApxFA5", num_approx_lsbs=4)
        assert approx.delay_ps < exact.delay_ps

    def test_name_mentions_configuration(self):
        adder = ApproximateRippleAdder(8, approx_fa="ApxFA2", num_approx_lsbs=3)
        assert "ApxFA2" in adder.name and "3" in adder.name
