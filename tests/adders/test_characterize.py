"""Tests for adder characterization."""

import numpy as np
import pytest

from repro.adders.characterize import (
    adder_energy_per_op_fj,
    characterize_adder,
    characterize_gear,
    characterize_ripple_family,
)
from repro.adders.gear import GeArAdder, GeArConfig
from repro.adders.gear_error import exact_error_probability
from repro.adders.ripple import ApproximateRippleAdder


class TestCharacterizeAdder:
    def test_exact_adder_perfect_metrics(self):
        record = characterize_adder(ApproximateRippleAdder(8))
        assert record.metrics.error_rate == 0.0
        assert record.metrics.max_error_distance == 0.0
        assert record.metrics.accuracy_percent == 100.0

    def test_exhaustive_sample_count(self):
        record = characterize_adder(ApproximateRippleAdder(6))
        assert record.metrics.n_samples == (1 << 6) ** 2

    def test_sampled_above_width_limit(self):
        record = characterize_adder(
            ApproximateRippleAdder(16), n_samples=5000
        )
        assert record.metrics.n_samples == 5000

    def test_approximate_adder_has_errors(self):
        record = characterize_adder(
            ApproximateRippleAdder(8, approx_fa="ApxFA5", num_approx_lsbs=4)
        )
        assert record.metrics.error_rate > 0.0
        assert 0 < record.metrics.max_error_distance < (1 << 6)

    def test_record_roundtrip_row(self):
        record = characterize_adder(ApproximateRippleAdder(8))
        row = record.as_row()
        assert row["width"] == 8
        assert "error_rate" in row

    def test_name_override(self):
        record = characterize_adder(ApproximateRippleAdder(8), name="custom")
        assert record.name == "custom"


class TestCharacterizeGear:
    def test_gear_error_rate_matches_analytic_model(self):
        cfg = GeArConfig(10, 2, 2)
        record = characterize_gear(cfg)  # exhaustive at width 10
        assert record.metrics.error_rate == pytest.approx(
            exact_error_probability(cfg), abs=1e-12
        )

    def test_gear_lut_count_propagates(self):
        cfg = GeArConfig(10, 2, 2)
        assert characterize_gear(cfg).lut_count == GeArAdder(cfg).lut_count


class TestRippleFamily:
    def test_family_size(self):
        records = characterize_ripple_family(
            8, approx_lsb_counts=(2, 4), fa_names=("ApxFA1", "ApxFA2")
        )
        assert len(records) == 4

    def test_default_family_excludes_accurate_cell(self):
        records = characterize_ripple_family(8, approx_lsb_counts=(2,))
        assert all("AccuFA" not in r.name.split("[")[1] for r in records)

    def test_quality_monotone_in_lsbs_for_fixed_cell(self):
        records = characterize_ripple_family(
            8, approx_lsb_counts=(0, 2, 4, 6), fa_names=("ApxFA5",)
        )
        meds = [r.metrics.mean_error_distance for r in records]
        assert meds == sorted(meds)


class TestEnergyModel:
    def test_approximation_reduces_energy(self):
        exact = adder_energy_per_op_fj(ApproximateRippleAdder(8))
        approx = adder_energy_per_op_fj(
            ApproximateRippleAdder(8, approx_fa="ApxFA3", num_approx_lsbs=4)
        )
        assert approx < exact

    def test_gear_energy_scales_with_subadders(self):
        small = adder_energy_per_op_fj(GeArAdder(GeArConfig(16, 4, 4)))
        large = adder_energy_per_op_fj(GeArAdder(GeArConfig(16, 2, 2)))
        assert large > small  # more overlapping sub-adder bits

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="energy"):
            adder_energy_per_op_fj(object())
