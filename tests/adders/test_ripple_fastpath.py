"""Exhaustive fast-path vs legacy-loop equivalence for the ripple adder.

The segment/LUT engine must be *bit-identical* to the reference cell
loop for every Table III cell, every width <= 8, every LSB split, and
every ``(a, b, cin)`` combination -- plus randomized spot checks at
widths 16 and 32 where exhaustion is infeasible.
"""

import numpy as np
import pytest

from repro.adders.fastpath import (
    AUTO_LUT_MAX_BITS,
    LUT_MAX_BITS,
    approx_segment_lut,
)
from repro.adders.fulladder import FULL_ADDER_NAMES, FULL_ADDERS
from repro.adders.ripple import ApproximateRippleAdder, ExactAdder


def _all_pairs(width):
    n = 1 << width
    return (
        np.repeat(np.arange(n, dtype=np.int64), n),
        np.tile(np.arange(n, dtype=np.int64), n),
    )


class TestExhaustiveEquivalence:
    @pytest.mark.parametrize("fa", FULL_ADDER_NAMES)
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_all_inputs_all_splits(self, fa, width):
        a, b = _all_pairs(width)
        for lsbs in range(width + 1):
            fast = ApproximateRippleAdder(
                width, approx_fa=fa, num_approx_lsbs=lsbs
            )
            loop = ApproximateRippleAdder(
                width, approx_fa=fa, num_approx_lsbs=lsbs, eval_mode="loop"
            )
            for cin in (0, 1):
                assert np.array_equal(
                    fast.add(a, b, cin), loop.add(a, b, cin)
                ), f"{fa} width={width} lsbs={lsbs} cin={cin}"

    @pytest.mark.parametrize("fa", FULL_ADDER_NAMES)
    def test_sub_equivalence_width8(self, fa):
        a, b = _all_pairs(8)
        fast = ApproximateRippleAdder(8, approx_fa=fa, num_approx_lsbs=4)
        loop = ApproximateRippleAdder(
            8, approx_fa=fa, num_approx_lsbs=4, eval_mode="loop"
        )
        assert np.array_equal(fast.sub(a, b), loop.sub(a, b))

    def test_non_accufa_msb_segment_falls_back(self, rng):
        """An approximate *accurate* cell disables the native MSB add."""
        kwargs = dict(approx_fa="ApxFA1", num_approx_lsbs=3, accurate_fa="ApxFA2")
        fast = ApproximateRippleAdder(8, **kwargs)
        loop = ApproximateRippleAdder(8, eval_mode="loop", **kwargs)
        a = rng.integers(0, 256, 3000)
        b = rng.integers(0, 256, 3000)
        for cin in (0, 1):
            assert np.array_equal(fast.add(a, b, cin), loop.add(a, b, cin))


class TestWideSpotChecks:
    @pytest.mark.parametrize("fa", ["ApxFA1", "ApxFA3", "ApxFA5"])
    @pytest.mark.parametrize("width,lsbs", [(16, 6), (16, 12), (32, 8), (32, 14)])
    def test_random_batches(self, fa, width, lsbs, rng):
        fast = ApproximateRippleAdder(width, approx_fa=fa, num_approx_lsbs=lsbs)
        loop = ApproximateRippleAdder(
            width, approx_fa=fa, num_approx_lsbs=lsbs, eval_mode="loop"
        )
        hi = 1 << width
        a = rng.integers(0, hi, 4000)
        b = rng.integers(0, hi, 4000)
        for cin in (0, 1):
            assert np.array_equal(fast.add(a, b, cin), loop.add(a, b, cin))
        assert np.array_equal(fast.sub(a, b), loop.sub(a, b))

    def test_segment_wider_than_auto_limit_still_fast_and_equal(self, rng):
        lsbs = AUTO_LUT_MAX_BITS + 2
        fast = ApproximateRippleAdder(32, approx_fa="ApxFA4", num_approx_lsbs=lsbs)
        loop = ApproximateRippleAdder(
            32, approx_fa="ApxFA4", num_approx_lsbs=lsbs, eval_mode="loop"
        )
        assert fast.uses_fast_path and fast._seg_lut is None
        a = rng.integers(0, 1 << 32, 2000)
        b = rng.integers(0, 1 << 32, 2000)
        assert np.array_equal(fast.add(a, b), loop.add(a, b))


class TestEngineSelection:
    def test_invalid_eval_mode_rejected(self):
        with pytest.raises(ValueError, match="eval_mode"):
            ApproximateRippleAdder(8, eval_mode="vectorized")

    def test_lut_mode_caps_segment_width(self):
        with pytest.raises(ValueError, match="lut"):
            ApproximateRippleAdder(
                32,
                approx_fa="ApxFA5",
                num_approx_lsbs=LUT_MAX_BITS + 1,
                eval_mode="lut",
            )

    def test_uses_fast_path_flag(self):
        assert ApproximateRippleAdder(8).uses_fast_path
        assert not ApproximateRippleAdder(8, eval_mode="loop").uses_fast_path

    def test_luts_shared_across_adders(self):
        one = ApproximateRippleAdder(8, approx_fa="ApxFA2", num_approx_lsbs=4)
        two = ApproximateRippleAdder(12, approx_fa="ApxFA2", num_approx_lsbs=4)
        assert one._seg_lut is two._seg_lut

    def test_segment_lut_bounds(self):
        with pytest.raises(ValueError, match="seg_bits"):
            approx_segment_lut(FULL_ADDERS["ApxFA1"], 0)
        with pytest.raises(ValueError, match="seg_bits"):
            approx_segment_lut(FULL_ADDERS["ApxFA1"], LUT_MAX_BITS + 1)

    def test_scalar_result_shape_matches_legacy(self):
        fast = ApproximateRippleAdder(8, approx_fa="ApxFA1", num_approx_lsbs=2)
        loop = ApproximateRippleAdder(
            8, approx_fa="ApxFA1", num_approx_lsbs=2, eval_mode="loop"
        )
        assert fast.add(3, 5).shape == loop.add(3, 5).shape == ()


class TestCarryInValidation:
    """cin is a single carry wire: anything outside {0, 1} is a bug."""

    @pytest.mark.parametrize("mode", ["auto", "loop"])
    def test_ripple_rejects_bad_cin(self, mode):
        adder = ApproximateRippleAdder(8, eval_mode=mode)
        with pytest.raises(ValueError, match="cin"):
            adder.add(1, 2, cin=2)
        with pytest.raises(ValueError, match="cin"):
            adder.add(1, 2, cin=-1)

    def test_exact_adder_rejects_bad_cin(self):
        with pytest.raises(ValueError, match="cin"):
            ExactAdder(8).add(1, 2, cin=3)


class TestPackedSegmentDtype:
    """Regression for the uint16 packing overflow (satellite fix).

    A packed LUT entry ``(carry << seg_bits) | sum_lo`` needs
    ``seg_bits + 1`` bits; the table build used to hard-code uint16,
    which would silently wrap the carry for any future bump of
    ``LUT_MAX_BITS`` past 15.  The dtype is now selected per width.
    """

    @pytest.mark.parametrize(
        "seg_bits, dtype",
        [(1, np.uint16), (12, np.uint16), (15, np.uint16),
         (16, np.uint32), (24, np.uint32), (31, np.uint32)],
    )
    def test_dtype_holds_carry_and_sum(self, seg_bits, dtype):
        from repro.adders.fastpath import packed_segment_dtype

        assert packed_segment_dtype(seg_bits) is dtype
        # The selected dtype really holds the widest packed entry.
        widest = (1 << (seg_bits + 1)) - 1
        assert int(np.asarray(widest).astype(dtype)) == widest

    @pytest.mark.parametrize("seg_bits", [32, 40, 64])
    def test_unpackable_widths_rejected(self, seg_bits):
        from repro.adders.fastpath import packed_segment_dtype

        with pytest.raises(ValueError, match="cannot be packed"):
            packed_segment_dtype(seg_bits)

    def test_current_lut_cap_stays_within_uint16(self):
        """Every width the cap allows today packs losslessly: exhaust
        the widest cached table and check carry and sum round-trip."""
        from repro.adders.fastpath import (
            pack_segment_index,
            unpack_segment_result,
        )

        seg_bits = 6
        lut = approx_segment_lut(FULL_ADDERS["AccuFA"], seg_bits)
        hi = 1 << seg_bits
        a = np.repeat(np.arange(hi, dtype=np.int64), hi)
        b = np.tile(np.arange(hi, dtype=np.int64), hi)
        for cin in (0, 1):
            packed = lut[pack_segment_index(a, b, cin, seg_bits)]
            sum_lo, carry = unpack_segment_result(packed, seg_bits)
            total = a + b + cin
            assert np.array_equal(sum_lo, total & (hi - 1))
            assert np.array_equal(carry, total >> seg_bits)
