"""Tests for the heterogeneous GeAr adder model."""

import numpy as np
import pytest

from repro.adders import GeArAdder, GeArConfig, HeteroGeArAdder, HeteroGeArConfig


class TestConfigValidation:
    def test_basic_geometry(self):
        cfg = HeteroGeArConfig(((4, 0), (2, 2), (2, 1)))
        assert cfg.n == 8
        assert cfg.k == 3
        assert cfg.segment_starts() == (0, 4, 6)
        assert cfg.sub_adder_windows() == [(0, 4), (2, 4), (5, 3)]

    def test_zero_width_segment_rejected(self):
        with pytest.raises(ValueError, match="r must be"):
            HeteroGeArConfig(((4, 0), (0, 1)))

    def test_negative_p_rejected(self):
        with pytest.raises(ValueError, match="p must be"):
            HeteroGeArConfig(((4, 0), (2, -1)))

    def test_segment0_prediction_rejected(self):
        with pytest.raises(ValueError, match="p_0"):
            HeteroGeArConfig(((4, 1), (4, 2)))

    def test_prediction_below_bit0_rejected(self):
        with pytest.raises(ValueError, match="below bit 0"):
            HeteroGeArConfig(((2, 0), (2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            HeteroGeArConfig(())

    def test_single_segment_is_exact(self):
        assert HeteroGeArConfig(((8, 0),)).is_exact

    def test_from_string_round_trip(self):
        cfg = HeteroGeArConfig.from_string("4:0,2:2,2:1")
        assert cfg.segments == ((4, 0), (2, 2), (2, 1))
        assert HeteroGeArConfig.from_string("8") == HeteroGeArConfig(((8, 0),))

    def test_from_string_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="bad segment"):
            HeteroGeArConfig.from_string("4:x,2:2")

    def test_never_overestimates(self):
        # Homogeneous embeddings always satisfy the monotone condition.
        assert HeteroGeArConfig.from_gear_params(8, 2, 2).never_overestimates
        # Prediction jumping past the previous window does not.
        assert not HeteroGeArConfig(((2, 0), (1, 1), (2, 3))).never_overestimates


class TestGeArEquivalence:
    """The homogeneous embedding must be bit-identical to GeArAdder."""

    @pytest.mark.parametrize("n,r,p", [(8, 2, 2), (11, 1, 5), (11, 3, 2),
                                       (12, 4, 4), (16, 1, 7)])
    def test_matches_gear_on_random_vectors(self, n, r, p, rng):
        gear = GeArAdder(GeArConfig(n, r, p))
        hetero = HeteroGeArAdder(HeteroGeArConfig.from_gear(GeArConfig(n, r, p)))
        a = rng.integers(0, 1 << n, 2000)
        b = rng.integers(0, 1 << n, 2000)
        np.testing.assert_array_equal(hetero.add(a, b), gear.add(a, b))

    def test_matches_gear_exhaustively_small(self):
        cfg = GeArConfig(6, 2, 2)
        gear = GeArAdder(cfg)
        hetero = HeteroGeArAdder(HeteroGeArConfig.from_gear(cfg))
        a, b = np.meshgrid(np.arange(64), np.arange(64))
        np.testing.assert_array_equal(hetero.add(a, b), gear.add(a, b))

    def test_physical_models_match_gear(self):
        cfg = GeArConfig(12, 4, 4)
        gear = GeArAdder(cfg)
        hetero = HeteroGeArAdder(HeteroGeArConfig.from_gear(cfg))
        assert hetero.lut_count == gear.lut_count
        assert hetero.area_ge == gear.area_ge
        assert hetero.delay_ps == gear.delay_ps


class TestBehaviour:
    def test_carry_free_addition_is_exact(self, rng):
        adder = HeteroGeArAdder(HeteroGeArConfig(((3, 0), (3, 1), (2, 2))))
        a = rng.integers(0, 256, 500)
        b = (~a) & 0xFF  # a + b = 255: no carries anywhere
        np.testing.assert_array_equal(adder.add(a, b), a + b)

    def test_block0_always_exact(self, rng):
        cfg = HeteroGeArConfig(((4, 0), (2, 1), (2, 2)))
        adder = HeteroGeArAdder(cfg)
        a = rng.integers(0, 256, 1000)
        b = rng.integers(0, 256, 1000)
        approx = adder.add(a, b)
        exact = a + b
        np.testing.assert_array_equal(approx & 0xF, exact & 0xF)

    def test_missed_carry_example(self):
        adder = HeteroGeArAdder(HeteroGeArConfig(((4, 0), (2, 2), (2, 2))))
        assert int(adder.add(0x0F, 0x01)) == 0
        assert int(adder.add(0x05, 0x02)) == 7

    def test_final_carry_bit(self):
        adder = HeteroGeArAdder(HeteroGeArConfig(((4, 0), (4, 4))))
        # 0xF0 + 0xF0: the last window [0, 8) sums to 0x1E0 -> carry out.
        assert int(adder.add(0xF0, 0xF0)) == 0x1E0

    def test_negative_operands_rejected(self):
        adder = HeteroGeArAdder(HeteroGeArConfig(((4, 0), (4, 2))))
        with pytest.raises(ValueError, match="non-negative"):
            adder.add(-1, 3)

    def test_overestimate_witness(self):
        # p_2 > p_1 + r_1: an uncompensated wrap overestimates the sum.
        adder = HeteroGeArAdder(HeteroGeArConfig(((2, 0), (1, 1), (2, 3))))
        assert int(adder.add(7, 1)) - 8 == 4


class TestEnumeration:
    def test_all_valid_counts_and_validity(self):
        configs = HeteroGeArConfig.all_valid(6, max_segments=3, max_p=2)
        assert configs, "enumeration must be non-empty"
        assert len({c.segments for c in configs}) == len(configs)
        for cfg in configs:
            assert cfg.n == 6
            assert 2 <= cfg.k <= 3
            assert all(p <= 2 for _, p in cfg.segments)

    def test_all_valid_contains_homogeneous_embedding(self):
        configs = HeteroGeArConfig.all_valid(8, max_segments=3, max_p=4)
        target = HeteroGeArConfig.from_gear_params(8, 2, 2)
        # k=3 with caps (max_segments=3, max_p=4) covers GeAr(8,2,2).
        assert target in configs

    def test_min_p_filters(self):
        configs = HeteroGeArConfig.all_valid(6, max_segments=2, max_p=3, min_p=1)
        assert all(p >= 1 for cfg in configs for _, p in cfg.segments[1:])
