"""Regression tests for GeAr operand validation and correction bounds.

The behavioural GeAr model used to accept negative and over-width
operands without masking or raising: negatives took an arithmetic
right-shift through the window extraction (corrupting every sub-adder's
inputs) and bits above N leaked into the top window's carry.  It also
defaulted the correction cap to ``k`` although the fixpoint is provably
reached within ``k - 1`` iterations.
"""

import numpy as np
import pytest

from repro.adders.gear import GeArAdder, GeArConfig

CONFIGS = [(8, 2, 2), (12, 4, 4), (16, 1, 3), (12, 4, 0), (16, 4, 4)]


class TestOperandValidation:
    @pytest.mark.parametrize("n,r,p", CONFIGS)
    def test_negative_operands_rejected(self, n, r, p):
        adder = GeArAdder(GeArConfig(n, r, p))
        for method in (adder.add, adder.detect_errors):
            with pytest.raises(ValueError, match="non-negative"):
                method(np.array([-1]), np.array([1]))
            with pytest.raises(ValueError, match="non-negative"):
                method(np.array([1]), np.array([-5]))
        with pytest.raises(ValueError, match="non-negative"):
            adder.add_with_correction(-3, 1)

    @pytest.mark.parametrize("n,r,p", CONFIGS)
    def test_overwidth_operands_masked(self, n, r, p, rng):
        """Bits above N do not exist in the datapath: 2**N + x == x."""
        adder = GeArAdder(GeArConfig(n, r, p))
        hi = 1 << n
        a = rng.integers(0, hi, 500)
        b = rng.integers(0, hi, 500)
        assert np.array_equal(adder.add(a + hi, b), adder.add(a, b))
        assert np.array_equal(adder.add(a, b + 4 * hi), adder.add(a, b))
        assert np.array_equal(
            adder.detect_errors(a + hi, b), adder.detect_errors(a, b)
        )
        got, _ = adder.add_with_correction(a + 2 * hi, b + hi)
        assert np.array_equal(got, a + b)


class TestCorrectionCap:
    @pytest.mark.parametrize("n,r,p", CONFIGS)
    def test_default_cap_is_k_minus_1_and_exact(self, n, r, p, rng):
        """The documented 'at most k-1 iterations' bound is the default
        and suffices for exactness on randomized operands."""
        cfg = GeArConfig(n, r, p)
        adder = GeArAdder(cfg)
        hi = 1 << n
        a = rng.integers(0, hi, 3000)
        b = rng.integers(0, hi, 3000)
        result, iterations = adder.add_with_correction(a, b)
        assert np.array_equal(result, a + b)
        assert int(iterations.max()) <= cfg.k - 1
        # Explicitly capping at k-1 gives the same fixpoint.
        capped, _ = adder.add_with_correction(a, b, max_iterations=cfg.k - 1)
        assert np.array_equal(capped, result)

    def test_worst_case_carry_chain_converges_within_bound(self):
        """0xFF..F + 1 needs a correction at every boundary in sequence."""
        cfg = GeArConfig(16, 2, 2)
        adder = GeArAdder(cfg)
        operand = (1 << 16) - 1
        result, iterations = adder.add_with_correction(operand, 1)
        assert int(result) == 1 << 16
        assert int(iterations) <= cfg.k - 1
