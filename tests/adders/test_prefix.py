"""Tests for parallel-prefix adders (Kogge-Stone, speculative)."""

import numpy as np
import pytest

from repro.adders.gear import GeArAdder
from repro.adders.netlist_builder import (
    build_ripple_adder_netlist,
    evaluate_adder_netlist,
)
from repro.adders.prefix import SpeculativePrefixAdder, build_kogge_stone_netlist
from repro.adders.ripple import ApproximateRippleAdder


class TestKoggeStone:
    def test_exhaustive_width6(self):
        netlist = build_kogge_stone_netlist(6)
        values = np.arange(64)
        a = np.repeat(values, 64)
        b = np.tile(values, 64)
        assert np.array_equal(evaluate_adder_netlist(netlist, a, b, 0), a + b)

    def test_carry_in(self):
        netlist = build_kogge_stone_netlist(6)
        values = np.arange(64)
        a = np.repeat(values, 64)
        b = np.tile(values, 64)
        assert np.array_equal(
            evaluate_adder_netlist(netlist, a, b, 1), a + b + 1
        )

    def test_random_width16(self, rng):
        netlist = build_kogge_stone_netlist(16)
        a = rng.integers(0, 1 << 16, 1500)
        b = rng.integers(0, 1 << 16, 1500)
        assert np.array_equal(evaluate_adder_netlist(netlist, a, b, 0), a + b)

    def test_width_one(self):
        netlist = build_kogge_stone_netlist(1)
        out = evaluate_adder_netlist(
            netlist, np.array([1]), np.array([1]), 1
        )
        assert int(out[0]) == 3

    def test_invalid_width(self):
        with pytest.raises(ValueError, match="width"):
            build_kogge_stone_netlist(0)

    def test_logarithmic_delay_beats_ripple(self):
        """The high-performance claim: prefix delay grows ~log N while
        ripple delay grows linearly."""
        ks16 = build_kogge_stone_netlist(16)
        rc16 = build_ripple_adder_netlist(ApproximateRippleAdder(16))
        assert ks16.delay_ps() < 0.5 * rc16.delay_ps()
        # Delay roughly flat from 8 to 16 bits (one extra level).
        ks8 = build_kogge_stone_netlist(8)
        assert ks16.delay_ps() < 1.5 * ks8.delay_ps()

    def test_speed_costs_area(self):
        ks = build_kogge_stone_netlist(16)
        rc = build_ripple_adder_netlist(ApproximateRippleAdder(16))
        assert ks.area_ge > rc.area_ge


class TestSpeculativePrefix:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="width"):
            SpeculativePrefixAdder(1, 1)
        with pytest.raises(ValueError, match="lookahead"):
            SpeculativePrefixAdder(8, 0)
        with pytest.raises(ValueError, match="lookahead"):
            SpeculativePrefixAdder(8, 8)

    def test_long_carry_chain_missed(self):
        adder = SpeculativePrefixAdder(16, lookahead=4)
        # 0x00F0 + 0x0010: carry generated at bit 4 ripples to bit 8;
        # bit 8 only sees bits 4..7 (all propagate) -> correct here; but
        # 0x0FFF + 0x0001 ripples 12 positions -> missed.
        assert int(adder.add(0x0FFF, 0x0001)) != 0x1000

    def test_short_chains_exact(self, rng):
        adder = SpeculativePrefixAdder(12, lookahead=6)
        a = rng.integers(0, 1 << 6, 500)  # carries never exceed window
        b = rng.integers(0, 1 << 6, 500)
        assert np.array_equal(adder.add(a, b), a + b)

    @pytest.mark.parametrize("n, lookahead", [(8, 2), (8, 4), (10, 3)])
    def test_equivalent_to_gear_exhaustively(self, n, lookahead):
        """ACA-I speculation == GeAr(R=1, P=L): two independent models,
        one function."""
        speculative = SpeculativePrefixAdder(n, lookahead)
        gear = GeArAdder(speculative.equivalent_gear_config())
        values = np.arange(1 << n)
        a = np.repeat(values, 1 << n)
        b = np.tile(values, 1 << n)
        assert np.array_equal(speculative.add(a, b), gear.add(a, b))

    def test_delay_levels_grow_with_lookahead(self):
        shallow = SpeculativePrefixAdder(16, 2).delay_levels
        deep = SpeculativePrefixAdder(16, 8).delay_levels
        assert shallow < deep
