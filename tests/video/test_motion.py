"""Tests for full-search motion estimation."""

import numpy as np
import pytest

from repro.accelerators.sad import SADAccelerator
from repro.media.synthetic import moving_sequence
from repro.video.motion import full_search, motion_field, sad_surface


@pytest.fixture
def shifted_pair(rng):
    """A reference frame and a copy shifted by (dx=2, dy=1)."""
    ref = rng.integers(0, 256, (32, 32)).astype(np.int64)
    cur = np.roll(np.roll(ref, 1, axis=0), 2, axis=1)
    return cur, ref


class TestSadSurface:
    def test_surface_shape(self, shifted_pair):
        cur, ref = shifted_pair
        acc = SADAccelerator(n_pixels=64)
        surface = sad_surface(cur, ref, (8, 8), 8, 3, acc)
        assert surface.shape == (7, 7)

    def test_true_shift_is_global_minimum(self, shifted_pair):
        cur, ref = shifted_pair
        acc = SADAccelerator(n_pixels=64)
        surface = sad_surface(cur, ref, (8, 8), 8, 3, acc)
        iy, ix = np.unravel_index(np.argmin(surface), surface.shape)
        # Block content moved by (+2, +1), so it is found at (-2, -1).
        assert (ix - 3, iy - 3) == (-2, -1)
        assert surface[iy, ix] == 0

    def test_out_of_frame_candidates_sentinel(self):
        frame = np.zeros((16, 16))
        acc = SADAccelerator(n_pixels=64)
        surface = sad_surface(frame, frame, (0, 0), 8, 2, acc)
        assert surface[0, 0] >= (1 << 62)  # dy=-2, dx=-2 out of frame
        assert surface[2, 2] == 0  # dy=0, dx=0 valid

    def test_block_must_fit(self):
        frame = np.zeros((16, 16))
        acc = SADAccelerator(n_pixels=64)
        with pytest.raises(ValueError, match="fit"):
            sad_surface(frame, frame, (12, 0), 8, 2, acc)

    def test_accelerator_size_checked(self):
        frame = np.zeros((16, 16))
        acc = SADAccelerator(n_pixels=16)
        with pytest.raises(ValueError, match="pixels"):
            sad_surface(frame, frame, (0, 0), 8, 2, acc)

    def test_frame_shape_mismatch(self):
        acc = SADAccelerator(n_pixels=64)
        with pytest.raises(ValueError, match="shapes"):
            sad_surface(np.zeros((16, 16)), np.zeros((16, 8)), (0, 0), 8, 2, acc)


class TestFullSearch:
    def test_finds_exact_shift(self, shifted_pair):
        cur, ref = shifted_pair
        acc = SADAccelerator(n_pixels=64)
        mv = full_search(cur, ref, (8, 8), 8, 3, acc)
        assert (mv.dx, mv.dy) == (-2, -1)
        assert mv.sad == 0

    def test_tie_break_prefers_small_displacement(self):
        frame = np.full((16, 16), 100)
        acc = SADAccelerator(n_pixels=64)
        mv = full_search(frame, frame, (4, 4), 8, 2, acc)
        assert (mv.dx, mv.dy) == (0, 0)

    def test_approximate_sad_preserves_clear_minimum(self, shifted_pair):
        """Fig. 8: the approximate surface is shifted but the best
        candidate survives when the minimum is distinct."""
        cur, ref = shifted_pair
        exact = SADAccelerator(n_pixels=64)
        approx = SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=4)
        mv_exact = full_search(cur, ref, (8, 8), 8, 3, exact)
        mv_approx = full_search(cur, ref, (8, 8), 8, 3, approx)
        assert (mv_exact.dx, mv_exact.dy) == (mv_approx.dx, mv_approx.dy)


class TestMotionField:
    def test_field_covers_all_blocks(self, shifted_pair):
        cur, ref = shifted_pair
        acc = SADAccelerator(n_pixels=64)
        field = motion_field(cur, ref, 8, 2, acc)
        assert len(field) == (32 // 8) ** 2

    def test_divisibility_checked(self):
        acc = SADAccelerator(n_pixels=64)
        with pytest.raises(ValueError, match="divisible"):
            motion_field(np.zeros((20, 20)), np.zeros((20, 20)), 8, 2, acc)

    def test_static_scene_yields_zero_motion(self):
        frames = moving_sequence(n_frames=1, size=32, noise_sigma=0.0)
        acc = SADAccelerator(n_pixels=64)
        field = motion_field(frames[0], frames[0], 8, 2, acc)
        assert all(mv.dx == 0 and mv.dy == 0 for mv in field.values())
