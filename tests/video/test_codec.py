"""Tests for the HEVC-lite encoder."""

import numpy as np
import pytest

from repro.accelerators.sad import SADAccelerator
from repro.media.synthetic import moving_sequence
from repro.video.codec import HevcLiteEncoder


@pytest.fixture(scope="module")
def frames():
    return moving_sequence(n_frames=3, size=32, noise_sigma=2.0)


@pytest.fixture(scope="module")
def exact_sad():
    return SADAccelerator(n_pixels=64)


class TestEncode:
    def test_basic_encode(self, frames, exact_sad):
        enc = HevcLiteEncoder(search_range=2)
        result = enc.encode(frames, exact_sad)
        assert result.total_bits > 0
        assert len(result.frame_bits) == 3
        assert len(result.motion_fields) == 2
        assert result.psnr_db > 25.0

    def test_total_is_sum_of_frames(self, frames, exact_sad):
        enc = HevcLiteEncoder(search_range=2)
        result = enc.encode(frames, exact_sad)
        assert result.total_bits == sum(result.frame_bits)

    def test_inter_cheap_on_static_noiseless_content(self, exact_sad):
        frame = moving_sequence(n_frames=1, size=32, noise_sigma=0.0)[0]
        enc = HevcLiteEncoder(search_range=2)
        result = enc.encode([frame, frame], exact_sad)
        # A perfectly predictable frame costs a fraction of the intra one.
        assert result.frame_bits[1] < result.frame_bits[0] / 2

    def test_static_sequence_is_cheap(self, exact_sad):
        frame = moving_sequence(n_frames=1, size=32, noise_sigma=0.0)[0]
        enc = HevcLiteEncoder(search_range=2)
        static = enc.encode([frame, frame, frame], exact_sad)
        moving = enc.encode(
            moving_sequence(n_frames=3, size=32, noise_sigma=0.0), exact_sad
        )
        assert static.frame_bits[1] < moving.frame_bits[1]

    def test_deterministic(self, frames, exact_sad):
        enc = HevcLiteEncoder(search_range=2)
        r1 = enc.encode(frames, exact_sad)
        r2 = enc.encode(frames, exact_sad)
        assert r1.total_bits == r2.total_bits

    def test_coarser_qp_fewer_bits(self, frames, exact_sad):
        fine = HevcLiteEncoder(search_range=2, qp=2).encode(frames, exact_sad)
        coarse = HevcLiteEncoder(search_range=2, qp=16).encode(frames, exact_sad)
        assert coarse.total_bits < fine.total_bits
        assert coarse.psnr_db < fine.psnr_db


class TestValidation:
    def test_empty_sequence_rejected(self, exact_sad):
        with pytest.raises(ValueError, match="frame"):
            HevcLiteEncoder().encode([], exact_sad)

    def test_mismatched_shapes_rejected(self, exact_sad):
        with pytest.raises(ValueError, match="share"):
            HevcLiteEncoder().encode(
                [np.zeros((16, 16)), np.zeros((32, 32))], exact_sad
            )

    def test_indivisible_frames_rejected(self, exact_sad):
        with pytest.raises(ValueError, match="divisible"):
            HevcLiteEncoder().encode([np.zeros((20, 20))], exact_sad)

    def test_wrong_sad_size_rejected(self, frames):
        with pytest.raises(ValueError, match="pixels"):
            HevcLiteEncoder().encode(frames, SADAccelerator(n_pixels=16))

    def test_wrong_block_size_rejected(self):
        with pytest.raises(ValueError, match="block_size"):
            HevcLiteEncoder(block_size=16)


class TestApproximateSadEffect:
    def test_bitrate_increase_percent(self, frames, exact_sad):
        enc = HevcLiteEncoder(search_range=2)
        base = enc.encode(frames, exact_sad)
        assert base.bitrate_increase_percent(base) == 0.0

    def test_heavy_approximation_grows_bitrate(self):
        """Fig. 9 shape: 6 approximated LSBs cost clearly more bits than
        2 approximated LSBs across a realistic sequence."""
        frames = moving_sequence(n_frames=4, size=64, noise_sigma=3.0)
        enc = HevcLiteEncoder(search_range=4, qp=4)
        base = enc.encode(frames, SADAccelerator(n_pixels=64))
        light = enc.encode(
            frames, SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=2)
        )
        heavy = enc.encode(
            frames, SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=6)
        )
        light_incr = light.bitrate_increase_percent(base)
        heavy_incr = heavy.bitrate_increase_percent(base)
        assert heavy_incr > light_incr
        assert heavy_incr > 1.0  # clearly visible cost
        assert light_incr < 1.5  # marginal cost
