"""Tests for the transform/quantization stage."""

import numpy as np
import pytest

from repro.video.transform import TransformStage


class TestQuantization:
    def test_reconstruction_error_bounded_by_qp(self, rng):
        stage = TransformStage(qp=8)
        residual = rng.integers(-100, 100, (8, 8))
        recon = stage.reconstruct(stage.forward_quantize(residual))
        # Quantization error per coefficient is <= qp/2; after the
        # orthonormal-ish inverse it stays within a small multiple.
        assert np.abs(recon - residual).max() <= 2 * stage.qp

    def test_zero_residual_codes_to_zero(self):
        stage = TransformStage(qp=8)
        coeffs = stage.forward_quantize(np.zeros((8, 8), dtype=int))
        assert np.all(coeffs == 0)

    def test_coarser_qp_fewer_nonzero_coefficients(self, rng):
        residual = rng.integers(-30, 30, (8, 8))
        fine = TransformStage(qp=2).forward_quantize(residual)
        coarse = TransformStage(qp=32).forward_quantize(residual)
        assert np.count_nonzero(coarse) <= np.count_nonzero(fine)

    def test_qp_validated(self):
        with pytest.raises(ValueError, match="qp"):
            TransformStage(qp=0)

    def test_shape_validated(self):
        stage = TransformStage()
        with pytest.raises(ValueError, match="8x8"):
            stage.forward_quantize(np.zeros((4, 4)))

    def test_finer_qp_better_reconstruction(self, rng):
        residual = rng.integers(-100, 100, (8, 8))
        fine = TransformStage(qp=2)
        coarse = TransformStage(qp=32)
        err_fine = np.abs(
            fine.reconstruct(fine.forward_quantize(residual)) - residual
        ).mean()
        err_coarse = np.abs(
            coarse.reconstruct(coarse.forward_quantize(residual)) - residual
        ).mean()
        assert err_fine < err_coarse
