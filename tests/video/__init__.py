"""Test package."""
