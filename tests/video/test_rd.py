"""Tests for rate-distortion sweeps."""

import numpy as np
import pytest

from repro.accelerators.sad import SADAccelerator
from repro.media.synthetic import moving_sequence
from repro.video.rd import RDPoint, bd_rate_percent, rd_sweep


@pytest.fixture(scope="module")
def frames():
    return moving_sequence(n_frames=2, size=32, noise_sigma=2.0)


@pytest.fixture(scope="module")
def exact_curve(frames):
    return rd_sweep(frames, SADAccelerator(n_pixels=64), qps=(2, 4, 8, 16),
                    search_range=2)


class TestSweep:
    def test_one_point_per_qp(self, exact_curve):
        assert [p.qp for p in exact_curve] == [2, 4, 8, 16]

    def test_rate_decreases_with_qp(self, exact_curve):
        bits = [p.bits for p in exact_curve]
        assert bits == sorted(bits, reverse=True)

    def test_quality_decreases_with_qp(self, exact_curve):
        psnr = [p.psnr_db for p in exact_curve]
        assert psnr == sorted(psnr, reverse=True)


class TestBdRate:
    def test_identical_curves_zero_overhead(self, exact_curve):
        assert bd_rate_percent(exact_curve, exact_curve) == pytest.approx(0.0)

    def test_known_offset(self):
        ref = [RDPoint(0, 1000, 30.0), RDPoint(1, 2000, 36.0)]
        # Test curve needs 10% more bits at every quality.
        test = [RDPoint(0, 1100, 30.0), RDPoint(1, 2200, 36.0)]
        assert bd_rate_percent(ref, test) == pytest.approx(10.0, abs=0.1)

    def test_approximate_sad_costs_rate(self, frames, exact_curve):
        heavy = rd_sweep(
            frames,
            SADAccelerator(n_pixels=64, fa="ApxFA5", approx_lsbs=6),
            qps=(2, 4, 8, 16),
            search_range=2,
        )
        overhead = bd_rate_percent(exact_curve, heavy)
        assert overhead > -1.0  # never meaningfully better than exact

    def test_mild_approximation_nearly_overlaps(self, frames, exact_curve):
        mild = rd_sweep(
            frames,
            SADAccelerator(n_pixels=64, fa="ApxFA1", approx_lsbs=2),
            qps=(2, 4, 8, 16),
            search_range=2,
        )
        overhead = bd_rate_percent(exact_curve, mild)
        assert abs(overhead) < 2.0  # "marginal increase"

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError, match="points"):
            bd_rate_percent([RDPoint(0, 1, 1.0)], [RDPoint(0, 1, 1.0)])

    def test_disjoint_ranges_rejected(self):
        a = [RDPoint(0, 100, 10.0), RDPoint(1, 200, 12.0)]
        b = [RDPoint(0, 100, 40.0), RDPoint(1, 200, 42.0)]
        with pytest.raises(ValueError, match="range"):
            bd_rate_percent(a, b)
