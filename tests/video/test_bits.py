"""Tests for the exp-Golomb rate model."""

import numpy as np
import pytest

from repro.video.bits import (
    coefficient_block_bits,
    motion_vector_bits,
    se_bits,
    ue_bits,
    zigzag_order,
)


class TestExpGolomb:
    @pytest.mark.parametrize(
        "value, bits",
        [(0, 1), (1, 3), (2, 3), (3, 5), (6, 5), (7, 7), (14, 7), (15, 9)],
    )
    def test_ue_lengths(self, value, bits):
        assert ue_bits(value) == bits

    def test_ue_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ue_bits(-1)

    @pytest.mark.parametrize(
        "value, bits", [(0, 1), (1, 3), (-1, 3), (2, 5), (-2, 5), (3, 5)]
    )
    def test_se_lengths(self, value, bits):
        assert se_bits(value) == bits

    def test_se_symmetric(self):
        for v in range(1, 50):
            assert se_bits(v) <= se_bits(-v) <= se_bits(v) + 2

    def test_ue_monotone(self):
        lengths = [ue_bits(v) for v in range(200)]
        assert lengths == sorted(lengths)


class TestZigzag:
    def test_covers_all_positions(self):
        order = zigzag_order(8)
        assert len(order) == 64
        assert len(set(order)) == 64

    def test_starts_at_dc(self):
        assert zigzag_order(8)[0] == (0, 0)

    def test_frequency_monotone(self):
        order = zigzag_order(4)
        sums = [y + x for (y, x) in order]
        assert sums == sorted(sums)


class TestBlockBits:
    def test_zero_block_costs_one_bit(self):
        assert coefficient_block_bits(np.zeros((8, 8), dtype=int)) == 1

    def test_dc_only_block(self):
        block = np.zeros((8, 8), dtype=int)
        block[0, 0] = 1
        # flag + ue(last=0) + significance + level ue(0) + sign.
        assert coefficient_block_bits(block) == 1 + 1 + 1 + 1 + 1

    def test_more_energy_more_bits(self, rng):
        small = rng.integers(-2, 3, (8, 8))
        large = small * 10
        assert coefficient_block_bits(large) >= coefficient_block_bits(small)

    def test_sparse_cheaper_than_dense(self, rng):
        dense = rng.integers(1, 4, (8, 8))
        sparse = np.zeros((8, 8), dtype=int)
        sparse[0, 0] = 3
        assert coefficient_block_bits(sparse) < coefficient_block_bits(dense)

    def test_high_frequency_tail_costs(self):
        dc = np.zeros((8, 8), dtype=int)
        dc[0, 0] = 1
        hf = np.zeros((8, 8), dtype=int)
        hf[7, 7] = 1
        assert coefficient_block_bits(hf) > coefficient_block_bits(dc)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            coefficient_block_bits(np.zeros((4, 8)))


class TestMotionVectorBits:
    def test_zero_mv_minimal(self):
        assert motion_vector_bits(0, 0) == 2

    def test_predictor_reduces_cost(self):
        direct = motion_vector_bits(4, 4)
        predicted = motion_vector_bits(4, 4, pred=(4, 4))
        assert predicted < direct
