"""Test package."""
