"""Documentation integrity: the README's code blocks actually run."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[2] / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_with_key_sections(self):
        text = README.read_text()
        for heading in ("## Installation", "## Quickstart",
                        "## Architecture", "## Reproducing"):
            assert heading in text

    def test_has_python_blocks(self):
        assert len(python_blocks()) >= 1

    @pytest.mark.parametrize("index", range(len(python_blocks())))
    def test_python_blocks_execute(self, index, capsys):
        code = python_blocks()[index]
        namespace: dict = {}
        exec(compile(code, f"README.md[block {index}]", "exec"), namespace)
        capsys.readouterr()  # swallow the example prints

    def test_all_example_scripts_listed(self):
        text = README.read_text()
        examples_dir = Path(__file__).resolve().parents[2] / "examples"
        for script in sorted(examples_dir.glob("*.py")):
            assert script.name in text, f"{script.name} missing from README"

    def test_all_benchmarks_listed(self):
        text = README.read_text()
        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        for script in sorted(bench_dir.glob("bench_*.py")):
            assert script.name in text, f"{script.name} missing from README"
