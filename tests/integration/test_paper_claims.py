"""End-to-end checks of the paper's headline claims.

Each test corresponds to a sentence or figure of the paper and exercises
the full stack (components -> accelerators -> applications), asserting
the *shape* the paper reports rather than absolute ASIC numbers.
"""

import numpy as np
import pytest

from repro.accelerators.filters import LowPassFilterAccelerator
from repro.accelerators.sad import SADAccelerator, make_sad_variants
from repro.adders.fulladder import FULL_ADDER_NAMES, FULL_ADDERS
from repro.adders.gear import GeArConfig
from repro.dse.explorer import explore_gear_space
from repro.dse.selection import select_max_accuracy, select_min_area
from repro.media.ssim import ssim
from repro.media.synthetic import moving_sequence, standard_images
from repro.multipliers.mul2x2 import multiplier_2x2
from repro.video.codec import HevcLiteEncoder
from repro.video.motion import full_search, sad_surface


class TestTableIII:
    def test_error_case_progression(self):
        """Table III: 0/2/2/3/3/4 error cases."""
        counts = [FULL_ADDERS[n].n_error_cases for n in FULL_ADDER_NAMES]
        assert counts == [0, 2, 2, 3, 3, 4]

    def test_every_approximation_saves_area_and_delay(self):
        acc = FULL_ADDERS["AccuFA"]
        for name in FULL_ADDER_NAMES[1:]:
            assert FULL_ADDERS[name].area_ge < acc.area_ge
            assert FULL_ADDERS[name].delay_ps < acc.delay_ps


class TestTableIVAndFig4:
    @pytest.fixture(scope="class")
    def records(self):
        return explore_gear_space(11)

    def test_max_accuracy_selection(self, records):
        """'For the constraint of maximum accuracy percentage,
        GeAr(R=1, P=9) can be selected.'"""
        best = select_max_accuracy(records)
        assert (best["r"], best["p"]) == (1, 9)

    def test_r3_constraint_selection(self, records):
        """'To find a low-area adder configuration with at least 90%
        accuracy ... R=3 and P=5.'"""
        r3 = [r for r in records if r["r"] == 3]
        pick = select_min_area(r3, 90.0)
        assert (pick["r"], pick["p"]) == (3, 5)

    def test_design_space_exposes_tradeoff(self, records):
        """Accuracy costs LUTs along the Pareto front."""
        from repro.dse.pareto import pareto_front

        front = pareto_front(
            records, [("lut_count", True), ("accuracy_percent", False)]
        )
        front = sorted(front, key=lambda r: r["lut_count"])
        accs = [r["accuracy_percent"] for r in front]
        assert accs == sorted(accs)
        assert len(front) >= 3


class TestFig5:
    def test_multiplier_tradeoff(self):
        """'Depending upon the bound on the maximum error value or
        number of error cases, either ApxMulSoA or ApxMulOur can be
        deployed.'"""
        soa = multiplier_2x2("ApxMulSoA")
        our = multiplier_2x2("ApxMulOur")
        assert soa.n_error_cases < our.n_error_cases
        assert our.max_error_value < soa.max_error_value


class TestFig8:
    @pytest.fixture(scope="class")
    def frame_pair(self):
        frames = moving_sequence(n_frames=2, size=64, noise_sigma=2.0)
        return frames[1], frames[0]

    def test_surface_shifted_but_minimum_preserved(self, frame_pair):
        """'The whole error surface for the approximate case is shifted
        ... the global minima remains the same.'"""
        cur, ref = frame_pair
        exact = SADAccelerator(n_pixels=64)
        preserved = 0
        blocks = [(0, 0), (8, 16), (24, 24), (40, 8), (48, 48)]
        for variant in make_sad_variants(approx_lsbs=4, include_accurate=False).values():
            for block in blocks:
                s_exact = sad_surface(cur, ref, block, 8, 4, exact)
                s_apx = sad_surface(cur, ref, block, 8, 4, variant)
                valid = s_exact < (1 << 62)
                # Surface is displaced (the values change) ...
                assert np.mean(s_apx[valid] != s_exact[valid]) > 0.5
                # ... but roughly follows the same trend ...
                corr = np.corrcoef(
                    s_apx[valid].astype(float), s_exact[valid].astype(float)
                )[0, 1]
                assert corr > 0.9
                if np.argmin(s_apx) == np.argmin(s_exact):
                    preserved += 1
                # ... and even when the argmin flips, the selection loss
                # is bounded by twice the surface perturbation (the
                # classic argmin-stability bound).
                chosen = s_exact.reshape(-1)[np.argmin(s_apx.reshape(-1))]
                best = s_exact[valid].min()
                max_dev = int(np.abs(s_apx[valid] - s_exact[valid]).max())
                assert chosen <= best + 2 * max_dev
        # The winning candidate itself survives in the majority of cases.
        assert preserved >= 0.6 * 5 * 5

    def test_motion_vectors_match_for_mild_approximation(self, frame_pair):
        cur, ref = frame_pair
        exact = SADAccelerator(n_pixels=64)
        approx = SADAccelerator(n_pixels=64, fa="ApxFA1", approx_lsbs=2)
        same = 0
        blocks = [(x, y) for x in (0, 16, 32, 48) for y in (0, 16, 32, 48)]
        for block in blocks:
            mv_e = full_search(cur, ref, block, 8, 4, exact)
            mv_a = full_search(cur, ref, block, 8, 4, approx)
            same += (mv_e.dx, mv_e.dy) == (mv_a.dx, mv_a.dy)
        assert same >= 0.75 * len(blocks)


class TestFig9:
    @pytest.fixture(scope="class")
    def encoded(self):
        frames = moving_sequence(n_frames=3, size=64, noise_sigma=3.0)
        enc = HevcLiteEncoder(search_range=4, qp=4)
        base = enc.encode(frames, SADAccelerator(n_pixels=64))
        increases = {}
        for k in (2, 4, 6):
            acc = SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=k)
            increases[k] = enc.encode(frames, acc).bitrate_increase_percent(base)
        return increases

    def test_bitrate_increase_monotone_in_lsbs(self, encoded):
        assert encoded[2] <= encoded[4] <= encoded[6]

    def test_six_lsbs_clearly_worse_than_two(self, encoded):
        """'Approximating 6-bits ... results in a large increase in the
        bit-rate ... 2-bits and 4-bits result in a marginal increase.'"""
        assert encoded[6] > encoded[2] + 0.5
        assert encoded[2] < 1.5

    def test_four_lsbs_lower_power_than_two_for_all_cells(self):
        """'Approximating 4-bits always resulted in an overall lower
        power consumption compared to approximating the 2-bits, for all
        types of approximate adders.'"""
        for cell in ("ApxFA1", "ApxFA2", "ApxFA3", "ApxFA4", "ApxFA5"):
            two = SADAccelerator(n_pixels=64, fa=cell, approx_lsbs=2)
            four = SADAccelerator(n_pixels=64, fa=cell, approx_lsbs=4)
            assert four.energy_per_op_fj < two.energy_per_op_fj


class TestFig10:
    def test_ssim_varies_with_content(self):
        """'For the same adder and kernel, the achieved accuracy varied
        across the images.'"""
        exact = LowPassFilterAccelerator()
        approx = LowPassFilterAccelerator(fa="ApxFA1", approx_lsbs=5)
        scores = {
            name: ssim(exact.apply(img), approx.apply(img))
            for name, img in standard_images(64).items()
        }
        values = list(scores.values())
        assert len(values) == 7
        assert max(values) - min(values) > 0.001
        assert all(v > 0.5 for v in values)  # still recognizable


class TestCrossLayerComposition:
    def test_mode_selection_over_characterized_accelerators(self):
        """Sec. 6: the approximation manager picks the cheapest mode that
        satisfies each application's quality constraint, using real
        characterization data."""
        from repro.accelerators.manager import (
            AcceleratorMode,
            AcceleratorProfile,
            ApplicationRequest,
            ApproximationManager,
        )

        frames = moving_sequence(n_frames=2, size=32, noise_sigma=2.0)
        enc = HevcLiteEncoder(search_range=2)
        base = enc.encode(frames, SADAccelerator(n_pixels=64))
        modes = []
        for k in (0, 2, 4, 6):
            acc = SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=k)
            result = enc.encode(frames, acc)
            quality = min(
                1.0, base.total_bits / max(result.total_bits, 1)
            )
            modes.append(
                AcceleratorMode(f"lsb{k}", quality, acc.energy_per_op_fj)
            )
        profile = AcceleratorProfile("sad", tuple(modes))
        mgr = ApproximationManager([profile])
        strict = mgr.select_modes([ApplicationRequest("hq", "sad", 0.999)])
        loose = mgr.select_modes([ApplicationRequest("lq", "sad", 0.8)])
        assert loose.total_power_nw <= strict.total_power_nw
