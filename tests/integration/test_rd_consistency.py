"""Integration: single-point (Fig. 9) and RD-curve views must agree."""

import numpy as np
import pytest

from repro.accelerators.sad import SADAccelerator
from repro.media.synthetic import moving_sequence
from repro.video.codec import HevcLiteEncoder
from repro.video.rd import bd_rate_percent, rd_sweep


@pytest.fixture(scope="module")
def frames():
    return moving_sequence(n_frames=3, size=48, noise_sigma=3.0)


class TestRdConsistency:
    def test_single_point_and_curve_agree_on_ordering(self, frames):
        """If variant A costs more bits than variant B at one qp, its
        whole RD curve should sit at or above B's (BD-rate ordering)."""
        exact = SADAccelerator(n_pixels=64)
        mild = SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=2)
        heavy = SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=6)
        qps = (3, 6, 12)

        curve_exact = rd_sweep(frames, exact, qps=qps, search_range=3)
        curve_mild = rd_sweep(frames, mild, qps=qps, search_range=3)
        curve_heavy = rd_sweep(frames, heavy, qps=qps, search_range=3)

        bd_mild = bd_rate_percent(curve_exact, curve_mild)
        bd_heavy = bd_rate_percent(curve_exact, curve_heavy)
        # Curve view: heavier approximation costs at least as much rate.
        assert bd_heavy >= bd_mild - 0.5
        # Single-point view at the middle qp agrees in direction.
        encoder = HevcLiteEncoder(search_range=3, qp=6)
        base = encoder.encode(frames, exact)
        single_mild = encoder.encode(frames, mild).bitrate_increase_percent(base)
        single_heavy = encoder.encode(frames, heavy).bitrate_increase_percent(base)
        assert single_heavy >= single_mild - 0.5

    def test_psnr_stability_under_mild_approximation(self, frames):
        """Mild SAD approximation must not visibly damage reconstruction
        quality at any rate point (the quality loss shows up as bits)."""
        exact = SADAccelerator(n_pixels=64)
        mild = SADAccelerator(n_pixels=64, fa="ApxFA1", approx_lsbs=2)
        for qp in (3, 8):
            encoder = HevcLiteEncoder(search_range=3, qp=qp)
            base = encoder.encode(frames, exact)
            test = encoder.encode(frames, mild)
            assert test.psnr_db >= base.psnr_db - 0.5
