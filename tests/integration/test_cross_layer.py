"""Cross-layer integration: one thread from logic cells to applications.

These tests exercise the full stack the paper's title promises -- a
change at the *logic* layer (a different 1-bit cell, a stuck-at defect,
a GeAr configuration) must propagate coherently through the arithmetic,
accelerator, and application layers.
"""

import numpy as np
import pytest

from repro.accelerators.filters import LowPassFilterAccelerator
from repro.accelerators.sad import SADAccelerator
from repro.adders.fulladder import FULL_ADDERS
from repro.adders.netlist_builder import build_ripple_adder_netlist
from repro.adders.ripple import ApproximateRippleAdder
from repro.errors.pmf import ErrorPMF
from repro.errors.propagation import predict_sad_error_pmf
from repro.logic.faults import StuckAtFault, inject_stuck_at
from repro.logic.simulate import estimate_power
from repro.media.ssim import ssim
from repro.media.synthetic import moving_sequence, standard_images
from repro.video.codec import HevcLiteEncoder


class TestLogicToApplication:
    def test_cell_choice_propagates_to_codec_bitrate(self):
        """A single 1-bit cell swap at the logic layer changes the
        application-layer bit-rate, monotonically with aggressiveness."""
        frames = moving_sequence(n_frames=2, size=32, noise_sigma=2.0)
        encoder = HevcLiteEncoder(search_range=2, qp=4)
        base = encoder.encode(frames, SADAccelerator(n_pixels=64))
        # Cell error count at the logic layer (Table III ordering).
        mild = encoder.encode(
            frames, SADAccelerator(n_pixels=64, fa="ApxFA1", approx_lsbs=6)
        )
        harsh = encoder.encode(
            frames, SADAccelerator(n_pixels=64, fa="ApxFA5", approx_lsbs=6)
        )
        assert base.total_bits <= mild.total_bits + 50
        assert mild.psnr_db >= harsh.psnr_db - 1.0

    def test_power_quality_tradeoff_consistent_across_layers(self):
        """Logic-layer power savings and application-layer quality loss
        move together: a cheaper cell never costs zero quality while a
        pricier one costs more power."""
        cells = ("ApxFA1", "ApxFA3", "ApxFA5")
        powers = []
        ssims = []
        image = standard_images(48)["blobs"]
        reference = LowPassFilterAccelerator().apply(image)
        for cell in cells:
            netlist = build_ripple_adder_netlist(
                ApproximateRippleAdder(8, approx_fa=cell, num_approx_lsbs=5)
            )
            powers.append(estimate_power(netlist, n_random_vectors=256).total_nw)
            accelerator = LowPassFilterAccelerator(fa=cell, approx_lsbs=5)
            ssims.append(ssim(reference, accelerator.apply(image)))
        # ApxFA5 is the cheapest cell of the three ...
        assert powers[2] == min(powers)
        # ... and every approximate configuration loses some quality.
        assert all(s < 1.0 for s in ssims)

    def test_statistical_prediction_matches_accelerator_simulation(self, rng):
        """Characterize components once, predict the SAD accelerator's
        error PMF analytically, validate against direct simulation."""
        n_pixels = 16
        accelerator = SADAccelerator(
            n_pixels=n_pixels, fa="ApxFA2", approx_lsbs=3
        )
        exact = SADAccelerator(n_pixels=n_pixels)
        # Component-level characterization.
        a = rng.integers(0, 256, 60_000)
        b = rng.integers(0, 256, 60_000)
        pixel_pmf = ErrorPMF.from_pairs(
            accelerator.absolute_differences(a, b), np.abs(a - b)
        )
        # The tree adders err too; approximate them with the first-level
        # adder's PMF measured on representative operands.
        t1 = accelerator._tree[0]
        ops = rng.integers(0, 256, 60_000)
        ops2 = rng.integers(0, 256, 60_000)
        adder_pmf = ErrorPMF.from_pairs(t1.add(ops, ops2), ops + ops2)
        predicted = predict_sad_error_pmf(pixel_pmf, adder_pmf, n_pixels)
        # Simulation.
        blocks_a = rng.integers(0, 256, (20_000, n_pixels))
        blocks_b = rng.integers(0, 256, (20_000, n_pixels))
        observed = accelerator.sad(blocks_a, blocks_b) - exact.sad(
            blocks_a, blocks_b
        )
        assert predicted.mean == pytest.approx(
            float(observed.mean()), abs=max(3.0, 0.3 * abs(predicted.mean))
        )


class TestDefectsThroughTheStack:
    def test_stuck_at_fault_visible_in_adder_outputs(self, rng):
        """A logic-layer defect in an approximate adder perturbs the
        arithmetic layer measurably."""
        adder = ApproximateRippleAdder(8, approx_fa="ApxFA1", num_approx_lsbs=4)
        netlist = build_ripple_adder_netlist(adder)
        # Fault the MSB cell's carry: high-impact site.
        target = next(
            g.output for g in netlist.gates if g.output == "cout"
        )
        faulty = inject_stuck_at(netlist, StuckAtFault(target, 1))
        from repro.adders.netlist_builder import evaluate_adder_netlist

        a = rng.integers(0, 256, 1000)
        b = rng.integers(0, 256, 1000)
        clean = evaluate_adder_netlist(netlist, a, b)
        broken = evaluate_adder_netlist(faulty, a, b)
        flips = np.mean(clean != broken)
        assert flips > 0.3  # carry-out stuck at 1 hits most vectors

    def test_lsb_fault_cheaper_than_msb_fault(self, rng):
        """Where the fault lands matters: an LSB-cell defect perturbs the
        sum far less than an MSB-cell defect -- the same significance
        argument that justifies LSB-first approximation."""
        adder = ApproximateRippleAdder(8)
        netlist = build_ripple_adder_netlist(adder)
        from repro.adders.netlist_builder import evaluate_adder_netlist

        a = rng.integers(0, 256, 2000)
        b = rng.integers(0, 256, 2000)
        clean = evaluate_adder_netlist(netlist, a, b)
        lsb_fault = inject_stuck_at(netlist, StuckAtFault("s0", 1))
        msb_fault = inject_stuck_at(netlist, StuckAtFault("s7", 1))
        lsb_med = np.abs(
            evaluate_adder_netlist(lsb_fault, a, b) - clean
        ).mean()
        msb_med = np.abs(
            evaluate_adder_netlist(msb_fault, a, b) - clean
        ).mean()
        assert msb_med > 32 * lsb_med
