"""Tier-1 wiring of the benchmark smoke check (``benchmarks/_smoke.py``).

Runs the down-scaled Fig. 8 SAD surface under both evaluation engines
and fails the suite on any divergence, so a fast-path regression can
never land silently.
"""

import importlib.util
import sys
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def _load_smoke():
    spec = importlib.util.spec_from_file_location(
        "repro_bench_smoke", BENCHMARKS_DIR / "_smoke.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_fast_path_never_diverges_on_fig8_surface():
    smoke = _load_smoke()
    records = smoke.run_smoke()
    assert records, "smoke run produced no records"
    assert {r["variant"] for r in records} == {
        "AccuSAD", "ApxSAD1", "ApxSAD2", "ApxSAD3", "ApxSAD4", "ApxSAD5",
    }
    diverged = [r["variant"] for r in records if r["diverged"]]
    assert not diverged, f"fast path diverged for {diverged}"
    assert all(r["max_abs_diff"] == 0 for r in records)
