"""Tests for stuck-at fault injection."""

import numpy as np
import pytest

from repro.adders.fulladder import FULL_ADDERS
from repro.logic.faults import (
    StuckAtFault,
    fault_error_rates,
    fault_sites,
    inject_stuck_at,
)
from repro.logic.netlist import Netlist


def and_or() -> Netlist:
    nl = Netlist("ao", inputs=["a", "b", "c"], outputs=["y"])
    nl.add_gate("AND2", ["a", "b"], "m")
    nl.add_gate("OR2", ["m", "c"], "y")
    return nl


class TestInjection:
    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError, match="0/1"):
            StuckAtFault("m", 2)

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="site"):
            inject_stuck_at(and_or(), StuckAtFault("ghost", 0))

    def test_fault_sites_are_gate_outputs(self):
        assert set(fault_sites(and_or())) == {"m", "y"}

    def test_stuck_at_zero_masks_and(self):
        faulty = inject_stuck_at(and_or(), StuckAtFault("m", 0))
        out = faulty.evaluate(
            {"a": np.array([1, 1]), "b": np.array([1, 1]),
             "c": np.array([0, 1])}
        )
        # m stuck at 0 -> y = c.
        assert list(out["y"]) == [0, 1]

    def test_stuck_at_one_forces_output(self):
        faulty = inject_stuck_at(and_or(), StuckAtFault("y", 1))
        out = faulty.evaluate(
            {"a": np.array([0]), "b": np.array([0]), "c": np.array([0])}
        )
        assert int(out["y"][0]) == 1

    def test_original_netlist_untouched(self):
        nl = and_or()
        n_gates = len(nl.gates)
        inject_stuck_at(nl, StuckAtFault("m", 0))
        assert len(nl.gates) == n_gates

    def test_faulty_netlist_is_valid(self):
        faulty = inject_stuck_at(and_or(), StuckAtFault("m", 1))
        faulty.validate()


class TestFaultRates:
    def test_all_single_faults_by_default(self):
        rates = fault_error_rates(and_or())
        assert len(rates) == 2 * len(fault_sites(and_or()))

    def test_rates_in_unit_interval(self):
        rates = fault_error_rates(FULL_ADDERS["AccuFA"].netlist())
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())

    def test_redundant_fault_has_zero_rate(self):
        # y = a OR (a AND b): the AND is logically redundant, so m
        # stuck-at-0 is undetectable.
        nl = Netlist("red", inputs=["a", "b"], outputs=["y"])
        nl.add_gate("AND2", ["a", "b"], "m")
        nl.add_gate("OR2", ["a", "m"], "y")
        rates = fault_error_rates(nl, [StuckAtFault("m", 0)])
        assert rates[StuckAtFault("m", 0)] == 0.0

    def test_output_fault_rate_known(self):
        # y stuck at 1 in AND(a,b): wrong for 3 of 4 vectors.
        nl = Netlist("and", inputs=["a", "b"], outputs=["y"])
        nl.add_gate("AND2", ["a", "b"], "y")
        rates = fault_error_rates(nl, [StuckAtFault("y", 1)])
        assert rates[StuckAtFault("y", 1)] == pytest.approx(0.75)

    def test_approximate_adder_masks_some_faults(self):
        """ApxFA5 has no logic, so it has no injectable faults at all --
        the degenerate end of fault resilience."""
        netlist = FULL_ADDERS["ApxFA5"].netlist()
        sites = fault_sites(netlist)
        rates = fault_error_rates(netlist)
        # Wire outputs are sites, but stuck faults on them do flip
        # outputs; the point is the *count* shrinks with approximation.
        accurate_sites = fault_sites(FULL_ADDERS["AccuFA"].netlist())
        assert len(sites) <= len(accurate_sites)
