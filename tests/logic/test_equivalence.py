"""Tests for combinational equivalence checking."""

import pytest

from repro.adders.fulladder import FULL_ADDER_NAMES, FULL_ADDERS
from repro.adders.netlist_builder import build_ripple_adder_netlist
from repro.adders.ripple import ApproximateRippleAdder
from repro.logic.equivalence import (
    check_equivalence,
    count_error_cases,
    stratified_stimuli,
)
from repro.logic.netlist import Netlist

#: Table III of the paper, column "#Error Cases" -- hard-coded on
#: purpose so a transcription slip in ``_TABLES`` cannot silently adjust
#: both sides of the comparison.
_TABLE_III_ERROR_CASES = {
    "AccuFA": 0,
    "ApxFA1": 2,
    "ApxFA2": 2,
    "ApxFA3": 3,
    "ApxFA4": 3,
    "ApxFA5": 4,
}


def xor_gate() -> Netlist:
    nl = Netlist("x", inputs=["a", "b"], outputs=["y"])
    nl.add_gate("XOR2", ["a", "b"], "y")
    return nl


def xor_from_nands() -> Netlist:
    nl = Netlist("x2", inputs=["a", "b"], outputs=["y"])
    nl.add_gate("NAND2", ["a", "b"], "n1")
    nl.add_gate("NAND2", ["a", "n1"], "n2")
    nl.add_gate("NAND2", ["b", "n1"], "n3")
    nl.add_gate("NAND2", ["n2", "n3"], "y")
    return nl


class TestEquivalence:
    def test_identical_netlists_equivalent(self):
        report = check_equivalence(xor_gate(), xor_gate())
        assert report.equivalent and report.exhaustive
        assert report.n_mismatches == 0

    def test_different_structures_same_function(self):
        report = check_equivalence(xor_gate(), xor_from_nands())
        assert report.equivalent

    def test_inequivalent_netlists_report_counterexamples(self):
        nl = Netlist("and", inputs=["a", "b"], outputs=["y"])
        nl.add_gate("AND2", ["a", "b"], "y")
        report = check_equivalence(xor_gate(), nl)
        assert not report.equivalent
        assert report.n_mismatches == 3  # 01, 10 differ, 11 differs
        assert len(report.counterexamples) == 3
        for example in report.counterexamples:
            assert set(example) == {"a", "b"}

    def test_interface_mismatch_rejected(self):
        nl = Netlist("other", inputs=["a", "c"], outputs=["y"])
        nl.add_gate("AND2", ["a", "c"], "y")
        with pytest.raises(ValueError, match="input mismatch"):
            check_equivalence(xor_gate(), nl)

    def test_structural_vs_sop_adders(self):
        """Every Table III adder's hand mapping equals its SOP synthesis."""
        for name in FULL_ADDER_NAMES:
            fa = FULL_ADDERS[name]
            sop = fa.sop_netlist()
            # Rename to match interfaces (sop uses same port names).
            report = check_equivalence(fa.netlist(), sop)
            assert report.equivalent, name
            assert report.exhaustive

    def test_large_interface_random_mode(self):
        adder = ApproximateRippleAdder(12)
        netlist = build_ripple_adder_netlist(adder)
        report = check_equivalence(netlist, netlist, n_random_vectors=256)
        assert report.equivalent
        assert not report.exhaustive
        assert report.n_vectors == 256


class TestStimulusModes:
    def test_stratified_mode_on_wide_interface(self):
        adder = ApproximateRippleAdder(12)
        netlist = build_ripple_adder_netlist(adder)
        report = check_equivalence(
            netlist, netlist, n_random_vectors=256, mode="stratified"
        )
        assert report.equivalent and not report.exhaustive
        assert report.n_vectors == 256

    def test_forced_exhaustive_on_small_interface(self):
        report = check_equivalence(
            xor_gate(), xor_from_nands(), mode="exhaustive"
        )
        assert report.equivalent and report.exhaustive

    def test_forced_exhaustive_rejected_when_too_wide(self):
        adder = ApproximateRippleAdder(12)
        netlist = build_ripple_adder_netlist(adder)
        with pytest.raises(ValueError, match="exhaustive limit"):
            check_equivalence(netlist, netlist, mode="exhaustive")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            check_equivalence(xor_gate(), xor_gate(), mode="psychic")

    def test_stratified_stimuli_cover_corners(self):
        names = [f"i{k}" for k in range(24)]
        stimuli = stratified_stimuli(names, 64, seed=0)
        assert set(stimuli) == set(names)
        rows = list(zip(*(stimuli[n].tolist() for n in names)))
        assert tuple([0] * 24) in rows
        assert tuple([1] * 24) in rows

    def test_stratified_stimuli_deterministic(self):
        names = ["a", "b", "c"]
        one = stratified_stimuli(names, 32, seed=5)
        two = stratified_stimuli(names, 32, seed=5)
        for name in names:
            assert (one[name] == two[name]).all()

    def test_stratified_catches_carry_chain_bug(self):
        """A fault on the top carry of a 12-bit adder needs long
        propagate chains; the corner/dense strata hit it where tiny
        uniform samples can miss it."""
        good = build_ripple_adder_netlist(ApproximateRippleAdder(12))
        report = check_equivalence(good, good, n_random_vectors=64,
                                   mode="stratified")
        assert report.equivalent  # sanity: no false alarms


class TestErrorCases:
    @pytest.mark.parametrize("name", FULL_ADDER_NAMES)
    def test_error_cases_match_table_iii(self, name):
        golden = FULL_ADDERS["AccuFA"].netlist()
        candidate = FULL_ADDERS[name].netlist()
        assert count_error_cases(golden, candidate) == FULL_ADDERS[
            name
        ].n_error_cases

    @pytest.mark.parametrize(
        "name,expected", sorted(_TABLE_III_ERROR_CASES.items())
    )
    def test_error_cases_match_paper_hardcoded(self, name, expected):
        """Netlist-level error-case counts against the paper's printed
        Table III numbers (independent of the library's own tables)."""
        golden = FULL_ADDERS["AccuFA"].netlist()
        candidate = FULL_ADDERS[name].netlist()
        assert count_error_cases(golden, candidate) == expected
        assert FULL_ADDERS[name].n_error_cases == expected

    def test_too_many_inputs_rejected(self):
        adder = ApproximateRippleAdder(12)
        netlist = build_ripple_adder_netlist(adder)
        with pytest.raises(ValueError, match="exhaustive"):
            count_error_cases(netlist, netlist)
