"""Tests for the standard-cell library."""

import pytest

from repro.logic.cells import CELL_LIBRARY, Cell, cell


class TestCellLookup:
    def test_known_cell(self):
        nand = cell("NAND2")
        assert nand.name == "NAND2"
        assert nand.n_inputs == 2

    def test_unknown_cell_raises_with_known_names(self):
        with pytest.raises(KeyError, match="NAND2"):
            cell("FROBNICATOR")

    def test_library_has_basic_cells(self):
        for name in ("INV", "NAND2", "NOR2", "AND2", "OR2", "XOR2",
                     "XNOR2", "MAJ3", "MIN3", "MUX2", "WIRE"):
            assert name in CELL_LIBRARY


class TestCellSemantics:
    @pytest.mark.parametrize(
        "name, inputs, expected",
        [
            ("INV", (0,), 1),
            ("INV", (1,), 0),
            ("NAND2", (1, 1), 0),
            ("NAND2", (1, 0), 1),
            ("NOR2", (0, 0), 1),
            ("NOR2", (0, 1), 0),
            ("XOR2", (1, 0), 1),
            ("XOR2", (1, 1), 0),
            ("XNOR2", (1, 1), 1),
            ("MAJ3", (1, 1, 0), 1),
            ("MAJ3", (1, 0, 0), 0),
            ("MIN3", (1, 0, 0), 1),
            ("MIN3", (1, 1, 0), 0),
            ("MUX2", (0, 1, 0), 1),  # select=0 -> first data input
            ("MUX2", (1, 1, 0), 0),  # select=1 -> second data input
            ("AOI21", (1, 1, 0), 0),
            ("AOI21", (0, 0, 0), 1),
            ("WIRE", (1,), 1),
        ],
    )
    def test_truth(self, name, inputs, expected):
        assert cell(name).evaluate(*inputs) == expected

    def test_xor3_matches_parity(self):
        xor3 = cell("XOR3")
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    assert xor3.evaluate(a, b, c) == (a ^ b ^ c)

    def test_maj3_is_complement_of_min3(self):
        maj, mino = cell("MAJ3"), cell("MIN3")
        for i in range(8):
            bits = ((i >> 2) & 1, (i >> 1) & 1, i & 1)
            assert maj.evaluate(*bits) == 1 - mino.evaluate(*bits)

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError, match="expects 2 inputs"):
            cell("NAND2").evaluate(1)


class TestCellPhysics:
    def test_wire_is_free(self):
        wire = cell("WIRE")
        assert wire.area_ge == 0.0
        assert wire.energy_per_toggle_fj == 0.0
        assert wire.delay_ps == 0.0

    def test_nand2_is_the_area_unit(self):
        assert cell("NAND2").area_ge == pytest.approx(1.0)

    def test_xor_larger_than_nand(self):
        assert cell("XOR2").area_ge > cell("NAND2").area_ge

    def test_energy_and_delay_scale_with_area(self):
        small, big = cell("INV"), cell("XOR3")
        assert big.energy_per_toggle_fj > small.energy_per_toggle_fj
        assert big.delay_ps > small.delay_ps

    def test_invalid_truth_table_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            Cell("BAD", 2, (0, 1), 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="0/1"):
            Cell("BAD", 1, (0, 2), 1.0, 1.0, 1.0, 1.0)
