"""Tests for netlist construction, evaluation and metrics."""

import numpy as np
import pytest

from repro.logic.netlist import Netlist, NetlistError


def half_adder() -> Netlist:
    nl = Netlist("ha", inputs=["a", "b"], outputs=["s", "c"])
    nl.add_gate("XOR2", ["a", "b"], "s")
    nl.add_gate("AND2", ["a", "b"], "c")
    return nl


class TestConstruction:
    def test_duplicate_driver_rejected(self):
        nl = half_adder()
        with pytest.raises(NetlistError, match="already has a driver"):
            nl.add_gate("OR2", ["a", "b"], "s")

    def test_driving_an_input_rejected(self):
        nl = half_adder()
        with pytest.raises(NetlistError, match="cannot be driven"):
            nl.add_gate("OR2", ["a", "b"], "a")

    def test_driving_a_constant_rejected(self):
        nl = half_adder()
        with pytest.raises(NetlistError, match="cannot be driven"):
            nl.add_gate("OR2", ["a", "b"], "VDD")

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(NetlistError, match="duplicate"):
            Netlist("bad", inputs=["a", "a"])

    def test_wrong_gate_arity_rejected(self):
        nl = half_adder()
        with pytest.raises(NetlistError, match="expected 2 inputs"):
            nl.add_gate("AND2", ["a"], "x")

    def test_validate_detects_undriven_input(self):
        nl = Netlist("bad", inputs=["a"], outputs=["y"])
        nl.add_gate("AND2", ["a", "ghost"], "y")
        with pytest.raises(NetlistError, match="ghost"):
            nl.validate()

    def test_validate_detects_undriven_output(self):
        nl = Netlist("bad", inputs=["a"], outputs=["nowhere"])
        with pytest.raises(NetlistError, match="nowhere"):
            nl.validate()


class TestEvaluation:
    def test_half_adder_truth(self):
        nl = half_adder()
        out = nl.evaluate(
            {"a": np.array([0, 0, 1, 1]), "b": np.array([0, 1, 0, 1])}
        )
        assert list(out["s"]) == [0, 1, 1, 0]
        assert list(out["c"]) == [0, 0, 0, 1]

    def test_constants_available(self):
        nl = Netlist("const", inputs=["a"], outputs=["y"])
        nl.add_gate("AND2", ["a", "VDD"], "y")
        out = nl.evaluate({"a": np.array([0, 1])})
        assert list(out["y"]) == [0, 1]

    def test_gnd_forces_zero(self):
        nl = Netlist("gnd", inputs=["a"], outputs=["y"])
        nl.add_gate("AND2", ["a", "GND"], "y")
        out = nl.evaluate({"a": np.array([1, 1])})
        assert list(out["y"]) == [0, 0]

    def test_missing_stimulus_raises(self):
        nl = half_adder()
        with pytest.raises(NetlistError, match="missing"):
            nl.evaluate({"a": np.array([0])})

    def test_mismatched_shapes_raise(self):
        nl = half_adder()
        with pytest.raises(NetlistError, match="share one shape"):
            nl.evaluate({"a": np.array([0, 1]), "b": np.array([0])})

    def test_trace_returns_internal_nets(self):
        nl = Netlist("chain", inputs=["a"], outputs=["y"])
        nl.add_gate("INV", ["a"], "mid")
        nl.add_gate("INV", ["mid"], "y")
        trace = nl.evaluate({"a": np.array([0, 1])}, trace=True)
        assert "mid" in trace
        assert list(trace["mid"]) == [1, 0]

    def test_scalar_inputs(self):
        nl = half_adder()
        out = nl.evaluate({"a": np.array(1), "b": np.array(1)})
        assert int(out["c"]) == 1

    def test_out_of_order_gate_insertion(self):
        # Gates added consumer-first must still evaluate correctly.
        nl = Netlist("ooo", inputs=["a"], outputs=["y"])
        nl.add_gate("INV", ["mid"], "y")
        nl.add_gate("INV", ["a"], "mid")
        out = nl.evaluate({"a": np.array([0, 1])})
        assert list(out["y"]) == [0, 1]

    def test_combinational_loop_detected(self):
        nl = Netlist("loop", inputs=["a"], outputs=["y"])
        nl.add_gate("AND2", ["a", "y"], "x")
        nl.add_gate("INV", ["x"], "y")
        with pytest.raises(NetlistError, match="loop"):
            nl.evaluate({"a": np.array([1])})


class TestMetrics:
    def test_area_is_sum_of_cells(self):
        nl = half_adder()
        assert nl.area_ge == pytest.approx(2.33 + 1.33)

    def test_cell_counts(self):
        nl = half_adder()
        assert nl.cell_counts() == {"XOR2": 1, "AND2": 1}

    def test_delay_is_longest_path(self):
        nl = Netlist("path", inputs=["a"], outputs=["y"])
        nl.add_gate("INV", ["a"], "m1")
        nl.add_gate("INV", ["m1"], "m2")
        nl.add_gate("INV", ["m2"], "y")
        single = Netlist("one", inputs=["a"], outputs=["y"])
        single.add_gate("INV", ["a"], "y")
        assert nl.delay_ps() == pytest.approx(3 * single.delay_ps())

    def test_repr_mentions_gate_count(self):
        assert "2 gates" in repr(half_adder())
