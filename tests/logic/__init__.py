"""Test package."""
