"""Tests for simulation, toggle counting and power estimation."""

import numpy as np
import pytest

from repro.logic.netlist import Netlist
from repro.logic.simulate import (
    estimate_power,
    exhaustive_stimuli,
    random_stimuli,
    toggle_counts,
)


def inverter_chain(n: int) -> Netlist:
    nl = Netlist("chain", inputs=["a"], outputs=[f"n{n}"])
    prev = "a"
    for i in range(1, n + 1):
        nl.add_gate("INV", [prev], f"n{i}")
        prev = f"n{i}"
    return nl


class TestStimuli:
    def test_exhaustive_covers_all_combinations(self):
        stim = exhaustive_stimuli(["a", "b", "c"])
        rows = set(
            zip(stim["a"].tolist(), stim["b"].tolist(), stim["c"].tolist())
        )
        assert len(rows) == 8

    def test_exhaustive_first_name_toggles_fastest(self):
        stim = exhaustive_stimuli(["x", "y"])
        assert list(stim["x"]) == [0, 1, 0, 1]
        assert list(stim["y"]) == [0, 0, 1, 1]

    def test_random_stimuli_deterministic(self):
        s1 = random_stimuli(["a"], 100, seed=5)
        s2 = random_stimuli(["a"], 100, seed=5)
        assert np.array_equal(s1["a"], s2["a"])

    def test_random_stimuli_binary(self):
        s = random_stimuli(["a"], 1000, seed=1)
        assert set(np.unique(s["a"])) <= {0, 1}


class TestToggleCounts:
    def test_alternating_input_toggles_every_cycle(self):
        nl = inverter_chain(1)
        counts = toggle_counts(nl, {"a": np.array([0, 1, 0, 1])})
        assert counts["a"] == 3
        assert counts["n1"] == 3

    def test_constant_input_never_toggles(self):
        nl = inverter_chain(1)
        counts = toggle_counts(nl, {"a": np.array([1, 1, 1])})
        assert counts["n1"] == 0

    def test_single_vector_has_no_toggles(self):
        nl = inverter_chain(1)
        counts = toggle_counts(nl, {"a": np.array([1])})
        assert counts["n1"] == 0


class TestEstimatePower:
    def test_idle_design_has_only_leakage(self):
        nl = inverter_chain(2)
        report = estimate_power(nl, {"a": np.array([0, 0, 0, 0])})
        assert report.dynamic_nw == 0.0
        assert report.static_nw == pytest.approx(nl.leakage_nw)
        assert report.total_nw == report.static_nw

    def test_activity_increases_power(self):
        nl = inverter_chain(2)
        quiet = estimate_power(nl, {"a": np.array([0, 0, 0, 0])})
        busy = estimate_power(nl, {"a": np.array([0, 1, 0, 1])})
        assert busy.total_nw > quiet.total_nw

    def test_power_scales_with_frequency(self):
        nl = inverter_chain(2)
        stim = {"a": np.array([0, 1, 0, 1])}
        slow = estimate_power(nl, stim, frequency_hz=1e6)
        fast = estimate_power(nl, stim, frequency_hz=1e8)
        assert fast.dynamic_nw == pytest.approx(100 * slow.dynamic_nw)
        assert fast.static_nw == slow.static_nw

    def test_default_stimulus_exhaustive_for_small_designs(self):
        nl = inverter_chain(1)
        report = estimate_power(nl)
        assert report.n_vectors == 2

    def test_longer_chain_burns_more(self):
        stim = {"a": np.array([0, 1] * 8)}
        short = estimate_power(inverter_chain(1), stim)
        long = estimate_power(inverter_chain(4), stim)
        assert long.total_nw > short.total_nw
