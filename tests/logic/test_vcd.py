"""Tests for VCD export and SAIF-style activity summaries."""

import numpy as np
import pytest

from repro.logic.netlist import Netlist
from repro.logic.simulate import exhaustive_stimuli, toggle_counts
from repro.logic.vcd import NetActivity, saif_summary, write_vcd


def half_adder() -> Netlist:
    nl = Netlist("ha", inputs=["a", "b"], outputs=["s", "c"])
    nl.add_gate("XOR2", ["a", "b"], "s")
    nl.add_gate("AND2", ["a", "b"], "c")
    return nl


STIM = {"a": np.array([0, 1, 0, 1]), "b": np.array([0, 0, 1, 1])}


class TestSaifSummary:
    def test_one_record_per_net(self):
        records = saif_summary(half_adder(), STIM)
        assert {r.net for r in records} == {"a", "b", "s", "c"}

    def test_t0_t1_partition_cycles(self):
        for record in saif_summary(half_adder(), STIM):
            assert record.t0 + record.t1 == 4

    def test_toggles_match_toggle_counts(self):
        nl = half_adder()
        records = {r.net: r for r in saif_summary(nl, STIM)}
        counts = toggle_counts(nl, STIM)
        for net, count in counts.items():
            if net in records:
                assert records[net].tc == count, net

    def test_known_activity(self):
        records = {r.net: r for r in saif_summary(half_adder(), STIM)}
        # s = a^b over cycles: 0,1,1,0 -> t1=2, toggles=2.
        assert records["s"].t1 == 2
        assert records["s"].tc == 2
        # c = a&b: 0,0,0,1 -> t1=1, one toggle.
        assert records["c"].t1 == 1
        assert records["c"].tc == 1


class TestVcd:
    def test_header_structure(self):
        vcd = write_vcd(half_adder(), STIM)
        assert "$timescale 1ns $end" in vcd
        assert "$scope module ha $end" in vcd
        assert "$enddefinitions $end" in vcd
        assert vcd.count("$var wire 1 ") == 4

    def test_initial_dump_covers_all_nets(self):
        vcd = write_vcd(half_adder(), STIM)
        dump = vcd.split("$dumpvars")[1].split("$end")[0].strip().splitlines()
        assert len(dump) == 4
        assert all(line[0] in "01" for line in dump)

    def test_value_changes_only_on_change(self):
        constant = {"a": np.array([1, 1, 1]), "b": np.array([0, 0, 0])}
        vcd = write_vcd(half_adder(), constant)
        # After the initial dump, no timestep should appear except the
        # final timestamp.
        body = vcd.split("$end")[-1]
        assert "#1" not in body and "#2" not in body
        assert "#3" in body

    def test_change_count_matches_toggles(self):
        nl = half_adder()
        vcd = write_vcd(nl, STIM)
        counts = toggle_counts(nl, STIM)
        body = vcd.split("$dumpvars")[1]
        body = body.split("$end", 1)[1]
        n_changes = sum(
            1 for line in body.splitlines() if line and line[0] in "01"
        )
        assert n_changes == sum(counts.values())

    def test_unique_identifiers_for_many_nets(self):
        # Force > 94 nets to exercise multi-character identifiers.
        nl = Netlist("big", inputs=["a"], outputs=["n99"])
        prev = "a"
        for i in range(100):
            nl.add_gate("INV", [prev], f"n{i}")
            prev = f"n{i}"
        vcd = write_vcd(nl, {"a": np.array([0, 1])})
        ids = [
            line.split()[3]
            for line in vcd.splitlines()
            if line.startswith("$var")
        ]
        assert len(ids) == len(set(ids)) == 101

    def test_custom_timescale(self):
        vcd = write_vcd(half_adder(), STIM, timescale="10ps")
        assert "$timescale 10ps $end" in vcd
