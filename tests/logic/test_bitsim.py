"""Bit-parallel engine: scalar-vs-bitsim identity + packed helpers.

The bit-parallel compiled engine (:mod:`repro.logic.bitsim`) is the
default simulation path for every consumer, so its contract is strict
bit-identity with the legacy scalar walk.  These tests sweep the
identity exhaustively over all Table III netlists (both structural and
SOP forms) and the 8-bit ripple datapaths, and pin down the packed
helper primitives and the compile-cache invalidation rules.
"""

import numpy as np
import pytest

from repro.adders.fulladder import FULL_ADDER_NAMES, FULL_ADDERS
from repro.adders.netlist_builder import (
    build_ripple_adder_netlist,
    evaluate_adder_netlist,
)
from repro.adders.ripple import ApproximateRippleAdder
from repro.logic import bitsim
from repro.logic.bitsim import (
    CompiledNetlist,
    compile_netlist,
    lane_mask,
    n_words_for,
    pack_lanes,
    packed_exhaustive_stimuli,
    packed_toggles,
    popcount,
    unpack_lanes,
)
from repro.logic.equivalence import check_equivalence, count_error_cases
from repro.logic.faults import (
    StuckAtFault,
    fault_error_rates,
    fault_sites,
    inject_stuck_at,
)
from repro.logic.netlist import Netlist, NetlistError
from repro.logic.simulate import (
    estimate_power,
    exhaustive_stimuli,
    random_stimuli,
    toggle_counts,
)


def _ripple_netlist(cell, width=8, lsbs=4):
    adder = ApproximateRippleAdder(
        width, approx_fa=cell, num_approx_lsbs=lsbs
    )
    return build_ripple_adder_netlist(adder)


def _assert_traces_identical(netlist, stimuli):
    """Full per-net waveform identity between the two engines."""
    scalar = netlist.evaluate(stimuli, trace=True, eval_mode="scalar")
    packed = netlist.evaluate(stimuli, trace=True, eval_mode="bitsim")
    assert set(scalar) == set(packed)
    for net in scalar:
        np.testing.assert_array_equal(scalar[net], packed[net], err_msg=net)


# ----------------------------------------------------------------------
# exhaustive identity sweeps (satellite: Table III + ripple datapaths)
# ----------------------------------------------------------------------

class TestExhaustiveIdentity:
    @pytest.mark.parametrize("cell", FULL_ADDER_NAMES)
    def test_fulladder_structural_netlist(self, cell):
        netlist = FULL_ADDERS[cell].netlist()
        _assert_traces_identical(netlist, exhaustive_stimuli(netlist.inputs))

    @pytest.mark.parametrize("cell", FULL_ADDER_NAMES)
    def test_fulladder_sop_netlist(self, cell):
        netlist = FULL_ADDERS[cell].sop_netlist()
        _assert_traces_identical(netlist, exhaustive_stimuli(netlist.inputs))

    @pytest.mark.parametrize("cell", FULL_ADDER_NAMES)
    def test_ripple_netlist_all_2e17_vectors(self, cell):
        netlist = _ripple_netlist(cell)
        stimuli = exhaustive_stimuli(netlist.inputs)
        scalar = netlist.evaluate(stimuli, eval_mode="scalar")
        packed = netlist.evaluate(stimuli, eval_mode="bitsim")
        for net in netlist.outputs:
            np.testing.assert_array_equal(scalar[net], packed[net])

    def test_adder_netlist_wrapper_matches(self):
        netlist = _ripple_netlist("ApxFA2")
        a = np.arange(256, dtype=np.int64)
        b = np.arange(255, -1, -1, dtype=np.int64)
        np.testing.assert_array_equal(
            evaluate_adder_netlist(netlist, a, b, eval_mode="scalar"),
            evaluate_adder_netlist(netlist, a, b, eval_mode="bitsim"),
        )

    def test_multidim_stimuli(self):
        netlist = FULL_ADDERS["ApxFA1"].netlist()
        rng = np.random.default_rng(3)
        stimuli = {
            net: rng.integers(0, 2, size=(5, 7), dtype=np.uint8)
            for net in netlist.inputs
        }
        scalar = netlist.evaluate(stimuli, eval_mode="scalar")
        packed = netlist.evaluate(stimuli, eval_mode="bitsim")
        for net in netlist.outputs:
            assert scalar[net].shape == (5, 7)
            np.testing.assert_array_equal(scalar[net], packed[net])

    def test_scalar_python_int_stimuli(self):
        netlist = FULL_ADDERS["AccuFA"].netlist()
        stimuli = {"a": 1, "b": 1, "cin": 0}
        scalar = netlist.evaluate(stimuli, eval_mode="scalar")
        packed = netlist.evaluate(stimuli, eval_mode="bitsim")
        for net in netlist.outputs:
            np.testing.assert_array_equal(scalar[net], packed[net])


# ----------------------------------------------------------------------
# consumer-level identity: equivalence / faults / toggles / power
# ----------------------------------------------------------------------

class TestConsumerIdentity:
    def test_count_error_cases_identity(self):
        golden = _ripple_netlist("AccuFA")
        for cell in FULL_ADDER_NAMES:
            candidate = _ripple_netlist(cell)
            assert count_error_cases(
                golden, candidate, eval_mode="bitsim"
            ) == count_error_cases(golden, candidate, eval_mode="scalar")

    @pytest.mark.parametrize("mode", ["exhaustive", "random", "stratified"])
    def test_check_equivalence_reports_identical(self, mode):
        golden = FULL_ADDERS["AccuFA"].netlist()
        candidate = FULL_ADDERS["ApxFA4"].netlist()
        packed = check_equivalence(
            golden, candidate, mode=mode, n_random_vectors=512,
            eval_mode="bitsim",
        )
        scalar = check_equivalence(
            golden, candidate, mode=mode, n_random_vectors=512,
            eval_mode="scalar",
        )
        assert packed == scalar

    def test_fault_error_rates_identity_exhaustive(self):
        netlist = FULL_ADDERS["ApxFA1"].netlist()
        assert fault_error_rates(
            netlist, eval_mode="bitsim"
        ) == fault_error_rates(netlist, eval_mode="scalar")

    def test_fault_error_rates_identity_explicit_stimuli(self):
        netlist = _ripple_netlist("ApxFA3")
        stimuli = random_stimuli(netlist.inputs, 1024, seed=11)
        faults = [
            StuckAtFault(net, value)
            for net in fault_sites(netlist)[:6]
            for value in (0, 1)
        ]
        assert fault_error_rates(
            netlist, faults, stimuli=stimuli, eval_mode="bitsim"
        ) == fault_error_rates(
            netlist, faults, stimuli=stimuli, eval_mode="scalar"
        )

    def test_toggle_counts_identity(self):
        netlist = _ripple_netlist("ApxFA5")
        stimuli = random_stimuli(netlist.inputs, 999, seed=5)
        assert toggle_counts(
            netlist, stimuli, eval_mode="bitsim"
        ) == toggle_counts(netlist, stimuli, eval_mode="scalar")

    def test_estimate_power_identity(self):
        netlist = FULL_ADDERS["ApxFA2"].netlist()
        packed = estimate_power(netlist, eval_mode="bitsim")
        scalar = estimate_power(netlist, eval_mode="scalar")
        assert packed == scalar


# ----------------------------------------------------------------------
# the stuck-at overlay vs netlist rewriting
# ----------------------------------------------------------------------

class TestStuckOverlay:
    @pytest.mark.parametrize("value", [0, 1])
    def test_overlay_matches_inject_stuck_at(self, value):
        netlist = FULL_ADDERS["AccuFA"].netlist()
        stimuli = exhaustive_stimuli(netlist.inputs)
        n_lanes = 1 << len(netlist.inputs)
        packed = {net: pack_lanes(stimuli[net]) for net in netlist.inputs}
        compiled = compile_netlist(netlist)
        for net in fault_sites(netlist):
            rewritten = inject_stuck_at(netlist, StuckAtFault(net, value))
            expected = rewritten.evaluate(stimuli, eval_mode="scalar")
            table = compiled.run_packed(packed, stuck={net: value})
            for out, row in zip(netlist.outputs, compiled.output_rows(table)):
                np.testing.assert_array_equal(
                    unpack_lanes(row, n_lanes), expected[out],
                    err_msg=f"stuck {net}={value}, output {out}",
                )

    def test_overlay_applies_to_primary_output_net(self):
        nl = Netlist("t", inputs=["a", "b"], outputs=["y"])
        nl.add_gate("AND2", ["a", "b"], "y")
        compiled = compile_netlist(nl)
        packed = packed_exhaustive_stimuli(nl.inputs)
        table = compiled.run_packed(packed, stuck={"y": 1})
        row = compiled.output_rows(table)[0]
        assert unpack_lanes(row, 4).tolist() == [1, 1, 1, 1]


# ----------------------------------------------------------------------
# compilation + caching
# ----------------------------------------------------------------------

class TestCompileCache:
    def test_compile_is_cached(self):
        netlist = FULL_ADDERS["AccuFA"].netlist()
        assert compile_netlist(netlist) is compile_netlist(netlist)

    def test_add_gate_invalidates(self):
        nl = Netlist("t", inputs=["a", "b"], outputs=["y"])
        nl.add_gate("AND2", ["a", "b"], "y")
        before = compile_netlist(nl)
        nl.add_gate("INV", ["y"], "z")
        after = compile_netlist(nl)
        assert after is not before
        assert "z" in after.net_names()

    def test_set_outputs_invalidates(self):
        nl = Netlist("t", inputs=["a", "b"], outputs=["y"])
        nl.add_gate("AND2", ["a", "b"], "y")
        nl.add_gate("INV", ["y"], "z")
        before = compile_netlist(nl)
        nl.set_outputs(["z"])
        after = compile_netlist(nl)
        assert after is not before
        assert after.outputs == ("z",)
        stimuli = exhaustive_stimuli(["a", "b"])
        assert nl.evaluate(stimuli)["z"].tolist() == [1, 1, 1, 0]

    def test_undriven_output_rejected(self):
        nl = Netlist("t", inputs=["a"], outputs=["ghost"])
        nl.add_gate("INV", ["a"], "y")
        with pytest.raises(NetlistError, match="ghost"):
            CompiledNetlist(nl)

    def test_undriven_gate_input_rejected(self):
        nl = Netlist("t", inputs=["a"], outputs=["y"])
        nl.add_gate("AND2", ["a", "phantom"], "y")
        with pytest.raises(NetlistError):
            CompiledNetlist(nl)

    def test_constant_nets_available(self):
        nl = Netlist("t", inputs=["a"], outputs=["y"])
        nl.add_gate("OR2", ["a", "VDD"], "y")
        stimuli = {"a": np.array([0, 1], dtype=np.uint8)}
        assert nl.evaluate(stimuli, eval_mode="bitsim")["y"].tolist() == [1, 1]

    def test_generic_kernel_on_custom_truth_table(self):
        """A cell whose truth table has no dedicated word kernel must
        fall through to the sum-of-minterms fallback and still match."""
        truth = (0, 1, 1, 0, 1, 0, 0, 0)  # no standard 3-input function
        kernel = bitsim._generic_kernel(truth, 3)
        packed = packed_exhaustive_stimuli(["a", "b", "c"])
        out = kernel(packed["a"], packed["b"], packed["c"])
        got = unpack_lanes(out & lane_mask(8), 8).tolist()
        # Exhaustive lane i carries a=bit0, b=bit1, c=bit2 of i, and
        # kernel pin 0 (here: a) is the truth-table index MSB.
        want = [truth[(((i >> 0) & 1) << 2) | (((i >> 1) & 1) << 1)
                      | ((i >> 2) & 1)] for i in range(8)]
        assert got == want


# ----------------------------------------------------------------------
# packed helper primitives
# ----------------------------------------------------------------------

class TestPackedHelpers:
    @pytest.mark.parametrize("n", [1, 2, 63, 64, 65, 100, 129, 1000])
    def test_pack_unpack_roundtrip(self, n):
        rng = np.random.default_rng(n)
        bits = rng.integers(0, 2, size=n, dtype=np.uint8)
        words = pack_lanes(bits)
        assert words.dtype == np.uint64
        assert words.size == n_words_for(n)
        np.testing.assert_array_equal(unpack_lanes(words, n), bits)

    @pytest.mark.parametrize("n_inputs", [1, 3, 6, 7, 9])
    def test_packed_exhaustive_matches_packed_unpacked(self, n_inputs):
        names = [f"i{k}" for k in range(n_inputs)]
        unpacked = exhaustive_stimuli(names)
        packed = packed_exhaustive_stimuli(names)
        for name in names:
            np.testing.assert_array_equal(
                packed[name], pack_lanes(unpacked[name]), err_msg=name
            )

    @pytest.mark.parametrize("n", [1, 2, 63, 64, 65, 100, 129, 1000])
    def test_packed_toggles_matches_unpacked(self, n):
        rng = np.random.default_rng(n + 7)
        wave = rng.integers(0, 2, size=n, dtype=np.uint8)
        reference = int(np.count_nonzero(wave[1:] != wave[:-1]))
        assert packed_toggles(pack_lanes(wave), n) == reference

    def test_lane_mask_popcount(self):
        assert popcount(lane_mask(0)) == 0
        for n in (1, 63, 64, 65, 128, 130):
            assert popcount(lane_mask(n)) == n

    def test_popcount(self):
        words = np.array([0, 1, 0xFFFF_FFFF_FFFF_FFFF, 1 << 63],
                         dtype=np.uint64)
        assert popcount(words) == 0 + 1 + 64 + 1


# ----------------------------------------------------------------------
# the eval-mode switch
# ----------------------------------------------------------------------

class TestEvalModeSwitch:
    def test_default_is_bitsim(self):
        assert bitsim.resolve_eval_mode(None) == "bitsim"

    def test_context_manager_restores(self):
        with bitsim.eval_mode("scalar"):
            assert bitsim.resolve_eval_mode(None) == "scalar"
        assert bitsim.resolve_eval_mode(None) == "bitsim"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="eval_mode"):
            bitsim.resolve_eval_mode("quantum")
        netlist = FULL_ADDERS["AccuFA"].netlist()
        with pytest.raises(ValueError, match="eval_mode"):
            netlist.evaluate({"a": 0, "b": 0, "cin": 0}, eval_mode="quantum")

    def test_context_switches_whole_stack(self):
        golden = FULL_ADDERS["AccuFA"].netlist()
        candidate = FULL_ADDERS["ApxFA5"].netlist()
        with bitsim.eval_mode("scalar"):
            scalar = check_equivalence(golden, candidate)
        assert scalar == check_equivalence(golden, candidate)
