"""Tests for K-LUT technology mapping."""

import pytest

from repro.adders.fulladder import FULL_ADDERS
from repro.logic.mapping import map_to_luts
from repro.logic.netlist import Netlist
from repro.multipliers.mul2x2 import multiplier_2x2


def chain(n: int) -> Netlist:
    nl = Netlist("chain", inputs=["a", "b"], outputs=[f"n{n}"])
    prev = "a"
    for i in range(1, n + 1):
        nl.add_gate("AND2", [prev, "b"], f"n{i}")
        prev = f"n{i}"
    return nl


class TestBasicMapping:
    def test_single_gate_is_one_lut(self):
        nl = Netlist("g", inputs=["a", "b"], outputs=["y"])
        nl.add_gate("AND2", ["a", "b"], "y")
        mapping = map_to_luts(nl)
        assert mapping.n_luts == 1
        assert mapping.depth == 1

    def test_chain_fits_one_lut_when_support_small(self):
        # A chain of AND2(prev, b) has support {a, b} regardless of length.
        mapping = map_to_luts(chain(10), k=6)
        assert mapping.n_luts == 1
        assert mapping.depth == 1

    def test_wire_only_netlist_is_free(self):
        nl = Netlist("wires", inputs=["a"], outputs=["y"])
        nl.add_gate("WIRE", ["a"], "y")
        mapping = map_to_luts(nl)
        assert mapping.n_luts == 0
        assert mapping.depth == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k"):
            map_to_luts(chain(2), k=1)

    def test_cell_wider_than_k_rejected(self):
        nl = Netlist("wide", inputs=["a", "b", "c", "d"], outputs=["y"])
        nl.add_gate("AND4", ["a", "b", "c", "d"], "y")
        with pytest.raises(ValueError, match="decompos"):
            map_to_luts(nl, k=3)

    def test_fanout_creates_boundary(self):
        nl = Netlist("f", inputs=["a", "b", "c"], outputs=["y", "z"])
        nl.add_gate("AND2", ["a", "b"], "shared")
        nl.add_gate("OR2", ["shared", "c"], "y")
        nl.add_gate("XOR2", ["shared", "c"], "z")
        mapping = map_to_luts(nl, k=2)
        # k=2 cannot absorb; shared is a boundary -> 3 LUTs.
        assert mapping.n_luts == 3

    def test_large_support_splits(self):
        nl = Netlist("wide", inputs=[f"i{k}" for k in range(8)], outputs=["y"])
        nl.add_gate("AND2", ["i0", "i1"], "p0")
        nl.add_gate("AND2", ["i2", "i3"], "p1")
        nl.add_gate("AND2", ["i4", "i5"], "p2")
        nl.add_gate("AND2", ["i6", "i7"], "p3")
        nl.add_gate("AND2", ["p0", "p1"], "q0")
        nl.add_gate("AND2", ["p2", "p3"], "q1")
        nl.add_gate("AND2", ["q0", "q1"], "y")
        mapping = map_to_luts(nl, k=6)
        # 8-input AND: cannot fit one 6-LUT; needs at least 2.
        assert 2 <= mapping.n_luts <= 3
        assert mapping.depth == 2


class TestComponentMapping:
    def test_accufa_maps_to_two_luts(self):
        mapping = map_to_luts(FULL_ADDERS["AccuFA"].netlist(), k=6)
        assert mapping.n_luts == 2  # sum and cout, 3 inputs each
        assert mapping.depth == 1

    def test_apxfa5_maps_to_zero_luts(self):
        mapping = map_to_luts(FULL_ADDERS["ApxFA5"].netlist(), k=6)
        assert mapping.n_luts == 0

    def test_mapping_monotone_in_complexity(self):
        acc = map_to_luts(multiplier_2x2("AccMul").netlist(), k=6)
        soa = map_to_luts(multiplier_2x2("ApxMulSoA").netlist(), k=6)
        assert soa.n_luts <= acc.n_luts
        assert soa.n_luts_duplicated <= acc.n_luts_duplicated

    def test_accmul_duplicated_is_one_lut_per_output(self):
        # Every product bit is a function of 4 variables -> 4 LUTs.
        mapping = map_to_luts(multiplier_2x2("AccMul").netlist(), k=6)
        assert mapping.n_luts_duplicated == 4

    def test_duplicated_never_exceeds_greedy(self):
        for name, fa in FULL_ADDERS.items():
            mapping = map_to_luts(fa.netlist(), k=6)
            assert mapping.n_luts_duplicated <= mapping.n_luts, name

    def test_ripple_adder_netlist_mapping(self):
        from repro.adders.netlist_builder import build_ripple_adder_netlist
        from repro.adders.ripple import ApproximateRippleAdder

        exact = build_ripple_adder_netlist(ApproximateRippleAdder(8))
        approx = build_ripple_adder_netlist(
            ApproximateRippleAdder(8, approx_fa="ApxFA5", num_approx_lsbs=4)
        )
        map_exact = map_to_luts(exact)
        map_approx = map_to_luts(approx)
        assert map_approx.n_luts < map_exact.n_luts
