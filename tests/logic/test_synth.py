"""Tests for Quine-McCluskey minimization and truth-table synthesis."""

import numpy as np
import pytest

from repro.logic.simulate import exhaustive_stimuli
from repro.logic.synth import (
    Implicant,
    minimize_sop,
    prime_implicants,
    synthesize_truth_table,
)


class TestImplicant:
    def test_covers(self):
        imp = Implicant(value=0b10, care=0b11)
        assert imp.covers(0b10)
        assert not imp.covers(0b11)

    def test_minterm_expansion(self):
        imp = Implicant(value=0b10, care=0b10)  # var1=1, var0 free
        assert imp.minterms(2) == [0b10, 0b11]

    def test_literals(self):
        imp = Implicant(value=0b10, care=0b11)
        assert imp.literals(2) == [(0, False), (1, True)]


class TestPrimeImplicants:
    def test_xor_has_no_merges(self):
        primes = prime_implicants(2, [0b01, 0b10])
        assert len(primes) == 2
        assert all(p.care == 0b11 for p in primes)

    def test_full_function_merges_to_tautology(self):
        primes = prime_implicants(2, [0, 1, 2, 3])
        assert primes == [Implicant(0, 0)]

    def test_classic_example(self):
        # f = sum m(0,1,2,5,6,7) over 3 vars: a textbook QM case with
        # cyclic prime implicant structure.
        primes = prime_implicants(3, [0, 1, 2, 5, 6, 7])
        minterm_sets = {tuple(p.minterms(3)) for p in primes}
        assert (0, 1) in minterm_sets
        assert (5, 7) in minterm_sets
        assert len(primes) == 6

    def test_dont_cares_enlarge_implicants(self):
        with_dc = minimize_sop(2, [0b11], dont_cares=[0b10])
        assert len(with_dc) == 1
        assert with_dc[0].care == 0b10  # only var1 (shared by 2,3) required


class TestMinimizeSop:
    def test_empty_function(self):
        assert minimize_sop(2, []) == []

    def test_constant_one(self):
        assert minimize_sop(2, [0, 1, 2, 3]) == [Implicant(0, 0)]

    @pytest.mark.parametrize("n_vars", [1, 2, 3, 4])
    def test_cover_is_correct_for_random_functions(self, n_vars):
        rng = np.random.default_rng(n_vars)
        for _ in range(20):
            truth = rng.integers(0, 2, size=1 << n_vars)
            ones = [i for i in range(1 << n_vars) if truth[i]]
            cover = minimize_sop(n_vars, ones)
            for m in range(1 << n_vars):
                covered = any(p.covers(m) for p in cover)
                assert covered == bool(truth[m])


class TestSynthesizeTruthTable:
    def _check(self, n, tables):
        names = [f"i{k}" for k in range(n)]
        nl = synthesize_truth_table("f", names, tables)
        stim = exhaustive_stimuli(names)
        out = nl.evaluate(stim)
        # Row index is MSB-first over input_names.
        index = np.zeros(1 << n, dtype=int)
        for k, name in enumerate(names):
            index |= stim[name].astype(int) << (n - 1 - k)
        for out_name, table in tables.items():
            expected = np.asarray(table)[index]
            assert np.array_equal(out[out_name], expected), out_name

    def test_single_output(self):
        self._check(2, {"y": [0, 1, 1, 0]})  # XOR

    def test_multi_output_shares_products(self):
        tables = {"s": [0, 1, 1, 0], "c": [0, 0, 0, 1]}
        self._check(2, tables)

    def test_constant_outputs(self):
        self._check(2, {"zero": [0, 0, 0, 0], "one": [1, 1, 1, 1]})

    def test_three_input_adders(self):
        # The accurate full adder synthesizes correctly.
        sum_table = [0, 1, 1, 0, 1, 0, 0, 1]
        cout_table = [0, 0, 0, 1, 0, 1, 1, 1]
        self._check(3, {"sum": sum_table, "cout": cout_table})

    def test_random_four_input_functions(self):
        rng = np.random.default_rng(99)
        for trial in range(10):
            table = list(rng.integers(0, 2, size=16))
            self._check(4, {"y": table})

    def test_wrong_table_length_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            synthesize_truth_table("f", ["a", "b"], {"y": [0, 1]})

    def test_product_sharing_reduces_area(self):
        # Two identical outputs must not double the AND-plane.
        tables = {"y1": [0, 0, 0, 1], "y2": [0, 0, 0, 1]}
        nl = synthesize_truth_table("shared", ["a", "b"], tables)
        and_gates = nl.cell_counts().get("AND2", 0)
        assert and_gates == 1
