"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for sampled tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def operand_pairs_8bit(rng) -> tuple[np.ndarray, np.ndarray]:
    """A batch of random 8-bit operand pairs."""
    return (
        rng.integers(0, 256, size=2000, dtype=np.int64),
        rng.integers(0, 256, size=2000, dtype=np.int64),
    )


@pytest.fixture
def operand_pairs_16bit(rng) -> tuple[np.ndarray, np.ndarray]:
    """A batch of random 16-bit operand pairs."""
    return (
        rng.integers(0, 1 << 16, size=2000, dtype=np.int64),
        rng.integers(0, 1 << 16, size=2000, dtype=np.int64),
    )
