"""Tests for the partitioned-SIMD datapath layer."""
