"""Partitioned-SIMD evaluator: primitives, eval-mode wiring, surface.

Every packed primitive is checked against plain integer arithmetic or
the scalar reference datapath, and every ``eval_mode="partsim"``
component against its default engine -- the same bit-identity contract
the oracle registry enforces (see
``tests/properties/test_partsim_properties.py`` for the cross-path
sweeps).
"""

import numpy as np
import pytest

from repro.adders.gear import GeArAdder, GeArConfig
from repro.adders.hetero import HeteroGeArAdder, HeteroGeArConfig
from repro.adders.ripple import (
    MAX_WIDTH,
    ApproximateRippleAdder,
    ExactAdder,
)
from repro.adders.fulladder import FULL_ADDERS
from repro.accelerators.sad import SADAccelerator
from repro.datapath.partsim import (
    PartitionLayout,
    bit_reverse_permutation,
    packed_absdiff,
    packed_cell_ripple,
    packed_window_add,
    sad_surface,
    sad_surface_reference,
)
from repro.multipliers.recursive import RecursiveMultiplier


class TestPartitionLayout:
    @pytest.mark.parametrize(
        "field_bits, slot_bits", [(1, 8), (7, 8), (8, 16), (14, 16),
                                  (15, 16), (16, 32), (31, 32), (32, 64),
                                  (63, 64)]
    )
    def test_slot_sizing(self, field_bits, slot_bits):
        layout = PartitionLayout(field_bits)
        assert layout.slot_bits == slot_bits
        assert layout.fields_per_word == 64 // slot_bits

    @pytest.mark.parametrize("bad", [0, -3])
    def test_bad_field_bits_rejected(self, bad):
        with pytest.raises(ValueError, match="field_bits"):
            PartitionLayout(bad)

    def test_field_plus_guard_beyond_word_rejected(self):
        with pytest.raises(ValueError, match="64-bit word"):
            PartitionLayout(64)
        with pytest.raises(ValueError, match="64-bit word"):
            PartitionLayout(60, guard_bits=5)

    def test_base_mask_has_one_bit_per_slot(self):
        layout = PartitionLayout(10)  # slot 16, 4 fields
        assert int(layout.base) == 0x0001_0001_0001_0001

    def test_spread_replicates_value(self):
        layout = PartitionLayout(10)
        assert int(layout.spread(0x7F)) == 0x007F_007F_007F_007F

    def test_spread_rejects_oversized_value(self):
        layout = PartitionLayout(10)
        with pytest.raises(ValueError, match="slot bits"):
            layout.spread(1 << 16)

    @pytest.mark.parametrize("field_bits", [5, 10, 20, 40])
    @pytest.mark.parametrize("count", [1, 3, 8, 17])
    def test_pack_unpack_roundtrip(self, field_bits, count, rng):
        layout = PartitionLayout(field_bits)
        values = rng.integers(0, 1 << field_bits, (4, count))
        words = layout.pack(values)
        assert words.dtype == np.uint64
        assert np.array_equal(layout.unpack(words, count), values)

    def test_pack_accepts_fortran_ordered_input(self, rng):
        """Regression: fancy indexing can hand ``pack`` a Fortran-ordered
        array; the slot view must still see word slots adjacent."""
        layout = PartitionLayout(10)
        values = rng.integers(0, 1 << 10, (100, 2))
        permuted = values[..., np.asarray([0, 1])]
        assert not permuted.flags["C_CONTIGUOUS"]
        words = layout.pack(permuted)
        assert np.array_equal(layout.unpack(words, 2), values)

    def test_unpack_keeps_guard_bit(self):
        """Results that legitimately use the guard position survive."""
        layout = PartitionLayout(8)  # slot 16
        words = layout.pack(np.asarray([200, 200]))
        total = words + words  # per-field 400 > 2**8
        assert np.array_equal(layout.unpack(total, 2), [400, 400])


class TestBitReversePermutation:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            bit_reverse_permutation(12)

    @pytest.mark.parametrize("n", [1, 2, 8, 64])
    def test_is_an_involution(self, n):
        perm = bit_reverse_permutation(n)
        assert np.array_equal(perm[perm], np.arange(n))

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_half_fold_equals_adjacent_pairing(self, n, rng):
        """The invariant the packed SAD tree rests on: after bit-reversed
        loading, every "combine first half with second half" fold pairs
        exactly the (even, odd) operands of the adjacent-pair tree.  The
        combine function is deliberately asymmetric and non-associative,
        so any pairing or operand-order drift changes the root value."""

        def combine(even, odd):
            return 3 * even + odd * odd

        leaves = rng.integers(0, 50, n)
        loaded = leaves[bit_reverse_permutation(n)]
        while loaded.size > 1:
            half = loaded.size // 2
            loaded = combine(loaded[:half], loaded[half:])
        reference = leaves.copy()
        while reference.size > 1:
            reference = combine(reference[0::2], reference[1::2])
        assert loaded[0] == reference[0]


class TestPackedAbsdiff:
    def test_exhaustive_u8_pairs(self):
        layout = PartitionLayout(9)
        a = np.repeat(np.arange(256), 256)
        b = np.tile(np.arange(256), 256)
        diff = packed_absdiff(layout, layout.pack(a), layout.pack(b))
        assert np.array_equal(layout.unpack(diff, a.size), np.abs(a - b))

    def test_broadcasts_across_leading_axes(self, rng):
        layout = PartitionLayout(9)
        a = rng.integers(0, 256, (1, 5, 8))
        b = rng.integers(0, 256, (7, 5, 8))
        diff = packed_absdiff(layout, layout.pack(a), layout.pack(b))
        assert np.array_equal(
            layout.unpack(diff, 8), np.abs(a - b)
        )

    def test_full_slot_range(self):
        """No headroom requirement: payloads may use every slot value."""
        layout = PartitionLayout(15)  # slot 16
        hi = (1 << 16) - 1
        a = np.asarray([hi, 0, hi, 12345])
        b = np.asarray([0, hi, hi, 54321])
        diff = packed_absdiff(layout, layout.pack(a), layout.pack(b))
        assert np.array_equal(layout.unpack(diff, 4), np.abs(a - b))


def _scalar_cell_ripple(table, a, b, cin, start, stop):
    """Bit-serial reference for one truth-table ripple over [start, stop)."""
    out = 0
    carry = cin
    for bit in range(start, stop):
        s, c = table[(((a >> bit) & 1) << 2) | (((b >> bit) & 1) << 1) | carry]
        out |= s << bit
        carry = c
    return out, carry


class TestPackedCellRipple:
    @pytest.mark.parametrize("fa", ["AccuFA", "ApxFA2", "ApxFA5"])
    @pytest.mark.parametrize("cin", [0, 1])
    def test_exhaustive_small_width(self, fa, cin):
        width = 4
        table = FULL_ADDERS[fa].table
        layout = PartitionLayout(width + 1)
        a = np.repeat(np.arange(1 << width), 1 << width)
        b = np.tile(np.arange(1 << width), 1 << width)
        sums, carry = packed_cell_ripple(
            layout, layout.pack(a), layout.pack(b),
            layout.base if cin else np.uint64(0), table, 0, width,
        )
        carry_field = layout.unpack(
            np.bitwise_or(sums, carry << np.uint64(width)), a.size
        )
        expect = [
            _scalar_cell_ripple(table, x, y, cin, 0, width)
            for x, y in zip(a.tolist(), b.tolist())
        ]
        want = np.asarray([s | (c << width) for s, c in expect])
        assert np.array_equal(carry_field, want)

    def test_partial_bit_range(self, rng):
        """Rippling only [start, stop) leaves other bits untouched."""
        table = FULL_ADDERS["ApxFA1"].table
        layout = PartitionLayout(9)
        a = rng.integers(0, 256, 500)
        b = rng.integers(0, 256, 500)
        sums, carry = packed_cell_ripple(
            layout, layout.pack(a), layout.pack(b), np.uint64(0),
            table, 2, 5,
        )
        got_sum = layout.unpack(sums, a.size)
        got_carry = layout.unpack(carry, a.size)
        expect = [
            _scalar_cell_ripple(table, x, y, 0, 2, 5)
            for x, y in zip(a.tolist(), b.tolist())
        ]
        assert np.array_equal(got_sum, [s for s, _ in expect])
        assert np.array_equal(got_carry, [c for _, c in expect])


class TestPackedWindowAdd:
    @pytest.mark.parametrize("cfg", [(8, 2, 2), (11, 1, 5), (12, 4, 4)])
    def test_matches_gear_window_equation(self, cfg, rng):
        config = GeArConfig(*cfg)
        adder = GeArAdder(config)
        layout = PartitionLayout(config.n + 1)
        a = rng.integers(0, 1 << config.n, 2000)
        b = rng.integers(0, 1 << config.n, 2000)
        windows = [
            (start, width, 0 if i == 0 else config.p,
             width if i == 0 else config.r)
            for i, (start, width) in enumerate(config.sub_adder_windows())
        ]
        out = packed_window_add(
            layout, layout.pack(a), layout.pack(b), windows, config.n
        )
        assert np.array_equal(layout.unpack(out, a.size), adder.add(a, b))

    def test_rejects_field_too_narrow_for_carry(self):
        layout = PartitionLayout(8)  # 16-bit slots
        with pytest.raises(ValueError, match="cannot hold"):
            packed_window_add(
                layout, np.uint64(0), np.uint64(0), [(0, 16, 0, 16)], 16
            )


class TestEvalModeWiring:
    """`eval_mode="partsim"` is bit-identical to each default engine."""

    @pytest.mark.parametrize("width, fa, lsbs", [
        (8, "AccuFA", 0), (8, "ApxFA2", 4), (16, "ApxFA1", 6),
        (31, "ApxFA4", 11), (62, "ApxFA3", 8),
    ])
    def test_ripple(self, width, fa, lsbs, rng):
        ref = ApproximateRippleAdder(width, approx_fa=fa, num_approx_lsbs=lsbs)
        ps = ApproximateRippleAdder(
            width, approx_fa=fa, num_approx_lsbs=lsbs, eval_mode="partsim"
        )
        a = rng.integers(0, 1 << min(width, 62), 2000)
        b = rng.integers(0, 1 << min(width, 62), 2000)
        for cin in (0, 1):
            assert np.array_equal(ref.add(a, b, cin), ps.add(a, b, cin))

    @pytest.mark.parametrize("cfg", [(8, 1, 1), (8, 2, 2), (16, 1, 7)])
    def test_gear(self, cfg, rng):
        config = GeArConfig(*cfg)
        ref = GeArAdder(config)
        ps = GeArAdder(config, eval_mode="partsim")
        a = rng.integers(0, 1 << config.n, 3000)
        b = rng.integers(0, 1 << config.n, 3000)
        assert np.array_equal(ref.add(a, b), ps.add(a, b))
        assert int(ref.add(3, 5)) == int(ps.add(3, 5))

    @pytest.mark.parametrize("segments", [
        ((4, 0), (2, 2), (2, 2)),
        ((2, 0), (1, 1), (2, 3)),
        ((6, 0), (4, 3), (3, 2), (3, 3)),
    ])
    def test_hetero(self, segments, rng):
        config = HeteroGeArConfig(segments)
        ref = HeteroGeArAdder(config)
        ps = HeteroGeArAdder(config, eval_mode="partsim")
        a = rng.integers(0, 1 << config.n, 3000)
        b = rng.integers(0, 1 << config.n, 3000)
        assert np.array_equal(ref.add(a, b), ps.add(a, b))

    def test_hetero_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="eval_mode"):
            HeteroGeArAdder(
                HeteroGeArConfig(((4, 0), (4, 2))), eval_mode="turbo"
            )

    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_recursive_multiplier(self, width, rng):
        ref = RecursiveMultiplier(width, leaf_mul="ApxMulOur")
        ps = RecursiveMultiplier(
            width, leaf_mul="ApxMulOur", eval_mode="partsim"
        )
        a = rng.integers(0, 1 << width, 5000)
        b = rng.integers(0, 1 << width, 5000)
        assert np.array_equal(ref.multiply(a, b), ps.multiply(a, b))

    def test_recursive_multiplier_approx_adders(self, rng):
        ref = RecursiveMultiplier(
            16, leaf_mul="ApxMulSoA", leaf_policy="low_half",
            adder_fa="ApxFA1", adder_approx_lsbs=3,
        )
        ps = RecursiveMultiplier(
            16, leaf_mul="ApxMulSoA", leaf_policy="low_half",
            adder_fa="ApxFA1", adder_approx_lsbs=3, eval_mode="partsim",
        )
        a = rng.integers(0, 1 << 16, 5000)
        b = rng.integers(0, 1 << 16, 5000)
        assert np.array_equal(ref.multiply(a, b), ps.multiply(a, b))

    @pytest.mark.parametrize("n_pixels", [1, 2, 16, 64])
    @pytest.mark.parametrize("fa, lsbs", [("AccuFA", 0), ("ApxFA2", 4)])
    def test_sad(self, n_pixels, fa, lsbs, rng):
        ref = SADAccelerator(n_pixels=n_pixels, fa=fa, approx_lsbs=lsbs)
        ps = SADAccelerator(
            n_pixels=n_pixels, fa=fa, approx_lsbs=lsbs, eval_mode="partsim"
        )
        a = rng.integers(0, 256, (4, 9, n_pixels))
        b = rng.integers(0, 256, (4, 9, n_pixels))
        assert np.array_equal(ref.sad(a, b), ps.sad(a, b))

    def test_sad_partsim_needs_power_of_two_pixels(self):
        with pytest.raises(ValueError, match="power-of-two"):
            SADAccelerator(n_pixels=12, eval_mode="partsim")

    def test_sad_partsim_needs_narrow_pixels(self):
        with pytest.raises(ValueError, match="pixel_bits"):
            SADAccelerator(n_pixels=16, pixel_bits=9, eval_mode="partsim")


class TestWidthBounds:
    """Satellite fix: int64 reference arithmetic caps adder widths.

    The legacy bit-loop accumulates ``carry << width`` into an int64;
    at width 63 that lands on the sign bit and at 64 it is undefined --
    both used to wrap silently.  Widths beyond :data:`MAX_WIDTH` are now
    rejected at construction.
    """

    def test_max_width_is_62(self):
        assert MAX_WIDTH == 62

    @pytest.mark.parametrize("cls", [ExactAdder, ApproximateRippleAdder])
    @pytest.mark.parametrize("width", [63, 64, 100, 0, -1])
    def test_out_of_range_widths_rejected(self, cls, width):
        with pytest.raises(ValueError, match="width"):
            cls(width)

    @pytest.mark.parametrize("mode", ["auto", "loop", "partsim"])
    def test_boundary_width_carry_is_exact(self, mode):
        """At width 62 the final carry occupies bit 62 of a 63-bit
        result -- the last width where int64 holds it."""
        adder = ApproximateRippleAdder(MAX_WIDTH, eval_mode=mode)
        top = (1 << MAX_WIDTH) - 1
        got = adder.add(np.asarray([top, top, 1]), np.asarray([top, 1, 1]))
        assert got.tolist() == [2 * top, top + 1, 2]

    def test_recursive_multiplier_width_32_rejected(self):
        """A 32x32 multiplier needs a 64-bit summation adder (and 64-bit
        products), which int64 arithmetic cannot represent."""
        with pytest.raises(ValueError, match="summation adder"):
            RecursiveMultiplier(32)


class TestSadSurface:
    @pytest.mark.parametrize(
        "shape, bs, stride, search",
        [((48, 40), 8, 8, 4), ((40, 40), 4, 4, 2), ((64, 48), 8, 4, 3),
         ((36, 36), 2, 2, 1)],
    )
    def test_matches_batch_reference(self, shape, bs, stride, search, rng):
        cur = rng.integers(0, 256, shape)
        ref = rng.integers(0, 256, shape)
        got = sad_surface(
            SADAccelerator(n_pixels=bs * bs, eval_mode="partsim"),
            cur, ref, block_size=bs, block_stride=stride, search=search,
        )
        want = sad_surface_reference(
            SADAccelerator(n_pixels=bs * bs),
            cur, ref, block_size=bs, block_stride=stride, search=search,
        )
        assert np.array_equal(got, want)

    def test_matches_loop_engine(self, rng):
        cur = rng.integers(0, 256, (32, 32))
        ref = rng.integers(0, 256, (32, 32))
        got = sad_surface(
            SADAccelerator(n_pixels=16, eval_mode="partsim"),
            cur, ref, block_size=4, search=2,
        )
        want = sad_surface_reference(
            SADAccelerator(n_pixels=16, eval_mode="loop"),
            cur, ref, block_size=4, search=2,
        )
        assert np.array_equal(got, want)

    def test_identical_frames_zero_at_center(self, rng):
        frame = rng.integers(0, 256, (40, 40))
        surface = sad_surface(
            SADAccelerator(64, eval_mode="partsim"), frame, frame, search=2
        )
        center = 2 * (2 * 2 + 1) + 2  # displacement (0, 0)
        assert np.all(surface[center] == 0)
        assert np.all(surface >= 0)

    def test_approx_accelerator_rejected(self):
        acc = SADAccelerator(64, fa="ApxFA2", approx_lsbs=4)
        with pytest.raises(ValueError, match="exact-cell"):
            sad_surface(acc, np.zeros((32, 32), int), np.zeros((32, 32), int))

    def test_pixel_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="block_size"):
            sad_surface(
                SADAccelerator(16), np.zeros((32, 32), int),
                np.zeros((32, 32), int), block_size=8,
            )

    def test_non_2d_frames_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            sad_surface(
                SADAccelerator(64), np.zeros(64, int), np.zeros(64, int)
            )

    def test_too_small_frame_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            sad_surface(
                SADAccelerator(64), np.zeros((12, 12), int),
                np.zeros((12, 12), int), search=4,
            )
