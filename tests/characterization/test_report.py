"""Tests for report rendering."""

import pytest

from repro.characterization.report import (
    format_records,
    format_table,
    records_to_csv,
)


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(["a", "b"], [[1, 2.5]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.5" in lines[2]

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table IV")
        assert out.splitlines()[0] == "Table IV"

    def test_column_alignment(self):
        out = format_table(["name", "v"], [["long-name", 1], ["s", 22]])
        lines = out.splitlines()
        assert lines[2].index("|") == lines[3].index("|")

    def test_row_width_validated(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456789]])
        assert "0.1235" in out

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatRecords:
    def test_uses_record_keys(self):
        out = format_records([{"x": 1, "y": 2}])
        assert out.splitlines()[0].split("|")[0].strip() == "x"

    def test_column_selection(self):
        out = format_records([{"x": 1, "y": 2}], columns=["y"])
        assert "x" not in out.splitlines()[0]

    def test_missing_column_blank(self):
        out = format_records([{"x": 1}], columns=["x", "z"])
        assert "z" in out.splitlines()[0]

    def test_empty_records(self):
        assert format_records([], title="empty") == "empty"


class TestCsv:
    def test_round_trip_columns(self):
        csv = records_to_csv([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        lines = csv.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"

    def test_empty(self):
        assert records_to_csv([]) == ""


class TestPaperData:
    def test_table_iii_orderings(self):
        from repro.characterization.paperdata import (
            TABLE_III_AREA_GE,
            TABLE_III_POWER_NW,
        )

        area = TABLE_III_AREA_GE
        assert (
            area["AccuFA"] > area["ApxFA1"] > area["ApxFA2"]
            > area["ApxFA4"] > area["ApxFA3"] > area["ApxFA5"]
        )
        assert TABLE_III_POWER_NW["ApxFA5"] == 0.0

    def test_fig5_orderings(self):
        from repro.characterization.paperdata import FIG5_AREA_GE

        assert FIG5_AREA_GE["ApxMulSoA"] < FIG5_AREA_GE["ApxMulOur"]
        assert FIG5_AREA_GE["CfgMulOur"] < FIG5_AREA_GE["CfgMulSoA"]
