"""Test package."""
