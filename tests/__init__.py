"""Test package."""
