"""API-surface integrity: every exported name resolves and is documented."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.logic",
    "repro.adders",
    "repro.multipliers",
    "repro.errors",
    "repro.accelerators",
    "repro.video",
    "repro.media",
    "repro.dse",
    "repro.campaign",
    "repro.resilience",
    "repro.survey",
    "repro.characterization",
]


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), module_name
        for name in module.__all__:
            assert getattr(module, name, None) is not None, (
                f"{module_name}.{name}"
            )

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestDocumentation:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_callables_documented(self, module_name):
        """Every public class/function in __all__ carries a docstring."""
        module = importlib.import_module(module_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"{module_name}: {undocumented}"

    def test_public_methods_documented_on_core_classes(self):
        from repro.accelerators import SADAccelerator
        from repro.adders import ApproximateRippleAdder, GeArAdder
        from repro.errors import ErrorPMF

        for cls in (SADAccelerator, ApproximateRippleAdder, GeArAdder, ErrorPMF):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member):
                    assert member.__doc__, f"{cls.__name__}.{name}"


class TestCliModule:
    def test_cli_importable_without_side_effects(self):
        module = importlib.import_module("repro.cli")
        assert callable(module.main)
        assert callable(module.build_parser)
