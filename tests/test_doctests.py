"""Execute every docstring example in the library as a test.

The public API's docstring examples double as the documentation's
ground truth; this keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_docstring_examples(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module, verbose=False, optionflags=doctest.NORMALIZE_WHITESPACE
    )
    assert results.failed == 0, (
        f"{module_name}: {results.failed} doctest failure(s)"
    )
