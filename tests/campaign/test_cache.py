"""Tests for the on-disk campaign result cache."""

import json

import pytest

from repro.campaign import CampaignTask, ResultCache


def _key(n: int) -> str:
    return CampaignTask("gear_dse_row", {"n": n}).key


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(_key(1)) is None
        assert _key(1) not in cache

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        entry = {"task": {"kind": "k"}, "result": {"x": 1.5}, "elapsed_s": 0.1}
        cache.put(_key(2), entry)
        assert cache.get(_key(2)) == entry
        assert _key(2) in cache

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(3)
        cache.put(key, {"result": 1})
        assert (tmp_path / key[:2] / f"{key}.json").is_file()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(4)
        cache.put(key, {"result": 1})
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(key) is None

    def test_overwrite_is_atomic_replace(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(5)
        cache.put(key, {"result": 1})
        cache.put(key, {"result": 2})
        assert cache.get(key) == {"result": 2}
        # No temp droppings left behind.
        assert not list(tmp_path.glob("**/.tmp-*"))

    def test_keys_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = {_key(n) for n in range(6, 10)}
        for k in keys:
            cache.put(k, {"result": None})
        assert set(cache.keys()) == keys
        assert len(cache) == len(keys)

    def test_evict(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(11)
        cache.put(key, {"result": 1})
        assert cache.evict(key) is True
        assert cache.get(key) is None
        assert cache.evict(key) is False

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError, match="malformed"):
            cache.get("../../etc/passwd")

    def test_entries_are_checksummed_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(12)
        cache.put(key, {"result": [1, 2.5, "three"]})
        path = tmp_path / key[:2] / f"{key}.json"
        wrapped = json.loads(path.read_text())
        assert wrapped["entry"] == {"result": [1, 2.5, "three"]}
        assert len(wrapped["sha256"]) == 64


class TestCacheIntegrity:
    def test_tampered_result_is_a_miss_and_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(20)
        cache.put(key, {"result": 41})
        path = tmp_path / key[:2] / f"{key}.json"
        wrapped = json.loads(path.read_text())
        wrapped["entry"]["result"] = 42  # valid JSON, wrong content
        path.write_text(json.dumps(wrapped), encoding="utf-8")
        assert cache.get(key) is None
        assert not path.exists(), "corrupt entry must be evicted"

    def test_missing_checksum_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(21)
        path = tmp_path / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        # A pre-checksum (or hand-written) entry: valid JSON, no sha256.
        path.write_text(json.dumps({"result": 1}), encoding="utf-8")
        assert cache.get(key) is None
        assert not path.exists()

    def test_truncated_valid_json_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(22)
        path = tmp_path / key[:2] / f"{key}.json"
        cache.put(key, {"result": [1, 2, 3]})
        text = path.read_text()
        # Truncate to a prefix that still parses as JSON (a bare string).
        path.write_text(json.dumps(text[:10]), encoding="utf-8")
        assert cache.get(key) is None

    def test_healthy_entry_survives_verification(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(23)
        entry = {"task": {"kind": "k"}, "result": {"x": [1, 2.5]},
                 "elapsed_s": 0.5}
        cache.put(key, entry)
        assert cache.get(key) == entry
        assert cache.get(key) == entry  # verification does not consume
