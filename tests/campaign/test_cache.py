"""Tests for the on-disk campaign result cache."""

import json
import multiprocessing
import os

import pytest

from repro.campaign import CampaignTask, ResultCache


def _key(n: int) -> str:
    return CampaignTask("gear_dse_row", {"n": n}).key


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(_key(1)) is None
        assert _key(1) not in cache

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        entry = {"task": {"kind": "k"}, "result": {"x": 1.5}, "elapsed_s": 0.1}
        cache.put(_key(2), entry)
        assert cache.get(_key(2)) == entry
        assert _key(2) in cache

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(3)
        cache.put(key, {"result": 1})
        assert (tmp_path / key[:2] / f"{key}.json").is_file()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(4)
        cache.put(key, {"result": 1})
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(key) is None

    def test_overwrite_is_atomic_replace(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(5)
        cache.put(key, {"result": 1})
        cache.put(key, {"result": 2})
        assert cache.get(key) == {"result": 2}
        # No temp droppings left behind.
        assert not list(tmp_path.glob("**/.tmp-*"))

    def test_keys_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = {_key(n) for n in range(6, 10)}
        for k in keys:
            cache.put(k, {"result": None})
        assert set(cache.keys()) == keys
        assert len(cache) == len(keys)

    def test_evict(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(11)
        cache.put(key, {"result": 1})
        assert cache.evict(key) is True
        assert cache.get(key) is None
        assert cache.evict(key) is False

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError, match="malformed"):
            cache.get("../../etc/passwd")

    def test_entries_are_checksummed_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(12)
        cache.put(key, {"result": [1, 2.5, "three"]})
        path = tmp_path / key[:2] / f"{key}.json"
        wrapped = json.loads(path.read_text())
        assert wrapped["entry"] == {"result": [1, 2.5, "three"]}
        assert len(wrapped["sha256"]) == 64


class TestCacheIntegrity:
    def test_tampered_result_is_a_miss_and_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(20)
        cache.put(key, {"result": 41})
        path = tmp_path / key[:2] / f"{key}.json"
        wrapped = json.loads(path.read_text())
        wrapped["entry"]["result"] = 42  # valid JSON, wrong content
        path.write_text(json.dumps(wrapped), encoding="utf-8")
        assert cache.get(key) is None
        assert not path.exists(), "corrupt entry must be evicted"

    def test_missing_checksum_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(21)
        path = tmp_path / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        # A pre-checksum (or hand-written) entry: valid JSON, no sha256.
        path.write_text(json.dumps({"result": 1}), encoding="utf-8")
        assert cache.get(key) is None
        assert not path.exists()

    def test_truncated_valid_json_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(22)
        path = tmp_path / key[:2] / f"{key}.json"
        cache.put(key, {"result": [1, 2, 3]})
        text = path.read_text()
        # Truncate to a prefix that still parses as JSON (a bare string).
        path.write_text(json.dumps(text[:10]), encoding="utf-8")
        assert cache.get(key) is None

    def test_healthy_entry_survives_verification(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(23)
        entry = {"task": {"kind": "k"}, "result": {"x": [1, 2.5]},
                 "elapsed_s": 0.5}
        cache.put(key, entry)
        assert cache.get(key) == entry
        assert cache.get(key) == entry  # verification does not consume


def _hammer_put(cache_dir: str, key: str, worker: int, rounds: int) -> None:
    """Child-process body: rewrite the same key as fast as possible."""
    cache = ResultCache(cache_dir)
    for i in range(rounds):
        cache.put(key, {"result": {"worker": worker, "round": i}})


class TestCacheContention:
    """Many writers, one key: the service layer's common case."""

    N_WRITERS = 4
    N_ROUNDS = 50

    def test_concurrent_same_key_puts_never_serve_torn_entries(
        self, tmp_path
    ):
        """A reader racing N writers sees only complete, valid entries.

        Atomic shard replacement means every ``get`` resolves to some
        writer's *finished* entry -- never a mix, never a truncation.
        The checksum layer would turn a torn read into a miss, so the
        strongest assertion is that no read is ever a checksum miss
        once the first put has landed.
        """
        key = _key(30)
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(
                target=_hammer_put,
                args=(str(tmp_path), key, w, self.N_ROUNDS),
            )
            for w in range(self.N_WRITERS)
        ]
        cache = ResultCache(tmp_path)
        for proc in writers:
            proc.start()
        try:
            observed = 0
            while any(proc.is_alive() for proc in writers):
                entry = cache.get(key)
                if entry is None:
                    continue  # only before the very first put lands
                observed += 1
                payload = entry["result"]
                assert set(entry) == {"result"}
                assert 0 <= payload["worker"] < self.N_WRITERS
                assert 0 <= payload["round"] < self.N_ROUNDS
        finally:
            for proc in writers:
                proc.join()
        assert all(proc.exitcode == 0 for proc in writers)
        assert observed > 0

        final = cache.get(key)
        assert final is not None, "final entry must verify cleanly"
        assert final["result"]["round"] == self.N_ROUNDS - 1
        # Atomic replace leaves no temp droppings behind.
        assert not list(tmp_path.glob("**/.tmp-*"))
        assert len(cache) == 1

    def test_eviction_never_clobbers_concurrent_replacement(
        self, tmp_path, monkeypatch
    ):
        """Regression: damaged-entry eviction must be stat-guarded.

        Scenario: reader opens a corrupt shard; while it is parsing, a
        concurrent writer atomically replaces the shard with a fresh,
        healthy entry; the reader's parse fails and it decides to
        evict.  An unguarded ``path.unlink()`` would now destroy the
        *fresh* entry (the damaged inode is already gone).  The guard
        compares the stat captured at read time and must leave the
        replacement untouched.
        """
        import repro.campaign.cache as cache_mod

        cache = ResultCache(tmp_path)
        key = _key(31)
        path = tmp_path / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ corrupt", encoding="utf-8")
        fresh = {"task": {"kind": "k"}, "result": {"x": 1}, "elapsed_s": 0.0}

        real_load = json.load
        raced = []

        def racing_load(fh, *args, **kwargs):
            try:
                return real_load(fh, *args, **kwargs)
            except json.JSONDecodeError:
                if not raced:
                    raced.append(True)
                    # The concurrent writer wins the race mid-parse.
                    ResultCache(tmp_path).put(key, fresh)
                raise

        monkeypatch.setattr(cache_mod.json, "load", racing_load)
        assert cache.get(key) is None  # the damaged read is a miss
        assert raced, "the race injection must have fired"
        # ... but the concurrently written fresh entry survived.
        assert cache.get(key) == fresh
        assert path.is_file()

    def test_stat_guard_still_evicts_unreplaced_damage(self, tmp_path):
        """Without a racing writer, damaged entries are still evicted."""
        cache = ResultCache(tmp_path)
        key = _key(32)
        path = tmp_path / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ corrupt", encoding="utf-8")
        assert cache.get(key) is None
        assert not path.exists(), "unreplaced damage must be evicted"

    def test_interleaved_put_get_across_instances(self, tmp_path):
        """Two cache instances on one directory stay coherent."""
        writer = ResultCache(tmp_path)
        reader = ResultCache(tmp_path)
        key = _key(33)
        for i in range(20):
            writer.put(key, {"result": i})
            assert reader.get(key) == {"result": i}
        assert os.listdir(tmp_path / key[:2]) == [f"{key}.json"]
