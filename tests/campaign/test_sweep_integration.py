"""Campaign-engine integration with the real characterization sweeps."""

import pytest

from repro.accelerators.sad import characterize_sad_family
from repro.adders.characterize import characterize_ripple_family
from repro.adders.gear import GeArConfig
from repro.adders.gear_error import (
    monte_carlo_error_rate_sharded,
)
from repro.dse.explorer import explore_gear_space_campaign
from repro.multipliers.characterize import fig6_multiplier_family


class TestTableIVCampaign:
    def test_warm_cache_rerun_recomputes_nothing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        kwargs = dict(model="monte_carlo", n_samples=10_000, seed=3,
                      cache_dir=cache_dir)
        cold = explore_gear_space_campaign(11, **kwargs)
        assert cold.stats.n_executed == len(cold.results) == 17
        warm = explore_gear_space_campaign(11, **kwargs)
        assert warm.stats.n_executed == 0
        assert warm.stats.n_cache_hits == 17
        assert warm.results == cold.results

    def test_worker_invariance_through_cacheless_runs(self):
        kwargs = dict(model="monte_carlo", n_samples=10_000, seed=3)
        serial = explore_gear_space_campaign(11, **kwargs)
        parallel = explore_gear_space_campaign(11, n_workers=4, **kwargs)
        assert serial.results == parallel.results

    def test_stats_report_shape(self, tmp_path):
        result = explore_gear_space_campaign(
            8, model="exact", cache_dir=str(tmp_path / "c")
        )
        summary = result.stats.summary()
        assert "executed" in summary and "cache hits" in summary


class TestFamilySweepsThroughEngine:
    def test_ripple_family_worker_invariance(self):
        kwargs = dict(approx_lsb_counts=(0, 2), fa_names=["ApxFA1"],
                      n_samples=2000, seed=1)
        serial = characterize_ripple_family(8, **kwargs)
        parallel = characterize_ripple_family(8, n_workers=2, **kwargs)
        assert serial == parallel
        assert [r.name for r in serial] == ["RCA8[ApxFA1x0]",
                                            "RCA8[ApxFA1x2]"]

    def test_fig6_family_cache_roundtrip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        kwargs = dict(widths=(2, 4), n_samples=2000)
        cold = fig6_multiplier_family(cache_dir=cache_dir, **kwargs)
        warm = fig6_multiplier_family(cache_dir=cache_dir, **kwargs)
        assert cold == warm
        # 3 x 2x2 specs + 4 recursive variants at width 4.
        assert len(cold) == 7

    def test_sad_family_matches_legacy_record_shape(self):
        records = characterize_sad_family(n_pixels=16, lsb_counts=(2,),
                                          n_samples=200, n_workers=2)
        assert records[0]["name"] == "AccuSAD"
        assert records[0]["mean_error_distance"] == 0.0
        assert {"name", "fa", "approx_lsbs", "mean_error_distance",
                "mean_relative_error", "energy_fj"} <= set(records[0])
        assert len(records) == 1 + 5  # AccuSAD + one row per ApxFA cell


class TestShardedMonteCarlo:
    def test_worker_and_chunking_invariance(self):
        config = GeArConfig(8, 2, 2)
        kwargs = dict(n_samples=30_000, seed=9, chunk_samples=8_192)
        serial = monte_carlo_error_rate_sharded(config, **kwargs)
        parallel = monte_carlo_error_rate_sharded(config, n_workers=3,
                                                  **kwargs)
        assert serial == parallel

    def test_close_to_exact_probability(self):
        from repro.adders.gear_error import exact_error_probability

        config = GeArConfig(8, 2, 2)
        estimate = monte_carlo_error_rate_sharded(config, n_samples=120_000,
                                                  seed=0)
        assert estimate == pytest.approx(exact_error_probability(config),
                                         abs=0.01)

    def test_resume_from_partial_shards(self, tmp_path):
        from repro.campaign import ResultCache

        cache_dir = str(tmp_path / "cache")
        config = GeArConfig(8, 2, 2)
        kwargs = dict(n_samples=40_000, seed=2, chunk_samples=10_000)
        full = monte_carlo_error_rate_sharded(config, cache_dir=cache_dir,
                                              **kwargs)
        cache = ResultCache(cache_dir)
        assert len(cache) == 4
        dropped = next(iter(cache.keys()))
        cache.evict(dropped)
        resumed = monte_carlo_error_rate_sharded(config, cache_dir=cache_dir,
                                                 **kwargs)
        assert resumed == full

    def test_rejects_bad_sample_counts(self):
        config = GeArConfig(8, 2, 2)
        with pytest.raises(ValueError, match="n_samples"):
            monte_carlo_error_rate_sharded(config, n_samples=0)
        with pytest.raises(ValueError, match="chunk_samples"):
            monte_carlo_error_rate_sharded(config, chunk_samples=0)
