"""CODE_VERSION must participate in the cache key.

Regression guard: bumping :data:`repro.campaign.task.CODE_VERSION` has
to invalidate every cached campaign result, otherwise stale entries from
an older engine keep answering after a behavioural change.
"""

from repro.campaign import CampaignTask, ResultCache, run_campaign

TASK = CampaignTask("gear_dse_row", {"n": 8, "r": 2, "p": 2}, seed=0)


class TestCodeVersionInKey:
    def test_key_changes_with_code_version(self, monkeypatch):
        before = TASK.key
        monkeypatch.setattr(
            "repro.campaign.task.CODE_VERSION", "9999.99-test"
        )
        assert TASK.key != before

    def test_key_restored_after_patch(self, monkeypatch):
        before = TASK.key
        with monkeypatch.context() as m:
            m.setattr("repro.campaign.task.CODE_VERSION", "9999.99-test")
        assert TASK.key == before

    def test_stale_entry_is_a_cache_miss(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put(TASK.key, {"result": {"accuracy_percent": 0.0}})
        monkeypatch.setattr(
            "repro.campaign.task.CODE_VERSION", "9999.99-test"
        )
        assert cache.get(TASK.key) is None

    def test_warm_start_recomputes_after_version_bump(
        self, tmp_path, monkeypatch
    ):
        """End to end: a warm cache stops hitting once the version moves."""
        first = run_campaign([TASK], cache_dir=str(tmp_path))
        assert first.stats.n_executed == 1
        warm = run_campaign([TASK], cache_dir=str(tmp_path))
        assert warm.stats.n_cache_hits == 1 and warm.stats.n_executed == 0

        monkeypatch.setattr(
            "repro.campaign.task.CODE_VERSION", "9999.99-test"
        )
        bumped = run_campaign([TASK], cache_dir=str(tmp_path))
        assert bumped.stats.n_cache_hits == 0
        assert bumped.stats.n_executed == 1
        assert bumped.results == first.results
