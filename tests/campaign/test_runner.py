"""Tests for the campaign runner: caching, resume, worker invariance."""

import pytest

from repro.campaign import (
    CampaignTask,
    ResultCache,
    register,
    run_campaign,
    task_kinds,
)


@register("test_square")
def _test_square(params, seed):
    """Test-only kind: deterministic function of params and seed."""
    return {"value": params["x"] * params["x"], "seed": seed}


def _tasks(n):
    return [CampaignTask("test_square", {"x": i}, seed=100 + i)
            for i in range(n)]


class TestSerialRunner:
    def test_results_in_task_order(self):
        result = run_campaign(_tasks(5))
        assert [r["value"] for r in result.results] == [0, 1, 4, 9, 16]

    def test_seed_reaches_task(self):
        result = run_campaign(_tasks(2))
        assert [r["seed"] for r in result.results] == [100, 101]

    def test_stats_counts(self):
        stats = run_campaign(_tasks(4)).stats
        assert stats.n_tasks == 4
        assert stats.n_unique == 4
        assert stats.n_executed == 4
        assert stats.n_cache_hits == 0
        assert stats.wall_s > 0

    def test_duplicate_tasks_executed_once(self):
        tasks = _tasks(3) + _tasks(3)
        result = run_campaign(tasks)
        assert result.stats.n_executed == 3
        assert result.results[:3] == result.results[3:]

    def test_unknown_kind_fails_fast(self):
        with pytest.raises(KeyError, match="unknown task kind"):
            run_campaign([CampaignTask("no_such_kind", {})])

    def test_progress_callback_streams(self):
        seen = []
        run_campaign(_tasks(3), progress=lambda done, total: seen.append((done, total)))
        assert seen[0] == (0, 3)
        assert seen[-1] == (3, 3)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_builtin_kinds_registered(self):
        expected = {"gear_dse_row", "gear_mc_chunk", "ripple_adder",
                    "gear_adder", "multiplier", "sad_quality", "filter_ssim"}
        assert expected <= set(task_kinds())


class TestCaching:
    def test_cold_then_warm(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_campaign(_tasks(4), cache_dir=cache_dir)
        assert cold.stats.n_executed == 4
        warm = run_campaign(_tasks(4), cache_dir=cache_dir)
        assert warm.stats.n_executed == 0
        assert warm.stats.n_cache_hits == 4
        assert warm.results == cold.results

    def test_partial_cache_recomputes_only_missing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        tasks = _tasks(6)
        run_campaign(tasks, cache_dir=cache_dir)
        cache = ResultCache(cache_dir)
        evicted = [tasks[1].key, tasks[4].key]
        for key in evicted:
            assert cache.evict(key)
        resumed = run_campaign(tasks, cache_dir=cache_dir)
        assert resumed.stats.n_executed == len(evicted)
        assert resumed.stats.n_cache_hits == len(tasks) - len(evicted)
        assert [r["value"] for r in resumed.results] == [
            i * i for i in range(6)
        ]

    def test_param_change_misses(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_campaign(_tasks(1), cache_dir=cache_dir)
        changed = [CampaignTask("test_square", {"x": 0}, seed=999)]
        result = run_campaign(changed, cache_dir=cache_dir)
        assert result.stats.n_executed == 1

    def test_no_cache_dir_always_executes(self):
        first = run_campaign(_tasks(2))
        second = run_campaign(_tasks(2))
        assert first.stats.n_executed == second.stats.n_executed == 2


class TestParallelRunner:
    def test_worker_count_invariance(self, tmp_path):
        tasks = [
            CampaignTask("gear_mc_chunk",
                         {"n": 8, "r": 2, "p": 2, "n_samples": 2000},
                         seed=s)
            for s in range(8)
        ]
        serial = run_campaign(tasks, n_workers=1)
        two = run_campaign(tasks, n_workers=2)
        four = run_campaign(tasks, n_workers=4)
        assert serial.results == two.results == four.results

    def test_parallel_writes_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        tasks = _tasks(5)
        cold = run_campaign(tasks, n_workers=3, cache_dir=cache_dir)
        assert cold.stats.n_executed == 5
        warm = run_campaign(tasks, n_workers=3, cache_dir=cache_dir)
        assert warm.stats.n_executed == 0
        assert warm.results == cold.results

    def test_parallel_matches_serial_cache_content(self, tmp_path):
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        tasks = _tasks(6)
        serial = run_campaign(tasks, cache_dir=serial_dir)
        parallel = run_campaign(tasks, n_workers=4, cache_dir=parallel_dir)
        assert serial.results == parallel.results
        assert set(ResultCache(serial_dir).keys()) == set(
            ResultCache(parallel_dir).keys()
        )

    def test_stats_worker_utilization_bounded(self):
        stats = run_campaign(_tasks(6), n_workers=2).stats
        assert 0.0 <= stats.worker_utilization <= 1.0
        assert "workers" in stats.summary()
