"""Chaos tests for the hardened campaign runner.

Every pathology a fault-injection campaign produces -- a raising task,
a SIGKILLed worker, a hang past the timeout, a flaky task that needs
retries, a corrupted cache shard on resume -- must leave the campaign
running to completion with structured failure records, never abort it.
"""

import json

import pytest

from repro.campaign import (
    CampaignTask,
    CampaignTaskError,
    ResultCache,
    run_campaign,
)
from repro.campaign.chaos import CHAOS_KINDS
from repro.campaign.runner import FAILURE_REPORT_SCHEMA_VERSION


def _ok(x):
    return CampaignTask("chaos_ok", {"x": x})


class TestChaosKinds:
    def test_all_registered(self):
        from repro.campaign import task_kinds

        assert set(CHAOS_KINDS) <= set(task_kinds())


class TestErrorCapture:
    def test_error_becomes_structured_failure(self):
        result = run_campaign([_ok(2), CampaignTask("chaos_error", {})])
        assert not result.ok
        assert result.results[0] == {"value": 4, "seed": 0}
        assert result.results[1] is None
        (failure,) = result.failures
        assert failure.status == "quarantined"
        assert failure.kind == "chaos_error"
        assert failure.index == 1
        (attempt,) = failure.attempts
        assert attempt.outcome == "error"
        assert attempt.error_type == "ValueError"
        assert "injected failure" in attempt.message

    def test_raise_on_error_opts_back_in(self):
        with pytest.raises(CampaignTaskError, match="chaos_error"):
            run_campaign(
                [CampaignTask("chaos_error", {})], raise_on_error=True
            )

    def test_raise_on_error_in_isolated_mode(self):
        with pytest.raises(CampaignTaskError, match="chaos_error"):
            run_campaign(
                [CampaignTask("chaos_error", {}), _ok(1), _ok(2)],
                n_workers=2,
                raise_on_error=True,
            )

    def test_failures_are_not_cached(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_campaign([CampaignTask("chaos_error", {})], cache_dir=cache_dir)
        assert len(ResultCache(cache_dir)) == 0


class TestCrashIsolation:
    def test_sigkilled_worker_is_quarantined(self):
        """A task that SIGKILLs its worker cannot abort the campaign."""
        result = run_campaign(
            [_ok(1), CampaignTask("chaos_crash", {}), _ok(3)],
            n_workers=2,
        )
        assert [result.results[0], result.results[2]] == [
            {"value": 1, "seed": 0}, {"value": 9, "seed": 0},
        ]
        (failure,) = result.failures
        assert failure.kind == "chaos_crash"
        assert failure.attempts[-1].outcome == "crash"
        assert "exit code -9" in failure.attempts[-1].message
        assert result.stats.n_crashes == 1
        assert result.stats.n_quarantined == 1


class TestHangTimeout:
    def test_hanging_task_is_killed_at_timeout(self):
        result = run_campaign(
            [CampaignTask("chaos_hang", {"sleep_s": 60.0}), _ok(5)],
            n_workers=2,
            timeout_s=0.5,
        )
        assert result.results[1] == {"value": 25, "seed": 0}
        (failure,) = result.failures
        assert failure.attempts[-1].outcome == "timeout"
        assert "timeout_s=0.5" in failure.attempts[-1].message
        assert result.stats.n_timeouts == 1

    def test_timeout_forces_isolation_even_serially(self):
        result = run_campaign(
            [CampaignTask("chaos_hang", {"sleep_s": 60.0})],
            n_workers=1,
            timeout_s=0.5,
        )
        assert result.results == [None]
        assert result.stats.n_timeouts == 1

    def test_completed_but_overdue_attempt_is_a_timeout(self):
        # A fast task can land its result in the pipe before the parent
        # ever polls the deadline; the verdict must come from the
        # worker's own clock, not from who wins that race.
        result = run_campaign([_ok(3)], timeout_s=1e-9)
        assert result.results == [None]
        (failure,) = result.failures
        assert failure.attempts[-1].outcome == "timeout"
        assert "timeout_s=1e-09" in failure.attempts[-1].message
        assert result.stats.n_timeouts == 1


class TestRetry:
    def test_flaky_succeeds_after_retries(self, tmp_path):
        task = CampaignTask(
            "chaos_flaky",
            {"scratch_dir": str(tmp_path / "flaky"), "fail_times": 2, "x": 6},
        )
        result = run_campaign(
            [task], n_workers=2, timeout_s=10.0,
            max_attempts=3, backoff_base_s=0.01,
        )
        assert result.ok
        assert result.results[0]["value"] == 6
        assert result.results[0]["attempts"] == 3
        assert result.stats.n_retries == 2
        assert result.stats.n_quarantined == 0

    def test_flaky_serial_inprocess_retry(self, tmp_path):
        task = CampaignTask(
            "chaos_flaky",
            {"scratch_dir": str(tmp_path / "flaky"), "fail_times": 1, "x": 2},
        )
        result = run_campaign([task], max_attempts=2, backoff_base_s=0.01)
        assert result.ok
        assert result.results[0]["attempts"] == 2
        assert result.stats.n_retries == 1

    def test_exhausted_retries_quarantine_with_all_attempts(self):
        result = run_campaign(
            [CampaignTask("chaos_error", {})],
            max_attempts=3, backoff_base_s=0.01,
        )
        (failure,) = result.failures
        assert [a.attempt for a in failure.attempts] == [1, 2, 3]
        assert result.stats.n_retries == 2


class TestAcceptanceScenario:
    """ISSUE acceptance: crash + hang + flaky + healthy in one campaign."""

    def test_mixed_pathologies_run_to_completion(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        tasks = [
            _ok(2),
            CampaignTask("chaos_crash", {}),
            CampaignTask("chaos_hang", {"sleep_s": 60.0}),
            CampaignTask(
                "chaos_flaky",
                {"scratch_dir": str(tmp_path / "flaky"),
                 "fail_times": 2, "x": 3},
            ),
            _ok(4),
        ]
        result = run_campaign(
            tasks, n_workers=2, cache_dir=cache_dir,
            timeout_s=1.0, max_attempts=3, backoff_base_s=0.01,
        )
        # Healthy and flaky tasks completed; flaky needed all 3 attempts.
        assert result.results[0] == {"value": 4, "seed": 0}
        assert result.results[3]["attempts"] == 3
        assert result.results[4] == {"value": 16, "seed": 0}
        # Crash and hang were quarantined with structured records.
        assert {f.kind for f in result.failures} == {
            "chaos_crash", "chaos_hang",
        }
        assert result.stats.n_quarantined == 2
        # Healthy results were checkpointed; failures were not.
        assert len(ResultCache(cache_dir)) == 3

        # Resume: everything cached is served, nothing is recomputed.
        resumed = run_campaign(
            [tasks[0], tasks[3], tasks[4]],
            n_workers=2, cache_dir=cache_dir,
        )
        assert resumed.ok
        assert resumed.stats.n_executed == 0
        assert resumed.stats.n_cache_hits == 3
        assert resumed.results[1]["attempts"] == 3

    def test_corrupted_cache_shard_on_resume(self, tmp_path):
        """A corrupted checkpoint entry is recomputed, not served."""
        cache_dir = tmp_path / "cache"
        task = _ok(7)
        run_campaign([task], cache_dir=str(cache_dir))
        path = cache_dir / task.key[:2] / f"{task.key}.json"
        wrapped = json.loads(path.read_text())
        wrapped["entry"]["result"]["value"] = 999  # silent bit-rot
        path.write_text(json.dumps(wrapped), encoding="utf-8")
        resumed = run_campaign([task], cache_dir=str(cache_dir))
        assert resumed.stats.n_cache_hits == 0
        assert resumed.stats.n_executed == 1
        assert resumed.results[0] == {"value": 49, "seed": 0}
        # The healthy result was re-checkpointed.
        rewritten = json.loads(path.read_text())
        assert rewritten["entry"]["result"]["value"] == 49


class TestFailureReport:
    def test_schema(self):
        result = run_campaign(
            [CampaignTask("chaos_error", {}), _ok(1)],
            max_attempts=2, backoff_base_s=0.01,
        )
        report = result.failure_report()
        assert report["schema_version"] == FAILURE_REPORT_SCHEMA_VERSION
        assert report["n_tasks"] == 2
        assert report["n_quarantined"] == 1
        assert report["n_retries"] == 1
        (failure,) = report["failures"]
        assert failure["status"] == "quarantined"
        assert failure["kind"] == "chaos_error"
        assert len(failure["attempts"]) == 2
        assert json.loads(json.dumps(report)) == report

    def test_ok_report_is_empty(self):
        result = run_campaign([_ok(1)])
        assert result.ok
        assert result.failure_report()["failures"] == []


class TestStatsSummary:
    def test_summary_mentions_quarantine(self):
        result = run_campaign(
            [CampaignTask("chaos_error", {})],
            max_attempts=2, backoff_base_s=0.01,
        )
        text = result.stats.summary()
        assert "1 quarantined" in text and "1 retries" in text

    def test_clean_summary_unchanged(self):
        text = run_campaign([_ok(1)]).stats.summary()
        assert "quarantined" not in text


class TestBackoffDeterminism:
    def test_backoff_delay_is_deterministic_and_bounded(self):
        from repro.campaign.runner import _backoff_delay

        task = CampaignTask("chaos_ok", {"x": 1})
        delays = [_backoff_delay(task, a, 0.1, 5.0) for a in (1, 2, 3)]
        again = [_backoff_delay(task, a, 0.1, 5.0) for a in (1, 2, 3)]
        assert delays == again
        for attempt, delay in enumerate(delays, start=1):
            cap = min(5.0, 0.1 * 2 ** (attempt - 1))
            assert 0.5 * cap <= delay <= 1.5 * cap
