"""Tests for campaign task identity and seed derivation."""

import pytest

from repro.campaign import CODE_VERSION, CampaignTask, derive_seed, stable_hash


class TestStableHash:
    def test_deterministic(self):
        obj = {"b": 2, "a": [1, 2, {"x": True}]}
        assert stable_hash(obj) == stable_hash(obj)

    def test_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_value_sensitivity(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})


class TestTaskKey:
    def test_key_is_hex_sha256(self):
        key = CampaignTask(kind="gear_dse_row", params={"n": 8}).key
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)

    def test_key_stable_across_instances(self):
        t1 = CampaignTask("gear_dse_row", {"n": 8, "r": 2}, seed=3)
        t2 = CampaignTask("gear_dse_row", {"r": 2, "n": 8}, seed=3)
        assert t1.key == t2.key

    @pytest.mark.parametrize(
        "other",
        [
            CampaignTask("gear_dse_row", {"n": 9}, seed=3),
            CampaignTask("gear_dse_row", {"n": 8}, seed=4),
            CampaignTask("gear_mc_chunk", {"n": 8}, seed=3),
        ],
    )
    def test_key_sensitivity(self, other):
        base = CampaignTask("gear_dse_row", {"n": 8}, seed=3)
        assert base.key != other.key

    def test_key_pins_code_version(self):
        task = CampaignTask("gear_dse_row", {"n": 8})
        assert task.as_dict()["code_version"] == CODE_VERSION


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "x", 1) == derive_seed(0, "x", 1)

    def test_depends_on_base_seed(self):
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_depends_on_key_parts(self):
        assert derive_seed(0, "x", 1) != derive_seed(0, "x", 2)

    def test_in_63_bit_range(self):
        for base in (0, 1, 2**62):
            seed = derive_seed(base, "k", 17)
            assert 0 <= seed < 2**63
