"""Resume-after-kill: a SIGKILLed campaign restarts where it died."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.campaign import ResultCache, run_campaign
from repro.dse.explorer import gear_space_tasks

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.campaign import run_campaign
from repro.dse.explorer import gear_space_tasks

tasks = gear_space_tasks(11, model="monte_carlo", n_samples=400_000, seed=5)
run_campaign(tasks, cache_dir={cache_dir!r})
"""


class TestResumeAfterKill:
    def test_sigkill_mid_campaign_then_resume(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        tasks = gear_space_tasks(11, model="monte_carlo", n_samples=400_000,
                                 seed=5)
        script = _CHILD_SCRIPT.format(src=_SRC, cache_dir=cache_dir)
        child = subprocess.Popen([sys.executable, "-c", script])
        # Give the child time to finish some, but not all, tasks.
        deadline = time.monotonic() + 30.0
        cache = ResultCache(cache_dir)
        while time.monotonic() < deadline:
            if child.poll() is not None:
                break
            if len(cache) >= 2:
                break
            time.sleep(0.05)
        if child.poll() is None:
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        cached_after_kill = set(cache.keys())
        assert cached_after_kill, "no checkpoint landed before the kill"

        # Resume: only the missing tasks are recomputed, nothing cached
        # is re-executed, and no partially-written entry survives.
        resumed = run_campaign(tasks, cache_dir=cache_dir)
        assert resumed.stats.n_cache_hits == len(cached_after_kill)
        assert resumed.stats.n_executed == len(tasks) - len(cached_after_kill)

        # The resumed records are bit-identical to an uninterrupted run.
        reference = run_campaign(tasks)
        assert resumed.results == reference.results
