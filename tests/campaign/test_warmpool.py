"""Chaos tests for the warm persistent worker-pool execution engine.

The warm engine (``isolation="warm"``) replaces process-per-attempt
spawning with long-lived pre-forked workers, so its failure modes are
different: a hung task wedges a *shared* worker, a SIGKILLed task
takes the worker down with it, and both must be answered by recycling
(kill + respawn) without disturbing sibling tasks streaming through
the other workers.  These tests pin that behavior -- and pin the
contract that warm results and failure records are bit-identical to
the process engine's.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignTask, WarmPool, run_campaign


def _ok(x):
    return CampaignTask("chaos_ok", {"x": x})


def _analytic(seed, n=8):
    return CampaignTask("analytic", {"n": n, "r": 2, "p": 2}, seed=seed)


class TestBitIdentity:
    def test_warm_matches_process_engine_bit_for_bit(self):
        tasks = [_analytic(s) for s in range(6)] + \
            [_analytic(s, n=12) for s in range(3)] + \
            [_ok(i) for i in range(3)]
        process = run_campaign(
            tasks, n_workers=2, timeout_s=30.0, isolation="process"
        )
        warm = run_campaign(
            tasks, n_workers=2, timeout_s=30.0, isolation="warm"
        )
        assert process.ok and warm.ok
        assert process.results == warm.results
        assert process.stats.isolation == "process"
        assert warm.stats.isolation == "warm"

    def test_warm_failure_records_match_process_schema(self):
        tasks = [CampaignTask("chaos_error", {}), _ok(2)]
        process = run_campaign(
            tasks, n_workers=2, timeout_s=10.0,
            max_attempts=2, backoff_base_s=0.01, isolation="process",
        )
        warm = run_campaign(
            tasks, n_workers=2, timeout_s=10.0,
            max_attempts=2, backoff_base_s=0.01, isolation="warm",
        )
        p_rec = process.failures[0].to_record()
        w_rec = warm.failures[0].to_record()
        # Wall-clock fields differ; everything structured must match.
        for record in (p_rec, w_rec):
            for attempt in record["attempts"]:
                attempt.pop("elapsed_s")
        assert p_rec == w_rec
        assert warm.stats.n_retries == process.stats.n_retries == 1


class TestRecycling:
    def test_hung_worker_recycled_while_siblings_complete(self):
        pool = WarmPool(n_workers=2).start()
        try:
            tasks = [CampaignTask("chaos_hang", {"sleep_s": 60.0})] + \
                [_ok(i) for i in range(4)]
            result = run_campaign(
                tasks, n_workers=2, timeout_s=0.5,
                isolation="warm", warm_pool=pool,
            )
            assert result.results[1:] == [
                {"value": i * i, "seed": 0} for i in range(4)
            ]
            (failure,) = result.failures
            assert failure.kind == "chaos_hang"
            assert failure.attempts[-1].outcome == "timeout"
            assert "timeout_s=0.5" in failure.attempts[-1].message
            assert result.stats.n_timeouts == 1
            assert pool.n_recycled >= 1
            # The respawned worker serves follow-up work on the same pool.
            again = run_campaign(
                [_ok(9)], timeout_s=5.0, isolation="warm", warm_pool=pool
            )
            assert again.results == [{"value": 81, "seed": 0}]
        finally:
            pool.close()

    def test_sigkilled_worker_is_respawned(self):
        pool = WarmPool(n_workers=2).start()
        try:
            result = run_campaign(
                [_ok(1), CampaignTask("chaos_crash", {}), _ok(3)],
                n_workers=2, timeout_s=10.0,
                isolation="warm", warm_pool=pool,
            )
            assert result.results[0] == {"value": 1, "seed": 0}
            assert result.results[2] == {"value": 9, "seed": 0}
            (failure,) = result.failures
            assert failure.attempts[-1].outcome == "crash"
            assert "exit code -9" in failure.attempts[-1].message
            assert result.stats.n_crashes == 1
            assert pool.n_recycled >= 1
            assert pool.n_spawned >= 3  # 2 initial + >=1 respawn
        finally:
            pool.close()

    def test_stubborn_worker_escalates_to_sigkill(self):
        """A worker ignoring SIGTERM must still be recycled at deadline."""
        pool = WarmPool(n_workers=1).start()
        try:
            result = run_campaign(
                [CampaignTask("chaos_stubborn", {"sleep_s": 60.0})],
                timeout_s=0.5, isolation="warm", warm_pool=pool,
            )
            (failure,) = result.failures
            assert failure.attempts[-1].outcome == "timeout"
            assert pool.n_recycled == 1
            follow_up = run_campaign(
                [_ok(2)], timeout_s=5.0, isolation="warm", warm_pool=pool
            )
            assert follow_up.results == [{"value": 4, "seed": 0}]
        finally:
            pool.close()

    def test_completed_but_overdue_attempt_is_a_timeout(self):
        # Same worker-clock rule as the process engine: a result that
        # lands in the pipe after its deadline is a timeout, not a win.
        result = run_campaign([_ok(3)], timeout_s=1e-9, isolation="warm")
        assert result.results == [None]
        (failure,) = result.failures
        assert failure.attempts[-1].outcome == "timeout"
        assert "timeout_s=1e-09" in failure.attempts[-1].message
        assert result.stats.n_timeouts == 1


class TestRetries:
    def test_flaky_succeeds_after_retries_on_warm_pool(self, tmp_path):
        task = CampaignTask(
            "chaos_flaky",
            {"scratch_dir": str(tmp_path / "flaky"), "fail_times": 2, "x": 6},
        )
        result = run_campaign(
            [task], n_workers=2, timeout_s=10.0,
            max_attempts=3, backoff_base_s=0.01, isolation="warm",
        )
        assert result.ok
        assert result.results[0]["value"] == 6
        assert result.results[0]["attempts"] == 3
        assert result.stats.n_retries == 2


class TestPoolReuse:
    def test_shared_pool_spawns_no_extra_workers(self):
        with WarmPool(n_workers=2) as pool:
            for round_ in range(3):
                result = run_campaign(
                    [_analytic(100 * round_ + i) for i in range(4)],
                    n_workers=2, timeout_s=30.0,
                    isolation="warm", warm_pool=pool,
                )
                assert result.ok
            assert pool.n_spawned == 2
            assert pool.n_recycled == 0
            assert pool.n_tasks_done == 12

    def test_execute_front_end(self):
        with WarmPool(n_workers=1) as pool:
            result, failure = pool.execute(_ok(5), timeout_s=5.0)
            assert failure is None
            assert result == {"value": 25, "seed": 0}
            result, failure = pool.execute(
                CampaignTask("chaos_hang", {"sleep_s": 60.0}),
                timeout_s=0.3, max_attempts=2, backoff_base_s=0.01,
            )
            assert result is None
            assert failure.index == 0
            assert failure.attempts[-1].outcome == "timeout"
            assert len(failure.attempts) == 2
            assert pool.n_recycled == 2

    def test_closed_pool_refuses_work(self):
        pool = WarmPool(n_workers=1).start()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool._lease()


class TestIsolationSelection:
    def test_env_var_selects_warm_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_ISOLATION", "warm")
        result = run_campaign([_analytic(1), _analytic(2)], n_workers=2)
        assert result.ok
        assert result.stats.isolation == "warm"

    def test_env_var_rejects_unknown_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_ISOLATION", "bogus")
        with pytest.raises(ValueError, match="bogus"):
            run_campaign([_analytic(1)], timeout_s=5.0)

    def test_explicit_arg_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_ISOLATION", "warm")
        result = run_campaign(
            [_analytic(1)], timeout_s=5.0, isolation="process"
        )
        assert result.ok
        assert result.stats.isolation == "process"

    def test_unisolated_fast_path_ignores_warm(self):
        # No timeout, one worker: nothing to isolate, so the in-process
        # fast path runs regardless of the requested engine.
        result = run_campaign([_analytic(1)], isolation="warm")
        assert result.ok
        assert result.stats.isolation == "process"
