"""Tests for the low-pass filter accelerator."""

import numpy as np
import pytest

from repro.accelerators.filters import (
    LowPassFilterAccelerator,
    gaussian3x3_exact,
)
from repro.media.synthetic import standard_images


class TestExactReference:
    def test_flat_image_unchanged(self):
        img = np.full((8, 8), 77)
        assert np.array_equal(gaussian3x3_exact(img), img)

    def test_smooths_impulse(self):
        img = np.zeros((9, 9), dtype=np.int64)
        img[4, 4] = 160
        out = gaussian3x3_exact(img)
        assert out[4, 4] == 160 * 4 // 16
        assert out[4, 3] == 160 * 2 // 16
        assert out[3, 3] == 160 * 1 // 16

    def test_preserves_mean_roughly(self, rng):
        img = rng.integers(0, 256, (32, 32))
        out = gaussian3x3_exact(img)
        assert abs(float(out.mean()) - float(img.mean())) < 4.0


class TestAccelerator:
    def test_exact_configuration_matches_reference(self, rng):
        acc = LowPassFilterAccelerator()
        img = rng.integers(0, 256, (24, 24))
        expected = np.clip(gaussian3x3_exact(img), 0, 255)
        assert np.array_equal(acc.apply(img), expected)

    def test_output_in_pixel_range(self, rng):
        acc = LowPassFilterAccelerator(fa="ApxFA5", approx_lsbs=6)
        img = rng.integers(0, 256, (16, 16))
        out = acc.apply(img)
        assert out.min() >= 0 and out.max() <= 255

    def test_approximate_filter_differs(self, rng):
        img = rng.integers(0, 256, (16, 16))
        exact = LowPassFilterAccelerator().apply(img)
        approx = LowPassFilterAccelerator(fa="ApxFA5", approx_lsbs=6).apply(img)
        assert not np.array_equal(exact, approx)

    def test_error_grows_with_lsbs(self, rng):
        img = rng.integers(0, 256, (32, 32))
        reference = LowPassFilterAccelerator().apply(img)
        errs = []
        for k in (2, 4, 6):
            out = LowPassFilterAccelerator(fa="ApxFA2", approx_lsbs=k).apply(img)
            errs.append(float(np.abs(out.astype(int) - reference).mean()))
        assert errs[0] <= errs[1] <= errs[2]
        assert errs[2] > 0

    def test_requires_2d(self):
        acc = LowPassFilterAccelerator()
        with pytest.raises(ValueError, match="2-D"):
            acc.apply(np.zeros(10))

    def test_area_reduced_by_approximation(self):
        exact = LowPassFilterAccelerator()
        approx = LowPassFilterAccelerator(fa="ApxFA3", approx_lsbs=6)
        assert approx.area_ge < exact.area_ge

    def test_name(self):
        assert "ApxFA1" in LowPassFilterAccelerator(fa="ApxFA1").name


class TestDataDependentResilience:
    def test_quality_varies_across_content(self):
        """Fig. 10: the same approximate filter yields different SSIM on
        different image content."""
        from repro.media.ssim import ssim

        acc = LowPassFilterAccelerator(fa="ApxFA1", approx_lsbs=5)
        exact = LowPassFilterAccelerator()
        scores = []
        for img in standard_images(64).values():
            scores.append(ssim(exact.apply(img), acc.apply(img)))
        assert max(scores) - min(scores) > 0.001
        assert all(0.0 < s <= 1.0 for s in scores)
