"""Tests for the approximate DCT accelerator."""

import numpy as np
import pytest

from repro.accelerators.dct import ApproximateDCT8x8, integer_dct_matrix
from repro.multipliers.recursive import RecursiveMultiplier


class TestBasisMatrix:
    def test_shape_and_dtype(self):
        m = integer_dct_matrix()
        assert m.shape == (8, 8)
        assert m.dtype == np.int64

    def test_rows_nearly_orthogonal(self):
        m = integer_dct_matrix().astype(float)
        gram = m @ m.T
        scale = gram[0, 0]
        off_diag = gram - np.diag(np.diag(gram))
        assert np.abs(off_diag).max() < 0.02 * scale

    def test_dc_row_constant(self):
        m = integer_dct_matrix()
        assert len(set(m[0].tolist())) == 1


class TestExactTransform:
    def test_roundtrip_small_error(self, rng):
        dct = ApproximateDCT8x8()
        block = rng.integers(-128, 128, (8, 8))
        recon = dct.inverse(dct.forward(block))
        assert np.abs(recon - block).max() <= 8  # fixed-point rounding

    def test_dc_block(self):
        dct = ApproximateDCT8x8()
        block = np.full((8, 8), 50)
        coeffs = dct.forward(block)
        assert abs(coeffs[0, 0]) > 10
        assert np.abs(coeffs[1:, 1:]).max() <= 1

    def test_energy_compaction_on_smooth_blocks(self):
        dct = ApproximateDCT8x8()
        ramp = np.tile(np.arange(8), (8, 1)) * 10
        coeffs = dct.forward(ramp)
        low = np.abs(coeffs[:2, :2]).sum()
        high = np.abs(coeffs[4:, 4:]).sum()
        assert low > 10 * high

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="8x8"):
            ApproximateDCT8x8().forward(np.zeros((4, 4)))


class TestApproximateTransform:
    def test_approximate_adders_distort(self, rng):
        block = rng.integers(-128, 128, (8, 8))
        exact = ApproximateDCT8x8().forward(block)
        noisy = ApproximateDCT8x8(adder_fa="ApxFA5", adder_approx_lsbs=6).forward(
            block
        )
        assert not np.array_equal(exact, noisy)

    def test_approximate_multiplier_distorts(self, rng):
        block = rng.integers(0, 128, (8, 8))
        mul = RecursiveMultiplier(16, leaf_mul="ApxMulSoA", leaf_policy="all")
        exact = ApproximateDCT8x8().forward(block)
        noisy = ApproximateDCT8x8(multiplier=mul).forward(block)
        assert not np.array_equal(exact, noisy)

    def test_mild_approximation_keeps_dc(self, rng):
        """Low-LSB approximation must not destroy the DC coefficient."""
        block = rng.integers(0, 128, (8, 8))
        exact = ApproximateDCT8x8().forward(block)
        mild = ApproximateDCT8x8(adder_fa="ApxFA1", adder_approx_lsbs=2).forward(
            block
        )
        dc_exact, dc_mild = int(exact[0, 0]), int(mild[0, 0])
        assert abs(dc_exact - dc_mild) <= max(4, abs(dc_exact) // 8)

    def test_name(self):
        dct = ApproximateDCT8x8(adder_fa="ApxFA2", adder_approx_lsbs=2)
        assert "DCT8x8" in dct.name
