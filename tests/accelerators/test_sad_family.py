"""Tests for SAD-family characterization and its CLI surface."""

import pytest

from repro.accelerators.sad import characterize_sad_family
from repro.cli import main


class TestCharacterizeFamily:
    @pytest.fixture(scope="class")
    def records(self):
        return characterize_sad_family(
            n_pixels=16, lsb_counts=(2, 4), n_samples=800
        )

    def test_row_count(self, records):
        # AccuSAD + 5 cells x 2 LSB counts.
        assert len(records) == 1 + 5 * 2

    def test_exact_row_first_and_clean(self, records):
        assert records[0]["name"] == "AccuSAD"
        assert records[0]["mean_error_distance"] == 0.0

    def test_energy_decreases_with_lsbs(self, records):
        by_name = {r["name"]: r for r in records}
        for cell in ("ApxSAD1", "ApxSAD2", "ApxSAD3", "ApxSAD4", "ApxSAD5"):
            assert (by_name[f"{cell}/4"]["energy_fj"]
                    < by_name[f"{cell}/2"]["energy_fj"])
            assert (by_name[f"{cell}/2"]["energy_fj"]
                    < by_name["AccuSAD"]["energy_fj"])

    def test_error_grows_with_lsbs(self, records):
        by_name = {r["name"]: r for r in records}
        for cell in ("ApxSAD1", "ApxSAD2", "ApxSAD5"):
            assert (by_name[f"{cell}/4"]["mean_error_distance"]
                    >= by_name[f"{cell}/2"]["mean_error_distance"])

    def test_relative_error_modest(self, records):
        assert all(r["mean_relative_error"] < 0.2 for r in records)


class TestCliSurface:
    def test_characterize_sad(self, capsys):
        assert main(["characterize-sad", "--pixels", "16",
                     "--lsbs", "2", "--samples", "200"]) == 0
        out = capsys.readouterr().out
        assert "ApxSAD5/2" in out

    def test_luts(self, capsys):
        assert main(["luts"]) == 0
        out = capsys.readouterr().out
        assert "AccuFA" in out and "depth" in out

    def test_luts_with_adders(self, capsys):
        assert main(["luts", "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert "RCA8" in out
