"""Test package."""
