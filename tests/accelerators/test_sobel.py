"""Tests for the Sobel edge-detection accelerator."""

import numpy as np
import pytest

from repro.accelerators.sobel import SobelAccelerator, sobel_exact
from repro.media.synthetic import standard_images


class TestExactReference:
    def test_flat_image_has_no_edges(self):
        img = np.full((10, 10), 128)
        assert np.all(sobel_exact(img) == 0)

    def test_vertical_edge_detected(self):
        img = np.zeros((8, 8), dtype=np.int64)
        img[:, 4:] = 200
        out = sobel_exact(img)
        assert out[:, 3:5].max() == 255  # clipped strong edge
        assert np.all(out[:, 0:2] == 0)

    def test_horizontal_edge_detected(self):
        img = np.zeros((8, 8), dtype=np.int64)
        img[4:, :] = 200
        out = sobel_exact(img)
        assert out[3:5, :].max() == 255
        assert np.all(out[0:2, :] == 0)

    def test_output_range(self, rng):
        img = rng.integers(0, 256, (16, 16))
        out = sobel_exact(img)
        assert out.min() >= 0 and out.max() <= 255


class TestAccelerator:
    def test_exact_configuration_matches_reference(self, rng):
        acc = SobelAccelerator()
        img = rng.integers(0, 256, (20, 20))
        assert np.array_equal(acc.apply(img), sobel_exact(img))

    def test_approximate_differs_but_bounded(self, rng):
        acc = SobelAccelerator(fa="ApxFA2", approx_lsbs=3)
        img = rng.integers(0, 256, (24, 24))
        approx = acc.apply(img).astype(int)
        exact = sobel_exact(img)
        assert not np.array_equal(approx, exact)
        assert np.abs(approx - exact).max() < 128

    def test_edge_structure_survives_mild_approximation(self):
        img = np.zeros((16, 16), dtype=np.int64)
        img[:, 8:] = 200
        acc = SobelAccelerator(fa="ApxFA1", approx_lsbs=2)
        out = acc.apply(img)
        # The edge column still dominates the flat regions.
        assert out[:, 7:9].max() > 4 * max(1, out[:, 0:2].max())

    def test_error_grows_with_lsbs(self, rng):
        img = rng.integers(0, 256, (32, 32))
        exact = sobel_exact(img)
        meds = []
        for k in (0, 2, 4):
            acc = SobelAccelerator(fa="ApxFA5", approx_lsbs=k)
            meds.append(float(np.abs(acc.apply(img).astype(int) - exact).mean()))
        assert meds[0] == 0.0
        assert meds[0] < meds[1] < meds[2]

    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            SobelAccelerator().apply(np.zeros(16))

    def test_area_reduced_by_approximation(self):
        assert (
            SobelAccelerator(fa="ApxFA3", approx_lsbs=4).area_ge
            < SobelAccelerator().area_ge
        )

    def test_on_content_classes(self):
        acc = SobelAccelerator(fa="ApxFA1", approx_lsbs=3)
        for name, img in standard_images(32).items():
            out = acc.apply(img)
            assert out.shape == img.shape, name
            assert out.min() >= 0 and out.max() <= 255, name
