"""Tests for the multi-accelerator architecture simulator."""

import pytest

from repro.accelerators.bank import (
    MultiAcceleratorArchitecture,
    RunningApplication,
)
from repro.accelerators.manager import AcceleratorMode, AcceleratorProfile


@pytest.fixture
def profiles():
    return [
        AcceleratorProfile(
            "sad",
            (
                AcceleratorMode("exact", 1.0, 100.0),
                AcceleratorMode("apx4", 0.95, 60.0),
                AcceleratorMode("apx6", 0.80, 40.0),
            ),
        ),
        AcceleratorProfile(
            "filter",
            (
                AcceleratorMode("exact", 1.0, 50.0),
                AcceleratorMode("apx", 0.9, 20.0),
            ),
        ),
    ]


class TestSimulation:
    def test_basic_run(self, profiles):
        arch = MultiAcceleratorArchitecture(profiles)
        apps = [
            RunningApplication("enc", "sad", 0.9, ops_per_epoch=100),
            RunningApplication("cam", "filter", 0.85, ops_per_epoch=10),
        ]
        records = arch.run(apps, n_epochs=5)
        assert len(records) == 5
        assert records[0].modes == {"enc": "apx4", "cam": "apx"}
        assert not records[0].violations

    def test_energy_accounting(self, profiles):
        arch = MultiAcceleratorArchitecture(profiles)
        apps = [RunningApplication("enc", "sad", 0.9, ops_per_epoch=100)]
        records = arch.run(apps, n_epochs=3)
        assert records[0].energy == pytest.approx(60.0 * 100)
        assert arch.total_energy() == pytest.approx(3 * 60.0 * 100)

    def test_beats_exact_baseline(self, profiles):
        arch = MultiAcceleratorArchitecture(profiles)
        apps = [
            RunningApplication("enc", "sad", 0.9, ops_per_epoch=100),
            RunningApplication("cam", "filter", 0.85, ops_per_epoch=100),
        ]
        arch.run(apps, n_epochs=4)
        baseline = arch.exact_baseline_energy(apps, 4)
        assert arch.total_energy() < baseline

    def test_duplicate_app_names_rejected(self, profiles):
        arch = MultiAcceleratorArchitecture(profiles)
        apps = [
            RunningApplication("x", "sad", 0.9),
            RunningApplication("x", "filter", 0.9),
        ]
        with pytest.raises(ValueError, match="unique"):
            arch.run(apps)

    def test_bad_epoch_count(self, profiles):
        arch = MultiAcceleratorArchitecture(profiles)
        with pytest.raises(ValueError, match="epochs"):
            arch.run([RunningApplication("x", "sad", 0.9)], n_epochs=0)


class TestAdaptiveControl:
    def test_degrading_content_tightens_mode(self, profiles):
        """When measured quality drops below the bound, the manager
        moves the app to a higher-quality mode next epoch."""

        def flaky_monitor(mode, epoch):
            # Content becomes hard at epoch 2: approximate mode under-
            # delivers by 0.1.
            penalty = 0.1 if epoch >= 2 and mode.name != "exact" else 0.0
            return mode.quality - penalty

        arch = MultiAcceleratorArchitecture(profiles)
        apps = [
            RunningApplication(
                "enc", "sad", 0.9, quality_monitor=flaky_monitor
            )
        ]
        records = arch.run(apps, n_epochs=6)
        assert records[0].modes["enc"] == "apx4"
        assert "enc" in records[2].violations
        # After the violation, the mode is tightened.
        later_modes = [r.modes["enc"] for r in records[3:]]
        assert any(m in ("exact",) for m in later_modes)

    def test_violation_epochs_reported(self, profiles):
        def bad_monitor(mode, epoch):
            return 0.0 if epoch == 1 else mode.quality

        arch = MultiAcceleratorArchitecture(profiles)
        apps = [
            RunningApplication("cam", "filter", 0.85,
                               quality_monitor=bad_monitor)
        ]
        arch.run(apps, n_epochs=3)
        assert arch.violation_epochs("cam") == [1]

    def test_recovered_content_relaxes_mode(self, profiles):
        """Once measured quality has comfortable headroom again, the
        manager relaxes back to the cheap mode."""

        def spike_monitor(mode, epoch):
            return mode.quality - (0.2 if epoch == 1 else 0.0)

        arch = MultiAcceleratorArchitecture(profiles)
        apps = [
            RunningApplication("enc", "sad", 0.9,
                               quality_monitor=spike_monitor)
        ]
        records = arch.run(apps, n_epochs=5)
        assert records[0].modes["enc"] == "apx4"
        assert records[2].modes["enc"] == "exact"  # reacted to the spike
        assert records[-1].modes["enc"] == "apx4"  # relaxed again
