"""Tests for approximate neural-network inference."""

import numpy as np
import pytest

from repro.accelerators.neural import (
    MLPClassifier,
    QuantizedMLP,
    make_classification_data,
)
from repro.adders.ripple import ApproximateRippleAdder
from repro.multipliers.booth import BoothMultiplier


@pytest.fixture(scope="module")
def dataset():
    return make_classification_data(n_samples=360, n_classes=3, seed=3)


@pytest.fixture(scope="module")
def trained(dataset):
    X, y = dataset
    return MLPClassifier.train(X, y, hidden=8, epochs=250, seed=3)


class TestData:
    def test_deterministic(self):
        x1, y1 = make_classification_data(seed=7)
        x2, y2 = make_classification_data(seed=7)
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)

    def test_features_normalized(self, dataset):
        X, _ = dataset
        assert X.min() >= 0.0 and X.max() <= 1.0

    def test_all_classes_present(self, dataset):
        _, y = dataset
        assert set(np.unique(y)) == {0, 1, 2}


class TestTraining:
    def test_learns_better_than_chance(self, dataset, trained):
        X, y = dataset
        assert trained.accuracy(X, y) > 0.75

    def test_training_deterministic(self, dataset):
        X, y = dataset
        a = MLPClassifier.train(X, y, hidden=4, epochs=50, seed=5)
        b = MLPClassifier.train(X, y, hidden=4, epochs=50, seed=5)
        assert np.array_equal(a.w1, b.w1)

    def test_predictions_shape(self, dataset, trained):
        X, _ = dataset
        assert trained.predict(X).shape == (len(X),)


class TestQuantization:
    def test_quantization_loss_small(self, dataset, trained):
        X, y = dataset
        quantized = trained.quantize(dataset[0])
        float_acc = trained.accuracy(X, y)
        fixed_acc = quantized.accuracy(X, y)
        assert fixed_acc >= float_acc - 0.05

    def test_weights_are_int8(self, dataset, trained):
        quantized = trained.quantize(dataset[0])
        for w in (quantized.w1, quantized.w2):
            assert w.dtype == np.int64
            assert np.abs(w).max() <= 127


class TestApproximateInference:
    def test_exact_units_match_quantized_path(self, dataset, trained):
        X, y = dataset
        quantized = trained.quantize(dataset[0])
        baseline = quantized.predict(X)
        with_units = quantized.predict(
            X,
            multiplier=BoothMultiplier(16),
            accumulator=ApproximateRippleAdder(24),
        )
        assert np.array_equal(baseline, with_units)

    def test_graceful_degradation_with_truncation(self, dataset, trained):
        """The paper's resilience claim: mild arithmetic approximation
        barely moves classification accuracy."""
        X, y = dataset
        quantized = trained.quantize(dataset[0])
        exact_acc = quantized.accuracy(X, y)
        mild = quantized.accuracy(
            X, y, multiplier=BoothMultiplier(16, truncate_digits=1)
        )
        assert mild >= exact_acc - 0.03

    def test_heavy_truncation_eventually_hurts(self, dataset, trained):
        X, y = dataset
        quantized = trained.quantize(dataset[0])
        exact_acc = quantized.accuracy(X, y)
        heavy = quantized.accuracy(
            X, y, multiplier=BoothMultiplier(16, truncate_digits=6)
        )
        assert heavy < exact_acc

    def test_approximate_accumulator_tolerated(self, dataset, trained):
        X, y = dataset
        quantized = trained.quantize(dataset[0])
        accumulator = ApproximateRippleAdder(
            24, approx_fa="ApxFA1", num_approx_lsbs=6
        )
        acc = quantized.accuracy(
            X, y, multiplier=BoothMultiplier(16), accumulator=accumulator
        )
        assert acc >= quantized.accuracy(X, y) - 0.05
