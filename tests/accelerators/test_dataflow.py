"""Tests for the dataflow accelerator framework."""

import numpy as np
import pytest

from repro.accelerators.dataflow import DataflowAccelerator, ExactArithmetic
from repro.adders.ripple import ApproximateRippleAdder


class AdderUnit:
    """Adapter exposing an ApproximateRippleAdder as a dataflow unit."""

    def __init__(self, width, fa="AccuFA", lsbs=0):
        self._adder = ApproximateRippleAdder(width, approx_fa=fa, num_approx_lsbs=lsbs)
        self.area_ge = self._adder.area_ge
        self.name = self._adder.name

    def add(self, a, b):
        return self._adder.add(a, b)

    def sub(self, a, b):
        return self._adder.sub(a, b)

    def multiply(self, a, b):  # pragma: no cover - unused
        raise NotImplementedError


def build_sad2(unit=None) -> DataflowAccelerator:
    acc = DataflowAccelerator("sad2", default_unit=unit)
    a0, a1 = acc.add_input("a0"), acc.add_input("a1")
    b0, b1 = acc.add_input("b0"), acc.add_input("b1")
    d0 = acc.add_node("abs", [acc.add_node("sub", [a0, b0])])
    d1 = acc.add_node("abs", [acc.add_node("sub", [a1, b1])])
    acc.set_output(acc.add_node("add", [d0, d1]))
    return acc


class TestConstruction:
    def test_duplicate_input_rejected(self):
        acc = DataflowAccelerator("x")
        acc.add_input("a")
        with pytest.raises(ValueError, match="duplicate"):
            acc.add_input("a")

    def test_unknown_op_rejected(self):
        acc = DataflowAccelerator("x")
        acc.add_input("a")
        with pytest.raises(ValueError, match="op"):
            acc.add_node("divide", [0])

    def test_wrong_arity_rejected(self):
        acc = DataflowAccelerator("x")
        acc.add_input("a")
        with pytest.raises(ValueError, match="takes 2"):
            acc.add_node("add", [0])

    def test_forward_reference_rejected(self):
        acc = DataflowAccelerator("x")
        acc.add_input("a")
        with pytest.raises(ValueError, match="out of range"):
            acc.add_node("abs", [5])

    def test_shift_needs_param(self):
        acc = DataflowAccelerator("x")
        acc.add_input("a")
        with pytest.raises(ValueError, match="shift"):
            acc.add_node("shl", [0])

    def test_clip_needs_bounds(self):
        acc = DataflowAccelerator("x")
        acc.add_input("a")
        with pytest.raises(ValueError, match="clip"):
            acc.add_node("clip", [0], param=5)

    def test_output_index_validated(self):
        acc = DataflowAccelerator("x")
        with pytest.raises(ValueError, match="out of range"):
            acc.set_output(0)


class TestEvaluation:
    def test_sad2_scalar(self):
        acc = build_sad2()
        assert int(acc.evaluate({"a0": 5, "a1": 2, "b0": 9, "b1": 2})) == 4

    def test_sad2_vectorized(self, rng):
        acc = build_sad2()
        a0, a1 = rng.integers(0, 256, 100), rng.integers(0, 256, 100)
        b0, b1 = rng.integers(0, 256, 100), rng.integers(0, 256, 100)
        out = acc.evaluate({"a0": a0, "a1": a1, "b0": b0, "b1": b1})
        assert np.array_equal(out, np.abs(a0 - b0) + np.abs(a1 - b1))

    def test_const_shift_clip_neg(self):
        acc = DataflowAccelerator("ops")
        x = acc.add_input("x")
        c = acc.add_const(10)
        total = acc.add_node("add", [x, c])
        shifted = acc.add_node("shl", [total], param=2)
        halved = acc.add_node("shr", [shifted], param=1)
        negated = acc.add_node("neg", [halved])
        acc.set_output(acc.add_node("clip", [negated], param=(-25, 0)))
        # x=5: (5+10)<<2=60 >>1=30, neg=-30, clip=-25.
        assert int(acc.evaluate({"x": 5})) == -25

    def test_mul_node(self):
        acc = DataflowAccelerator("mul")
        x, y = acc.add_input("x"), acc.add_input("y")
        acc.set_output(acc.add_node("mul", [x, y]))
        assert int(acc.evaluate({"x": 6, "y": 7})) == 42

    def test_missing_stimulus(self):
        acc = build_sad2()
        with pytest.raises(ValueError, match="missing"):
            acc.evaluate({"a0": 1})

    def test_no_output_rejected(self):
        acc = DataflowAccelerator("x")
        acc.add_input("a")
        with pytest.raises(ValueError, match="output"):
            acc.evaluate({"a": 1})

    def test_all_nodes_trace(self):
        acc = build_sad2()
        values = acc.evaluate(
            {"a0": 5, "a1": 2, "b0": 9, "b1": 2}, all_nodes=True
        )
        assert len(values) == len(acc.nodes)

    def test_approximate_unit_changes_result(self):
        exact = build_sad2()
        approx = build_sad2(unit=AdderUnit(8, fa="ApxFA5", lsbs=6))
        stim = {"a0": 200, "a1": 3, "b0": 9, "b1": 77}
        assert int(exact.evaluate(stim)) != int(approx.evaluate(stim))


class TestRollups:
    def test_area_counts_arith_nodes(self):
        unit = AdderUnit(8)
        acc = build_sad2(unit=unit)
        assert acc.area_ge == pytest.approx(3 * unit.area_ge)

    def test_exact_unit_is_free(self):
        acc = build_sad2()
        assert acc.area_ge == 0.0

    def test_n_arith_nodes(self):
        assert build_sad2().n_arith_nodes() == 3

    def test_units_deduplicated(self):
        unit = AdderUnit(8)
        acc = DataflowAccelerator("u")
        x, y = acc.add_input("x"), acc.add_input("y")
        s1 = acc.add_node("add", [x, y], unit=unit)
        acc.set_output(acc.add_node("add", [s1, y], unit=unit))
        assert len(acc.units()) == 1

    def test_repr(self):
        assert "3 arithmetic" in repr(build_sad2())
