"""Tests for the approximation management unit."""

import pytest

from repro.accelerators.manager import (
    AcceleratorMode,
    AcceleratorProfile,
    ApplicationRequest,
    ApproximationManager,
)


@pytest.fixture
def sad_profile():
    return AcceleratorProfile(
        "sad",
        (
            AcceleratorMode("exact", 1.0, 100.0),
            AcceleratorMode("apx2", 0.98, 80.0),
            AcceleratorMode("apx4", 0.95, 60.0),
            AcceleratorMode("apx6", 0.80, 40.0),
        ),
    )


@pytest.fixture
def filter_profile():
    return AcceleratorProfile(
        "filter",
        (
            AcceleratorMode("exact", 1.0, 50.0),
            AcceleratorMode("apx", 0.9, 20.0),
        ),
    )


class TestModes:
    def test_quality_bounds_validated(self):
        with pytest.raises(ValueError, match="quality"):
            AcceleratorMode("bad", 1.5, 10.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError, match="power"):
            AcceleratorMode("bad", 0.5, -1.0)

    def test_profile_needs_modes(self):
        with pytest.raises(ValueError, match="mode"):
            AcceleratorProfile("empty", ())

    def test_cheapest_mode(self, sad_profile):
        assert sad_profile.cheapest_mode(0.9).name == "apx4"
        assert sad_profile.cheapest_mode(0.99).name == "exact"

    def test_cheapest_mode_infeasible(self, sad_profile):
        profile = AcceleratorProfile(
            "weak", (AcceleratorMode("only", 0.5, 1.0),)
        )
        with pytest.raises(ValueError, match="no mode"):
            profile.cheapest_mode(0.9)


class TestSelection:
    def test_minimum_power_selection(self, sad_profile, filter_profile):
        mgr = ApproximationManager([sad_profile, filter_profile])
        result = mgr.select_modes(
            [
                ApplicationRequest("encoder", "sad", 0.9),
                ApplicationRequest("camera", "filter", 0.85),
            ]
        )
        assert result.assignments["encoder"].name == "apx4"
        assert result.assignments["camera"].name == "apx"
        assert result.total_power_nw == pytest.approx(60.0 + 20.0)

    def test_greedy_matches_exhaustive(self, sad_profile, filter_profile):
        mgr = ApproximationManager([sad_profile, filter_profile])
        requests = [
            ApplicationRequest("a", "sad", 0.9),
            ApplicationRequest("b", "filter", 0.5),
            ApplicationRequest("c", "sad", 0.99),
        ]
        greedy = mgr.select_modes(requests)
        exhaustive = mgr.select_modes_exhaustive(requests)
        assert greedy.total_power_nw == pytest.approx(exhaustive.total_power_nw)

    def test_unknown_kind_rejected(self, sad_profile):
        mgr = ApproximationManager([sad_profile])
        with pytest.raises(KeyError, match="gpu"):
            mgr.select_modes([ApplicationRequest("x", "gpu", 0.5)])

    def test_duplicate_profile_rejected(self, sad_profile):
        with pytest.raises(ValueError, match="duplicate"):
            ApproximationManager([sad_profile, sad_profile])


class TestAdaptation:
    def test_quality_violation_tightens(self, sad_profile):
        mgr = ApproximationManager([sad_profile])
        request = ApplicationRequest("enc", "sad", 0.9)
        mgr.select_modes([request])  # apx4
        mode = mgr.adapt("enc", request, measured_quality=0.85)
        assert mode.quality > 0.95  # moved up from apx4

    def test_headroom_relaxes(self, sad_profile):
        mgr = ApproximationManager([sad_profile])
        request = ApplicationRequest("enc", "sad", 0.9)
        mgr.select_modes([request])
        mgr.adapt("enc", request, 0.85)  # tightened
        relaxed = mgr.adapt("enc", request, 0.97)  # comfortable headroom
        assert relaxed.name == "apx4"

    def test_hysteresis_band_keeps_mode(self, sad_profile):
        mgr = ApproximationManager([sad_profile])
        request = ApplicationRequest("enc", "sad", 0.9)
        initial = mgr.select_modes([request]).assignments["enc"]
        stable = mgr.adapt("enc", request, 0.905)  # inside the band
        assert stable == initial

    def test_adapt_unknown_app(self, sad_profile):
        mgr = ApproximationManager([sad_profile])
        with pytest.raises(KeyError, match="assignment"):
            mgr.adapt("ghost", ApplicationRequest("ghost", "sad", 0.9), 0.5)

    def test_already_best_mode_stays(self, sad_profile):
        mgr = ApproximationManager([sad_profile])
        request = ApplicationRequest("enc", "sad", 1.0)
        mgr.select_modes([request])  # exact
        mode = mgr.adapt("enc", request, measured_quality=0.99)
        assert mode.name == "exact"
