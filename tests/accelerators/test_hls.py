"""Tests for the approximate-HLS synthesizer."""

import numpy as np
import pytest

from repro.accelerators.dataflow import DataflowAccelerator
from repro.accelerators.hls import (
    AdderCandidate,
    ApproximateSynthesizer,
    default_adder_candidates,
)


def sum_tree_template(n: int = 4) -> DataflowAccelerator:
    acc = DataflowAccelerator(f"sum{n}")
    nodes = [acc.add_input(f"x{i}") for i in range(n)]
    while len(nodes) > 1:
        nxt = []
        for i in range(0, len(nodes) - 1, 2):
            nxt.append(acc.add_node("add", [nodes[i], nodes[i + 1]]))
        if len(nodes) % 2:
            nxt.append(nodes[-1])
        nodes = nxt
    acc.set_output(nodes[0])
    return acc


def sad_template(n: int = 4) -> DataflowAccelerator:
    acc = DataflowAccelerator(f"sad{n}")
    a = [acc.add_input(f"a{i}") for i in range(n)]
    b = [acc.add_input(f"b{i}") for i in range(n)]
    diffs = [
        acc.add_node("abs", [acc.add_node("sub", [a[i], b[i]])])
        for i in range(n)
    ]
    while len(diffs) > 1:
        diffs = [
            acc.add_node("add", [diffs[i], diffs[i + 1]])
            for i in range(0, len(diffs), 2)
        ]
    acc.set_output(diffs[0])
    return acc


RANGES4 = {f"x{i}": (0, 255) for i in range(4)}
SAD_RANGES = {f"{p}{i}": (0, 255) for p in "ab" for i in range(4)}


class TestCandidates:
    def test_default_ladder_ends_exact(self):
        ladder = default_adder_candidates()
        assert ladder[-1].approx_lsbs == 0

    def test_ladder_must_include_exact(self):
        with pytest.raises(ValueError, match="exact"):
            ApproximateSynthesizer([AdderCandidate("apx", "ApxFA5", 4)])

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError, match="candidate"):
            ApproximateSynthesizer([])

    def test_candidate_build_clamps_lsbs(self):
        candidate = AdderCandidate("wide", "ApxFA1", 99)
        assert candidate.build(8).num_approx_lsbs == 8


class TestSynthesis:
    def test_zero_budget_gives_exact_datapath(self, rng):
        synth = ApproximateSynthesizer()
        acc = sum_tree_template()
        result = synth.synthesize(acc, RANGES4, error_budget=0)
        assert result.error_bound == 0
        stim = {k: rng.integers(0, 256, 2000) for k in RANGES4}
        exact = sum(stim[k] for k in RANGES4)
        assert np.array_equal(acc.evaluate(stim), exact)

    def test_loose_budget_gives_cheapest(self):
        synth = ApproximateSynthesizer()
        result = synth.synthesize(sum_tree_template(), RANGES4, 10**9)
        assert set(result.assignment.values()) == {
            default_adder_candidates()[0].name
        }

    def test_bound_respects_budget(self):
        synth = ApproximateSynthesizer()
        for budget in (0, 10, 100, 1000):
            result = synth.synthesize(sum_tree_template(), RANGES4, budget)
            assert result.error_bound <= budget

    def test_bound_is_sound_empirically(self, rng):
        synth = ApproximateSynthesizer()
        acc = sad_template()
        result = synth.synthesize(acc, SAD_RANGES, error_budget=200)
        stim = {k: rng.integers(0, 256, 20_000) for k in SAD_RANGES}
        exact = sad_template().evaluate(stim)
        observed = np.abs(acc.evaluate(stim) - exact)
        assert observed.max() <= result.error_bound

    def test_area_monotone_in_budget(self):
        synth = ApproximateSynthesizer()
        areas = [
            synth.synthesize(sad_template(), SAD_RANGES, budget).area_ge
            for budget in (0, 50, 500, 10**6)
        ]
        assert all(x >= y for x, y in zip(areas, areas[1:]))
        assert areas[0] > areas[-1]

    def test_missing_input_range_rejected(self):
        synth = ApproximateSynthesizer()
        with pytest.raises(ValueError, match="range"):
            synth.synthesize(sum_tree_template(), {"x0": (0, 255)}, 0)

    def test_negative_budget_rejected(self):
        synth = ApproximateSynthesizer()
        with pytest.raises(ValueError, match="budget"):
            synth.synthesize(sum_tree_template(), RANGES4, -1)

    def test_template_needs_output(self):
        synth = ApproximateSynthesizer()
        acc = DataflowAccelerator("empty")
        acc.add_input("x")
        with pytest.raises(ValueError, match="output"):
            synth.synthesize(acc, {"x": (0, 1)}, 0)

    def test_negative_operand_adds_stay_exact(self, rng):
        """An add fed by possibly-negative values must not get an
        unsigned approximate unit."""
        synth = ApproximateSynthesizer()
        acc = DataflowAccelerator("signed")
        x, y = acc.add_input("x"), acc.add_input("y")
        d = acc.add_node("sub", [x, y])  # may be negative
        acc.set_output(acc.add_node("add", [d, x]))
        result = synth.synthesize(
            acc, {"x": (0, 255), "y": (0, 255)}, error_budget=10**9
        )
        add_node = acc.nodes[acc.output]
        # The final add keeps the exact default unit (None) because its
        # first operand range spans negatives.
        assert add_node.unit is None
        stim = {"x": rng.integers(0, 256, 1000), "y": rng.integers(0, 256, 1000)}
        # sub itself may be approximate, but evaluation must still run.
        acc.evaluate(stim)


class TestValueAnalysis:
    def test_shift_and_clip_ranges(self):
        synth = ApproximateSynthesizer()
        acc = DataflowAccelerator("ops")
        x = acc.add_input("x")
        shifted = acc.add_node("shl", [x], param=2)
        clipped = acc.add_node("clip", [shifted], param=(0, 100))
        acc.set_output(acc.add_node("add", [clipped, x]))
        result = synth.synthesize(acc, {"x": (0, 255)}, error_budget=0)
        assert result.error_bound == 0

    def test_mul_with_exact_operands_allowed(self):
        synth = ApproximateSynthesizer()
        acc = DataflowAccelerator("mul")
        x, y = acc.add_input("x"), acc.add_input("y")
        acc.set_output(acc.add_node("mul", [x, y]))
        result = synth.synthesize(acc, {"x": (0, 15), "y": (0, 15)}, 0)
        assert result.error_bound == 0
