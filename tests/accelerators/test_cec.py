"""Tests for the Consolidated Error Correction unit."""

import numpy as np
import pytest

from repro.accelerators.cec import (
    ConsolidatedErrorCorrection,
    edc_area_comparison,
)
from repro.accelerators.sad import SADAccelerator


class TestCalibration:
    def test_constant_offset_fully_corrected(self):
        cec = ConsolidatedErrorCorrection(lambda x: x + 3, lambda x: x)
        offset = cec.calibrate(np.arange(100))
        assert offset == -3
        assert int(cec.correct(np.asarray(13))) == 10

    def test_call_runs_and_corrects(self):
        cec = ConsolidatedErrorCorrection(lambda x: x - 5, lambda x: x)
        cec.calibrate(np.arange(50))
        assert np.array_equal(cec(np.array([10, 20])), [10, 20])

    def test_correct_before_calibrate_rejected(self):
        cec = ConsolidatedErrorCorrection(lambda x: x, lambda x: x)
        with pytest.raises(RuntimeError, match="calibrate"):
            cec.correct(np.asarray(1))

    def test_exact_accelerator_gets_zero_offset(self):
        cec = ConsolidatedErrorCorrection(lambda x: x, lambda x: x)
        assert cec.calibrate(np.arange(10)) == 0

    def test_mixed_errors_pick_best_offset(self, rng):
        # Error is -4 with prob 0.75, 0 otherwise: offset +4 minimizes
        # E|err + off| (1.0 at +4 vs 3.0 at 0).
        noise = rng.random(4000) < 0.75
        apx = lambda x: x - 4 * noise.astype(int)
        cec = ConsolidatedErrorCorrection(apx, lambda x: x)
        assert cec.calibrate(np.arange(4000)) == 4

    def test_residual_pmf_reflects_offset(self):
        cec = ConsolidatedErrorCorrection(lambda x: x + 2, lambda x: x)
        cec.calibrate(np.arange(10))
        residual = cec.residual_error_pmf()
        assert residual.probability(0) == 1.0


class TestOnSadAccelerator:
    def test_cec_improves_mean_error(self, rng):
        approx = SADAccelerator(n_pixels=16, fa="ApxFA2", approx_lsbs=5)
        exact = SADAccelerator(n_pixels=16)
        a_cal = rng.integers(0, 256, (3000, 16))
        b_cal = rng.integers(0, 256, (3000, 16))
        cec = ConsolidatedErrorCorrection(approx.sad, exact.sad)
        cec.calibrate(a_cal, b_cal)
        a = rng.integers(0, 256, (2000, 16))
        b = rng.integers(0, 256, (2000, 16))
        truth = exact.sad(a, b)
        raw_med = np.abs(approx.sad(a, b) - truth).mean()
        corrected_med = np.abs(cec(a, b) - truth).mean()
        assert corrected_med < raw_med


class TestAreaComparison:
    def test_savings_grow_with_cascade_size(self):
        small = edc_area_comparison(2)
        large = edc_area_comparison(64)
        assert large.saving_ge > small.saving_ge

    def test_break_even(self):
        # One shared unit beats per-adder EDC once the cascade is larger
        # than CEC_area / EDC_area adders.
        assert edc_area_comparison(1).saving_ge < 0
        assert edc_area_comparison(16).saving_ge > 0

    def test_saving_percent(self):
        comparison = edc_area_comparison(10)
        assert comparison.saving_percent == pytest.approx(
            100 * comparison.saving_ge / comparison.integrated_edc_ge
        )

    def test_invalid_cascade(self):
        with pytest.raises(ValueError, match="n_adders"):
            edc_area_comparison(0)
