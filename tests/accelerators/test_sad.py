"""Tests for the SAD accelerator and its ApxSAD variants."""

import numpy as np
import pytest

from repro.accelerators.sad import (
    SAD_VARIANT_CELLS,
    SADAccelerator,
    make_sad_variants,
)


class TestExactSAD:
    def test_matches_reference(self, rng):
        acc = SADAccelerator(n_pixels=64)
        a = rng.integers(0, 256, (50, 64))
        b = rng.integers(0, 256, (50, 64))
        assert np.array_equal(acc.sad(a, b), np.abs(a - b).sum(axis=-1))

    def test_identical_blocks_give_zero(self):
        acc = SADAccelerator(n_pixels=16)
        block = np.arange(16)
        assert int(acc.sad(block, block)) == 0

    def test_single_pixel(self):
        acc = SADAccelerator(n_pixels=1)
        assert int(acc.sad([7], [250])) == 243

    def test_odd_pixel_count(self, rng):
        acc = SADAccelerator(n_pixels=9)
        a = rng.integers(0, 256, (10, 9))
        b = rng.integers(0, 256, (10, 9))
        assert np.array_equal(acc.sad(a, b), np.abs(a - b).sum(axis=-1))

    def test_maximal_inputs(self):
        acc = SADAccelerator(n_pixels=64)
        a = np.full(64, 255)
        b = np.zeros(64, dtype=int)
        assert int(acc.sad(a, b)) == 64 * 255

    def test_wrong_pixel_count_rejected(self):
        acc = SADAccelerator(n_pixels=64)
        with pytest.raises(ValueError, match="64"):
            acc.sad(np.zeros((2, 32)), np.zeros((2, 32)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="n_pixels"):
            SADAccelerator(n_pixels=0)
        with pytest.raises(ValueError, match="approx_lsbs"):
            SADAccelerator(approx_lsbs=-1)


class TestApproximateSAD:
    @pytest.mark.parametrize("fa", ["ApxFA1", "ApxFA2", "ApxFA3", "ApxFA4", "ApxFA5"])
    def test_errors_bounded(self, fa, rng):
        acc = SADAccelerator(n_pixels=64, fa=fa, approx_lsbs=4)
        a = rng.integers(0, 256, (100, 64))
        b = rng.integers(0, 256, (100, 64))
        exact = np.abs(a - b).sum(axis=-1)
        errors = np.abs(acc.sad(a, b) - exact)
        # Error budget: 64 subtractor errors + tree-node errors, each
        # bounded by ~2**(approx_lsbs+1).
        assert errors.max() < 127 * (1 << 5)

    def test_zero_lsbs_is_exact(self, rng):
        acc = SADAccelerator(n_pixels=16, fa="ApxFA5", approx_lsbs=0)
        a = rng.integers(0, 256, (20, 16))
        b = rng.integers(0, 256, (20, 16))
        assert np.array_equal(acc.sad(a, b), np.abs(a - b).sum(axis=-1))

    def test_error_grows_with_lsbs(self, rng):
        a = rng.integers(0, 256, (400, 64))
        b = rng.integers(0, 256, (400, 64))
        exact = np.abs(a - b).sum(axis=-1)
        meds = []
        for k in (0, 2, 4, 6):
            acc = SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=k)
            meds.append(float(np.abs(acc.sad(a, b) - exact).mean()))
        assert meds[0] == 0.0
        assert meds[1] < meds[2] < meds[3]


class TestVariants:
    def test_all_variants_present(self):
        variants = make_sad_variants()
        assert set(variants) == set(SAD_VARIANT_CELLS)

    def test_exclude_accurate(self):
        variants = make_sad_variants(include_accurate=False)
        assert "AccuSAD" not in variants

    def test_variant_cells(self):
        variants = make_sad_variants(approx_lsbs=4)
        assert variants["ApxSAD3"].fa == "ApxFA3"
        assert variants["AccuSAD"].approx_lsbs == 0

    def test_names(self):
        acc = SADAccelerator(n_pixels=64, fa="ApxFA2", approx_lsbs=4)
        assert acc.name == "ApxSAD2(lsbs=4)"


class TestPhysical:
    def test_area_positive(self):
        assert SADAccelerator(n_pixels=64).area_ge > 0

    def test_approximation_reduces_area_and_energy(self):
        exact = SADAccelerator(n_pixels=64)
        approx = SADAccelerator(n_pixels=64, fa="ApxFA3", approx_lsbs=4)
        assert approx.area_ge < exact.area_ge
        assert approx.energy_per_op_fj < exact.energy_per_op_fj

    def test_four_lsbs_cheaper_than_two(self):
        """Fig. 9 claim: 4-bit approximation always saves more power
        than 2-bit, for every cell type."""
        for cell in ("ApxFA1", "ApxFA2", "ApxFA3", "ApxFA4", "ApxFA5"):
            two = SADAccelerator(n_pixels=64, fa=cell, approx_lsbs=2)
            four = SADAccelerator(n_pixels=64, fa=cell, approx_lsbs=4)
            assert four.energy_per_op_fj < two.energy_per_op_fj

    def test_power_scales_with_throughput(self):
        acc = SADAccelerator(n_pixels=64)
        assert acc.power_nw(2e6) == pytest.approx(2 * acc.power_nw(1e6))


class TestTreeReduction:
    """Satellite audit: non-power-of-two reductions and the wired-through
    odd element (which bypasses the adder of its level)."""

    @pytest.mark.parametrize("n_pixels", [3, 5, 7, 64])
    def test_accurate_matches_numpy_sum(self, n_pixels, rng):
        acc = SADAccelerator(n_pixels=n_pixels)
        a = rng.integers(0, 256, (40, n_pixels))
        b = rng.integers(0, 256, (40, n_pixels))
        assert np.array_equal(acc.sad(a, b), np.sum(np.abs(a - b), axis=-1))

    @pytest.mark.parametrize("n_pixels", [3, 5, 7, 64])
    def test_legacy_loop_engine_matches_numpy_sum(self, n_pixels, rng):
        acc = SADAccelerator(n_pixels=n_pixels, eval_mode="loop")
        a = rng.integers(0, 256, (40, n_pixels))
        b = rng.integers(0, 256, (40, n_pixels))
        assert np.array_equal(acc.sad(a, b), np.sum(np.abs(a - b), axis=-1))

    @pytest.mark.parametrize("n_pixels", [3, 5, 7, 13, 64])
    @pytest.mark.parametrize("fa", ["ApxFA1", "ApxFA5"])
    def test_fast_and_loop_engines_agree(self, n_pixels, fa, rng):
        fast = SADAccelerator(n_pixels=n_pixels, fa=fa, approx_lsbs=4)
        loop = SADAccelerator(
            n_pixels=n_pixels, fa=fa, approx_lsbs=4, eval_mode="loop"
        )
        a = rng.integers(0, 256, (40, n_pixels))
        b = rng.integers(0, 256, (40, n_pixels))
        assert np.array_equal(fast.sad(a, b), loop.sad(a, b))

    def test_tree_widths_cover_worst_case_operands(self):
        """Maximal |a-b| (= 2**pixel_bits through the approximate
        subtractor) survives every level without truncation."""
        for n_pixels in (3, 5, 7, 9, 64):
            acc = SADAccelerator(n_pixels=n_pixels)
            a = np.full(n_pixels, 255)
            b = np.zeros(n_pixels, dtype=int)
            assert int(acc.sad(a, b)) == 255 * n_pixels
