"""Tests for the radix-4 Booth multiplier."""

import numpy as np
import pytest

from repro.multipliers.booth import BoothMultiplier, booth_recode


class TestRecoding:
    @pytest.mark.parametrize("width", [4, 8, 12, 16])
    def test_reconstruction(self, width, rng):
        lo, hi = -(1 << (width - 1)), 1 << (width - 1)
        values = rng.integers(lo, hi, 1000)
        digits = booth_recode(values, width)
        recon = sum(d * (4**i) for i, d in enumerate(digits))
        assert np.array_equal(recon, values)

    def test_digit_range(self, rng):
        values = rng.integers(-128, 128, 500)
        for digit in booth_recode(values, 8):
            assert digit.min() >= -2 and digit.max() <= 2

    def test_digit_count(self):
        assert len(booth_recode(np.array([0]), 8)) == 4
        assert len(booth_recode(np.array([0]), 16)) == 8

    def test_extremes(self):
        for width in (4, 8):
            lo = -(1 << (width - 1))
            hi = (1 << (width - 1)) - 1
            values = np.array([lo, hi, 0, -1, 1])
            digits = booth_recode(values, width)
            recon = sum(d * (4**i) for i, d in enumerate(digits))
            assert np.array_equal(recon, values)


class TestExactMultiplier:
    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_signed_products(self, width, rng):
        mul = BoothMultiplier(width)
        lo, hi = -(1 << (width - 1)), 1 << (width - 1)
        a = rng.integers(lo, hi, 1000)
        b = rng.integers(lo, hi, 1000)
        assert np.array_equal(mul.multiply(a, b), a * b)

    def test_exhaustive_4x4(self):
        mul = BoothMultiplier(4)
        values = np.arange(-8, 8)
        a = np.repeat(values, 16)
        b = np.tile(values, 16)
        assert np.array_equal(mul.multiply(a, b), a * b)

    def test_twos_complement_inputs_accepted(self):
        mul = BoothMultiplier(8)
        # 0xFF == -1 in 8-bit two's complement.
        assert int(mul.multiply(0xFF, 2)) == -2

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError, match="even"):
            BoothMultiplier(7)

    def test_bad_truncation_rejected(self):
        with pytest.raises(ValueError, match="truncate"):
            BoothMultiplier(8, truncate_digits=9)


class TestApproximation:
    def test_truncation_bound_sound(self, rng):
        for t in (1, 2, 3):
            mul = BoothMultiplier(8, truncate_digits=t)
            a = rng.integers(-128, 128, 3000)
            b = rng.integers(-128, 128, 3000)
            errors = np.abs(mul.multiply(a, b) - a * b)
            assert errors.max() <= mul.truncation_error_bound()

    def test_truncation_error_grows(self, rng):
        a = rng.integers(-128, 128, 3000)
        b = rng.integers(-128, 128, 3000)
        meds = []
        for t in (0, 1, 2):
            mul = BoothMultiplier(8, truncate_digits=t)
            meds.append(float(np.abs(mul.multiply(a, b) - a * b).mean()))
        assert meds[0] == 0.0
        assert meds[0] < meds[1] < meds[2]

    def test_approximate_adders_distort(self, rng):
        mul = BoothMultiplier(8, adder_fa="ApxFA5", adder_approx_lsbs=4)
        a = rng.integers(-128, 128, 3000)
        b = rng.integers(-128, 128, 3000)
        errors = np.abs(mul.multiply(a, b) - a * b)
        assert errors.max() > 0
        # LSB-only approximation stays far from full-scale error.
        assert errors.mean() < 64

    def test_name(self):
        mul = BoothMultiplier(8, truncate_digits=1, adder_fa="ApxFA1",
                              adder_approx_lsbs=2)
        assert "Booth8x8" in mul.name and "trunc=1" in mul.name
