"""Test package."""
