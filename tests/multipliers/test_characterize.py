"""Tests for multiplier characterization (Fig. 5 / Fig. 6 data)."""

import numpy as np
import pytest

from repro.multipliers.characterize import (
    characterize_mul2x2_family,
    characterize_multiplier,
    fig6_multiplier_family,
)
from repro.multipliers.recursive import RecursiveMultiplier
from repro.multipliers.wallace import WallaceMultiplier


class TestCharacterizeMultiplier:
    def test_exact_multiplier_perfect(self):
        record = characterize_multiplier(RecursiveMultiplier(4, leaf_policy="none"))
        assert record.metrics.error_rate == 0.0

    def test_exhaustive_below_limit(self):
        record = characterize_multiplier(RecursiveMultiplier(4))
        assert record.metrics.n_samples == 16 * 16

    def test_sampled_at_16_bits(self):
        record = characterize_multiplier(
            RecursiveMultiplier(16), n_samples=2000
        )
        assert record.metrics.n_samples == 2000

    def test_wallace_power_model(self):
        record = characterize_multiplier(WallaceMultiplier(4))
        assert record.power_nw > 0

    def test_unknown_type_rejected(self):
        class FakeMul:
            width = 4
            name = "fake"
            area_ge = 1.0

            def multiply(self, a, b):
                return np.asarray(a) * np.asarray(b)

        with pytest.raises(TypeError, match="power model"):
            characterize_multiplier(FakeMul())


class TestMul2x2Family:
    def test_five_rows(self):
        rows = characterize_mul2x2_family()
        assert [r["name"] for r in rows] == [
            "AccMul", "ApxMulSoA", "ApxMulOur", "CfgMulSoA", "CfgMulOur",
        ]

    def test_fig5_error_shape(self):
        rows = {r["name"]: r for r in characterize_mul2x2_family()}
        assert rows["ApxMulSoA"]["n_error_cases"] == 1
        assert rows["ApxMulSoA"]["max_error_value"] == 2
        assert rows["ApxMulOur"]["n_error_cases"] == 3
        assert rows["ApxMulOur"]["max_error_value"] == 1

    def test_fig5_configurable_cost_shape(self):
        rows = {r["name"]: r for r in characterize_mul2x2_family()}
        assert rows["CfgMulOur"]["area_ge"] < rows["CfgMulSoA"]["area_ge"]
        # Configurables cost more than their raw approximate bases.
        assert rows["CfgMulSoA"]["area_ge"] > rows["ApxMulSoA"]["area_ge"]
        assert rows["CfgMulOur"]["area_ge"] > rows["ApxMulOur"]["area_ge"]


class TestFig6Family:
    @pytest.fixture(scope="class")
    def records(self):
        return fig6_multiplier_family(widths=(2, 4, 8), n_samples=5000)

    def test_each_width_has_accurate_and_approximate(self, records):
        for width in (4, 8):
            names = [r.name for r in records if r.width == width]
            assert any("Acc" in n for n in names)
            assert any("Apx" in n for n in names)

    def test_accurate_never_errs(self, records):
        for record in records:
            if record.name.startswith("Acc"):
                assert record.metrics.error_rate == 0.0

    def test_approximate_cheaper_at_every_width(self, records):
        """Fig. 6 shape: approximate multipliers save area and power."""
        for width in (4, 8):
            acc = next(
                r for r in records if r.width == width and r.name.startswith("Acc")
            )
            v1 = next(r for r in records if r.width == width and "V1" in r.name)
            assert v1.area_ge < acc.area_ge
            assert v1.power_nw < acc.power_nw

    def test_error_grows_with_width_for_v1(self, records):
        v1s = sorted(
            (r for r in records if "V1" in r.name), key=lambda r: r.width
        )
        meds = [r.metrics.mean_error_distance for r in v1s]
        assert meds == sorted(meds)
