"""Tests for the 2x2 multipliers of Fig. 5."""

import numpy as np
import pytest

from repro.characterization.paperdata import (
    FIG5_ERROR_CASES,
    FIG5_MAX_ERROR,
)
from repro.multipliers.mul2x2 import (
    MULTIPLIER_2X2_NAMES,
    ConfigurableMul2x2,
    multiplier_2x2,
)


def all_pairs():
    a = np.repeat(np.arange(4), 4)
    b = np.tile(np.arange(4), 4)
    return a, b


class TestAccMul:
    def test_exact_products(self):
        a, b = all_pairs()
        acc = multiplier_2x2("AccMul")
        assert np.array_equal(acc.multiply(a, b), a * b)

    def test_no_errors(self):
        acc = multiplier_2x2("AccMul")
        assert acc.n_error_cases == 0
        assert acc.max_error_value == 0

    def test_operands_masked_to_two_bits(self):
        acc = multiplier_2x2("AccMul")
        assert int(acc.multiply(7, 5)) == (7 & 3) * (5 & 3)


class TestApxMulSoA:
    def test_single_error_case_is_3x3(self):
        soa = multiplier_2x2("ApxMulSoA")
        assert soa.error_cases() == [(3, 3)]

    def test_3x3_gives_7(self):
        soa = multiplier_2x2("ApxMulSoA")
        assert int(soa.multiply(3, 3)) == 7

    def test_paper_characterization(self):
        soa = multiplier_2x2("ApxMulSoA")
        assert soa.n_error_cases == FIG5_ERROR_CASES["ApxMulSoA"]
        assert soa.max_error_value == FIG5_MAX_ERROR["ApxMulSoA"]

    def test_output_fits_three_bits(self):
        a, b = all_pairs()
        soa = multiplier_2x2("ApxMulSoA")
        assert np.all(soa.multiply(a, b) < 8)


class TestApxMulOur:
    def test_three_error_cases(self):
        our = multiplier_2x2("ApxMulOur")
        assert our.error_cases() == [(1, 1), (1, 3), (3, 1)]

    def test_max_error_is_one(self):
        our = multiplier_2x2("ApxMulOur")
        assert our.max_error_value == FIG5_MAX_ERROR["ApxMulOur"]

    def test_3x3_is_exact(self):
        our = multiplier_2x2("ApxMulOur")
        assert int(our.multiply(3, 3)) == 9

    def test_msb_equals_lsb(self):
        a, b = all_pairs()
        our = multiplier_2x2("ApxMulOur")
        products = our.multiply(a, b)
        assert np.array_equal(products >> 3, products & 1)

    def test_paper_error_count(self):
        our = multiplier_2x2("ApxMulOur")
        assert our.n_error_cases == FIG5_ERROR_CASES["ApxMulOur"]


class TestNetlists:
    @pytest.mark.parametrize("name", MULTIPLIER_2X2_NAMES)
    def test_netlist_matches_table(self, name):
        spec = multiplier_2x2(name)
        nl = spec.netlist()
        a, b = all_pairs()
        out = nl.evaluate(
            {
                "a1": (a >> 1) & 1,
                "a0": a & 1,
                "b1": (b >> 1) & 1,
                "b0": b & 1,
            }
        )
        value = (
            (out["p3"].astype(int) << 3)
            | (out["p2"].astype(int) << 2)
            | (out["p1"].astype(int) << 1)
            | out["p0"].astype(int)
        )
        assert np.array_equal(value, spec.multiply(a, b))

    def test_area_ordering_matches_fig5(self):
        # Paper: AccMul > ApxMulOur > ApxMulSoA.
        acc = multiplier_2x2("AccMul").area_ge
        our = multiplier_2x2("ApxMulOur").area_ge
        soa = multiplier_2x2("ApxMulSoA").area_ge
        assert acc > our > soa

    def test_unknown_multiplier_raises(self):
        with pytest.raises(KeyError, match="AccMul"):
            multiplier_2x2("NopeMul")


class TestConfigurable:
    def test_accurate_mode_is_exact(self):
        a, b = all_pairs()
        for base in ("ApxMulSoA", "ApxMulOur"):
            cfg = ConfigurableMul2x2(base)
            assert np.array_equal(cfg.multiply(a, b, accurate=True), a * b)

    def test_approximate_mode_matches_base(self):
        a, b = all_pairs()
        cfg = ConfigurableMul2x2("ApxMulOur")
        assert np.array_equal(
            cfg.multiply(a, b), multiplier_2x2("ApxMulOur").multiply(a, b)
        )

    def test_our_correction_cheaper_than_soa(self):
        """Fig. 5: inverter correction beats adder correction."""
        soa = ConfigurableMul2x2("ApxMulSoA")
        our = ConfigurableMul2x2("ApxMulOur")
        assert our.correction_area_ge < soa.correction_area_ge
        assert our.area_ge < soa.area_ge

    def test_names(self):
        assert ConfigurableMul2x2("ApxMulSoA").name == "CfgMulSoA"
        assert ConfigurableMul2x2("ApxMulOur").name == "CfgMulOur"

    def test_base_must_be_approximate(self):
        with pytest.raises(ValueError, match="configurable"):
            ConfigurableMul2x2("AccMul")
