"""Tests for the Wallace-tree multiplier."""

import numpy as np
import pytest

from repro.multipliers.wallace import WallaceMultiplier


class TestExactness:
    @pytest.mark.parametrize("width", [2, 3, 4, 5, 8, 11, 16])
    def test_exact_configuration(self, width, rng):
        mul = WallaceMultiplier(width)
        hi = 1 << width
        a = rng.integers(0, hi, 300)
        b = rng.integers(0, hi, 300)
        assert np.array_equal(mul.multiply(a, b), a * b)

    def test_exhaustive_4x4(self):
        mul = WallaceMultiplier(4)
        values = np.arange(16)
        a = np.repeat(values, 16)
        b = np.tile(values, 16)
        assert np.array_equal(mul.multiply(a, b), a * b)

    def test_extreme_operands(self):
        mul = WallaceMultiplier(8)
        assert int(mul.multiply(255, 255)) == 255 * 255
        assert int(mul.multiply(0, 255)) == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError, match="width"):
            WallaceMultiplier(1)


class TestApproximation:
    def test_approx_columns_introduce_bounded_error(self, rng):
        mul = WallaceMultiplier(8, compress_fa="ApxFA1", approx_columns=4)
        hi = 1 << 8
        a = rng.integers(0, hi, 3000)
        b = rng.integers(0, hi, 3000)
        errors = np.abs(mul.multiply(a, b) - a * b)
        assert errors.max() > 0
        # Errors originate in low columns; allow carry leakage headroom.
        assert errors.max() < (1 << 8)

    def test_truncation_underestimates(self, rng):
        mul = WallaceMultiplier(8, truncate_columns=4)
        hi = 1 << 8
        a = rng.integers(0, hi, 2000)
        b = rng.integers(0, hi, 2000)
        assert np.all(mul.multiply(a, b) <= a * b)

    def test_truncation_error_bounded_by_dropped_mass(self, rng):
        t = 4
        mul = WallaceMultiplier(8, truncate_columns=t)
        hi = 1 << 8
        a = rng.integers(0, hi, 2000)
        b = rng.integers(0, hi, 2000)
        # Dropped pp bits: columns 0..t-1 hold at most (c+1) bits of
        # weight 2**c each.
        bound = sum((c + 1) << c for c in range(t))
        assert np.abs(mul.multiply(a, b) - a * b).max() <= bound

    def test_more_approx_columns_more_error(self, rng):
        hi = 1 << 8
        a = rng.integers(0, hi, 3000)
        b = rng.integers(0, hi, 3000)
        meds = []
        for cols in (0, 4, 8):
            mul = WallaceMultiplier(8, compress_fa="ApxFA5", approx_columns=cols)
            meds.append(float(np.abs(mul.multiply(a, b) - a * b).mean()))
        assert meds[0] == 0.0
        assert meds[0] < meds[1] < meds[2]

    def test_approximate_final_adder(self, rng):
        mul = WallaceMultiplier(
            8, final_adder_fa="ApxFA5", final_adder_approx_lsbs=6
        )
        hi = 1 << 8
        a = rng.integers(0, hi, 2000)
        b = rng.integers(0, hi, 2000)
        assert np.abs(mul.multiply(a, b) - a * b).max() > 0


class TestStructure:
    def test_cell_counts_stable(self):
        mul = WallaceMultiplier(8)
        first = mul.cell_counts()
        second = mul.cell_counts()
        assert first == second

    def test_cell_counts_partition_by_column(self):
        mul = WallaceMultiplier(8, compress_fa="ApxFA2", approx_columns=4)
        counts = mul.cell_counts()
        assert any(name.startswith("ApxFA2") for name in counts)
        assert any(name.startswith("AccuFA") for name in counts)

    def test_area_reduced_by_approximation(self):
        exact = WallaceMultiplier(8)
        approx = WallaceMultiplier(8, compress_fa="ApxFA5", approx_columns=8)
        assert approx.area_ge < exact.area_ge

    def test_truncation_reduces_area_further(self):
        full = WallaceMultiplier(8)
        truncated = WallaceMultiplier(8, truncate_columns=6)
        assert truncated.area_ge < full.area_ge

    def test_name(self):
        mul = WallaceMultiplier(8, compress_fa="ApxFA1", approx_columns=3)
        assert "Wallace8x8" in mul.name and "ApxFA1" in mul.name
