"""Tests for the recursive multi-bit multiplier."""

import numpy as np
import pytest

from repro.multipliers.recursive import LEAF_POLICIES, RecursiveMultiplier


class TestConstruction:
    @pytest.mark.parametrize("width", [3, 6, 0, 1])
    def test_non_power_of_two_rejected(self, width):
        with pytest.raises(ValueError, match="power of two"):
            RecursiveMultiplier(width)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            RecursiveMultiplier(4, leaf_policy="everything")

    def test_callable_policy_accepted(self):
        mul = RecursiveMultiplier(4, leaf_policy=lambda a, b, w: a == 0)
        assert mul.leaf_policy_name == "<lambda>"

    def test_name_mentions_configuration(self):
        mul = RecursiveMultiplier(8, leaf_mul="ApxMulSoA", leaf_policy="low_half")
        assert "ApxMulSoA" in mul.name and "low_half" in mul.name


class TestExactness:
    @pytest.mark.parametrize("width", [2, 4, 8, 16])
    def test_accurate_leaves_give_exact_products(self, width, rng):
        mul = RecursiveMultiplier(width, leaf_policy="none")
        hi = 1 << width
        a = rng.integers(0, hi, 400)
        b = rng.integers(0, hi, 400)
        assert np.array_equal(mul.multiply(a, b), a * b)

    def test_exhaustive_4x4_accurate(self):
        mul = RecursiveMultiplier(4, leaf_policy="none")
        values = np.arange(16)
        a = np.repeat(values, 16)
        b = np.tile(values, 16)
        assert np.array_equal(mul.multiply(a, b), a * b)

    def test_operands_masked_to_width(self):
        mul = RecursiveMultiplier(4, leaf_policy="none")
        assert int(mul.multiply(0x1F, 2)) == (0x1F & 0xF) * 2


class TestApproximation:
    def test_width2_all_policy_is_the_2x2_table(self):
        from repro.multipliers.mul2x2 import multiplier_2x2

        mul = RecursiveMultiplier(2, leaf_mul="ApxMulOur", leaf_policy="all")
        a = np.repeat(np.arange(4), 4)
        b = np.tile(np.arange(4), 4)
        assert np.array_equal(
            mul.multiply(a, b), multiplier_2x2("ApxMulOur").multiply(a, b)
        )

    def test_low_half_policy_protects_msb_leaves(self):
        mul = RecursiveMultiplier(8, leaf_policy="low_half")
        counts = mul.leaf_counts()
        assert counts.get("AccMul", 0) > 0
        assert counts.get(mul.leaf_mul.name, 0) > 0

    def test_all_policy_uses_only_approximate_leaves(self):
        mul = RecursiveMultiplier(8, leaf_mul="ApxMulSoA", leaf_policy="all")
        assert set(mul.leaf_counts()) == {"ApxMulSoA"}

    def test_leaf_count_total(self):
        mul = RecursiveMultiplier(8, leaf_policy="low_half")
        assert sum(mul.leaf_counts().values()) == (8 // 2) ** 2

    def test_low_half_more_accurate_than_all(self, rng):
        hi = 1 << 8
        a = rng.integers(0, hi, 4000)
        b = rng.integers(0, hi, 4000)
        exact = a * b
        med_all = np.abs(
            RecursiveMultiplier(8, leaf_policy="all").multiply(a, b) - exact
        ).mean()
        med_low = np.abs(
            RecursiveMultiplier(8, leaf_policy="low_half").multiply(a, b) - exact
        ).mean()
        assert med_low < med_all

    def test_approximate_adders_add_error(self, rng):
        hi = 1 << 8
        a = rng.integers(0, hi, 4000)
        b = rng.integers(0, hi, 4000)
        clean = RecursiveMultiplier(8, leaf_policy="none")
        noisy = RecursiveMultiplier(
            8, leaf_policy="none", adder_fa="ApxFA5", adder_approx_lsbs=4
        )
        assert np.abs(noisy.multiply(a, b) - a * b).mean() > np.abs(
            clean.multiply(a, b) - a * b
        ).mean()

    def test_relative_error_bounded_for_our_leaves(self, rng):
        """ApxMulOur leaves with exact adders keep errors moderate."""
        mul = RecursiveMultiplier(8, leaf_mul="ApxMulOur", leaf_policy="all")
        hi = 1 << 8
        a = rng.integers(1, hi, 4000)
        b = rng.integers(1, hi, 4000)
        exact = a * b
        rel = np.abs(mul.multiply(a, b) - exact) / exact
        assert float(np.median(rel)) < 0.2


class TestStructure:
    def test_adder_widths(self):
        mul = RecursiveMultiplier(4)
        # One 4-bit + two 8-bit adders at the top; leaves have none.
        assert mul.adder_widths() == [4, 8, 8]

    def test_adder_widths_8(self):
        mul = RecursiveMultiplier(8)
        widths = mul.adder_widths()
        # Top level: one 8-bit mid adder + two 16-bit combiners; each of
        # the four 4x4 subtrees: one 4-bit + two 8-bit adders.
        assert widths.count(16) == 2
        assert widths.count(8) == 1 + 4 * 2
        assert widths.count(4) == 4

    def test_area_positive_and_monotone_in_width(self):
        areas = [RecursiveMultiplier(w).area_ge for w in (2, 4, 8, 16)]
        assert all(a > 0 for a in areas)
        assert areas == sorted(areas)

    def test_approx_leaves_reduce_area(self):
        exact = RecursiveMultiplier(8, leaf_policy="none")
        approx = RecursiveMultiplier(8, leaf_mul="ApxMulSoA", leaf_policy="all")
        assert approx.area_ge < exact.area_ge

    def test_delay_grows_with_width(self):
        assert (
            RecursiveMultiplier(16).delay_ps
            > RecursiveMultiplier(8).delay_ps
            > RecursiveMultiplier(4).delay_ps
        )


class TestFastPathEquivalence:
    """Product-LUT / fast-adder engine vs the legacy cell-level recursion."""

    @pytest.mark.parametrize("leaf_mul", ["ApxMulSoA", "ApxMulOur"])
    @pytest.mark.parametrize("leaf_policy", ["all", "none", "low_half"])
    def test_width4_exhaustive(self, leaf_mul, leaf_policy):
        fast = RecursiveMultiplier(4, leaf_mul=leaf_mul, leaf_policy=leaf_policy)
        loop = RecursiveMultiplier(
            4, leaf_mul=leaf_mul, leaf_policy=leaf_policy, eval_mode="loop"
        )
        a = np.repeat(np.arange(16), 16)
        b = np.tile(np.arange(16), 16)
        assert np.array_equal(fast.multiply(a, b), loop.multiply(a, b))

    @pytest.mark.parametrize("adder_fa,adder_lsbs", [("AccuFA", 0), ("ApxFA2", 3)])
    def test_width8_uses_product_lut(self, adder_fa, adder_lsbs, rng):
        fast = RecursiveMultiplier(
            8, adder_fa=adder_fa, adder_approx_lsbs=adder_lsbs
        )
        loop = RecursiveMultiplier(
            8, adder_fa=adder_fa, adder_approx_lsbs=adder_lsbs, eval_mode="loop"
        )
        a = rng.integers(0, 256, 4000)
        b = rng.integers(0, 256, 4000)
        got = fast.multiply(a, b)
        assert fast._product_lut is not None  # LUT engaged at width 8
        assert np.array_equal(got, loop.multiply(a, b))

    def test_width16_no_product_lut_but_fast_adders(self, rng):
        fast = RecursiveMultiplier(16, adder_fa="ApxFA1", adder_approx_lsbs=4)
        loop = RecursiveMultiplier(
            16, adder_fa="ApxFA1", adder_approx_lsbs=4, eval_mode="loop"
        )
        a = rng.integers(0, 1 << 16, 500)
        b = rng.integers(0, 1 << 16, 500)
        got = fast.multiply(a, b)
        assert fast._product_lut is None  # above PRODUCT_LUT_MAX_WIDTH
        assert np.array_equal(got, loop.multiply(a, b))

    def test_invalid_eval_mode_rejected(self):
        with pytest.raises(ValueError, match="eval_mode"):
            RecursiveMultiplier(8, eval_mode="turbo")
