"""Tests for the survey taxonomy (Tables I and II)."""

from repro.survey.taxonomy import (
    TABLE_I,
    TABLE_II,
    Category,
    Layer,
    by_category,
    by_layer,
    category_layer_matrix,
    cross_layer_techniques,
)


class TestTables:
    def test_table_ii_has_five_categories(self):
        assert len(TABLE_II) == 5
        assert set(TABLE_II) == set(Category)

    def test_table_i_covers_all_layers(self):
        assert {t.layer for t in TABLE_I} == set(Layer)

    def test_every_technique_has_references(self):
        assert all(t.references for t in TABLE_I)

    def test_reference_format(self):
        for t in TABLE_I:
            for ref in t.references:
                assert ref.startswith("[") and ref.endswith("]")


class TestQueries:
    def test_by_layer_partition(self):
        total = sum(len(by_layer(layer)) for layer in Layer)
        assert total == len(TABLE_I)

    def test_software_layer_largest(self):
        """The survey's weight is on software-layer techniques."""
        counts = {layer: len(by_layer(layer)) for layer in Layer}
        assert counts[Layer.SOFTWARE] >= counts[Layer.ARCHITECTURAL]
        assert counts[Layer.SOFTWARE] >= counts[Layer.HW_CIRCUIT]

    def test_by_category(self):
        functional = by_category(Category.FUNCTIONAL)
        assert len(functional) == 3  # software, architectural, circuit

    def test_functional_approximation_spans_all_layers(self):
        layers = {t.layer for t in by_category(Category.FUNCTIONAL)}
        assert layers == set(Layer)

    def test_cross_layer_subset(self):
        cross = cross_layer_techniques()
        assert 0 < len(cross) < len(TABLE_I)
        assert all(t.cross_layer for t in cross)

    def test_neural_acceleration_is_cross_layer(self):
        npu = [t for t in TABLE_I if "[24]" in t.references]
        assert len(npu) == 1 and npu[0].cross_layer


class TestMatrix:
    def test_matrix_totals_match_table(self):
        matrix = category_layer_matrix()
        total = sum(
            count for row in matrix.values() for count in row.values()
        )
        assert total == len(TABLE_I)

    def test_gear_reference_in_architectural_functional(self):
        """The paper's own adder work [14] sits in the architectural
        functional-approximation row of Table I."""
        row = by_category(Category.FUNCTIONAL)
        arch = [t for t in row if t.layer == Layer.ARCHITECTURAL]
        assert any("[14]" in t.references for t in arch)
