"""Test package."""
