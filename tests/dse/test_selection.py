"""Tests for constraint-based configuration selection."""

import pytest

from repro.dse.explorer import explore_gear_space
from repro.dse.selection import (
    filter_records,
    select_max_accuracy,
    select_min_area,
)


class TestFilter:
    def test_filters_on_bound(self):
        records = [{"accuracy_percent": 95}, {"accuracy_percent": 80}]
        assert len(filter_records(records, accuracy_percent=90)) == 1

    def test_multiple_bounds(self):
        records = [
            {"accuracy_percent": 95, "lut_count": 30},
            {"accuracy_percent": 95, "lut_count": 10},
        ]
        kept = filter_records(records, accuracy_percent=90, lut_count=20)
        assert len(kept) == 1

    def test_empty_input(self):
        assert filter_records([], accuracy_percent=1) == []


class TestSelection:
    @pytest.fixture(scope="class")
    def records(self):
        return explore_gear_space(11)

    def test_max_accuracy_is_r1_p9(self, records):
        best = select_max_accuracy(records)
        assert (best["r"], best["p"]) == (1, 9)

    def test_min_area_meets_constraint(self, records):
        pick = select_min_area(records, 90.0)
        assert pick["accuracy_percent"] >= 90.0
        others = filter_records(records, accuracy_percent=90.0)
        assert all(pick["lut_count"] <= r["lut_count"] for r in others)

    def test_paper_constraint_within_r3(self, records):
        """Paper Fig. 4 walk-through: among R=3 configurations, the >=90%
        choice is P=5."""
        r3 = [r for r in records if r["r"] == 3]
        pick = select_min_area(r3, 90.0)
        assert (pick["r"], pick["p"]) == (3, 5)

    def test_unreachable_constraint_raises(self, records):
        with pytest.raises(ValueError, match="accuracy"):
            select_min_area(records, 99.999)

    def test_empty_records_raise(self):
        with pytest.raises(ValueError, match="records"):
            select_max_accuracy([])

    def test_area_key_override(self, records):
        pick = select_min_area(records, 90.0, area_key="area_ge")
        assert pick["accuracy_percent"] >= 90.0
