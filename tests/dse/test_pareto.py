"""Tests for Pareto-front utilities."""

import pytest

from repro.dse.pareto import dominates, pareto_front, pareto_indices

OBJ = [("area", True), ("accuracy", False)]


class TestDominates:
    def test_strict_domination(self):
        assert dominates({"area": 1, "accuracy": 90}, {"area": 2, "accuracy": 80}, OBJ)

    def test_equal_does_not_dominate(self):
        rec = {"area": 1, "accuracy": 90}
        assert not dominates(rec, dict(rec), OBJ)

    def test_tradeoff_does_not_dominate(self):
        a = {"area": 1, "accuracy": 80}
        b = {"area": 2, "accuracy": 90}
        assert not dominates(a, b, OBJ)
        assert not dominates(b, a, OBJ)

    def test_partial_tie_dominates(self):
        a = {"area": 1, "accuracy": 90}
        b = {"area": 1, "accuracy": 80}
        assert dominates(a, b, OBJ)


class TestParetoFront:
    def test_front_excludes_dominated(self):
        records = [
            {"area": 1, "accuracy": 90},
            {"area": 2, "accuracy": 80},   # dominated
            {"area": 2, "accuracy": 95},
            {"area": 3, "accuracy": 94},   # dominated
        ]
        front = pareto_front(records, OBJ)
        assert [r["accuracy"] for r in front] == [90, 95]

    def test_all_on_front_when_tradeoff(self):
        records = [{"area": i, "accuracy": 10 * i} for i in range(1, 5)]
        assert len(pareto_front(records, OBJ)) == 4

    def test_single_record(self):
        records = [{"area": 1, "accuracy": 50}]
        assert pareto_front(records, OBJ) == records

    def test_indices_stable_order(self):
        records = [
            {"area": 3, "accuracy": 99},
            {"area": 1, "accuracy": 50},
            {"area": 2, "accuracy": 75},
        ]
        assert pareto_indices(records, OBJ) == [0, 1, 2]

    def test_duplicates_both_kept(self):
        records = [
            {"area": 1, "accuracy": 90},
            {"area": 1, "accuracy": 90},
        ]
        assert len(pareto_front(records, OBJ)) == 2

    def test_empty_objectives_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            pareto_front([{"a": 1}], [])

    def test_front_members_mutually_nondominated(self):
        records = [
            {"area": a, "accuracy": acc}
            for a, acc in [(1, 30), (2, 60), (2, 55), (4, 90), (5, 85), (3, 70)]
        ]
        front = pareto_front(records, OBJ)
        for x in front:
            for y in front:
                if x is not y:
                    assert not dominates(x, y, OBJ)
