"""Test package."""
