"""Tests for the design-space sweeps."""

import pytest

from repro.dse.explorer import explore_gear_space, explore_multiplier_space


class TestGearSpace:
    @pytest.fixture(scope="class")
    def records(self):
        return explore_gear_space(11)

    def test_all_17_configurations(self, records):
        assert len(records) == 17

    def test_record_keys(self, records):
        expected = {"name", "n", "r", "p", "k", "l", "accuracy_percent",
                    "lut_count", "area_ge", "delay_ps"}
        assert expected <= set(records[0])

    def test_sorted_by_r_then_p(self, records):
        keys = [(r["r"], r["p"]) for r in records]
        assert keys == sorted(keys)

    def test_accuracies_in_range(self, records):
        assert all(0 < r["accuracy_percent"] < 100 for r in records)

    def test_r1_p9_most_accurate(self, records):
        """Paper: R=1, P=9 is the maximum-accuracy N=11 configuration."""
        best = max(records, key=lambda r: r["accuracy_percent"])
        assert (best["r"], best["p"]) == (1, 9)

    def test_accuracy_increases_with_p_within_r(self, records):
        for r_value in {rec["r"] for rec in records}:
            group = [rec for rec in records if rec["r"] == r_value]
            accs = [rec["accuracy_percent"] for rec in group]
            assert accs == sorted(accs)

    def test_monte_carlo_model_close_to_exact(self):
        mc = explore_gear_space(8, model="monte_carlo")
        exact = explore_gear_space(8, model="exact")
        for m, e in zip(mc, exact):
            assert m["accuracy_percent"] == pytest.approx(
                e["accuracy_percent"], abs=0.5
            )

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="model"):
            explore_gear_space(8, model="tarot")

    def test_lut_model_is_k_times_l(self, records):
        assert all(r["lut_count"] == r["k"] * r["l"] for r in records)


class TestMultiplierSpace:
    def test_records_have_quality_and_cost(self):
        records = explore_multiplier_space(widths=(4,), n_samples=2000)
        assert all("area_ge" in r and "error_rate" in r for r in records)
        assert len(records) == 4  # Acc + V1 + V2 + V3


class TestMonteCarloReproducibility:
    """Regression: Table IV Monte Carlo rows must be pinnable by seed."""

    def test_same_seed_bit_identical(self):
        kwargs = dict(model="monte_carlo", n_samples=20_000, seed=42)
        first = explore_gear_space(8, **kwargs)
        second = explore_gear_space(8, **kwargs)
        assert first == second

    def test_different_seed_changes_rows(self):
        base = explore_gear_space(8, model="monte_carlo", n_samples=5_000,
                                  seed=0)
        other = explore_gear_space(8, model="monte_carlo", n_samples=5_000,
                                   seed=1)
        assert any(
            a["accuracy_percent"] != b["accuracy_percent"]
            for a, b in zip(base, other)
        )

    def test_worker_count_invariance(self):
        kwargs = dict(model="monte_carlo", n_samples=10_000, seed=7)
        serial = explore_gear_space(8, **kwargs)
        parallel = explore_gear_space(8, n_workers=4, **kwargs)
        assert serial == parallel

    def test_exact_model_ignores_sampling_args(self):
        a = explore_gear_space(8, model="exact", n_samples=10, seed=1)
        b = explore_gear_space(8, model="exact", n_samples=99, seed=2)
        assert a == b
