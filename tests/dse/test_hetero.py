"""Tests for the heterogeneous block-adder DSE."""

import pytest

from repro.campaign import execute_task
from repro.dse import (
    explore_hetero_space,
    hetero_front_report,
    hetero_space_tasks,
    pareto_front,
)
from repro.dse.hetero import OBJECTIVES


class TestTasks:
    def test_tasks_cover_both_sources(self):
        tasks = hetero_space_tasks(8, max_segments=3, max_p=4)
        sources = {t.params["source"] for t in tasks}
        assert sources == {"hetero", "gear"}

    def test_homogeneous_embeddings_keep_gear_tag(self):
        # GeAr(8,2,2) -> ((4,0),(2,2),(2,2)) is also enumerable with
        # k=3 caps; the homogeneous tag must win the dedup.
        tasks = hetero_space_tasks(8, max_segments=3, max_p=4)
        by_segments = {
            tuple(tuple(s) for s in t.params["segments"]): t.params["source"]
            for t in tasks
        }
        assert by_segments[((4, 0), (2, 2), (2, 2))] == "gear"

    def test_seed_pins_task_identity(self):
        a = hetero_space_tasks(6, max_segments=2, seed=1)
        b = hetero_space_tasks(6, max_segments=2, seed=1)
        assert [t.seed for t in a] == [t.seed for t in b]

    def test_analytic_task_executes(self):
        task = hetero_space_tasks(6, max_segments=2, max_p=2)[0]
        record = execute_task(task)
        assert record["n"] == 6
        assert 0.0 <= record["error_rate"] <= 1.0
        assert record["lut_count"] >= 6


class TestExploration:
    @pytest.fixture(scope="class")
    def records(self):
        return explore_hetero_space(8, max_segments=3, max_p=4)

    def test_records_are_exact_and_tagged(self, records):
        assert all("source" in r for r in records)
        assert all(r["accuracy_percent"] == pytest.approx(
            100.0 * (1.0 - r["error_rate"])
        ) for r in records)

    def test_front_matches_or_dominates_homogeneous(self, records):
        report = hetero_front_report(records)
        assert report["matches_or_dominates"]

    def test_hetero_strictly_improves_somewhere(self, records):
        # The headline result: unequal blocks beat the Table IV front
        # at some operating point.
        report = hetero_front_report(records)
        assert report["strict_wins"], (
            "expected at least one heterogeneous config strictly "
            "dominating a homogeneous front point"
        )

    def test_front_is_nondominated(self, records):
        report = hetero_front_report(records)
        front = report["front"]
        assert front == pareto_front(front, OBJECTIVES)

    def test_report_requires_gear_rows(self, records):
        hetero_only = [r for r in records if r["source"] == "hetero"]
        with pytest.raises(ValueError, match="source='gear'"):
            hetero_front_report(hetero_only)
