"""Tests for output-quality metrics."""

import numpy as np
import pytest

from repro.errors.metrics import (
    accuracy_percent,
    compute_error_metrics,
    error_rate,
    max_error_distance,
    mean_error_distance,
    mean_relative_error_distance,
    mse,
    normalized_med,
    psnr,
)


class TestPointMetrics:
    def test_error_rate(self):
        assert error_rate([1, 2, 3, 5], [1, 2, 3, 4]) == 0.25

    def test_error_rate_perfect(self):
        assert error_rate([1, 2], [1, 2]) == 0.0

    def test_mean_error_distance(self):
        assert mean_error_distance([0, 4], [2, 2]) == 2.0

    def test_max_error_distance(self):
        assert max_error_distance([0, 10], [1, 2]) == 8.0

    def test_normalized_med(self):
        assert normalized_med([0, 4], [2, 2]) == pytest.approx(1.0)

    def test_normalized_med_custom_max(self):
        assert normalized_med([0, 4], [2, 2], max_output=4) == 0.5

    def test_normalized_med_zero_max_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            normalized_med([0], [0])

    def test_mred_skips_zero_exact(self):
        assert mean_relative_error_distance([1, 5], [0, 4]) == pytest.approx(0.25)

    def test_mred_all_zero_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            mean_relative_error_distance([1], [0])

    def test_accuracy_percent(self):
        assert accuracy_percent([1, 2, 3, 5], [1, 2, 3, 4]) == 75.0

    def test_mse(self):
        assert mse([0, 4], [2, 2]) == 4.0

    def test_psnr_identical_is_infinite(self):
        assert psnr([5, 5], [5, 5]) == float("inf")

    def test_psnr_value(self):
        # MSE = 1 against peak 255 -> 10 log10(255^2) dB.
        assert psnr([1], [2]) == pytest.approx(10 * np.log10(255**2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            error_rate([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="sample"):
            error_rate([], [])


class TestBundle:
    def test_bundle_consistent_with_point_metrics(self, rng):
        approx = rng.integers(0, 100, 500)
        exact = rng.integers(0, 100, 500)
        bundle = compute_error_metrics(approx, exact)
        assert bundle.error_rate == error_rate(approx, exact)
        assert bundle.mean_error_distance == mean_error_distance(approx, exact)
        assert bundle.max_error_distance == max_error_distance(approx, exact)
        assert bundle.n_samples == 500

    def test_bundle_accuracy_percent(self):
        bundle = compute_error_metrics([1, 2, 3, 5], [1, 2, 3, 4])
        assert bundle.accuracy_percent == 75.0
        assert bundle.n_error_cases == 1

    def test_bundle_all_zero_exact(self):
        bundle = compute_error_metrics([0, 1], [0, 0])
        assert bundle.mean_relative_error_distance == 0.0
        assert bundle.normalized_med == 0.5  # max_output defaults to 1

    def test_as_dict_keys(self):
        bundle = compute_error_metrics([1], [1])
        keys = set(bundle.as_dict())
        assert {"error_rate", "accuracy_percent", "max_error_distance"} <= keys


class TestIntegerPrecision:
    """Regression: integral inputs must not round through float64.

    A float64 mantissa aliases integers above 2**53, so the legacy
    all-float `_pair` reported ER = 0 for genuinely wrong 32x32-bit
    multiplier products.
    """

    def test_error_above_2_53_detected(self):
        exact = np.array([2**60, 7], dtype=np.int64)
        approx = np.array([2**60 + 1, 7], dtype=np.int64)
        # float64 cannot tell 2**60 and 2**60 + 1 apart.
        assert float(approx[0]) == float(exact[0])
        assert error_rate(approx, exact) == 0.5
        assert max_error_distance(approx, exact) == 1.0

    def test_bundle_above_2_53(self):
        exact = np.array([2**60, 2**60], dtype=np.int64)
        approx = np.array([2**60 + 2, 2**60], dtype=np.int64)
        bundle = compute_error_metrics(approx, exact)
        assert bundle.error_rate == 0.5
        assert bundle.max_error_distance == 2.0
        assert bundle.mean_error_distance == 1.0

    def test_32x32_bit_product_style_values(self):
        a = np.uint64((2**32 - 1)) * np.uint64(2**32 - 1)  # 2**64 - 2**33 + 1
        exact = np.array([a], dtype=np.uint64)
        approx = np.array([a - np.uint64(3)], dtype=np.uint64)
        assert error_rate(approx, exact) == 1.0
        assert max_error_distance(approx, exact) == 3.0

    def test_python_ints_beyond_int64(self):
        exact = [2**70, 2**70 + 8]
        approx = [2**70, 2**70]
        assert error_rate(approx, exact) == 0.5
        assert max_error_distance(approx, exact) == 8.0
        assert mean_error_distance(approx, exact) == 4.0

    def test_mixed_int_float_still_works(self):
        assert error_rate([1, 2], np.array([1.0, 2.5])) == 0.5
        assert max_error_distance([1, 2], np.array([1.0, 2.5])) == 0.5

    def test_bool_inputs(self):
        assert error_rate([True, False], [True, True]) == 0.5
        assert mean_error_distance([True, False], [True, True]) == 0.5

    def test_nmed_normalizer_stays_exact(self):
        # Regression: the NMED normalizer used to collapse through
        # float64 before the division.  Here the max |exact| (2**53 + 1)
        # and the error sum (3 * 2**50) come from different elements, so
        # the legacy float path returns exactly 0.1875 while the true
        # ratio is 3*2**50 / (2 * (2**53 + 1)).
        from fractions import Fraction

        exact = [2**53 + 1, 3 * 2**50]
        approx = [2**53 + 1, 0]
        truth = float(Fraction(3 * 2**50, 2 * (2**53 + 1)))
        assert truth != 0.1875
        assert normalized_med(approx, exact) == truth
        bundle = compute_error_metrics(approx, exact)
        assert bundle.normalized_med == truth

    def test_nmed_explicit_integral_max_output_exact(self):
        exact = [2**60 + 4, 2**60]
        approx = [2**60, 2**60]
        assert normalized_med(approx, exact, max_output=2**60) == pytest.approx(
            2 / 2**60, rel=1e-15
        )

    def test_exact_arithmetic_not_just_comparison(self):
        # MED over huge values: differences are computed before any
        # float conversion, so small deltas survive.
        exact = np.array([2**60 + 4, 2**60], dtype=np.int64)
        approx = np.array([2**60, 2**60], dtype=np.int64)
        assert mean_error_distance(approx, exact) == 2.0
        assert mse(approx, exact) == 8.0
