"""Tests for the discrete error-PMF algebra."""

import numpy as np
import pytest

from repro.errors.pmf import ErrorPMF


class TestConstruction:
    def test_delta(self):
        d = ErrorPMF.delta(3)
        assert d.probability(3) == 1.0
        assert d.support == (3,)

    def test_normalization_tolerance(self):
        pmf = ErrorPMF({0: 0.5000001, 1: 0.5})
        assert sum(p for _, p in pmf.items()) == pytest.approx(1.0)

    def test_unnormalized_rejected(self):
        with pytest.raises(ValueError, match="sums"):
            ErrorPMF({0: 0.3, 1: 0.3})

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ErrorPMF({0: 1.2, 1: -0.2})

    def test_negative_roundoff_dust_pruned(self):
        # Sub-epsilon negative masses are float roundoff, not errors.
        pmf = ErrorPMF({0: 1.0, 5: -1e-15})
        assert pmf.support == (0,)

    def test_mass_drift_within_tolerance_renormalized(self):
        pmf = ErrorPMF({0: 0.5 + 2e-7, 1: 0.5})
        assert sum(p for _, p in pmf.items()) == pytest.approx(1.0, abs=1e-15)

    def test_mass_drift_beyond_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            ErrorPMF({0: 0.5, 1: 0.5 + 1e-3})

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="support"):
            ErrorPMF({})

    def test_from_samples(self):
        pmf = ErrorPMF.from_samples([0, 0, 1, 1])
        assert pmf.probability(0) == 0.5
        assert pmf.probability(1) == 0.5

    def test_from_pairs(self):
        pmf = ErrorPMF.from_pairs([5, 5, 7], [5, 6, 7])
        assert pmf.probability(0) == pytest.approx(2 / 3)
        assert pmf.probability(-1) == pytest.approx(1 / 3)


class TestQueries:
    def test_error_rate(self):
        pmf = ErrorPMF({0: 0.75, 2: 0.25})
        assert pmf.error_rate == 0.25

    def test_moments(self):
        pmf = ErrorPMF({0: 0.5, 2: 0.5})
        assert pmf.mean == 1.0
        assert pmf.variance == 1.0

    def test_mean_abs_and_max_abs(self):
        pmf = ErrorPMF({-3: 0.5, 1: 0.5})
        assert pmf.mean_abs == 2.0
        assert pmf.max_abs == 3

    def test_mode(self):
        pmf = ErrorPMF({0: 0.6, 5: 0.4})
        assert pmf.mode() == 0

    def test_mode_tie_breaks_toward_smaller_value(self):
        # Regression: +/-v ties used to fall back to dict insertion
        # order; the docstring promises the smaller value wins.
        assert ErrorPMF({3: 0.4, -3: 0.4, 7: 0.2}).mode() == -3
        assert ErrorPMF({-3: 0.4, 3: 0.4, 7: 0.2}).mode() == -3

    def test_mode_tie_is_insertion_order_independent(self):
        forward = ErrorPMF({2: 0.25, 5: 0.25, 9: 0.25, 12: 0.25})
        backward = ErrorPMF({12: 0.25, 9: 0.25, 5: 0.25, 2: 0.25})
        assert forward.mode() == backward.mode() == 2

    def test_tail_probability(self):
        pmf = ErrorPMF({0: 0.5, -2: 0.3, 4: 0.2})
        assert pmf.tail_probability(2) == pytest.approx(0.5)
        assert pmf.tail_probability(5) == 0.0


class TestAlgebra:
    def test_convolution(self):
        coin = ErrorPMF({0: 0.5, 1: 0.5})
        two = coin.convolve(coin)
        assert two.probability(0) == pytest.approx(0.25)
        assert two.probability(1) == pytest.approx(0.5)
        assert two.probability(2) == pytest.approx(0.25)

    def test_add_operator(self):
        coin = ErrorPMF({0: 0.5, 1: 0.5})
        assert (coin + coin) == coin.convolve(coin)

    def test_delta_is_convolution_identity(self):
        pmf = ErrorPMF({-1: 0.25, 0: 0.5, 3: 0.25})
        assert pmf.convolve(ErrorPMF.delta(0)) == pmf

    def test_negate(self):
        pmf = ErrorPMF({1: 0.7, -2: 0.3})
        neg = pmf.negate()
        assert neg.probability(-1) == pytest.approx(0.7)
        assert neg.probability(2) == pytest.approx(0.3)

    def test_scale(self):
        pmf = ErrorPMF({1: 0.5, 2: 0.5})
        scaled = pmf.scale(4)
        assert scaled.support == (4, 8)

    def test_scale_zero_collapses_to_delta(self):
        pmf = ErrorPMF({1: 0.5, 2: 0.5})
        assert pmf.scale(0) == ErrorPMF.delta(0)

    def test_shift(self):
        pmf = ErrorPMF({0: 0.5, 2: 0.5})
        assert pmf.shift(-1).support == (-1, 1)

    def test_mixture(self):
        a = ErrorPMF.delta(0)
        b = ErrorPMF.delta(4)
        mix = a.mixture(b, weight=0.25)
        assert mix.probability(0) == pytest.approx(0.25)
        assert mix.probability(4) == pytest.approx(0.75)

    def test_mixture_weight_validated(self):
        with pytest.raises(ValueError, match="weight"):
            ErrorPMF.delta(0).mixture(ErrorPMF.delta(1), weight=1.5)

    def test_convolve_n_matches_repeated_convolution(self):
        pmf = ErrorPMF({0: 0.5, 1: 0.3, 2: 0.2})
        manual = ErrorPMF.delta(0)
        for _ in range(5):
            manual = manual.convolve(pmf)
        assert pmf.convolve_n(5) == manual

    def test_convolve_n_zero(self):
        assert ErrorPMF({1: 1.0}).convolve_n(0) == ErrorPMF.delta(0)

    def test_convolve_n_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            ErrorPMF.delta(0).convolve_n(-1)

    def test_mass_conserved_through_long_chains(self):
        pmf = ErrorPMF({-1: 0.3, 0: 0.4, 1: 0.3})
        total = pmf.convolve_n(64)
        assert sum(p for _, p in total.items()) == pytest.approx(1.0, abs=1e-9)

    def test_mass_conserved_at_large_n(self):
        # Regression: 256 convolutions of a wide PMF accumulate enough
        # float roundoff to trip a strict mass check; construction must
        # renormalize so the chain stays a valid distribution.
        pmf = ErrorPMF({v: 1 / 7 for v in range(-3, 4)})
        total = pmf.convolve_n(256)
        assert sum(p for _, p in total.items()) == pytest.approx(1.0, abs=1e-12)
        assert total.mean == pytest.approx(0.0, abs=1e-6)

    def test_clt_shape(self):
        """Many convolutions approach a normal: mean and variance scale."""
        pmf = ErrorPMF({0: 0.5, 1: 0.5})
        n = 100
        total = pmf.convolve_n(n)
        assert total.mean == pytest.approx(n * 0.5, abs=1e-6)
        assert total.variance == pytest.approx(n * 0.25, abs=1e-4)
