"""Tests for worst-case error-interval analysis."""

import numpy as np
import pytest

from repro.adders.gear import GeArAdder, GeArConfig
from repro.adders.ripple import ApproximateRippleAdder
from repro.errors.interval import ErrorInterval, adder_error_interval


class TestIntervalAlgebra:
    def test_exact_is_zero(self):
        assert ErrorInterval.exact() == ErrorInterval(0, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ErrorInterval(3, 1)

    def test_addition(self):
        assert ErrorInterval(-1, 2) + ErrorInterval(-3, 1) == ErrorInterval(-4, 3)

    def test_subtraction_negates_second(self):
        assert ErrorInterval(0, 2) - ErrorInterval(-1, 3) == ErrorInterval(-3, 3)

    def test_negation(self):
        assert -ErrorInterval(-1, 5) == ErrorInterval(-5, 1)

    def test_scale_positive(self):
        assert ErrorInterval(-1, 2).scale(4) == ErrorInterval(-4, 8)

    def test_scale_negative_swaps(self):
        assert ErrorInterval(-1, 2).scale(-1) == ErrorInterval(-2, 1)

    def test_through_abs_symmetric_hull(self):
        assert ErrorInterval(-3, 1).through_abs() == ErrorInterval(-3, 3)

    def test_accumulate(self):
        assert ErrorInterval(-1, 2).accumulate(3) == ErrorInterval(-3, 6)

    def test_union(self):
        assert ErrorInterval(-1, 1).union(ErrorInterval(0, 5)) == ErrorInterval(-1, 5)

    def test_queries(self):
        interval = ErrorInterval(-7, 3)
        assert interval.max_abs == 7
        assert interval.width == 10
        assert interval.contains(0)
        assert not interval.contains(4)


class TestAdderIntervals:
    def test_exact_ripple_interval_is_zero(self):
        assert adder_error_interval(ApproximateRippleAdder(8)) == ErrorInterval.exact()

    @pytest.mark.parametrize("fa", ["ApxFA1", "ApxFA2", "ApxFA3", "ApxFA4", "ApxFA5"])
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_ripple_interval_sound(self, fa, k, rng):
        """Observed errors never leave the declared interval."""
        adder = ApproximateRippleAdder(8, approx_fa=fa, num_approx_lsbs=k)
        interval = adder_error_interval(adder)
        a = rng.integers(0, 256, 5000)
        b = rng.integers(0, 256, 5000)
        errors = adder.add(a, b) - (a + b)
        assert errors.min() >= interval.lo
        assert errors.max() <= interval.hi

    @pytest.mark.parametrize("cfg", [(8, 2, 2), (12, 4, 4), (16, 2, 2)])
    def test_gear_interval_sound_and_one_sided(self, cfg, rng):
        adder = GeArAdder(GeArConfig(*cfg))
        interval = adder_error_interval(adder)
        assert interval.hi == 0  # GeAr only loses carries
        hi = 1 << adder.config.n
        a = rng.integers(0, hi, 5000)
        b = rng.integers(0, hi, 5000)
        errors = adder.add(a, b) - (a + b)
        assert errors.max() <= 0
        assert errors.min() >= interval.lo

    def test_gear_interval_exhaustive_tightness(self):
        """For a small GeAr the worst case in the interval is achieved."""
        config = GeArConfig(6, 2, 2)
        adder = GeArAdder(config)
        interval = adder_error_interval(adder)
        values = np.arange(64)
        a = np.repeat(values, 64)
        b = np.tile(values, 64)
        errors = adder.add(a, b) - (a + b)
        assert errors.min() == interval.lo

    def test_unknown_adder_rejected(self):
        with pytest.raises(TypeError, match="interval"):
            adder_error_interval(object())
