"""Test package."""
