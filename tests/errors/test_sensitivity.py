"""Tests for dataflow node-sensitivity analysis."""

import numpy as np
import pytest

from repro.accelerators.dataflow import DataflowAccelerator
from repro.errors.sensitivity import rank_node_sensitivity


def weighted_sum() -> DataflowAccelerator:
    """y = (x0 + x1) + ((x2 + x3) << 4): the second adder matters 16x."""
    acc = DataflowAccelerator("ws")
    xs = [acc.add_input(f"x{i}") for i in range(4)]
    low = acc.add_node("add", [xs[0], xs[1]])
    high = acc.add_node("add", [xs[2], xs[3]])
    shifted = acc.add_node("shl", [high], param=4)
    acc.set_output(acc.add_node("add", [low, shifted]))
    return acc


@pytest.fixture
def stimuli(rng):
    return {f"x{i}": rng.integers(0, 256, 2000) for i in range(4)}


class TestRanking:
    def test_high_significance_node_ranks_first(self, stimuli):
        acc = weighted_sum()
        sens = rank_node_sensitivity(acc, stimuli)
        # Nodes: low=4, high=5, shifted=6, out=7.
        assert sens[0].node_index == 5  # the <<4 feeder
        assert sens[0].mean_output_shift == pytest.approx(16.0)

    def test_unshifted_nodes_have_unit_sensitivity(self, stimuli):
        acc = weighted_sum()
        sens = {s.node_index: s for s in rank_node_sensitivity(acc, stimuli)}
        assert sens[4].mean_output_shift == pytest.approx(1.0)
        assert sens[7].mean_output_shift == pytest.approx(1.0)

    def test_masking_through_shr(self, stimuli):
        acc = DataflowAccelerator("masked")
        xs = [acc.add_input(f"x{i}") for i in range(4)]
        total = acc.add_node("add", [xs[0], xs[1]])
        acc.set_output(acc.add_node("shr", [total], param=3))
        # x2, x3 unused; remove from stimuli is fine but keep for shape.
        sens = rank_node_sensitivity(acc, stimuli)
        assert len(sens) == 1
        # A +1 injection survives a >>3 only 1/8 of the time.
        assert sens[0].masked_fraction == pytest.approx(7 / 8, abs=0.05)

    def test_clip_masks_saturated_signals(self, rng):
        acc = DataflowAccelerator("clip")
        x, y = acc.add_input("x"), acc.add_input("y")
        total = acc.add_node("add", [x, y])
        acc.set_output(acc.add_node("clip", [total], param=(0, 100)))
        stim = {"x": rng.integers(200, 256, 1000),
                "y": rng.integers(200, 256, 1000)}
        sens = rank_node_sensitivity(acc, stim)
        assert sens[0].masked_fraction == 1.0  # always saturated

    def test_only_arith_nodes_ranked(self, stimuli):
        acc = weighted_sum()
        sens = rank_node_sensitivity(acc, stimuli)
        assert all(s.op in ("add", "sub", "mul") for s in sens)
        assert len(sens) == 3

    def test_requires_output(self, stimuli):
        acc = DataflowAccelerator("no_out")
        acc.add_input("x0")
        with pytest.raises(ValueError, match="output"):
            rank_node_sensitivity(acc, stimuli)

    def test_abs_preserves_magnitude_sensitivity(self, rng):
        acc = DataflowAccelerator("absd")
        x, y = acc.add_input("x"), acc.add_input("y")
        diff = acc.add_node("sub", [x, y])
        acc.set_output(acc.add_node("abs", [diff]))
        stim = {"x": rng.integers(0, 256, 2000),
                "y": rng.integers(0, 256, 2000)}
        sens = rank_node_sensitivity(acc, stim)
        # |x - y + 1| vs |x - y| changes by 1 almost always (ties at 0
        # and sign flips are rare-but-possible).
        assert 0.9 <= sens[0].mean_output_shift <= 1.0
