"""Tests for the analytic PMF-convolution error engine."""

import numpy as np
import pytest

from repro.adders import (
    GeArConfig,
    HeteroGeArConfig,
    aca_i,
    aca_ii,
    etaii,
    exact_error_probability,
    exhaustive_error_rate,
    gda,
)
from repro.errors import (
    ErrorPMF,
    analytic_error_pmf,
    analytic_error_rate,
    analytic_summary,
    block_error_events,
    exhaustive_error_pmf,
)

# Table III/IV operating points (plus the verify-registry configs).
TABLE_CONFIGS = [
    (8, 2, 2),
    (11, 1, 5),
    (11, 3, 2),
    (12, 4, 4),
    (16, 1, 7),
    (16, 2, 2),
    (16, 2, 6),
    (16, 4, 4),
    (16, 6, 4),
]


class TestAgainstExactDP:
    @pytest.mark.parametrize("n,r,p", TABLE_CONFIGS)
    def test_rate_matches_dp_on_table_configs(self, n, r, p):
        cfg = GeArConfig(n, r, p)
        assert analytic_error_rate(cfg) == pytest.approx(
            exact_error_probability(cfg), abs=1e-9
        )

    def test_rate_matches_dp_on_all_valid_11(self):
        for cfg in GeArConfig.all_valid(11, min_p=0):
            assert analytic_error_rate(cfg) == pytest.approx(
                exact_error_probability(cfg), abs=1e-9
            ), cfg.name


class TestAgainstExhaustive:
    @pytest.mark.parametrize("n,r,p", [(8, 2, 2), (8, 2, 4), (8, 3, 2),
                                       (8, 1, 3), (8, 6, 2)])
    def test_rate_matches_exhaustive(self, n, r, p):
        cfg = GeArConfig(n, r, p)
        assert analytic_error_rate(cfg) == pytest.approx(
            exhaustive_error_rate(cfg), abs=1e-9
        )

    def test_full_pmf_matches_exhaustive_homogeneous(self):
        for cfg in GeArConfig.all_valid(8, min_p=0):
            hetero = HeteroGeArConfig.from_gear(cfg)
            tv = analytic_error_pmf(cfg).total_variation(
                exhaustive_error_pmf(hetero)
            )
            assert tv < 1e-9, cfg.name

    def test_full_pmf_matches_exhaustive_heterogeneous(self):
        for cfg in HeteroGeArConfig.all_valid(6, max_segments=3, max_p=4):
            tv = analytic_error_pmf(cfg).total_variation(
                exhaustive_error_pmf(cfg)
            )
            assert tv < 1e-9, cfg.name

    def test_overestimating_config_matches_exhaustive(self):
        # p_2 > p_1 + r_1 lets a wrap survive uncompensated, so this
        # config genuinely overestimates -- the engine must model it.
        cfg = HeteroGeArConfig(((2, 0), (1, 1), (2, 3)))
        assert not cfg.never_overestimates
        pmf = analytic_error_pmf(cfg)
        assert max(pmf.support) > 0
        assert pmf.total_variation(exhaustive_error_pmf(cfg)) < 1e-9


class TestVariants:
    """ACA/ETAII/GDA are GeAr mappings; the engine takes them directly."""

    @pytest.mark.parametrize("cfg", [
        aca_i(8, 4), aca_ii(8, 4), etaii(8, 2), gda(8, 2, 2),
    ])
    def test_variant_rates_match_exhaustive(self, cfg):
        assert analytic_error_rate(cfg) == pytest.approx(
            exhaustive_error_rate(cfg), abs=1e-9
        )


class TestStructuralProperties:
    def test_exact_config_is_delta(self):
        assert analytic_error_pmf(HeteroGeArConfig(((8, 0),))) == ErrorPMF.delta(0)

    def test_monotone_configs_never_overestimate(self):
        for cfg in GeArConfig.all_valid(10, min_p=0):
            pmf = analytic_error_pmf(cfg)
            assert max(pmf.support) <= 0, cfg.name

    def test_simple_truncated_carry_pmf(self):
        # Two 1-bit blocks, no prediction: miss iff bit 0 generates.
        pmf = analytic_error_pmf(HeteroGeArConfig(((1, 0), (1, 0))))
        assert dict(pmf.items()) == {-2: 0.25, 0: 0.75}

    def test_unsupported_config_rejected(self):
        with pytest.raises(TypeError, match="unsupported config"):
            analytic_error_pmf(object())

    def test_exhaustive_guard(self):
        with pytest.raises(ValueError, match="infeasible"):
            exhaustive_error_pmf(GeArConfig(16, 2, 2))


class TestBlockEvents:
    def test_marginals_sum_bounds_error_rate(self):
        # Union bound: P[any miss] <= sum of marginals.
        cfg = GeArConfig(8, 2, 2)
        events = block_error_events(cfg)
        assert analytic_error_rate(cfg) <= sum(e.probability for e in events) + 1e-12

    def test_first_block_never_errs(self):
        events = block_error_events(GeArConfig(12, 4, 4))
        assert events[0].probability == 0.0

    def test_p0_block_miss_probability(self):
        # ((1,0),(1,0)): block 1 misses iff bit 0 generates (prob 1/4).
        events = block_error_events(HeteroGeArConfig(((1, 0), (1, 0))))
        assert events[1].probability == pytest.approx(0.25)
        assert events[1].magnitude == 2

    def test_marginal_matches_exhaustive_flag_rate(self, rng):
        from repro.adders import GeArAdder

        cfg = GeArConfig(8, 2, 2)
        adder = GeArAdder(cfg)
        a, b = np.meshgrid(np.arange(256), np.arange(256))
        # Exhaustive rate of "sub-adder i's true carry-in is missed".
        exact = a + b
        events = block_error_events(cfg)
        for i, (start, _) in enumerate(cfg.sub_adder_windows()):
            if i == 0:
                continue
            carry_in = ((exact >> start) ^ (a >> start) ^ (b >> start)) & 1
            mask_p = (1 << cfg.p) - 1
            prop = (((a >> start) ^ (b >> start)) & mask_p) == mask_p
            rate = np.mean((carry_in == 1) & prop)
            assert events[i].probability == pytest.approx(rate, abs=1e-12)


class TestSummary:
    def test_summary_consistent_with_pmf(self):
        cfg = GeArConfig(8, 2, 2)
        pmf = analytic_error_pmf(cfg)
        summary = analytic_summary(cfg)
        assert summary["error_rate"] == pmf.error_rate
        assert summary["accuracy_percent"] == pytest.approx(
            100.0 * (1 - pmf.error_rate)
        )
        assert summary["med"] == pmf.mean_abs
        assert summary["nmed"] == pmf.mean_abs / (2**9 - 2)
        assert summary["max_abs"] == pmf.max_abs

    def test_summary_med_matches_exhaustive(self):
        cfg = HeteroGeArConfig(((3, 0), (3, 2), (2, 2)))
        summary = analytic_summary(cfg)
        exh = exhaustive_error_pmf(cfg)
        assert summary["med"] == pytest.approx(exh.mean_abs, abs=1e-9)
