"""Tests for statistical error propagation and masking analysis."""

import numpy as np
import pytest

from repro.errors.pmf import ErrorPMF
from repro.errors.propagation import (
    abs_masking_factor,
    argmin_flip_probability,
    predict_sad_error_pmf,
    propagate_adder_tree,
    propagate_weighted_sum,
)


class TestAdderTree:
    def test_exact_leaves_exact_tree(self):
        out = propagate_adder_tree(ErrorPMF.delta(0), 8)
        assert out == ErrorPMF.delta(0)

    def test_leaf_errors_accumulate(self):
        leaf = ErrorPMF({0: 0.5, 1: 0.5})
        out = propagate_adder_tree(leaf, 4)
        assert out.mean == pytest.approx(2.0)

    def test_node_errors_added(self):
        leaf = ErrorPMF.delta(0)
        node = ErrorPMF({0: 0.5, -1: 0.5})
        out = propagate_adder_tree(leaf, 4, node_error=node)
        # 3 adder nodes, each -0.5 mean.
        assert out.mean == pytest.approx(-1.5)

    def test_single_leaf_no_nodes(self):
        node = ErrorPMF({0: 0.5, -1: 0.5})
        out = propagate_adder_tree(ErrorPMF.delta(2), 1, node_error=node)
        assert out == ErrorPMF.delta(2)

    def test_invalid_leaf_count(self):
        with pytest.raises(ValueError, match="n_leaves"):
            propagate_adder_tree(ErrorPMF.delta(0), 0)

    def test_matches_monte_carlo(self, rng):
        """Analytic tree propagation agrees with direct simulation."""
        leaf = ErrorPMF({0: 0.6, 1: 0.25, -2: 0.15})
        n = 8
        predicted = propagate_adder_tree(leaf, n)
        values = np.array(list(leaf.support))
        probs = np.array([leaf.probability(int(v)) for v in leaf.support])
        draws = rng.choice(values, size=(20000, n), p=probs).sum(axis=1)
        assert predicted.mean == pytest.approx(float(draws.mean()), abs=0.05)
        assert predicted.variance == pytest.approx(float(draws.var()), rel=0.1)


class TestWeightedSum:
    def test_weights_scale_errors(self):
        term = ErrorPMF({0: 0.5, 1: 0.5})
        out = propagate_weighted_sum([term, term], [1, 4])
        assert out.mean == pytest.approx(0.5 + 2.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            propagate_weighted_sum([ErrorPMF.delta(0)], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="term"):
            propagate_weighted_sum([], [])


class TestAbsMasking:
    def test_large_signals_pass_errors_through(self):
        error = ErrorPMF({1: 1.0})
        signals = np.full(100, 1000)
        assert abs_masking_factor(signals, error) == pytest.approx(1.0)

    def test_zero_signals_mask_nothing_for_positive_error(self):
        # |0 + 1| - |0| = 1: error fully visible.
        error = ErrorPMF({1: 1.0})
        assert abs_masking_factor(np.zeros(10), error) == pytest.approx(1.0)

    def test_sign_folding_masks(self):
        # signal = -1, error = +2 -> |1| - |-1| = 0: fully masked.
        error = ErrorPMF({2: 1.0})
        factor = abs_masking_factor(np.full(10, -1), error)
        assert factor == pytest.approx(0.0)

    def test_exact_error_trivially_unmasked(self):
        assert abs_masking_factor(np.arange(-5, 5), ErrorPMF.delta(0)) == 1.0

    def test_empty_signal_rejected(self):
        with pytest.raises(ValueError, match="signal"):
            abs_masking_factor(np.array([]), ErrorPMF.delta(0))


class TestArgminFlip:
    def test_exact_scores_never_flip(self):
        scores = np.array([10, 20, 30])
        assert argmin_flip_probability(scores, ErrorPMF.delta(0)) == 0.0

    def test_common_mode_shift_never_flips(self):
        """The Fig. 8 insight: a shared surface shift keeps the argmin."""
        scores = np.array([15, 11, 30, 12])
        shift = ErrorPMF({40: 0.5, 80: 0.5})
        p = argmin_flip_probability(
            scores, ErrorPMF.delta(0), common_mode=shift, n_trials=500
        )
        assert p == 0.0

    def test_large_per_candidate_noise_flips(self):
        scores = np.array([100, 101])
        noise = ErrorPMF({0: 0.5, 5: 0.5})
        p = argmin_flip_probability(scores, noise, n_trials=4000, seed=1)
        # Winner flips when candidate0 draws +5 and candidate1 draws 0.
        assert p == pytest.approx(0.25, abs=0.03)

    def test_wide_margins_resist_noise(self):
        scores = np.array([0, 1000])
        noise = ErrorPMF({0: 0.5, 5: 0.5})
        assert argmin_flip_probability(scores, noise, n_trials=500) == 0.0

    def test_needs_two_candidates(self):
        with pytest.raises(ValueError, match="two"):
            argmin_flip_probability(np.array([1]), ErrorPMF.delta(0))


class TestSadPrediction:
    def test_composition(self):
        pixel = ErrorPMF({0: 0.9, -1: 0.1})
        adder = ErrorPMF({0: 0.95, -2: 0.05})
        out = predict_sad_error_pmf(pixel, adder, n_pixels=16)
        expected_mean = 16 * pixel.mean + 15 * adder.mean
        assert out.mean == pytest.approx(expected_mean)
