"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in (
            "characterize-adders",
            "explore-gear",
            "characterize-multipliers",
            "encode",
        ):
            args = parser.parse_args([command])
            assert callable(args.func)


class TestCharacterizeAdders:
    def test_table3_output(self, capsys):
        assert main(["characterize-adders"]) == 0
        out = capsys.readouterr().out
        assert "AccuFA" in out and "ApxFA5" in out

    def test_family_sweep(self, capsys):
        assert main(["characterize-adders", "--width", "8",
                     "--lsbs", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "RCA8" in out

    def test_csv_mode(self, capsys):
        assert main(["characterize-adders", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("adder,")


class TestExploreGear:
    def test_sweep(self, capsys):
        assert main(["explore-gear", "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert "max accuracy" in out

    def test_constraint_selection(self, capsys):
        assert main(["explore-gear", "--width", "11",
                     "--min-accuracy", "90"]) == 0
        out = capsys.readouterr().out
        assert "min area with >= 90" in out

    def test_infeasible_constraint_fails(self, capsys):
        assert main(["explore-gear", "--width", "8",
                     "--min-accuracy", "99.9999"]) == 1
        assert "infeasible" in capsys.readouterr().err


class TestMultipliers:
    def test_fig5_only(self, capsys):
        assert main(["characterize-multipliers", "--widths"]) == 0
        out = capsys.readouterr().out
        assert "CfgMulOur" in out

    def test_with_fig6(self, capsys):
        assert main(["characterize-multipliers", "--widths", "4",
                     "--samples", "2000"]) == 0
        out = capsys.readouterr().out
        assert "ApxMul4" in out


class TestEncode:
    def test_encode_small(self, capsys):
        assert main(["encode", "--frames", "2", "--size", "32",
                     "--search-range", "2"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "ApxSAD2" in out

    def test_unknown_variant(self, capsys):
        assert main(["encode", "--variant", "ApxSAD9",
                     "--frames", "2", "--size", "32"]) == 2
        assert "unknown variant" in capsys.readouterr().err


class TestCampaignCommand:
    def test_listed_in_known_commands(self):
        args = build_parser().parse_args(["campaign", "table4"])
        assert callable(args.func)

    def test_table4_campaign(self, capsys):
        assert main(["campaign", "table4", "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert "accuracy_percent" in out

    def test_sad_campaign_csv(self, capsys):
        assert main(["campaign", "sad", "--pixels", "16",
                     "--samples", "100", "--lsbs", "2", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("name,")
        assert "AccuSAD" in out

    def test_cache_dir_and_workers(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        argv = ["campaign", "table4", "--width", "8", "--model",
                "monte-carlo", "--samples", "2000", "--workers", "2",
                "--cache-dir", cache]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "0 cache hits" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "0 executed" in warm.err
        assert cold.out == warm.out

class TestResilienceCommand:
    def test_listed_in_known_commands(self):
        args = build_parser().parse_args(["resilience", "sad"])
        assert callable(args.func)

    def test_sad_sweep_with_qos(self, capsys):
        assert main(["resilience", "sad", "--rates", "0", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "qos_stage" in out and "golden" in out

    def test_cell_sweep_csv(self, capsys):
        assert main(["resilience", "cell", "--rates", "0.01", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("rate,")

    def test_workers_and_cache_dir(self, capsys, tmp_path):
        argv = ["resilience", "sad", "--rates", "0", "0.001",
                "--workers", "2", "--cache-dir", str(tmp_path / "c")]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "0 cache hits" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "0 executed" in warm.err
        assert cold.out == warm.out

    def test_quarantine_reported_and_nonzero_exit(self, capsys):
        # An impossible timeout quarantines every task.
        assert main(["resilience", "gear", "--rates", "0.01",
                     "--timeout", "0.000001"]) == 1
        err = capsys.readouterr().err
        assert "QUARANTINED" in err


class TestCampaignFlags:
    def test_explore_gear_accepts_campaign_flags(self, capsys, tmp_path):
        assert main(["explore-gear", "--width", "8", "--model",
                     "monte-carlo", "--samples", "2000", "--seed", "4",
                     "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "max accuracy" in out


class TestAnalyticCommand:
    def test_listed_in_known_commands(self):
        args = build_parser().parse_args(["analytic", "--config", "8,2,2"])
        assert callable(args.func)

    def test_config_table(self, capsys):
        assert main(["analytic", "--config", "8,2,2",
                     "--segments", "4:0,2:2,2:2"]) == 0
        out = capsys.readouterr().out
        # GeAr(8,2,2) and its explicit segment spelling are one design.
        assert out.count("4p0-2p2-2p2") == 2
        assert "0.1875" in out  # exact error rate, not an estimate

    def test_csv_mode(self, capsys):
        assert main(["analytic", "--config", "8,2,2", "--csv"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("segments,n,k,error_rate,")
        assert lines[1].split(",")[3] == "0.1875"

    def test_sweep_reports_front_and_verdict(self, capsys):
        assert main(["analytic", "--sweep", "--width", "6",
                     "--max-segments", "3", "--max-p", "3"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous Pareto front, N=6" in out
        assert "matches or dominates" in out

    def test_sweep_accepts_campaign_flags(self, capsys, tmp_path):
        argv = ["analytic", "--sweep", "--width", "6", "--max-segments",
                "2", "--max-p", "2", "--cache-dir", str(tmp_path / "c")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == cold

    def test_no_work_exits_2(self, capsys):
        assert main(["analytic"]) == 2
        assert "nothing to analyse" in capsys.readouterr().err

    def test_bad_spec_exits_2(self, capsys):
        assert main(["analytic", "--config", "8,3"]) == 2
        assert "bad configuration spec" in capsys.readouterr().err

    def test_invalid_segments_exit_2(self, capsys):
        assert main(["analytic", "--segments", "4:0,9:9"]) == 2
        assert "bad configuration spec" in capsys.readouterr().err


class TestIsolationFlags:
    def test_tenant_spec_parses_result_byte_quota(self):
        from repro.cli import _parse_tenant_spec

        config = _parse_tenant_spec("gold:4:10:8:32:5000")
        assert config.name == "gold"
        assert config.weight == 4.0
        assert config.max_result_bytes == 5000
        # Omitted or empty quota field means unlimited.
        assert _parse_tenant_spec("free:1").max_result_bytes is None
        assert _parse_tenant_spec("free:1:::256:").max_result_bytes is None

    def test_serve_parser_accepts_isolation(self):
        args = build_parser().parse_args(["serve", "--isolation", "process"])
        assert args.isolation == "process"
        assert build_parser().parse_args(["serve"]).isolation == "warm"

    def test_campaign_isolation_flag_sets_env_default(
        self, capsys, monkeypatch, tmp_path
    ):
        import os

        monkeypatch.delenv("REPRO_CAMPAIGN_ISOLATION", raising=False)
        assert main(["explore-gear", "--width", "8", "--model",
                     "monte-carlo", "--samples", "500", "--seed", "1",
                     "--cache-dir", str(tmp_path / "c"),
                     "--isolation", "warm"]) == 0
        assert os.environ.get("REPRO_CAMPAIGN_ISOLATION") == "warm"
        assert "max accuracy" in capsys.readouterr().out
