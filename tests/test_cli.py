"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in (
            "characterize-adders",
            "explore-gear",
            "characterize-multipliers",
            "encode",
        ):
            args = parser.parse_args([command])
            assert callable(args.func)


class TestCharacterizeAdders:
    def test_table3_output(self, capsys):
        assert main(["characterize-adders"]) == 0
        out = capsys.readouterr().out
        assert "AccuFA" in out and "ApxFA5" in out

    def test_family_sweep(self, capsys):
        assert main(["characterize-adders", "--width", "8",
                     "--lsbs", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "RCA8" in out

    def test_csv_mode(self, capsys):
        assert main(["characterize-adders", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("adder,")


class TestExploreGear:
    def test_sweep(self, capsys):
        assert main(["explore-gear", "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert "max accuracy" in out

    def test_constraint_selection(self, capsys):
        assert main(["explore-gear", "--width", "11",
                     "--min-accuracy", "90"]) == 0
        out = capsys.readouterr().out
        assert "min area with >= 90" in out

    def test_infeasible_constraint_fails(self, capsys):
        assert main(["explore-gear", "--width", "8",
                     "--min-accuracy", "99.9999"]) == 1
        assert "infeasible" in capsys.readouterr().err


class TestMultipliers:
    def test_fig5_only(self, capsys):
        assert main(["characterize-multipliers", "--widths"]) == 0
        out = capsys.readouterr().out
        assert "CfgMulOur" in out

    def test_with_fig6(self, capsys):
        assert main(["characterize-multipliers", "--widths", "4",
                     "--samples", "2000"]) == 0
        out = capsys.readouterr().out
        assert "ApxMul4" in out


class TestEncode:
    def test_encode_small(self, capsys):
        assert main(["encode", "--frames", "2", "--size", "32",
                     "--search-range", "2"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "ApxSAD2" in out

    def test_unknown_variant(self, capsys):
        assert main(["encode", "--variant", "ApxSAD9",
                     "--frames", "2", "--size", "32"]) == 2
        assert "unknown variant" in capsys.readouterr().err
