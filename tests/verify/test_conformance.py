"""Conformance engine: path cross-checking, drivers, report records."""

import numpy as np
import pytest

from repro.verify.conformance import check_paths, verify_all, verify_component
from repro.verify.oracle import Oracle, get_oracle
from repro.verify.report import BUDGETS, ConformanceReport, resolve_budget


def _toy_oracle(broken: bool) -> Oracle:
    """4-bit adder oracle whose second path optionally drifts."""

    def exact(a, b):
        return np.asarray(a) + np.asarray(b)

    def drifty(a, b):
        out = np.asarray(a) + np.asarray(b)
        if broken:
            out = out.copy()
            out[(np.asarray(a) == 3) & (np.asarray(b) == 5)] += 1
        return out

    return Oracle(
        name="toy/add4",
        family="ripple",
        description="toy 4-bit adder",
        operand_bits=(4, 4),
        golden=exact,
        paths={"ref": exact, "alt": drifty},
        error_cap=0,
    )


class TestCheckPaths:
    def test_agreeing_paths_pass(self):
        checks = check_paths(_toy_oracle(broken=False), BUDGETS["fast"], 0)
        assert checks and all(c.passed for c in checks)
        names = {c.check for c in checks}
        assert "path:alt~ref" in names
        assert {"golden:ref", "golden:alt"} <= names

    def test_single_site_drift_is_caught_with_counterexample(self):
        checks = check_paths(_toy_oracle(broken=True), BUDGETS["fast"], 0)
        failed = [c for c in checks if not c.passed]
        assert failed
        pairwise = next(c for c in failed if c.check == "path:alt~ref")
        assert "counterexample" in pairwise.detail
        assert "(3, 5)" in pairwise.detail

    def test_exhaustive_flag_reflects_coverage(self):
        checks = check_paths(_toy_oracle(broken=False), BUDGETS["fast"], 0)
        assert all(c.exhaustive for c in checks)
        assert all(c.n_inputs == 256 for c in checks)


class TestVerifyComponent:
    @pytest.mark.parametrize("name", [
        "fa/ApxFA3",            # asymmetric cell, netlist + SOP paths
        "ripple/ApxFA5x4w8",    # LUT fast path vs loop vs netlist
        "gear/N8R2P2",          # exhaustive stats + prefix-free config
        "mul2x2/ApxMulOur",     # paper's multiplier vs its netlist
        "sad/AccuSADx0",        # structured stimulus accelerator
    ])
    def test_representative_components_pass(self, name):
        report = verify_component(name, budget="fast", seed=0)
        assert report.passed, report.summary()

    def test_gear_component_includes_statistics_checks(self):
        report = verify_component("gear/N8R2P2", budget="fast", seed=0)
        kinds = {c.check.split(":")[0] for c in report.checks}
        assert kinds == {"path", "law", "stat"}

    def test_accepts_oracle_instance(self):
        report = verify_component(_toy_oracle(broken=False), "fast", 0)
        assert report.passed and report.component == "toy/add4"

    def test_failure_is_reported_not_raised(self):
        report = verify_component(_toy_oracle(broken=True), "fast", 0)
        assert not report.passed
        assert report.failures()
        assert "0 failed" not in report.summary()


class TestVerifyAll:
    def test_subset_reports_in_input_order(self):
        names = ["mul2x2/AccMul", "fa/ApxFA1"]
        reports = verify_all(names, budget="fast", seed=0)
        assert [r.component for r in reports] == names
        assert all(r.passed for r in reports)

    def test_campaign_and_inprocess_paths_agree(self):
        """A Budget instance runs in-process; the named budget rides the
        campaign engine.  Exhaustively-checked components must agree."""
        names = ["fa/ApxFA2", "mul2x2/ApxMulSoA"]
        via_campaign = verify_all(names, budget="fast", seed=0)
        in_process = verify_all(names, budget=BUDGETS["fast"], seed=0)
        assert (
            [r.to_record() for r in via_campaign]
            == [r.to_record() for r in in_process]
        )

    def test_worker_fanout_is_bit_identical(self):
        names = ["fa/ApxFA4", "fa/ApxFA5", "mul2x2/AccMul"]
        serial = verify_all(names, budget="fast", seed=0)
        parallel = verify_all(names, budget="fast", seed=0, n_workers=2)
        assert (
            [r.to_record() for r in serial]
            == [r.to_record() for r in parallel]
        )

    def test_cache_roundtrip(self, tmp_path):
        names = ["fa/ApxFA1"]
        cold = verify_all(names, budget="fast", seed=0,
                          cache_dir=str(tmp_path))
        warm = verify_all(names, budget="fast", seed=0,
                          cache_dir=str(tmp_path))
        assert cold[0].to_record() == warm[0].to_record()


class TestReportRecords:
    def test_report_record_roundtrip(self):
        report = verify_component("fa/ApxFA1", budget="fast", seed=0)
        clone = ConformanceReport.from_record(report.to_record())
        assert clone == report
        assert clone.passed == report.passed

    def test_resolve_budget_accepts_names_and_instances(self):
        assert resolve_budget("fast") is BUDGETS["fast"]
        assert resolve_budget(BUDGETS["full"]) is BUDGETS["full"]
        with pytest.raises(KeyError, match="unknown budget"):
            resolve_budget("warp-speed")
