"""Metamorphic laws: positive runs, negative controls, registry hygiene."""

import pytest

from repro.verify.metamorphic import LAWS, run_law
from repro.verify.oracle import build_registry, get_oracle
from repro.verify.report import BUDGETS

FAST = BUDGETS["fast"]


class TestRegistryHygiene:
    def test_every_declared_law_exists(self):
        for oracle in build_registry().values():
            for law in oracle.laws:
                assert law in LAWS, f"{oracle.name} declares unknown {law!r}"

    def test_unknown_law_raises(self):
        with pytest.raises(KeyError, match="unknown law"):
            run_law("conservation_of_momentum", get_oracle("fa/AccuFA"),
                    FAST, 0)

    def test_every_oracle_declared_law_passes(self):
        for oracle in build_registry().values():
            for law in oracle.laws:
                result = run_law(law, oracle, FAST, seed=0)
                assert result.passed, (
                    f"{oracle.name} {result.check}: {result.detail}"
                )


class TestNegativeControls:
    """Laws must FAIL where the property genuinely does not hold --
    otherwise a passing law proves nothing."""

    def test_commutativity_fails_on_asymmetric_cell(self):
        # ApxFA1's table is not A/B-symmetric (rows 010 vs 100 differ),
        # which is exactly why the registry does not declare the law.
        oracle = get_oracle("fa/ApxFA1")
        assert "commutativity" not in oracle.laws
        result = run_law("commutativity", oracle, FAST, seed=0)
        assert not result.passed

    def test_shift_scaling_fails_on_approximate_adder(self):
        oracle = get_oracle("ripple/ApxFA5x4w8")
        result = run_law("shift_scaling", oracle, FAST, seed=0)
        assert not result.passed

    def test_sad_self_zero_fails_on_approximate_sad(self):
        # ApxFA4 maps (0,1,1) -> (1,0), so |a - a| computed through the
        # approximate subtractor is nonzero on some blocks.
        oracle = get_oracle("sad/ApxSAD5x4")
        assert "sad_self_zero" not in oracle.laws
        result = run_law("sad_self_zero", oracle, FAST, seed=0)
        assert not result.passed


class TestLawSemantics:
    def test_zero_lsb_window_holds_for_every_ripple_variant(self):
        """All Table III cells emit carry 0 on the (0,0,0) row, so a
        zeroed LSB window never corrupts the accurate MSB segment."""
        for name, oracle in build_registry().items():
            if oracle.family != "ripple":
                continue
            result = run_law("zero_lsb_window", oracle, FAST, seed=0)
            assert result.passed, name

    def test_correction_convergence_is_exhaustive_for_n8(self):
        oracle = get_oracle("gear/N8R2P2")
        result = run_law("correction_convergence", oracle, FAST, seed=0)
        assert result.passed and result.exhaustive

    def test_law_results_are_labelled(self):
        oracle = get_oracle("gear/N8R2P2")
        result = run_law("approx_le_exact", oracle, FAST, seed=0)
        assert result.check == "law:approx_le_exact"
        assert result.component == "gear/N8R2P2"
