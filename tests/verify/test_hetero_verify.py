"""Verification wiring for the heterogeneous adder family."""

import pytest

from repro.adders import HeteroGeArConfig
from repro.verify import (
    FAMILIES,
    get_oracle,
    hetero_statistics_checks,
    resolve_components,
    verify_component,
)
from repro.verify.oracle import hetero_pure_python


class TestRegistry:
    def test_family_registered(self):
        assert "hetero" in FAMILIES
        names = resolve_components("hetero")
        assert names
        assert all(n.startswith("hetero/") for n in names)

    def test_oracle_has_independent_paths(self):
        oracle = get_oracle("hetero/3p0-3p2-2p2")
        assert set(oracle.paths) == {"window", "partsim", "pure_python"}
        assert "block0_exact" in oracle.laws

    def test_monotone_configs_get_support_law(self):
        monotone = get_oracle("hetero/3p0-3p2-2p2")
        overestimating = get_oracle("hetero/2p0-1p1-2p3")
        assert "approx_le_exact" in monotone.laws
        assert "approx_le_exact" not in overestimating.laws


class TestPurePython:
    def test_matches_vectorized_path(self, rng):
        from repro.adders import HeteroGeArAdder

        config = HeteroGeArConfig(((3, 0), (3, 2), (2, 2)))
        scalar = hetero_pure_python(config)
        vector = HeteroGeArAdder(config).add
        a = rng.integers(0, 256, 500)
        b = rng.integers(0, 256, 500)
        assert (scalar(a, b) == vector(a, b)).all()


class TestStatistics:
    def test_checks_pass_on_fast_budget(self):
        config = HeteroGeArConfig(((3, 0), (3, 2), (2, 2)))
        checks = hetero_statistics_checks(config, budget="fast", seed=0)
        names = {c.check for c in checks}
        assert "stat:analytic_vs_exhaustive" in names
        assert "stat:analytic_pmf_vs_exhaustive" in names
        assert "stat:monte_carlo_vs_analytic" in names
        assert "stat:analytic_support_sign" in names
        assert all(c.passed for c in checks), [
            (c.check, c.detail) for c in checks if not c.passed
        ]

    def test_overestimating_config_skips_support_sign(self):
        config = HeteroGeArConfig(((2, 0), (1, 1), (2, 3)))
        checks = hetero_statistics_checks(config, budget="fast", seed=0)
        assert "stat:analytic_support_sign" not in {c.check for c in checks}
        assert all(c.passed for c in checks)


class TestConformance:
    @pytest.mark.parametrize("name", [
        "hetero/4p0-2p2-2p2",
        "hetero/2p0-1p1-2p3",
    ])
    def test_component_conforms(self, name):
        report = verify_component(name, budget="fast", seed=0)
        assert report.passed, [
            (c.check, c.detail) for c in report.checks if not c.passed
        ]

    def test_gear_reports_analytic_checks(self):
        report = verify_component("gear/N8R2P2", budget="fast", seed=0)
        names = {c.check for c in report.checks}
        assert "stat:analytic_vs_exact" in names
        assert "stat:analytic_pmf_vs_exhaustive" in names
        assert report.passed
