"""Oracle registry: coverage, stimulus generation, selectors."""

import numpy as np
import pytest

from repro.verify.oracle import (
    FAMILIES,
    build_registry,
    get_oracle,
    operand_space,
    oracle_names,
    resolve_components,
    stratified_operands,
)
from repro.verify.report import BUDGETS


class TestRegistry:
    def test_every_family_is_populated(self):
        registry = build_registry()
        families = {oracle.family for oracle in registry.values()}
        assert families == set(FAMILIES)

    def test_every_table3_cell_has_an_oracle(self):
        names = oracle_names()
        for cell in ("AccuFA", "ApxFA1", "ApxFA2", "ApxFA3", "ApxFA4",
                     "ApxFA5"):
            assert f"fa/{cell}" in names

    def test_every_oracle_has_redundant_paths(self):
        """Differential checking needs at least two independent routes."""
        for oracle in build_registry().values():
            assert len(oracle.paths) >= 2, oracle.name

    def test_oracle_names_match_registry_keys(self):
        for name, oracle in build_registry().items():
            assert oracle.name == name
            assert oracle.family == name.split("/")[0]

    def test_exact_components_declare_zero_error_cap(self):
        for name in ("fa/AccuFA", "ripple/AccuFAx0w8", "recmul/Acc4"):
            assert get_oracle(name).error_cap == 0

    def test_unknown_component_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="unknown component"):
            get_oracle("fa/NoSuchCell")


class TestSelectors:
    def test_all_selects_everything(self):
        assert resolve_components("all") == oracle_names()

    def test_family_selector(self):
        names = resolve_components("gear")
        assert names and all(n.startswith("gear/") for n in names)

    def test_exact_name_selector(self):
        assert resolve_components("fa/ApxFA1") == ["fa/ApxFA1"]

    def test_comma_union_deduplicates(self):
        names = resolve_components("fa,fa/ApxFA1,mul2x2")
        assert len(names) == len(set(names))
        assert "mul2x2/AccMul" in names

    def test_unknown_selector_raises(self):
        with pytest.raises(KeyError, match="unknown component selector"):
            resolve_components("bogus")


class TestStimulus:
    def test_exhaustive_for_small_spaces(self):
        oracle = get_oracle("fa/AccuFA")
        operands, exhaustive = operand_space(oracle, BUDGETS["fast"], seed=0)
        assert exhaustive
        assert len(operands) == 3
        assert operands[0].size == 8  # 2**(1+1+1)
        triples = set(zip(*(o.tolist() for o in operands)))
        assert len(triples) == 8

    def test_sampled_above_budget(self):
        oracle = get_oracle("gear/N16R1P7")  # 32 input bits
        operands, exhaustive = operand_space(oracle, BUDGETS["fast"], seed=0)
        assert not exhaustive
        assert operands[0].size == BUDGETS["fast"].n_samples

    def test_stratified_is_deterministic_and_in_range(self):
        a1, b1 = stratified_operands((12, 12), 2000, seed=7)
        a2, b2 = stratified_operands((12, 12), 2000, seed=7)
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)
        for arr in (a1, b1):
            assert arr.min() >= 0 and arr.max() < (1 << 12)

    def test_stratified_seed_changes_samples(self):
        a1, _ = stratified_operands((12, 12), 2000, seed=0)
        a2, _ = stratified_operands((12, 12), 2000, seed=1)
        assert not np.array_equal(a1, a2)

    def test_stratified_includes_corners(self):
        a, b = stratified_operands((8, 8), 512, seed=0)
        pairs = set(zip(a.tolist(), b.tolist()))
        assert {(0, 0), (255, 255), (0, 255), (255, 0)} <= pairs

    def test_stratified_includes_propagate_chains(self):
        """The complement stratum must produce a + b == all-ones pairs."""
        a, b = stratified_operands((8, 8), 4096, seed=3)
        assert np.count_nonzero((a + b) == 255) >= 100
