"""``repro verify`` CLI subcommand."""

from repro.cli import main


class TestVerifyCommand:
    def test_verify_all_fast_exits_zero(self, capsys):
        """Acceptance gate: the shipped registry verifies clean."""
        assert main(["verify", "all", "--budget", "fast", "--seed", "0"]) == 0
        captured = capsys.readouterr()
        assert "33/33 components passed" in captured.err
        assert "fa/AccuFA" in captured.out
        assert "FAIL" not in captured.out

    def test_family_selector_limits_scope(self, capsys):
        assert main(["verify", "mul2x2", "--budget", "fast"]) == 0
        out = capsys.readouterr().out
        assert "mul2x2/AccMul" in out
        assert "fa/AccuFA" not in out

    def test_csv_output(self, capsys):
        assert main(["verify", "fa/ApxFA2", "--budget", "fast", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "component,budget,checks,failed,status"
        assert "fa/ApxFA2,fast," in out

    def test_unknown_component_exits_2(self, capsys):
        assert main(["verify", "fa/NoSuchCell"]) == 2
        assert "unknown component" in capsys.readouterr().err

    def test_workers_and_cache_flags_accepted(self, tmp_path, capsys):
        argv = ["verify", "fa", "--budget", "fast", "--workers", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        # Warm-start from the cache must reproduce the verdict.
        assert main(argv) == 0
