"""Mutation smoke-testing: the engine must catch every seeded fault."""

from repro.verify.conformance import verify_component
from repro.verify.mutation import run_mutation_smoke, seeded_mutants


class TestDetection:
    def test_engine_detects_every_seeded_mutant(self):
        """Acceptance gate: 100% detection.  Mutant input spaces are
        exhaustive under the mutation budget, so a miss is an engine
        defect, not sampling bad luck."""
        report = run_mutation_smoke(seed=0)
        assert report.total >= 20
        assert report.detection_rate == 1.0, report.summary()
        assert report.missed == ()

    def test_detection_is_seed_independent(self):
        """A different fault sample must be caught just as reliably."""
        report = run_mutation_smoke(seed=12345)
        assert report.detection_rate == 1.0, report.summary()


class TestMutantConstruction:
    def test_mutants_are_deterministic_given_seed(self):
        names_a = [m.name for m in seeded_mutants(seed=0)]
        names_b = [m.name for m in seeded_mutants(seed=0)]
        assert names_a == names_b

    def test_mutants_cover_three_fault_classes(self):
        families = {m.oracle.family for m in seeded_mutants(seed=0)}
        assert families == {"fa", "mul2x2", "ripple"}

    def test_every_mutant_pairs_corrupted_with_pristine_path(self):
        for mutant in seeded_mutants(seed=0):
            assert len(mutant.oracle.paths) == 2, mutant.name

    def test_mutants_are_sandboxed(self):
        """Building and verifying mutants must not corrupt the shared
        truth tables, netlist caches, or segment LUTs."""
        run_mutation_smoke(seed=0)
        for name in ("fa/ApxFA1", "ripple/ApxFA5x4w8", "mul2x2/ApxMulOur"):
            report = verify_component(name, budget="fast", seed=0)
            assert report.passed, report.summary()

    def test_ripple_mutant_lut_is_a_private_copy(self):
        from repro.adders.fastpath import approx_segment_lut
        from repro.adders.fulladder import full_adder

        mutants = [m for m in seeded_mutants(seed=0)
                   if m.oracle.family == "ripple"]
        assert mutants
        for mutant in mutants:
            cell = mutant.oracle.meta["fa"]
            shared = approx_segment_lut(
                full_adder(cell), mutant.oracle.meta["lsbs"]
            )
            assert not shared.flags.writeable


class TestReport:
    def test_summary_names_misses(self):
        report = run_mutation_smoke(seed=0)
        assert "seeded mutants detected" in report.summary()

    def test_results_carry_descriptions(self):
        report = run_mutation_smoke(seed=0)
        for name, description, _ in report.results:
            assert name.startswith("mutant/")
            assert "flipped" in description
