"""GeAr error-model cross-validation (the paper's Table IV as a test)."""

import pytest

from repro.adders.gear import GeArConfig
from repro.verify.statistics import (
    GEAR_TOLERANCES,
    gear_statistics_checks,
    verify_gear_statistics,
)


class TestTableIVAcceptance:
    def test_all_n11_configurations_agree_within_tolerance(self):
        """Acceptance gate: for every valid Table IV configuration the
        analytic (paper + exact DP), exhaustive, and Monte Carlo error
        rates agree within the declared tolerances, and the exhaustive
        error PMF reproduces the error rate with a non-positive support.
        """
        checks = verify_gear_statistics()  # all_valid(11), budget "full"
        assert checks, "no checks ran"
        failed = [c for c in checks if not c.passed]
        assert not failed, "; ".join(
            f"{c.component} {c.check}: {c.detail}" for c in failed
        )
        # Every configuration must contribute the full check set: the
        # "full" budget enumerates all 4**11 operand pairs.
        by_kind = {}
        for c in checks:
            by_kind.setdefault(c.check, 0)
            by_kind[c.check] += 1
        n_configs = len(GeArConfig.all_valid(11))
        assert by_kind["stat:paper_vs_exact"] == n_configs
        assert by_kind["stat:exhaustive_vs_exact"] == n_configs
        assert by_kind["stat:monte_carlo_vs_exact"] == n_configs
        assert by_kind["stat:pmf_vs_exhaustive"] == n_configs
        assert by_kind["stat:pmf_tv_mc_vs_exhaustive"] == n_configs


class TestBudgetGating:
    def test_fast_budget_skips_wide_enumerations(self):
        config = GeArConfig(n=16, r=1, p=7)  # 4**16 pairs: never swept
        checks = gear_statistics_checks(config, budget="fast", seed=0)
        kinds = {c.check for c in checks}
        assert "stat:monte_carlo_vs_exact" in kinds
        assert "stat:exhaustive_vs_exact" not in kinds

    def test_full_budget_enumerates_n11(self):
        config = GeArConfig(n=11, r=1, p=5)
        checks = gear_statistics_checks(config, budget="full", seed=0)
        kinds = {c.check for c in checks}
        assert "stat:exhaustive_vs_exact" in kinds
        assert "stat:pmf_vs_exhaustive" in kinds

    def test_component_label_propagates(self):
        config = GeArConfig(n=8, r=2, p=2)
        checks = gear_statistics_checks(
            config, budget="fast", seed=0, component="gear/N8R2P2"
        )
        assert all(c.component == "gear/N8R2P2" for c in checks)

    def test_default_label_from_config(self):
        config = GeArConfig(n=8, r=2, p=2)
        checks = gear_statistics_checks(config, budget="fast", seed=0)
        assert all(c.component == "gear/N8R2P2" for c in checks)


class TestTolerances:
    def test_declared_tolerances_are_tight(self):
        """The analytic models must agree to rounding error, not to some
        hand-wavy percentage -- the point of declared tolerances."""
        assert GEAR_TOLERANCES["paper_vs_exact"] <= 1e-6
        assert GEAR_TOLERANCES["exhaustive_vs_exact"] <= 1e-9
        assert 0 < GEAR_TOLERANCES["pmf_tv"] <= 0.1

    def test_mc_check_is_seeded(self):
        config = GeArConfig(n=8, r=2, p=2)
        one = gear_statistics_checks(config, budget="fast", seed=0)
        two = gear_statistics_checks(config, budget="fast", seed=0)
        assert [c.to_record() for c in one] == [c.to_record() for c in two]

    def test_unknown_budget_rejected(self):
        with pytest.raises(KeyError, match="unknown budget"):
            gear_statistics_checks(GeArConfig(8, 2, 2), budget="ludicrous")
