"""Restart recovery: the journal keeps every promise across a crash.

These tests crash the service the honest way -- :meth:`ServiceApp.abandon`
cancels the workers and drops the journal handle without any graceful
shutdown bookkeeping, exactly the state a ``kill -9`` leaves on disk --
then boot a second app on the same ``state_dir`` and assert:

* terminal jobs come back read-only with results re-served from the
  content-addressed store (no re-execution);
* accepted-but-unfinished jobs are re-queued (without re-tolling the
  tenant's admission rate) and run to completion exactly once;
* SSE streams resume gap-free across the restart from ``Last-Event-ID``;
* per-tenant stored-byte quotas are re-derived from the disk tier;
* ``/readyz`` stays 503 until replay finishes, and a draining service
  answers new POSTs with a structured 503.
"""

from __future__ import annotations

import asyncio

from repro.service.app import ServiceApp, ServiceConfig
from repro.service.tenants import TenantConfig

from .conftest import InProcessClient, running_app


def _job(seed, n=8):
    return {"kind": "analytic", "params": {"n": n, "r": 2, "p": 2},
            "seed": seed}


class TestCleanRestart:
    def test_terminal_jobs_survive_with_results(self, tmp_path):
        state = str(tmp_path / "state")

        async def body():
            async with running_app(state_dir=state, n_workers=1) as \
                    (app, client):
                status, accepted = await client.post_job(_job(1))
                assert status == 202
                job_id = accepted["job_id"]
                first = await client.wait_done(job_id)
                assert first["state"] == "done"

            async with running_app(state_dir=state, n_workers=1) as \
                    (app2, client2):
                status, _, record = await client2.get(f"/v1/jobs/{job_id}")
                assert status == 200
                assert record["state"] == "done"
                assert record["recovered"] is True
                assert record["result"] == first["result"]
                assert app2.recovery["n_restored"] == 1
                assert app2.recovery["n_requeued"] == 0

                # The identical request is a store hit: zero re-runs.
                status, replay = await client2.post_job(_job(1))
                assert status == 200
                assert replay["served_from"] == "cache"
                assert app2.pool.n_campaign_executions == 0

                # Job ids never collide with the previous life's.
                status, fresh = await client2.post_job(_job(2))
                assert status == 202
                assert fresh["job_id"] != job_id

        asyncio.run(body())


class TestCrashRestart:
    def test_queued_jobs_reexecute_exactly_once(self, tmp_path):
        state = str(tmp_path / "state")

        async def body():
            app = ServiceApp(ServiceConfig(state_dir=state, n_workers=1))
            await app.start(paused=True)  # accepted but never dispatched
            client = InProcessClient(app)
            submitted = []
            for seed in range(3):
                status, accepted = await client.post_job(_job(seed))
                assert status == 202
                submitted.append(accepted["job_id"])
            await app.abandon()  # kill -9: no drain, no terminal events

            app2 = ServiceApp(ServiceConfig(state_dir=state, n_workers=1))
            assert app2.ready is False
            client2 = InProcessClient(app2)
            status, _, not_ready = await client2.get("/readyz")
            assert status == 503 and not_ready["ready"] is False

            await app2.start()
            status, _, ready = await client2.get("/readyz")
            assert status == 200 and ready["ready"] is True
            assert app2.recovery["n_requeued"] == 3

            try:
                for job_id in submitted:
                    record = await client2.wait_done(job_id)
                    assert record["state"] == "done", record
                    assert record["recovered"] is True
                # Exactly one execution per unique accepted job; the
                # first life ran zero (it was paused when it died).
                assert app2.pool.n_campaign_executions == 3
                stats = app2.stats()
                assert stats["recovery"]["n_requeued"] == 3
            finally:
                await app2.stop()

        asyncio.run(body())

    def test_recovery_requeue_bypasses_rate_limits(self, tmp_path):
        """Re-admitting journaled jobs must never re-toll the tenant:
        a rate-limited tenant's crashed backlog still comes back whole."""
        state = str(tmp_path / "state")
        tenants = {
            "slow": TenantConfig(name="slow", rate_per_s=1000.0, burst=4),
        }

        async def body():
            app = ServiceApp(ServiceConfig(
                state_dir=state, n_workers=1, tenants=tenants,
            ))
            await app.start(paused=True)
            client = InProcessClient(app)
            accepted_ids = []
            for seed in range(4):  # exactly the burst allowance
                status, body = await client.post_job(
                    _job(seed), tenant="slow"
                )
                assert status == 202
                accepted_ids.append(body["job_id"])
            await app.abandon()

            # Fresh token bucket in the new life -- yet replay must not
            # consume it, or legitimate new traffic would be starved.
            app2 = ServiceApp(ServiceConfig(
                state_dir=state, n_workers=1, tenants=tenants,
            ))
            await app2.start(paused=True)
            client2 = InProcessClient(app2)
            try:
                assert app2.recovery["n_requeued"] == 4
                for seed in range(100, 104):  # a full new burst still fits
                    status, _ = await client2.post_job(
                        _job(seed), tenant="slow"
                    )
                    assert status == 202
            finally:
                await app2.stop()

        asyncio.run(body())

    def test_sse_resumes_gap_free_across_restart(self, tmp_path):
        state = str(tmp_path / "state")

        async def body():
            app = ServiceApp(ServiceConfig(state_dir=state, n_workers=1))
            await app.start(paused=True)
            client = InProcessClient(app)
            status, accepted = await client.post_job(_job(7))
            assert status == 202
            job_id = accepted["job_id"]
            seen = [e.seq for e in app.jobs[job_id].events]
            assert seen == [0, 1, 2]  # accepted, admitted, queued
            await app.abandon()

            app2 = ServiceApp(ServiceConfig(state_dir=state, n_workers=1))
            await app2.start()
            client2 = InProcessClient(app2)
            try:
                await client2.wait_done(job_id)
                # Resume exactly where the pre-crash client stopped.
                resumed = await client2.sse_events(job_id, last_event_id=2)
                ids = [e["id"] for e in resumed]
                assert ids == list(range(3, 3 + len(ids)))
                assert resumed[-1]["event"] == "completed"
                assert any(e["event"] == "recovered" for e in resumed)

                # And a from-scratch replay is one contiguous stream.
                full = await client2.sse_events(job_id)
                assert [e["id"] for e in full] == \
                    list(range(len(full)))
                assert [e["id"] for e in full][-1] == ids[-1]
            finally:
                await app2.stop()

        asyncio.run(body())

    def test_tenant_byte_quota_survives_restart(self, tmp_path):
        state = str(tmp_path / "state")
        tenants = {
            "hog": TenantConfig(name="hog", max_result_bytes=8),
        }

        async def body():
            async with running_app(
                state_dir=state, n_workers=1, tenants=tenants,
            ) as (app, client):
                status, accepted = await client.post_job(
                    _job(1), tenant="hog"
                )
                assert status == 202
                await client.wait_done(accepted["job_id"])
                used = app.store.tenant_bytes("hog")
                assert used > 8

            async with running_app(
                state_dir=state, n_workers=1, tenants=tenants,
            ) as (app2, client2):
                # Rebuilt from the disk tier, not reset to zero.
                assert app2.store.tenant_bytes("hog") == used
                assert app2.recovery["n_recharged"] == 1
                status, rejected = await client2.post_job(
                    _job(2), tenant="hog"
                )
                assert status == 429
                assert rejected["error"] == "quota_exceeded"
                assert rejected["used_bytes"] == used

        asyncio.run(body())

    def test_compaction_bounds_segments_and_preserves_recovery(
        self, tmp_path
    ):
        state = str(tmp_path / "state")

        async def body():
            # Tiny segments force constant rollover; compaction (at
            # replay and at job completion) must keep the count bounded
            # without losing any terminal job.
            async with running_app(
                state_dir=state, n_workers=1,
                journal_segment_bytes=2048, compact_segments=2,
            ) as (app, client):
                for seed in range(12):
                    status, accepted = await client.post_job(_job(seed))
                    assert status in (200, 202)
                    if status == 202:
                        await client.wait_done(accepted["job_id"])
                assert len(app.journal.segments()) <= 4

            async with running_app(
                state_dir=state, n_workers=1,
                journal_segment_bytes=2048, compact_segments=2,
            ) as (app2, _):
                assert app2.recovery["n_restored"] == 12
                assert all(
                    job.state == "done" for job in app2.jobs.values()
                )

        asyncio.run(body())


class TestDrain:
    def test_draining_answers_structured_503(self, service_harness):
        async def body():
            async with service_harness(n_workers=1) as (app, client):
                status, accepted = await client.post_job(_job(1))
                assert status == 202
                app.begin_drain()

                status, headers, rejected = await client.request(
                    "POST", "/v1/jobs", body=_job(2),
                    headers={"X-Tenant": "public"},
                )
                assert status == 503
                assert rejected["error"] == "draining"
                assert headers["retry-after"] == "1"

                status, _, ready = await client.get("/readyz")
                assert status == 503 and ready["draining"] is True
                status, _, alive = await client.get("/healthz")
                assert status == 200 and alive["ok"] is True

                # Already-accepted work still finishes during the drain.
                record = await client.wait_done(accepted["job_id"])
                assert record["state"] == "done"

        asyncio.run(body())
