"""End-to-end deadline propagation: a late answer is a wrong answer.

``deadline_ms`` travels from request validation through admission (the
absolute deadline is stamped on the job in *wall* time, so it stays
meaningful across a restart), the queue (aged-out jobs fail fast with
``deadline_exceeded``/``queue_wait`` before touching a worker), and
both execution engines (the remaining budget clamps attempt timeouts
and backoff in the warm pool and the process-per-attempt runner).
"""

from __future__ import annotations

import asyncio

from repro.campaign import CampaignTask, run_campaign
from repro.campaign.warmpool import WarmPool


class FakeWall:
    def __init__(self, t: float = 1_000_000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _job(seed, deadline_ms=None):
    payload = {"kind": "analytic", "params": {"n": 8, "r": 2, "p": 2},
               "seed": seed}
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return payload


class TestValidation:
    def test_bad_deadlines_are_structured_400s(self, service_harness):
        async def body():
            async with service_harness(n_workers=1) as (_, client):
                for bad in (0, -5, "soon", 1.5, True):
                    status, rejected = await client.post_job(
                        _job(1, deadline_ms=bad)
                    )
                    assert status == 400, bad
                    assert rejected["field"] == "deadline_ms"

        asyncio.run(body())

    def test_deadline_survives_exact_fallback_rewrite(self, service_harness):
        async def body():
            async with service_harness(n_workers=1) as (app, client):
                payload = _job(1, deadline_ms=60_000)
                payload["params"] = {"n": 8, "r": 2, "p": 2}
                payload["qos"] = {"error_budget": 0.0}
                status, accepted = await client.post_job(payload)
                assert status == 202
                job = app.jobs[accepted["job_id"]]
                assert job.decision.mode == "exact_fallback"
                assert job.spec.deadline_ms == 60_000
                assert job.deadline_at is not None
                await client.wait_done(accepted["job_id"])

        asyncio.run(body())


class TestQueueWait:
    def test_aged_out_job_fails_fast_without_executing(
        self, service_harness
    ):
        wall = FakeWall()

        async def body():
            async with service_harness(
                n_workers=1, paused=True, wall_clock=wall,
            ) as (app, client):
                status, accepted = await client.post_job(
                    _job(1, deadline_ms=100)
                )
                assert status == 202
                job_id = accepted["job_id"]
                assert app.jobs[job_id].deadline_at == wall.t + 0.1

                wall.advance(1.0)  # the job ages out while queued
                app.pool.resume()
                record = await client.wait_done(job_id)
                assert record["state"] == "failed"
                assert record["failure"]["error"] == "deadline_exceeded"
                assert record["failure"]["stage"] == "queue_wait"
                assert app.pool.n_campaign_executions == 0

        asyncio.run(body())

    def test_live_deadline_completes_normally(self, service_harness):
        wall = FakeWall()

        async def body():
            async with service_harness(
                n_workers=1, wall_clock=wall,
            ) as (app, client):
                status, accepted = await client.post_job(
                    _job(2, deadline_ms=120_000)
                )
                assert status == 202
                record = await client.wait_done(accepted["job_id"])
                assert record["state"] == "done"
                assert record["deadline_at"] == wall.t + 120.0

        asyncio.run(body())


class TestExecutionBudget:
    def test_deadline_expiring_mid_execution_is_structured(
        self, service_harness
    ):
        """A hanging chaos task with a real-time deadline: the remaining
        budget clamps the attempt, and the resulting failure is wrapped
        as ``deadline_exceeded``/``execution`` with the task record."""

        async def body():
            async with service_harness(
                n_workers=1, allow_chaos=True,
            ) as (app, client):
                status, accepted = await client.post_job({
                    "kind": "chaos_hang",
                    "params": {"sleep_s": 30.0},
                    "timeout_s": 20.0,
                    "deadline_ms": 400,
                })
                assert status == 202
                record = await client.wait_done(accepted["job_id"])
                assert record["state"] == "failed"
                failure = record["failure"]
                assert failure["error"] == "deadline_exceeded"
                assert failure["stage"] == "execution"
                attempts = failure["task_failure"]["attempts"]
                assert attempts[0]["outcome"] == "timeout"

        asyncio.run(body())

    def test_warm_pool_budget_exhausts_before_leasing(self):
        pool = WarmPool(n_workers=1)
        task = CampaignTask(kind="chaos_ok", params={"x": 3})
        result, failure = pool.execute(task, max_attempts=3, deadline_s=0.0)
        assert result is None
        assert failure.attempts[0].outcome == "timeout"
        assert "deadline budget" in failure.attempts[0].message
        assert pool.n_spawned == 0  # refused without forking a worker

    def test_warm_pool_budget_caps_retries(self):
        with WarmPool(n_workers=1) as pool:
            task = CampaignTask(
                kind="chaos_error", params={"message": "boom"}
            )
            result, failure = pool.execute(
                task, max_attempts=5, backoff_base_s=5.0,
                backoff_max_s=5.0, deadline_s=0.5,
            )
        assert result is None
        # Far fewer than 5 attempts ran: the 0.5 s budget cannot absorb
        # 5 s backoffs, so retries are abandoned once it is spent.
        assert len(failure.attempts) < 5
        assert failure.attempts[-1].outcome == "timeout"

    def test_run_campaign_deadline_clamps_open_ended_timeout(self):
        result = run_campaign(
            [CampaignTask(kind="chaos_hang", params={"sleep_s": 30.0})],
            timeout_s=None,
            max_attempts=1,
            deadline_s=0.4,
            isolation="process",
        )
        assert not result.ok
        assert result.failures[0].attempts[0].outcome == "timeout"
