"""Loopback smoke test: the one test that uses a real TCP socket.

Everything else in this suite drives the HTTP layer through in-process
transport stubs; this test closes the loop by binding ``serve()`` on an
ephemeral loopback port and speaking actual bytes through
``asyncio.open_connection`` -- submit, poll, and stream a job exactly
as a curl client would.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.http import serve, sockname
from repro.service.sse import parse_stream

from .conftest import encode_request, parse_response, running_app


async def _roundtrip(host, port, request_bytes, timeout=30.0):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(request_bytes)
        await writer.drain()
        return await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        await writer.wait_closed()


def test_loopback_socket_serves_jobs():
    async def body():
        async with running_app(n_workers=1) as (app, _):
            server = await serve(app, host="127.0.0.1", port=0)
            host, port = sockname(server)
            try:
                raw = await _roundtrip(
                    host, port, encode_request("GET", "/v1/healthz")
                )
                status, _, payload = parse_response(raw)
                assert status == 200 and payload == {"ok": True}

                body_bytes = json.dumps({
                    "kind": "analytic",
                    "params": {"n": 8, "r": 2, "p": 2},
                    "qos": {"error_budget": 0.5},
                }).encode()
                raw = await _roundtrip(host, port, encode_request(
                    "POST", "/v1/jobs", body_bytes,
                    {"X-Tenant": "socketeer"},
                ))
                status, _, accepted = parse_response(raw)
                assert status == 202
                assert accepted["admission"]["mode"] == "approximate"
                job_id = accepted["job_id"]

                for _ in range(200):
                    raw = await _roundtrip(host, port, encode_request(
                        "GET", f"/v1/jobs/{job_id}"
                    ))
                    status, _, record = parse_response(raw)
                    assert status == 200
                    if record["state"] in ("done", "failed"):
                        break
                    await asyncio.sleep(0.05)
                assert record["state"] == "done"
                assert record["result"]["error_rate"] == 0.1875
                assert record["tenant"] == "socketeer"

                # SSE over the socket: replay ends with "completed".
                raw = await _roundtrip(host, port, encode_request(
                    "GET", f"/v1/jobs/{job_id}/events"
                ))
                head, _, stream = raw.partition(b"\r\n\r\n")
                assert b"text/event-stream" in head
                events = parse_stream(stream)
                assert events[-1]["event"] == "completed"
            finally:
                server.close()
                await server.wait_closed()

    asyncio.run(body())
