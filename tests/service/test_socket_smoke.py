"""Loopback smoke test: the one test that uses a real TCP socket.

Everything else in this suite drives the HTTP layer through in-process
transport stubs; this test closes the loop by binding ``serve()`` on an
ephemeral loopback port and speaking actual bytes through
``asyncio.open_connection`` -- submit, poll, and stream a job exactly
as a curl client would.  The whole request/poll conversation happens
over **one persistent connection** (HTTP/1.1 keep-alive), reading each
response by its ``Content-Length`` frame; only the SSE stream takes a
second connection, which the server terminates after the final event.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.http import serve, sockname
from repro.service.sse import parse_stream

from .conftest import encode_request, parse_response, running_app


async def _read_framed(reader, timeout=30.0):
    """One keep-alive response off the wire: head + Content-Length body."""
    head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout)
    length = 0
    for line in head.decode("latin-1").split("\r\n"):
        if line.lower().startswith("content-length:"):
            length = int(line.split(":", 1)[1])
    body = await asyncio.wait_for(reader.readexactly(length), timeout)
    return head + body


async def _request(reader, writer, request_bytes, timeout=30.0):
    writer.write(request_bytes)
    await writer.drain()
    return await _read_framed(reader, timeout)


def test_loopback_socket_serves_jobs():
    async def body():
        async with running_app(n_workers=1) as (app, _):
            server = await serve(app, host="127.0.0.1", port=0)
            host, port = sockname(server)
            reader, writer = await asyncio.open_connection(host, port)
            try:
                raw = await _request(
                    reader, writer, encode_request("GET", "/v1/healthz")
                )
                status, headers, payload = parse_response(raw)
                assert status == 200 and payload == {"ok": True}
                assert headers["connection"] == "keep-alive"

                body_bytes = json.dumps({
                    "kind": "analytic",
                    "params": {"n": 8, "r": 2, "p": 2},
                    "qos": {"error_budget": 0.5},
                }).encode()
                raw = await _request(reader, writer, encode_request(
                    "POST", "/v1/jobs", body_bytes,
                    {"X-Tenant": "socketeer"},
                ))
                status, _, accepted = parse_response(raw)
                assert status == 202
                assert accepted["admission"]["mode"] == "approximate"
                job_id = accepted["job_id"]

                # Poll the job over the same connection until terminal.
                for _ in range(200):
                    raw = await _request(reader, writer, encode_request(
                        "GET", f"/v1/jobs/{job_id}"
                    ))
                    status, _, record = parse_response(raw)
                    assert status == 200
                    if record["state"] in ("done", "failed"):
                        break
                    await asyncio.sleep(0.05)
                assert record["state"] == "done"
                assert record["result"]["error_rate"] == 0.1875
                assert record["tenant"] == "socketeer"
            finally:
                writer.close()
                await writer.wait_closed()

            # SSE takes its own connection and the server closes it
            # after the terminal event: read() to EOF terminates.
            sse_reader, sse_writer = await asyncio.open_connection(host, port)
            try:
                sse_writer.write(encode_request(
                    "GET", f"/v1/jobs/{job_id}/events"
                ))
                await sse_writer.drain()
                raw = await asyncio.wait_for(sse_reader.read(), 30.0)
                head, _, stream = raw.partition(b"\r\n\r\n")
                assert b"text/event-stream" in head
                events = parse_stream(stream)
                assert events[-1]["event"] == "completed"
            finally:
                sse_writer.close()
                await sse_writer.wait_closed()
            server.close()
            await server.wait_closed()

    asyncio.run(body())
