"""Property suite for the durable job journal.

The journal's contract is blunt: **whatever made it to disk replays to
a consistent job table** -- no accepted job lost, none duplicated, and
no event history fabricated past a corruption hole.  Hypothesis drives
arbitrary admit/event interleavings (with duplicated records, as
compaction overlap produces), torn final records (what a ``kill -9``
mid-append leaves), and CRC-corrupted lines anywhere in the stream;
the replayed table must stay exactly derivable from the intact prefix
of each job's history.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.journal import (
    JobJournal,
    decode_record,
    encode_record,
)


def _spec(job):
    return {"kind": "analytic", "params": {"n": 8, "r": 2, "p": 2},
            "seed": job}


def _write(journal, ops):
    """Apply one op stream: ("admit", j) and ("event", j, seq, name)."""
    for op in ops:
        if op[0] == "admit":
            job = op[1]
            journal.log_admit(
                f"j{job:08d}", f"tenant-{job % 3}", _spec(job),
                key=f"key-{job}", decision={"mode": "as_declared"},
                deadline_at=None,
            )
        else:
            _, job, seq, name = op
            journal.log_event(f"j{job:08d}", seq, name, {"seq": seq})


@st.composite
def op_streams(draw):
    """Admit-then-events per job, plus a few duplicated records."""
    n_jobs = draw(st.integers(min_value=1, max_value=6))
    ops = []
    per_job_events = {}
    for job in range(n_jobs):
        ops.append(("admit", job))
        n_events = draw(st.integers(min_value=0, max_value=5))
        per_job_events[job] = n_events
        for seq in range(n_events):
            name = "completed" if (
                seq == n_events - 1 and draw(st.booleans())
            ) else "progress"
            ops.append(("event", job, seq, name))
    n_dups = draw(st.integers(min_value=0, max_value=4))
    for _ in range(n_dups):
        ops.append(ops[draw(st.integers(0, len(ops) - 1))])
    return ops, per_job_events, n_dups


class TestRecordCodec:
    @given(st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(), st.text(max_size=16), st.none()),
        max_size=6,
    ))
    def test_encode_decode_round_trip(self, record):
        assert decode_record(encode_record(record)) == record

    @given(st.binary(max_size=64))
    def test_decode_never_raises_on_garbage(self, blob):
        decode_record(blob)  # None or a dict; never an exception

    @given(st.dictionaries(st.text(min_size=1, max_size=4),
                           st.integers(), max_size=4),
           st.integers(min_value=0, max_value=200))
    def test_any_single_byte_flip_is_detected_or_equal(self, record, pos):
        line = encode_record(record)
        pos %= len(line) - 1  # keep the trailing newline intact
        flipped = bytes(
            b ^ 0x01 if i == pos else b for i, b in enumerate(line)
        )
        decoded = decode_record(flipped)
        assert decoded is None or decoded == record


class TestReplayProperties:
    @settings(max_examples=40, deadline=None)
    @given(op_streams(), st.integers(min_value=2_000, max_value=20_000))
    def test_round_trip_no_loss_no_duplication(self, tmp_path_factory,
                                               stream, segment_bytes):
        ops, per_job_events, n_dups = stream
        directory = tmp_path_factory.mktemp("journal")
        journal = JobJournal(directory, segment_bytes=segment_bytes,
                             fsync=False)
        _write(journal, ops)
        journal.close()

        report = JobJournal(directory, fsync=False).replay()
        assert set(report.jobs) == {
            f"j{job:08d}" for job in per_job_events
        }
        for job, n_events in per_job_events.items():
            replayed = report.jobs[f"j{job:08d}"]
            assert [seq for seq, _, _ in replayed.events] == \
                list(range(n_events))
            assert replayed.spec == _spec(job)
        assert report.n_duplicate == n_dups
        assert report.n_corrupt == 0 and report.n_torn == 0

    @settings(max_examples=25, deadline=None)
    @given(op_streams(), st.integers(min_value=1, max_value=120))
    def test_torn_final_record_is_tolerated(self, tmp_path_factory,
                                            stream, cut):
        """A kill mid-append tears the last line; everything before
        replays intact and the tear is counted, not fatal."""
        ops, per_job_events, _ = stream
        directory = tmp_path_factory.mktemp("journal")
        journal = JobJournal(directory, fsync=False)
        _write(journal, ops)
        # One more admission, torn mid-line by the "crash".
        journal.log_admit("jtorn", "t", _spec(0), key="k",
                          decision={}, deadline_at=None)
        journal.abandon()
        segment = journal.segments()[-1]
        raw = segment.read_bytes()
        last_line_at = raw.rstrip(b"\n").rfind(b"\n") + 1
        cut_at = min(last_line_at + cut, len(raw) - 1)
        segment.write_bytes(raw[:cut_at])

        report = JobJournal(directory, fsync=False).replay()
        survivors = {f"j{job:08d}" for job in per_job_events}
        assert survivors <= set(report.jobs) <= survivors | {"jtorn"}
        assert report.n_corrupt == 0  # a torn tail is not "corruption"

    @settings(max_examples=25, deadline=None)
    @given(op_streams(), st.data())
    def test_corrupt_lines_never_fabricate_history(self, tmp_path_factory,
                                                   stream, data):
        """Flip a byte in arbitrary mid-stream lines: replay drops the
        damaged records, trims each job's events to the contiguous
        prefix, and never raises or invents state."""
        ops, per_job_events, n_dups = stream
        directory = tmp_path_factory.mktemp("journal")
        journal = JobJournal(directory, fsync=False)
        _write(journal, ops)
        journal.close()
        segment = journal.segments()[0]
        lines = segment.read_bytes().split(b"\n")
        body = [line for line in lines if line]
        n_corrupt = data.draw(
            st.integers(min_value=1, max_value=min(3, len(body)))
        )
        victims = data.draw(st.lists(
            st.integers(0, len(body) - 1), min_size=n_corrupt,
            max_size=n_corrupt, unique=True,
        ))
        for index in victims:
            # First CRC nibble becomes non-hex: an unambiguous bad line.
            body[index] = b"!" + body[index][1:]
        segment.write_bytes(b"\n".join(body) + b"\n")

        report = JobJournal(directory, fsync=False).replay()
        for job_id, replayed in report.jobs.items():
            seqs = [seq for seq, _, _ in replayed.events]
            assert seqs == list(range(len(seqs))), \
                f"{job_id}: non-contiguous events {seqs}"
        assert len(report.jobs) <= len(per_job_events)

    @settings(max_examples=20, deadline=None)
    @given(op_streams())
    def test_compaction_preserves_the_replayed_table(self, tmp_path_factory,
                                                     stream):
        ops, _, _ = stream
        directory = tmp_path_factory.mktemp("journal")
        journal = JobJournal(directory, segment_bytes=2048, fsync=False)
        _write(journal, ops)
        journal.close()

        journal = JobJournal(directory, fsync=False)
        before = journal.replay()
        journal.compact(before.jobs.values())
        journal.close()
        after = JobJournal(directory, fsync=False).replay()

        assert set(after.jobs) == set(before.jobs)
        for job_id in before.jobs:
            assert after.jobs[job_id].events == before.jobs[job_id].events
            assert after.jobs[job_id].spec == before.jobs[job_id].spec
        assert len(JobJournal(directory, fsync=False).segments()) == 1


class TestSegmentRollover:
    def test_many_records_roll_segments_and_replay_whole(self, tmp_path):
        journal = JobJournal(tmp_path, segment_bytes=1024, fsync=False)
        for job in range(50):
            journal.log_admit(f"j{job:08d}", "t", _spec(job),
                              key=f"k{job}", decision={}, deadline_at=None)
            journal.log_event(f"j{job:08d}", 0, "queued", {})
        journal.close()
        assert len(journal.segments()) > 1

        report = JobJournal(tmp_path, fsync=False).replay()
        assert len(report.jobs) == 50
        assert report.n_records == 100
