"""Property suite: QoS admission decisions are guarantees, not bets.

The admission controller (:func:`repro.service.admission.negotiate`)
admits an approximate block-adder configuration exactly when the
analytic PMF engine predicts its error metric within the declared
budget.  Because the engine is exact, that promise must survive the
strongest possible cross-check: enumerating *every* operand pair.

Hypothesis drives random homogeneous GeAr and heterogeneous segment
configurations (widths kept <= 8 so exhaustive enumeration stays in
the tens of thousands of pairs) against random budgets and metrics:

* ``mode == "approximate"``  => the exhaustively measured metric meets
  the budget;
* ``mode == "exact_fallback"`` => the rewritten job is the exact
  single-block twin (measured error identically zero) and the original
  configuration genuinely violated the budget;
* negotiation never refuses a valid configuration -- a declared budget
  is always satisfiable.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors.analytic import (
    config_from_params,
    exhaustive_error_pmf,
)
from repro.service.admission import negotiate
from repro.service.schemas import QOS_METRICS, validate_job_request

MAX_WIDTH = 8  # 2^(2*8) = 65536 operand pairs: exhaustive stays fast


@st.composite
def gear_params(draw):
    """Valid homogeneous GeAr ``{"n", "r", "p"}`` params, width <= 8."""
    r = draw(st.integers(1, 4))
    p = draw(st.integers(0, 3))
    blocks = draw(st.integers(0, 3))
    n = (r + p) + blocks * r
    if n > MAX_WIDTH or n < 1:
        n = r + p if 0 < r + p <= MAX_WIDTH else r
    return {"n": n, "r": r, "p": p}


@st.composite
def hetero_params(draw):
    """Valid heterogeneous ``{"segments": [[r, p], ...]}``, width <= 8."""
    first_r = draw(st.integers(1, 4))
    segments = [[first_r, 0]]
    base = first_r
    for _ in range(draw(st.integers(0, 2))):
        r = draw(st.integers(1, 3))
        if base + r > MAX_WIDTH:
            break
        p = draw(st.integers(0, min(base, 3)))
        segments.append([r, p])
        base += r
    return {"segments": segments}


params_strategy = st.one_of(gear_params(), hetero_params())
budget_strategy = st.one_of(
    st.just(0.0),
    st.just(1.0),
    st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
)


def measured_metrics(params):
    """Ground-truth metrics of ``params`` by full operand enumeration."""
    config = config_from_params(params)
    pmf = exhaustive_error_pmf(config)
    n = config.n
    return config, {
        "error_rate": pmf.error_rate,
        "med": pmf.mean_abs,
        "nmed": pmf.mean_abs / float((1 << (n + 1)) - 2),
    }


@settings(max_examples=60, deadline=None)
@given(
    params=params_strategy,
    budget=budget_strategy,
    metric=st.sampled_from(QOS_METRICS),
)
def test_admission_decision_is_exhaustively_sound(params, budget, metric):
    """Admitted approximate => measured metric within budget; fallback
    => exact twin with zero error and an honest violation."""
    spec = validate_job_request({
        "kind": "analytic",
        "params": params,
        "qos": {"error_budget": budget, "metric": metric},
    })
    decision = negotiate(spec)  # never raises for valid adder params
    assert decision.mode in ("approximate", "exact_fallback")
    assert decision.prediction_us > 0.0

    admitted_config, admitted = measured_metrics(decision.spec.params)

    if decision.mode == "approximate":
        # The admitted configuration is the declared one, and the
        # exhaustively measured metric honors the budget.
        assert decision.spec.params == spec.params
        assert admitted[metric] <= budget + 1e-9, (
            f"admitted {params} at budget {budget} but measured "
            f"{metric}={admitted[metric]}"
        )
    else:
        # The declared configuration genuinely violates the budget...
        _, declared = measured_metrics(spec.params)
        assert declared[metric] > budget - 1e-9
        # ...and the rewrite is the exact single-block twin.
        assert admitted_config.is_exact
        assert admitted["error_rate"] == 0.0
        assert admitted["med"] == 0.0
        assert admitted_config.n == config_from_params(spec.params).n


@settings(max_examples=60, deadline=None)
@given(params=params_strategy)
def test_analytic_prediction_matches_exhaustive(params):
    """The admission-time prediction equals ground truth (it is the
    exact PMF engine, so agreement is equality, not approximation)."""
    from repro.errors.analytic import predict_error_statistics

    predicted = predict_error_statistics(params)
    _, measured = measured_metrics(params)
    assert abs(predicted["error_rate"] - measured["error_rate"]) < 1e-12
    assert abs(predicted["med"] - measured["med"]) < 1e-9
    assert abs(predicted["nmed"] - measured["nmed"]) < 1e-12


@settings(max_examples=40, deadline=None)
@given(params=params_strategy, budget=budget_strategy)
def test_negotiation_never_refuses_valid_params(params, budget):
    """A declared budget is always satisfiable: degrade, never refuse."""
    spec = validate_job_request({
        "kind": "analytic",
        "params": params,
        "qos": {"error_budget": budget},
    })
    decision = negotiate(spec)
    assert decision.spec.kind == spec.kind
    assert decision.spec.seed == spec.seed
    if budget >= 1.0:
        # error_rate can never exceed 1: a full budget admits anything.
        assert decision.mode == "approximate"
