"""Deterministic in-process harness for the service test suite.

No real sockets (except one loopback smoke test): requests are raw
HTTP bytes fed into an :class:`asyncio.StreamReader`, the connection
handler writes into a buffer-backed transport stub, and the response is
parsed back.  Every handler, framing, and SSE path is exercised exactly
as over TCP, but scheduling stays single-loop deterministic.

Tests drive coroutines with plain ``asyncio.run`` (no pytest-asyncio
dependency); the ``service_harness`` fixture hands them an async
context manager that builds, starts, and tears down a
:class:`~repro.service.app.ServiceApp`.
"""

from __future__ import annotations

import asyncio
import json
from contextlib import asynccontextmanager
from typing import Any, Dict, List, Optional, Tuple

import pytest

from repro.service.app import ServiceApp, ServiceConfig
from repro.service.http import handle_connection
from repro.service.sse import parse_stream


class StubWriter:
    """Transport stub: collects everything a handler writes."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self.closed = False

    def write(self, data: bytes) -> None:
        self.buffer.extend(data)

    async def drain(self) -> None:
        await asyncio.sleep(0)  # a real writer yields; so does the stub

    def close(self) -> None:
        self.closed = True

    async def wait_closed(self) -> None:
        return None


def encode_request(
    method: str,
    path: str,
    body: Optional[bytes] = None,
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    head = [f"{method} {path} HTTP/1.1", "Host: testserver"]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    if body:
        head.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("utf-8") + (body or b"")


def parse_response(raw: bytes) -> Tuple[int, Dict[str, str], Any]:
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    payload: Any = body
    if headers.get("content-type", "").startswith("application/json") and body:
        payload = json.loads(body)
    return status, headers, payload


class InProcessClient:
    """Drives a :class:`ServiceApp` through the HTTP layer, sans sockets."""

    def __init__(self, app: ServiceApp) -> None:
        self.app = app

    async def raw(self, request_bytes: bytes) -> bytes:
        reader = asyncio.StreamReader()
        reader.feed_data(request_bytes)
        reader.feed_eof()
        writer = StubWriter()
        await handle_connection(self.app, reader, writer)
        assert writer.closed, "handler must close the connection"
        return bytes(writer.buffer)

    async def request(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], Any]:
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        raw = await self.raw(encode_request(method, path, payload, headers))
        return parse_response(raw)

    async def get(self, path: str, **kw) -> Tuple[int, Dict[str, str], Any]:
        return await self.request("GET", path, **kw)

    async def post_job(
        self, payload: Dict[str, Any], tenant: str = "public"
    ) -> Tuple[int, Any]:
        status, _, body = await self.request(
            "POST", "/v1/jobs", body=payload, headers={"X-Tenant": tenant}
        )
        return status, body

    async def sse_events(
        self, job_id: str, last_event_id: Optional[int] = None,
        timeout: float = 30.0,
    ) -> List[Dict[str, Any]]:
        """Collect a job's full SSE stream (terminates on completed/failed)."""
        headers = {}
        if last_event_id is not None:
            headers["Last-Event-ID"] = str(last_event_id)
        raw = await asyncio.wait_for(
            self.raw(encode_request(
                "GET", f"/v1/jobs/{job_id}/events", None, headers
            )),
            timeout,
        )
        head, _, stream = raw.partition(b"\r\n\r\n")
        assert b"200" in head.split(b"\r\n")[0], head
        assert b"text/event-stream" in head, head
        return parse_stream(stream)

    async def wait_done(self, job_id: str, timeout: float = 30.0) -> Any:
        """Await a job's terminal state via its done event; returns record."""
        job = self.app.jobs[job_id]
        await asyncio.wait_for(job.done.wait(), timeout)
        return job.to_record()


@asynccontextmanager
async def running_app(**overrides):
    """Build, start, and reliably tear down a ServiceApp + client."""
    paused = overrides.pop("paused", False)
    config = ServiceConfig(**overrides)
    app = ServiceApp(config)
    await app.start(paused=paused)
    try:
        yield app, InProcessClient(app)
    finally:
        await app.stop()


@pytest.fixture
def service_harness():
    """The async app context manager, injectable into asyncio.run bodies."""
    return running_app
