"""Tenant result-byte quotas and the draining shutdown path.

Two resource-governance behaviors added alongside the warm engine:

* a tenant whose stored results exceed its ``max_result_bytes`` budget
  gets further submissions answered with a structured 429
  ``quota_exceeded`` -- while cache hits (which add no bytes) and other
  tenants keep working;
* :meth:`WorkerPool.stop` drains: in-flight jobs get a bounded grace
  period to finish, and every job still queued or running afterwards is
  failed with a terminal ``shutdown`` event, so no SSE subscriber is
  ever left on a silent stream.
"""

from __future__ import annotations

import asyncio

from repro.service.app import ServiceApp, ServiceConfig
from repro.service.tenants import TenantConfig

from .conftest import InProcessClient


def _job(seed, n=8):
    return {"kind": "analytic", "params": {"n": n, "r": 2, "p": 2},
            "seed": seed}


class TestResultByteQuota:
    def test_over_quota_tenant_gets_structured_429(self, service_harness):
        async def body():
            async with service_harness(
                n_workers=1,
                tenants={"hog": TenantConfig(name="hog", max_result_bytes=8)},
            ) as (app, client):
                status, accepted = await client.post_job(
                    _job(1), tenant="hog"
                )
                assert status == 202
                await client.wait_done(accepted["job_id"])
                used = app.store.tenant_bytes("hog")
                assert used > 8  # one analytic record blows the tiny budget

                status, rejected = await client.post_job(
                    _job(2), tenant="hog"
                )
                assert status == 429
                assert rejected == {
                    "error": "quota_exceeded",
                    "tenant": "hog",
                    "used_bytes": used,
                    "max_result_bytes": 8,
                }

                # Cache hits add no bytes, so replays still answer 200.
                status, replay = await client.post_job(_job(1), tenant="hog")
                assert status == 200
                assert replay["served_from"] == "cache"

                # Other tenants are untouched by the hog's quota.
                status, other = await client.post_job(
                    _job(3), tenant="polite"
                )
                assert status == 202
                await client.wait_done(other["job_id"])

                stats = app.stats()
                assert stats["store"]["bytes_by_tenant"]["hog"] == used
                assert stats["store"]["bytes_by_tenant"]["polite"] > 0

        asyncio.run(body())

    def test_unlimited_tenant_is_never_quota_limited(self, service_harness):
        async def body():
            async with service_harness(n_workers=1) as (app, client):
                for seed in range(5):
                    status, accepted = await client.post_job(_job(seed))
                    assert status == 202
                    await client.wait_done(accepted["job_id"])
                assert app.store.tenant_bytes("public") > 0

        asyncio.run(body())


class TestDrainingShutdown:
    def test_in_flight_job_finishes_within_grace(self):
        async def body():
            app = ServiceApp(ServiceConfig(
                n_workers=1, allow_chaos=True, shutdown_grace_s=10.0,
            ))
            await app.start()
            client = InProcessClient(app)
            status, accepted = await client.post_job({
                "kind": "chaos_hang", "params": {"sleep_s": 0.3},
                "timeout_s": 10.0,
            })
            assert status == 202
            job = app.jobs[accepted["job_id"]]
            # Let the worker pop the job so it is genuinely in flight.
            while job.state != "running":
                await asyncio.sleep(0.01)
            await app.stop()
            assert job.state == "done"
            assert job.result == {"slept": True}

        asyncio.run(body())

    def test_queued_and_overdue_jobs_fail_with_terminal_shutdown(self):
        async def body():
            app = ServiceApp(ServiceConfig(
                n_workers=1, allow_chaos=True, shutdown_grace_s=0.2,
            ))
            await app.start()
            client = InProcessClient(app)
            status, wedged = await client.post_job({
                "kind": "chaos_hang", "params": {"sleep_s": 60.0},
                "timeout_s": 2.0,
            })
            assert status == 202
            stuck = app.jobs[wedged["job_id"]]
            while stuck.state != "running":
                await asyncio.sleep(0.01)
            queued = []
            for seed in range(3):
                status, accepted = await client.post_job(_job(seed))
                assert status == 202
                queued.append(app.jobs[accepted["job_id"]])

            await app.stop()

            # Still-queued jobs: terminal shutdown failure + accounting.
            for job in queued:
                assert job.state == "failed"
                assert job.failure["error"] == "shutdown"
                assert "before the job ran" in job.failure["message"]
                assert job.job_id in app.completion_order
                events = await client.sse_events(job.job_id, timeout=5.0)
                assert events[-1]["event"] == "failed"

            # The wedged in-flight job outlived the grace period: its
            # stream still terminates instead of dangling.
            assert stuck.state == "failed"
            assert stuck.failure["error"] == "shutdown"
            assert "during execution" in stuck.failure["message"]
            events = await client.sse_events(stuck.job_id, timeout=5.0)
            assert events[-1]["event"] == "failed"

        asyncio.run(body())

    def test_stop_is_idempotent(self):
        async def body():
            app = ServiceApp(ServiceConfig(n_workers=1))
            await app.start()
            await app.stop()
            await app.stop()

        asyncio.run(body())
