"""Brownout ladder unit tests, fully deterministic under a fake clock.

The controller must escalate only on a *sustained* SLO breach (one
hysteresis window per level), degrade admissions according to its
level -- cheaper approximate configurations first, exact single-block
twins second, load shedding last -- recover one level per sustained-ok
window, and surface every transition in ``/v1/stats``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.admission import negotiate
from repro.service.brownout import (
    BrownoutController,
    LEVELS,
    ShedLoad,
    SloConfig,
)
from repro.service.schemas import JobSpec, QosSpec


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> "FakeClock":
        self.t += dt
        return self


def _controller(**slo_overrides):
    slo = SloConfig(**{
        "target_latency_s": 1.0,
        "max_queue_depth": 4,
        "escalate_after_s": 1.0,
        "recover_after_s": 2.0,
        **slo_overrides,
    })
    clock = FakeClock()
    return BrownoutController(slo=slo, clock=clock), clock


class TestEscalation:
    def test_momentary_spike_never_escalates(self):
        ctrl, clock = _controller()
        ctrl.tick(queue_depth=100)  # breach starts
        clock.advance(0.5)
        ctrl.tick(queue_depth=0)    # breach clears inside the window
        clock.advance(10.0)
        ctrl.tick(queue_depth=100)  # a fresh breach starts a fresh timer
        assert ctrl.level == 0
        assert ctrl.transitions == []

    def test_sustained_breach_climbs_one_level_per_window(self):
        ctrl, clock = _controller()
        ctrl.tick(queue_depth=100)
        for expected_level in (1, 2, 3):
            clock.advance(1.1)
            ctrl.tick(queue_depth=100)
            assert ctrl.level == expected_level
        clock.advance(1.1)
        ctrl.tick(queue_depth=100)
        assert ctrl.level == 3  # the ladder tops out at shed
        assert [t["to"] for t in ctrl.transitions] == \
            ["cheaper_approx", "exact_twin", "shed"]
        assert all("queue depth" in t["reason"] for t in ctrl.transitions)

    def test_latency_ewma_breach_also_escalates(self):
        ctrl, clock = _controller()
        for _ in range(8):
            ctrl.observe_latency("analytic", 5.0)
        ctrl.tick(queue_depth=0)
        clock.advance(1.1)
        ctrl.tick(queue_depth=0)
        assert ctrl.level == 1
        assert "latency EWMA[analytic]" in ctrl.transitions[0]["reason"]

    def test_ewma_smooths_single_outliers(self):
        ctrl, _ = _controller(ewma_alpha=0.25)
        for _ in range(20):
            ctrl.observe_latency("analytic", 0.1)
        ctrl.observe_latency("analytic", 30.0)  # one pathological job
        ctrl.observe_latency("analytic", 0.1)
        # One outlier lifts the EWMA but a healthy stream pulls it back.
        for _ in range(30):
            ctrl.observe_latency("analytic", 0.1)
        assert ctrl._latency_ewma["analytic"] < 1.0


class TestRecovery:
    def test_recovers_one_level_per_sustained_ok_window(self):
        ctrl, clock = _controller()
        ctrl.tick(queue_depth=100)
        for _ in range(2):
            clock.advance(1.1)
            ctrl.tick(queue_depth=100)
        assert ctrl.level == 2

        ctrl.tick(queue_depth=0)       # ok: recovery timer arms
        clock.advance(2.1)
        ctrl.tick(queue_depth=0)
        assert ctrl.level == 1
        clock.advance(2.1)
        ctrl.tick(queue_depth=0)
        assert ctrl.level == 0
        assert [t["to"] for t in ctrl.transitions[-2:]] == \
            ["cheaper_approx", "normal"]

    def test_recovery_needs_the_margin_not_just_no_breach(self):
        """Queue depth inside the hysteresis band (no breach, but above
        the recovery margin) holds the current level forever."""
        ctrl, clock = _controller(max_queue_depth=10, recover_margin=0.5)
        ctrl.tick(queue_depth=100)
        clock.advance(1.1)
        ctrl.tick(queue_depth=100)
        assert ctrl.level == 1
        for _ in range(10):
            clock.advance(5.0)
            ctrl.tick(queue_depth=8)  # 8 <= 10 (no breach) but > 10*0.5
        assert ctrl.level == 1


def _decision(kind="analytic", params=None, **spec_kw):
    spec = JobSpec(kind=kind,
                   params=params or {"n": 8, "r": 2, "p": 2}, **spec_kw)
    return negotiate(spec)


class TestApply:
    def test_level0_passes_through_untouched(self):
        ctrl, _ = _controller()
        decision = _decision()
        applied, stage = ctrl.apply(decision)
        assert applied is decision and stage is None

    def test_level1_clamps_samples_and_retries(self):
        ctrl, _ = _controller(brownout_samples=1000)
        ctrl.level = 1
        decision = _decision(
            kind="gear_mc_chunk",
            params={"n": 8, "r": 2, "p": 2, "n_samples": 100_000},
            max_attempts=3,
        )
        applied, stage = ctrl.apply(decision)
        assert stage == "cheaper_approx"
        assert applied.spec.params["n_samples"] == 1000
        assert applied.spec.max_attempts == 1
        assert applied.spec.params["r"] == 2  # level 1 keeps the config
        assert "[brownout: cheaper_approx]" in applied.detail
        assert ctrl.n_degraded == 1

    def test_level2_rewrites_block_adders_to_exact_twin(self):
        ctrl, _ = _controller()
        ctrl.level = 2
        applied, stage = ctrl.apply(_decision(
            params={"n": 8, "r": 2, "p": 2},
        ))
        assert stage == "exact_twin"
        assert applied.spec.params == {"n": 8, "r": 8, "p": 0}

        applied, stage = ctrl.apply(_decision(
            params={"segments": [[4, 2], [4, 2]]},
        ))
        assert stage == "exact_twin"
        assert applied.spec.params == {"n": 8, "r": 8, "p": 0}

    def test_level2_leaves_unpredictable_kinds_alone(self):
        ctrl, _ = _controller()
        ctrl.level = 2
        decision = _decision(kind="ripple_adder",
                             params={"width": 8, "approx_lsbs": 2})
        applied, stage = ctrl.apply(decision)
        assert applied is decision and stage is None  # nothing to degrade

    def test_level2_exact_twin_is_already_exact_noop(self):
        ctrl, _ = _controller()
        ctrl.level = 2
        decision = _decision(params={"n": 8, "r": 8, "p": 0})
        applied, stage = ctrl.apply(decision)
        assert applied is decision and stage is None

    def test_level3_sheds_with_retry_after(self):
        ctrl, _ = _controller(shed_retry_after_s=2.5)
        ctrl.level = 3
        with pytest.raises(ShedLoad) as exc:
            ctrl.apply(_decision())
        assert exc.value.retry_after_s == 2.5
        assert ctrl.n_shed == 1

    def test_disabled_controller_never_interferes(self):
        ctrl = BrownoutController(enabled=False, clock=FakeClock())
        ctrl.tick(queue_depth=10**6)
        assert ctrl.level == 0
        ctrl.level = 3  # even forced, apply is a no-op when disabled
        decision = _decision()
        applied, stage = ctrl.apply(decision)
        assert applied is decision and stage is None

    def test_degraded_admission_still_honors_qos_mode(self):
        """Brownout composes with QoS admission: an exact_fallback
        decision keeps its mode, only the spec degrades further."""
        ctrl, _ = _controller()
        ctrl.level = 2
        decision = _decision(
            params={"n": 8, "r": 2, "p": 2},
            qos=QosSpec(error_budget=0.0),
        )
        assert decision.mode == "exact_fallback"
        applied, stage = ctrl.apply(decision)
        assert applied.mode == "exact_fallback"
        assert applied.spec.params["p"] == 0


class TestServiceIntegration:
    def test_ladder_walks_and_transitions_surface_in_stats(
        self, service_harness
    ):
        """Drive a paused service into overload through real admissions:
        the ladder climbs to shed, POSTs answer 503 with Retry-After,
        and /v1/stats exposes the transition log."""
        slo = SloConfig(target_latency_s=60.0, max_queue_depth=1,
                        escalate_after_s=0.5, recover_after_s=5.0)
        clock = FakeClock()

        def job(seed):
            return {"kind": "analytic", "params": {"n": 8, "r": 2, "p": 2},
                    "seed": seed}

        async def body():
            async with service_harness(
                n_workers=1, paused=True, slo=slo, clock=clock,
            ) as (app, client):
                for seed in range(3):  # queue depth past the SLO
                    status, _ = await client.post_job(job(seed))
                    assert status == 202
                statuses = []
                for seed in range(3, 10):
                    clock.advance(0.6)
                    status, body = await client.post_job(job(seed))
                    statuses.append(status)
                    if status == 503:
                        assert body["error"] == "brownout_shed"
                        break
                assert statuses[-1] == 503, statuses
                assert app.brownout.level == 3

                _, headers, shed = await client.request(
                    "POST", "/v1/jobs", body=job(99),
                    headers={"X-Tenant": "public"},
                )
                assert "retry-after" in headers
                assert shed["error"] == "brownout_shed"

                status, _, stats = await client.get("/v1/stats")
                assert status == 200
                assert stats["brownout"]["stage"] == "shed"
                assert [t["to"] for t in stats["brownout"]["transitions"]] \
                    == list(LEVELS[1:])
                assert stats["brownout"]["n_shed"] >= 1

                # Degraded-before-shed: a level-2 admission rewrote an
                # approximate config to its exact twin on the way up.
                degraded = [
                    j for j in app.jobs.values()
                    if any(e.event == "brownout" for e in j.events)
                ]
                assert degraded, "no admission was degraded before shedding"
                assert all(
                    j.spec.params["p"] == 0 and
                    j.spec.params["r"] == j.spec.params["n"]
                    for j in degraded
                    if any(e.data.get("stage") == "exact_twin"
                           for e in j.events if e.event == "brownout")
                )

        asyncio.run(body())
