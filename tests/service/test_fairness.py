"""Concurrency tests: weighted-fair scheduling, dedupe, SSE replay.

These are the acceptance tests of the service tentpole: 32 concurrent
clients across 4 tenant classes submit against a *paused* worker pool
(so admission order is pinned), the pool is then resumed with a single
worker, and the completion order must follow the start-time fair
schedule -- a weight-4 tenant drains four jobs for every weight-1
tenant's one.  Everything is seeded and single-loop deterministic.
"""

from __future__ import annotations

import asyncio

from repro.service.tenants import TenantConfig

TENANTS = {
    "gold": TenantConfig(name="gold", weight=4.0),
    "silver": TenantConfig(name="silver", weight=2.0),
    "bronze": TenantConfig(name="bronze", weight=1.0),
    "free": TenantConfig(name="free", weight=1.0),
}
WEIGHTS = {"gold": 4, "silver": 2, "bronze": 1, "free": 1}


def _counts(app, job_ids):
    out = {}
    for job_id in job_ids:
        tenant = app.jobs[job_id].tenant
        out[tenant] = out.get(tenant, 0) + 1
    return out


def test_weighted_fair_completion_order_32_clients(service_harness):
    """4 tenants x 8 concurrent clients; completions follow the weights."""

    async def body():
        async with service_harness(
            n_workers=1, tenants=dict(TENANTS), paused=True
        ) as (app, client):
            # 32 concurrent clients: one coroutine per request, all
            # racing through the HTTP layer while dispatch is held.
            submissions = [
                client.post_job(
                    {"kind": "analytic",
                     "params": {"n": 6, "r": 2, "p": 2},
                     "seed": 1000 + seq},
                    tenant=tenant,
                )
                for seq, (round_, tenant) in enumerate(
                    (r, t) for r in range(8) for t in TENANTS
                )
            ]
            responses = await asyncio.gather(*submissions)
            assert all(status == 202 for status, _ in responses)
            assert len(app.queue) == 32

            app.pool.resume()
            await asyncio.gather(*(
                client.wait_done(body["job_id"]) for _, body in responses
            ))

            order = list(app.completion_order)
            assert len(order) == 32

            # Weighted-fair share: the first full virtual round (16
            # dispatches) splits 8/4/2/2 across weights 4/2/1/1.
            # Tolerate +-1 against scheduler tie-breaks.
            for prefix, scale in ((8, 1), (16, 2)):
                counts = _counts(app, order[:prefix])
                for tenant, weight in WEIGHTS.items():
                    expected = weight * scale
                    assert abs(counts.get(tenant, 0) - expected) <= 1, (
                        f"first {prefix}: {counts} !~ weights {WEIGHTS}"
                    )

            # Per-tenant FIFO: each tenant's jobs complete in admission
            # order (job ids are assigned at admission).
            for tenant in TENANTS:
                mine = [j for j in order if app.jobs[j].tenant == tenant]
                assert mine == sorted(mine), f"{tenant} completed {mine}"
                assert len(mine) == 8

            stats = app.stats()
            assert stats["queue"]["n_dispatched"] == 32
            assert stats["jobs"]["completed_per_tenant"] == {
                t: 8 for t in TENANTS
            }

    asyncio.run(body())


def test_identical_requests_dedupe_to_one_execution(service_harness):
    """32 cache-identical requests -> exactly one campaign execution."""

    async def body():
        async with service_harness(
            n_workers=4, tenants=dict(TENANTS), paused=True
        ) as (app, client):
            payload = {"kind": "analytic", "params": {"n": 8, "r": 3, "p": 2}}
            responses = await asyncio.gather(*(
                client.post_job(dict(payload), tenant=tenant)
                for tenant in TENANTS for _ in range(8)
            ))
            # Nothing has executed yet, so nothing is cache-warm: all 32
            # are admitted and queued behind one shared task hash.
            assert all(status == 202 for status, _ in responses)

            app.pool.resume()
            records = await asyncio.gather(*(
                client.wait_done(body["job_id"]) for _, body in responses
            ))

            assert app.pool.n_campaign_executions == 1
            assert all(r["state"] == "done" for r in records)
            results = [r["result"] for r in records]
            assert all(res == results[0] for res in results)
            assert {r["key"] for r in records} == {records[0]["key"]}

            # Exactly one job ran the campaign; the rest were served by
            # the in-flight leader or the content-addressed store.
            served = sorted(
                (r["served_from"] or "executed") for r in records
            )
            assert served.count("executed") == 1
            assert set(served) <= {"executed", "dedupe", "cache"}

    asyncio.run(body())


def test_sse_replays_completed_job(service_harness):
    """A subscriber arriving after completion sees the full stream."""

    async def body():
        async with service_harness(n_workers=1) as (app, client):
            status, accepted = await client.post_job(
                {"kind": "analytic", "params": {"n": 6, "r": 2, "p": 2}}
            )
            assert status == 202
            job_id = accepted["job_id"]
            await client.wait_done(job_id)

            events = await client.sse_events(job_id)
            names = [e["event"] for e in events]
            assert names[0] == "accepted"
            assert "admitted" in names and "queued" in names
            assert names[-1] == "completed"
            assert [e["id"] for e in events] == list(range(len(events)))
            assert events[-1]["data"]["state"] == "done"

            # Replaying twice yields byte-identical histories.
            assert await client.sse_events(job_id) == events

            # Last-Event-ID resumes mid-stream without gaps.
            tail = await client.sse_events(job_id, last_event_id=1)
            assert tail == events[2:]

    asyncio.run(body())


def test_sse_live_follow_sees_completion(service_harness):
    """A subscriber attached before execution follows events live."""

    async def body():
        async with service_harness(n_workers=1, paused=True) as (app, client):
            status, accepted = await client.post_job(
                {"kind": "analytic", "params": {"n": 8, "r": 2, "p": 2}}
            )
            assert status == 202
            job_id = accepted["job_id"]

            collector = asyncio.create_task(client.sse_events(job_id))
            for _ in range(5):  # let the subscriber attach and replay
                await asyncio.sleep(0)
            assert not collector.done()

            app.pool.resume()
            events = await collector
            names = [e["event"] for e in events]
            assert names[-1] == "completed"
            assert "started" in names  # emitted after the subscriber joined

    asyncio.run(body())


def test_bad_last_event_id_is_400(service_harness):
    async def body():
        async with service_harness(n_workers=1) as (app, client):
            status, accepted = await client.post_job(
                {"kind": "analytic", "params": {"n": 4, "r": 2, "p": 0}}
            )
            assert status == 202
            job_id = accepted["job_id"]
            await client.wait_done(job_id)
            status, _, payload = await client.get(
                f"/v1/jobs/{job_id}/events",
                headers={"Last-Event-ID": "zzz"},
            )
            assert status == 400 and payload["error"] == "bad_request"

    asyncio.run(body())
