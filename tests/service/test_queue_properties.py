"""Property suite for the weighted-fair queue and its admission guards.

Everything here runs against the synchronous scheduler core
(:class:`~repro.service.queue.WeightedFairQueue`) and the deterministic
token bucket under an injected virtual clock, so hypothesis can drive
thousands of schedules without an event loop or a single sleep.

Invariants pinned:

* **conservation** -- every accepted item is dispatched exactly once,
  in per-tenant FIFO order, regardless of submit/pop interleaving;
* **weighted share** -- under saturation, dispatch counts track tenant
  weights within one item;
* **priority monotonicity** -- doubling a tenant's weight never demotes
  any of its items' dispatch positions;
* **rate limiting** -- a tenant can never get more than
  ``burst + rate * elapsed`` items admitted, and ``retry_after_s`` is
  an honest wait;
* **bounded backlog** -- the per-tenant queue depth never exceeds
  ``max_backlog``; overflow raises instead of queueing.
"""

from __future__ import annotations

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.queue import BacklogFull, WeightedFairQueue
from repro.service.tenants import TenantConfig, TenantRegistry, TokenBucket

TENANT_NAMES = ("a", "b", "c", "d")


def make_registry(
    weights,
    rate_per_s: float = math.inf,
    burst: int = 1_000_000,
    max_backlog: int = 1_000_000,
    clock=None,
) -> TenantRegistry:
    tenants = {
        name: TenantConfig(
            name=name,
            weight=weight,
            rate_per_s=rate_per_s,
            burst=burst,
            max_backlog=max_backlog,
        )
        for name, weight in weights.items()
    }
    return TenantRegistry(
        tenants=tenants,
        default=TenantConfig(name="default"),
        clock=clock or (lambda: 0.0),
    )


weights_strategy = st.lists(
    st.floats(0.25, 8.0, allow_nan=False, allow_infinity=False),
    min_size=len(TENANT_NAMES),
    max_size=len(TENANT_NAMES),
)

ops_strategy = st.lists(
    st.one_of(
        st.integers(0, len(TENANT_NAMES) - 1).map(lambda i: ("submit", i)),
        st.just(("pop", None)),
    ),
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(weights=weights_strategy, ops=ops_strategy)
def test_conservation_and_per_tenant_fifo(weights, ops):
    """Accepted == dispatched, exactly once, FIFO within each tenant."""
    queue = WeightedFairQueue(
        make_registry(dict(zip(TENANT_NAMES, weights)))
    )
    submitted = {name: [] for name in TENANT_NAMES}
    popped = {name: [] for name in TENANT_NAMES}
    counter = itertools.count()

    for op, arg in ops:
        if op == "submit":
            tenant = TENANT_NAMES[arg]
            item = next(counter)
            queue.submit(tenant, item)
            submitted[tenant].append(item)
        else:
            entry = queue.pop()
            if entry is not None:
                popped[entry[0]].append(entry[1])
    while (entry := queue.pop()) is not None:
        popped[entry[0]].append(entry[1])

    assert popped == submitted
    assert queue.n_dispatched == queue.n_submitted
    assert len(queue) == 0
    assert all(queue.backlog(name) == 0 for name in TENANT_NAMES)


@settings(max_examples=100, deadline=None)
@given(
    weight=st.integers(1, 5),
    depth=st.integers(2, 40),
)
def test_weighted_share_under_saturation(weight, depth):
    """A weight-w tenant drains w items per item of a weight-1 tenant."""
    queue = WeightedFairQueue(
        make_registry({"heavy": float(weight), "light": 1.0})
    )
    for i in range(depth):
        queue.submit("heavy", ("heavy", i))
        queue.submit("light", ("light", i))

    heavy = light = 0
    while light < depth // 2 and (entry := queue.pop()) is not None:
        if entry[0] == "heavy":
            heavy += 1
        else:
            light += 1
    if light:
        # Start-time fairness: within any prefix the heavy tenant holds
        # a w-proportional share, up to one item of quantization.
        assert heavy >= min(depth, weight * light) - 1
        assert heavy <= weight * (light + 1)


@settings(max_examples=150, deadline=None)
@given(
    sequence=st.lists(
        st.integers(0, len(TENANT_NAMES) - 1), min_size=1, max_size=60
    ),
    boosted=st.integers(0, len(TENANT_NAMES) - 1),
    weights=weights_strategy,
)
def test_priority_monotonicity(sequence, boosted, weights):
    """Doubling one tenant's weight never demotes its items."""

    def dispatch_order(weight_list):
        queue = WeightedFairQueue(
            make_registry(dict(zip(TENANT_NAMES, weight_list)))
        )
        for item, tenant_index in enumerate(sequence):
            queue.submit(TENANT_NAMES[tenant_index], item)
        order = []
        while (entry := queue.pop()) is not None:
            order.append(entry[1])
        return order

    base = dispatch_order(list(weights))
    raised = list(weights)
    raised[boosted] *= 2.0
    boosted_order = dispatch_order(raised)

    for item, tenant_index in enumerate(sequence):
        if tenant_index == boosted:
            assert boosted_order.index(item) <= base.index(item), (
                f"item {item} demoted from {base.index(item)} to "
                f"{boosted_order.index(item)} by a weight raise"
            )


@settings(max_examples=200, deadline=None)
@given(
    rate=st.floats(0.5, 20.0, allow_nan=False, allow_infinity=False),
    burst=st.integers(1, 10),
    steps=st.lists(
        st.tuples(
            st.floats(0.0, 2.0, allow_nan=False, allow_infinity=False),
            st.integers(1, 5),
        ),
        max_size=50,
    ),
)
def test_token_bucket_admission_bound(rate, burst, steps):
    """Accepted jobs never exceed ``burst + rate * elapsed`` tokens."""
    now = [0.0]
    bucket = TokenBucket(rate, burst, clock=lambda: now[0])
    accepted = 0
    elapsed = 0.0
    for advance, tries in steps:
        now[0] += advance
        elapsed += advance
        for _ in range(tries):
            if bucket.try_acquire():
                accepted += 1
        assert accepted <= burst + rate * elapsed + 1e-6
        assert 0.0 <= bucket.tokens <= burst + 1e-9

    # retry_after_s is an honest wait: advancing exactly that far
    # makes the next acquisition succeed.
    if not bucket.try_acquire():
        wait = bucket.retry_after_s()
        assert wait > 0.0
        now[0] += wait + 1e-9
        assert bucket.try_acquire()


@settings(max_examples=100, deadline=None)
@given(max_backlog=st.integers(1, 10), overflow=st.integers(1, 10))
def test_backlog_is_bounded(max_backlog, overflow):
    """Depth caps at ``max_backlog``; overflow sheds, pop frees a slot."""
    queue = WeightedFairQueue(
        make_registry({"t": 1.0}, max_backlog=max_backlog)
    )
    for i in range(max_backlog):
        queue.submit("t", i)
    assert queue.backlog("t") == max_backlog

    for _ in range(overflow):
        with pytest.raises(BacklogFull):
            queue.submit("t", "rejected")
    assert queue.backlog("t") == max_backlog
    assert queue.n_rejected_backlog == overflow

    assert queue.pop() is not None
    queue.submit("t", "fits-again")
    assert queue.backlog("t") == max_backlog


@settings(max_examples=100, deadline=None)
@given(burst=st.integers(1, 8), extra=st.integers(1, 8))
def test_rate_limited_submission_is_not_queued(burst, extra):
    """A rate-limit rejection consumes neither backlog nor heap space."""
    from repro.service.queue import RateLimited

    queue = WeightedFairQueue(
        make_registry({"t": 1.0}, rate_per_s=1.0, burst=burst)
    )
    for i in range(burst):
        queue.submit("t", i)
    for _ in range(extra):
        with pytest.raises(RateLimited) as excinfo:
            queue.submit("t", "rejected")
        assert excinfo.value.retry_after_s > 0.0
    assert len(queue) == burst
    assert queue.n_rejected_rate == extra
    assert queue.n_submitted == burst
