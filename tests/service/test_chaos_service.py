"""Chaos integration: pathological jobs through the full service path.

The campaign layer's chaos kinds (``chaos_hang``, ``chaos_error``, ...)
are replayed here through admission, the fair queue, and the worker
pool, proving the service inherits the hardened runner's containment:
a tenant whose job wedges a worker gets a *structured* failure (timed
out, quarantined, machine-readable attempts) while other tenants' jobs
complete normally -- and an SSE subscriber of the doomed job sees a
terminating ``failed`` event, never a stalled stream.
"""

from __future__ import annotations

import asyncio


def test_hung_job_is_reaped_while_other_tenants_complete(service_harness):
    async def body():
        async with service_harness(
            n_workers=2, allow_chaos=True
        ) as (app, client):
            status, doomed = await client.post_job(
                {
                    "kind": "chaos_hang",
                    "params": {"sleep_s": 60.0},
                    "timeout_s": 0.5,
                    "max_attempts": 1,
                },
                tenant="victim",
            )
            assert status == 202

            healthy = []
            for i in range(4):
                status, accepted = await client.post_job(
                    {"kind": "chaos_ok", "params": {"x": i}},
                    tenant=f"bystander-{i % 2}",
                )
                assert status == 202
                healthy.append(accepted["job_id"])

            # Bystanders complete even though a worker is wedged on the
            # hung job the whole time.
            records = await asyncio.gather(*(
                client.wait_done(job_id, timeout=60.0) for job_id in healthy
            ))
            assert [r["result"]["value"] for r in records] == [0, 1, 4, 9]

            doomed_record = await client.wait_done(
                doomed["job_id"], timeout=60.0
            )
            assert doomed_record["state"] == "failed"
            failure = doomed_record["failure"]
            assert failure["error"] == "task_failed"
            assert failure["attempts"][-1]["outcome"] == "timeout"
            assert doomed_record["result"] is None

            # The failed job's SSE stream terminates with a structured
            # "failed" event -- the client is never left hanging.
            events = await client.sse_events(doomed["job_id"], timeout=10.0)
            assert events[-1]["event"] == "failed"
            assert events[-1]["data"]["failure"]["error"] == "task_failed"

    asyncio.run(body())


def test_erroring_job_reports_attempts(service_harness):
    async def body():
        async with service_harness(
            n_workers=1, allow_chaos=True
        ) as (app, client):
            status, accepted = await client.post_job({
                "kind": "chaos_error",
                "params": {"message": "injected"},
                "max_attempts": 2,
            })
            assert status == 202
            record = await client.wait_done(accepted["job_id"], timeout=60.0)
            assert record["state"] == "failed"
            attempts = record["failure"]["attempts"]
            assert len(attempts) == 2
            assert all(a["outcome"] == "error" for a in attempts)
            assert all(a["error_type"] == "ValueError" for a in attempts)
            assert "injected" in attempts[0]["message"]

            # Failures are not cached: a retry is a fresh execution.
            executions = app.pool.n_campaign_executions
            status, again = await client.post_job({
                "kind": "chaos_error",
                "params": {"message": "injected"},
                "max_attempts": 2,
            })
            assert status == 202
            await client.wait_done(again["job_id"], timeout=60.0)
            assert app.pool.n_campaign_executions == executions + 1

    asyncio.run(body())


def test_flaky_job_recovers_within_budgeted_attempts(service_harness, tmp_path):
    async def body():
        async with service_harness(
            n_workers=1, allow_chaos=True
        ) as (app, client):
            status, accepted = await client.post_job({
                "kind": "chaos_flaky",
                "params": {
                    "x": 7,
                    "fail_times": 1,
                    "scratch_dir": str(tmp_path / "flaky"),
                },
                "max_attempts": 3,
            })
            assert status == 202
            record = await client.wait_done(accepted["job_id"], timeout=60.0)
            assert record["state"] == "done"
            assert record["result"]["value"] == 7

    asyncio.run(body())
