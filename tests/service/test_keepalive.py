"""Keep-alive connection semantics of the HTTP layer.

One connection, many requests: these tests pin the negotiation rules
(HTTP/1.1 persistent by default, HTTP/1.0 opt-in), the framing-versus-
dispatch error split (parse errors poison the stream and close; route
errors keep it open), the per-connection request bound, and -- via a
hypothesis property -- that ``Content-Length`` framing survives
arbitrary pipelining and partial-read chunk boundaries.
"""

from __future__ import annotations

import asyncio
import json

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.service.http as http
from repro.service.app import ServiceApp
from repro.service.http import MAX_BODY_BYTES, handle_connection

from .conftest import StubWriter, parse_response


def _req(method, path, body=None, headers=None, version="HTTP/1.1",
         content_length=True):
    head = [f"{method} {path} {version}", "Host: testserver"]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    if body and content_length:
        head.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(head) + "\r\n\r\n").encode() + (body or b"")


async def _drive(app, chunks):
    """Feed byte chunks progressively into one connection; return buffer."""
    reader = asyncio.StreamReader()
    writer = StubWriter()

    async def feed():
        for chunk in chunks:
            reader.feed_data(chunk)
            await asyncio.sleep(0)
        reader.feed_eof()

    feeder = asyncio.ensure_future(feed())
    await handle_connection(app, reader, writer)
    await feeder
    assert writer.closed
    return bytes(writer.buffer)


def _split_responses(raw):
    """Split back-to-back framed responses; returns parse_response triples."""
    out = []
    while raw:
        head, sep, rest = raw.partition(b"\r\n\r\n")
        assert sep, f"truncated response head: {raw!r}"
        length = 0
        for line in head.decode("latin-1").split("\r\n"):
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1])
        assert len(rest) >= length, "body shorter than Content-Length"
        out.append(parse_response(head + sep + rest[:length]))
        raw = rest[length:]
    return out


class TestPersistentConnections:
    def test_two_requests_one_connection(self):
        async def body():
            app = ServiceApp()
            raw = await _drive(app, [
                _req("GET", "/v1/healthz") + _req("GET", "/v1/kinds"),
            ])
            first, second = _split_responses(raw)
            assert first[0] == 200 and first[2] == {"ok": True}
            assert first[1]["connection"] == "keep-alive"
            assert second[0] == 200 and "kinds" in second[2]

        asyncio.run(body())

    def test_connection_close_ends_the_conversation(self):
        async def body():
            app = ServiceApp()
            raw = await _drive(app, [
                _req("GET", "/v1/healthz",
                     headers={"Connection": "close"}),
                _req("GET", "/v1/healthz"),  # never read
            ])
            (only,) = _split_responses(raw)
            assert only[0] == 200
            assert only[1]["connection"] == "close"

        asyncio.run(body())

    def test_http10_defaults_to_close(self):
        async def body():
            app = ServiceApp()
            raw = await _drive(app, [
                _req("GET", "/v1/healthz", version="HTTP/1.0"),
                _req("GET", "/v1/healthz", version="HTTP/1.0"),
            ])
            (only,) = _split_responses(raw)
            assert only[1]["connection"] == "close"

        asyncio.run(body())

    def test_http10_keep_alive_opt_in(self):
        async def body():
            app = ServiceApp()
            raw = await _drive(app, [
                _req("GET", "/v1/healthz", version="HTTP/1.0",
                     headers={"Connection": "keep-alive"}),
                _req("GET", "/v1/healthz", version="HTTP/1.0",
                     headers={"Connection": "keep-alive"}),
            ])
            assert len(_split_responses(raw)) == 2

        asyncio.run(body())

    def test_submit_and_poll_over_one_connection(self, service_harness):
        async def body():
            async with service_harness(n_workers=1) as (app, client):
                payload = json.dumps({
                    "kind": "analytic", "params": {"n": 8, "r": 2, "p": 2},
                }).encode()
                raw = await _drive(app, [
                    _req("POST", "/v1/jobs", payload,
                         headers={"X-Tenant": "ka"}),
                ])
                (submitted,) = _split_responses(raw)
                assert submitted[0] == 202
                job_id = submitted[2]["job_id"]
                await client.wait_done(job_id)
                raw = await _drive(app, [
                    _req("GET", f"/v1/jobs/{job_id}")
                    + _req("GET", "/v1/stats"),
                ])
                record, stats = _split_responses(raw)
                assert record[2]["state"] == "done"
                assert stats[2]["workers"]["isolation"] == "warm"

        asyncio.run(body())

    def test_dispatch_error_keeps_connection_alive(self):
        async def body():
            app = ServiceApp()
            raw = await _drive(app, [
                _req("GET", "/v1/nope") + _req("GET", "/v1/healthz"),
            ])
            missing, healthy = _split_responses(raw)
            assert missing[0] == 404
            assert missing[1]["connection"] == "keep-alive"
            assert healthy[0] == 200

        asyncio.run(body())

    def test_handler_crash_answers_500_and_closes(self):
        class _BoomApp:
            async def dispatch(self, request):
                raise RuntimeError("boom")

        async def body():
            raw = await _drive(_BoomApp(), [
                _req("GET", "/v1/healthz") + _req("GET", "/v1/healthz"),
            ])
            (only,) = _split_responses(raw)
            assert only[0] == 500
            assert only[1]["connection"] == "close"
            assert only[2]["error"] == "internal"

        asyncio.run(body())

    def test_max_requests_per_connection(self, monkeypatch):
        monkeypatch.setattr(http, "MAX_REQUESTS_PER_CONNECTION", 2)

        async def body():
            app = ServiceApp()
            raw = await _drive(app, [
                _req("GET", "/v1/healthz") * 3,
            ])
            responses = _split_responses(raw)
            assert len(responses) == 2
            assert responses[0][1]["connection"] == "keep-alive"
            assert responses[1][1]["connection"] == "close"

        asyncio.run(body())


class TestFramingErrors:
    """Parse-level rejections: structured status + Connection: close."""

    def _expect_single(self, chunks, status, error):
        async def body():
            app = ServiceApp()
            raw = await _drive(app, chunks)
            (only,) = _split_responses(raw)
            assert only[0] == status
            assert only[1]["connection"] == "close"
            assert only[2]["error"] == error

        asyncio.run(body())

    def test_post_without_content_length_is_411(self):
        # A trailing healthz shows the poisoned stream is NOT re-parsed.
        self._expect_single(
            [_req("POST", "/v1/jobs", b'{"kind": "analytic"}',
                  content_length=False) + _req("GET", "/v1/healthz")],
            411, "length_required",
        )

    def test_transfer_encoding_is_411(self):
        self._expect_single(
            [_req("POST", "/v1/jobs",
                  headers={"Transfer-Encoding": "chunked"})],
            411, "length_required",
        )

    def test_negative_content_length_is_400(self):
        self._expect_single(
            [_req("POST", "/v1/jobs",
                  headers={"Content-Length": "-5"})],
            400, "bad_request",
        )

    def test_oversized_body_is_413(self):
        self._expect_single(
            [_req("POST", "/v1/jobs",
                  headers={"Content-Length": str(MAX_BODY_BYTES + 1)})],
            413, "too_large",
        )

    def test_truncated_body_is_400(self):
        self._expect_single(
            [_req("POST", "/v1/jobs", b"{}")[:-1]],
            400, "bad_request",
        )

    def test_malformed_request_line_is_400(self):
        self._expect_single([b"NONSENSE\r\n\r\n"], 400, "bad_request")


class TestFramingProperty:
    """Framing survives arbitrary pipelining and chunk boundaries."""

    @settings(max_examples=40, deadline=None)
    @given(
        paths=st.lists(
            st.sampled_from(["/v1/healthz", "/v1/kinds", "/v1/stats"]),
            min_size=1, max_size=6,
        ),
        cuts=st.lists(st.integers(min_value=1, max_value=400),
                      max_size=8),
    )
    def test_pipelined_requests_with_partial_reads(self, paths, cuts):
        wire = b"".join(_req("GET", path) for path in paths)
        chunks, start = [], 0
        for cut in sorted(set(cuts)):
            if cut >= len(wire):
                break
            chunks.append(wire[start:cut])
            start = cut
        chunks.append(wire[start:])

        async def body():
            app = ServiceApp()
            return await _drive(app, chunks)

        responses = _split_responses(asyncio.run(body()))
        assert len(responses) == len(paths)
        for status, headers, payload in responses:
            assert status == 200
            assert isinstance(payload, dict)
            assert headers["connection"] == "keep-alive"
            assert int(headers["content-length"]) == len(
                json.dumps(payload, sort_keys=True).encode()
            )

    def test_sse_terminates_its_connection(self, service_harness):
        async def body():
            async with service_harness(n_workers=1) as (app, client):
                status, accepted = await client.post_job({
                    "kind": "analytic", "params": {"n": 8, "r": 2, "p": 2},
                })
                assert status == 202
                job_id = accepted["job_id"]
                await client.wait_done(job_id)
                # Trailing healthz after the SSE request must be ignored:
                # the stream owns the rest of the connection.
                raw = await _drive(app, [
                    _req("GET", f"/v1/jobs/{job_id}/events")
                    + _req("GET", "/v1/healthz"),
                ])
                head, _, stream = raw.partition(b"\r\n\r\n")
                assert b"text/event-stream" in head
                assert b"Connection: close" in head
                assert b"HTTP/1.1 200 OK" not in stream  # no healthz reply
                assert b"event: completed" in stream

        asyncio.run(body())
