"""Handler-level tests: routing, validation, and error responses.

All through the real HTTP layer via asyncio transport stubs -- the same
bytes a socket would carry, without any socket.
"""

from __future__ import annotations

import asyncio

from .conftest import encode_request, parse_response


def test_healthz_and_kinds(service_harness):
    async def body():
        async with service_harness(n_workers=1) as (app, client):
            status, _, payload = await client.get("/v1/healthz")
            assert status == 200 and payload == {"ok": True}

            status, _, payload = await client.get("/v1/kinds")
            assert status == 200
            assert "analytic" in payload["kinds"]
            assert "resilience" in payload["kinds"]
            # Chaos kinds are hidden unless the deployment opts in.
            assert not any(k.startswith("chaos_") for k in payload["kinds"])

    asyncio.run(body())


def test_chaos_kinds_listed_when_allowed(service_harness):
    async def body():
        async with service_harness(n_workers=1, allow_chaos=True) as (_, c):
            status, _, payload = await c.get("/v1/kinds")
            assert status == 200 and "chaos_ok" in payload["kinds"]

    asyncio.run(body())


def test_unknown_route_404_and_method_405(service_harness):
    async def body():
        async with service_harness(n_workers=1) as (_, client):
            status, _, payload = await client.get("/v1/nope")
            assert status == 404 and payload["error"] == "not_found"

            status, _, payload = await client.request("DELETE", "/v1/healthz")
            assert status == 405
            assert payload["error"] == "method_not_allowed"
            assert payload["allowed"] == ["GET"]

    asyncio.run(body())


def test_submit_validation_errors(service_harness):
    async def body():
        async with service_harness(n_workers=1) as (_, client):
            # Garbage JSON -> 400 before any validation.
            raw = await client.raw(encode_request(
                "POST", "/v1/jobs", b"{not json", {}
            ))
            status, _, payload = parse_response(raw)
            assert status == 400 and payload["error"] == "bad_request"

            # Unknown kind -> structured field-level rejection.
            status, payload = await client.post_job({"kind": "nope"})
            assert status == 400 and payload["field"] == "kind"

            # Chaos kind refused without the opt-in.
            status, payload = await client.post_job(
                {"kind": "chaos_ok", "params": {"x": 2}}
            )
            assert status == 400 and payload["field"] == "kind"

            # Unknown top-level field.
            status, payload = await client.post_job(
                {"kind": "analytic", "params": {"n": 4, "r": 2, "p": 0},
                 "frobnicate": 1}
            )
            assert status == 400 and "frobnicate" in payload["message"]

            # Bad QoS budget.
            status, payload = await client.post_job(
                {"kind": "analytic", "params": {"n": 4, "r": 2, "p": 0},
                 "qos": {"error_budget": 2.0}}
            )
            assert status == 400 and payload["field"] == "qos.error_budget"

            # QoS on a non-block-adder param set -> admission rejection.
            status, payload = await client.post_job(
                {"kind": "analytic", "params": {"segments": "zzz"},
                 "qos": {"error_budget": 0.1}}
            )
            assert status == 400 and payload["field"] == "params"

    asyncio.run(body())


def test_oversized_body_is_413(service_harness):
    async def body():
        async with service_harness(n_workers=1) as (_, client):
            huge = b"x" * (2 << 20)
            raw = await client.raw(encode_request("POST", "/v1/jobs", huge))
            status, _, payload = parse_response(raw)
            assert status == 413 and payload["error"] == "too_large"

    asyncio.run(body())


def test_job_lifecycle_and_status(service_harness):
    async def body():
        async with service_harness(n_workers=1) as (app, client):
            status, accepted = await client.post_job(
                {"kind": "analytic", "params": {"n": 8, "r": 2, "p": 2}},
                tenant="acme",
            )
            assert status == 202
            assert accepted["state"] in ("queued", "running", "done")
            job_id = accepted["job_id"]
            assert accepted["tenant"] == "acme"
            assert accepted["admission"]["mode"] == "as_declared"

            record = await client.wait_done(job_id)
            assert record["state"] == "done"
            assert record["result"]["error_rate"] == 0.1875

            status, _, fetched = await client.get(f"/v1/jobs/{job_id}")
            assert status == 200
            assert fetched["state"] == "done"
            assert fetched["result"]["accuracy_percent"] == 81.25

            status, _, payload = await client.get("/v1/jobs/zzz")
            assert status == 404 and payload["error"] == "not_found"

    asyncio.run(body())


def test_cache_hit_served_inline_without_execution(service_harness):
    async def body():
        async with service_harness(n_workers=1) as (app, client):
            payload = {"kind": "analytic", "params": {"n": 6, "r": 2, "p": 2}}
            status, first = await client.post_job(payload, tenant="a")
            assert status == 202
            await client.wait_done(first["job_id"])
            executions = app.pool.n_campaign_executions
            assert executions == 1

            # Identical request from a *different* tenant: answered 200
            # inline from the content-addressed store, no new execution.
            status, second = await client.post_job(payload, tenant="b")
            assert status == 200
            assert second["state"] == "done"
            assert second["served_from"] == "cache"
            assert app.pool.n_campaign_executions == executions

            # Both tenants saw byte-identical results.
            first_record = await client.wait_done(first["job_id"])
            assert second["result"] == first_record["result"]
            assert second["key"] == first_record["key"]

    asyncio.run(body())


def test_qos_negotiation_modes(service_harness):
    async def body():
        async with service_harness(n_workers=1) as (app, client):
            # Budget met: admitted approximate, prediction recorded.
            status, ok = await client.post_job({
                "kind": "analytic", "params": {"n": 8, "r": 2, "p": 2},
                "qos": {"error_budget": 0.5},
            })
            assert status == 202
            assert ok["admission"]["mode"] == "approximate"
            assert ok["admission"]["predicted"]["error_rate"] == 0.1875
            assert ok["admission"]["prediction_us"] > 0.0
            record = await client.wait_done(ok["job_id"])
            assert record["qos"]["mode"] == "approximate"

            # Budget not met: rewritten to the exact single-block twin.
            status, fb = await client.post_job({
                "kind": "analytic", "params": {"n": 8, "r": 2, "p": 2},
                "qos": {"error_budget": 0.01},
            })
            assert status == 202
            assert fb["admission"]["mode"] == "exact_fallback"
            record = await client.wait_done(fb["job_id"])
            assert record["result"]["error_rate"] == 0.0
            assert record["result"]["segments"] == [[8, 0]]

    asyncio.run(body())


def test_stats_endpoint_counts(service_harness):
    async def body():
        async with service_harness(n_workers=1) as (app, client):
            payload = {"kind": "analytic", "params": {"n": 4, "r": 2, "p": 0}}
            status, first = await client.post_job(payload)
            assert status == 202
            await client.wait_done(first["job_id"])
            status, cached = await client.post_job(payload)
            assert status == 200

            status, _, stats = await client.get("/v1/stats")
            assert status == 200
            assert stats["jobs"]["accepted"] == 2
            assert stats["store"]["n_memory_hits"] >= 1
            assert stats["workers"]["n_campaign_executions"] == 1
            assert stats["jobs"]["completed_per_tenant"]["public"] == 2

    asyncio.run(body())
