"""Kill -9 the real service mid-flight, restart it, lose nothing.

This is the end-to-end crash drill the journal exists for: a real
``repro serve --state-dir`` subprocess takes a mix of queued and
in-flight jobs, dies by SIGKILL (no drain, no flush beyond what fsync
already promised), and a second process on the same state directory
must re-admit every accepted job and finish it **exactly once**.

Execution counting uses the ``chaos_probe`` kind, which sleeps and
then appends one line to a per-job file -- a kill mid-sleep leaves
zero lines, so the final line count per probe file equals completed
executions, whatever instant the SIGKILL landed.

The service is started with ``start_new_session=True`` and killed with
``os.killpg``: the warm-pool children share the session, and an
orphaned child surviving the parent would finish its probe append and
break the exactly-once observable.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

_BANNER = re.compile(r"repro service on http://[^:]+:(\d+)")
ROOT = Path(__file__).resolve().parents[2]


class ServeProcess:
    """A real ``repro serve`` subprocess plus a tiny HTTP client."""

    def __init__(self, state_dir: str, workers: int = 2) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--host", "127.0.0.1", "--port", "0",
             "--state-dir", state_dir,
             "--workers", str(workers), "--allow-chaos"],
            env=env, cwd=str(ROOT),
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            start_new_session=True,
        )
        self.port = self._await_banner()
        # Keep draining stderr so the child never blocks on a full pipe.
        self._drain = threading.Thread(
            target=self.proc.stderr.read, daemon=True
        )
        self._drain.start()

    def _await_banner(self) -> int:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            line = self.proc.stderr.readline().decode("utf-8", "replace")
            if not line:
                raise AssertionError(
                    f"serve exited before banner "
                    f"(rc={self.proc.poll()})"
                )
            match = _BANNER.search(line)
            if match:
                return int(match.group(1))
        raise AssertionError("no startup banner within 60s")

    def request(self, method, path, body=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=10)
        try:
            payload = None
            headers = {"X-Tenant": "public"}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            return response.status, (json.loads(raw) if raw else None)
        finally:
            conn.close()

    def await_ready(self, timeout_s: float = 60.0) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                status, _ = self.request("GET", "/readyz")
                if status == 200:
                    return
            except OSError:
                pass
            time.sleep(0.1)
        raise AssertionError("service never became ready")

    def kill_group(self) -> None:
        os.killpg(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=30)

    def shutdown(self) -> None:
        if self.proc.poll() is None:
            try:
                os.killpg(self.proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            self.proc.wait(timeout=30)


@pytest.fixture
def serve_factory(tmp_path):
    started = []

    def start(workers: int = 2) -> ServeProcess:
        server = ServeProcess(str(tmp_path / "state"), workers=workers)
        started.append(server)
        return server

    yield start
    for server in started:
        server.shutdown()


def test_kill9_restart_recovers_every_job_exactly_once(
    serve_factory, tmp_path
):
    first = serve_factory(workers=2)
    first.await_ready()

    # Two slow probes grab both workers; four analytic jobs queue
    # behind them.  The SIGKILL lands while the probes are mid-sleep
    # and the analytic jobs are still queued.
    jobs = {}
    probe_files = {}
    for index in range(2):
        probe = str(tmp_path / f"probe-{index}.txt")
        status, accepted = first.request("POST", "/v1/jobs", {
            "kind": "chaos_probe",
            "params": {"x": index, "probe_file": probe, "sleep_s": 2.0},
            "seed": index,
        })
        assert status == 202, accepted
        jobs[accepted["job_id"]] = "chaos_probe"
        probe_files[accepted["job_id"]] = probe
    for index in range(4):
        status, accepted = first.request("POST", "/v1/jobs", {
            "kind": "analytic",
            "params": {"n": 8, "r": 2, "p": 2},
            "seed": 100 + index,
        })
        assert status == 202, accepted
        jobs[accepted["job_id"]] = "analytic"

    time.sleep(0.8)  # probes asleep, analytic queued
    first.kill_group()

    second = serve_factory(workers=2)
    second.await_ready(timeout_s=90.0)

    status, stats = second.request("GET", "/v1/stats")
    assert status == 200
    recovery = stats["recovery"]
    assert recovery["n_restored"] == len(jobs)  # every accepted job is back
    assert recovery["n_requeued"] >= 1  # at least the mid-sleep probes

    deadline = time.monotonic() + 120.0
    pending = set(jobs)
    while pending and time.monotonic() < deadline:
        for job_id in sorted(pending):
            status, record = second.request("GET", f"/v1/jobs/{job_id}")
            assert status == 200, (job_id, record)
            if record["state"] == "done":
                assert record["result"] is not None
                pending.discard(job_id)
            else:
                assert record["state"] in ("queued", "running"), record
        if pending:
            time.sleep(0.25)
    assert not pending, f"jobs never finished after restart: {pending}"

    # The exactly-once observable: one completed execution per probe,
    # no matter where in its lifecycle the SIGKILL caught it.
    for job_id, probe in probe_files.items():
        lines = Path(probe).read_text().splitlines()
        assert len(lines) == 1, (job_id, lines)


def test_sigterm_drains_and_preserves_state(serve_factory):
    server = serve_factory(workers=1)
    server.await_ready()
    status, accepted = server.request("POST", "/v1/jobs", {
        "kind": "analytic", "params": {"n": 8, "r": 2, "p": 2}, "seed": 1,
    })
    assert status == 202

    os.kill(server.proc.pid, signal.SIGTERM)
    assert server.proc.wait(timeout=60) == 0

    second = serve_factory(workers=1)
    second.await_ready()
    status, record = second.request(
        "GET", f"/v1/jobs/{accepted['job_id']}"
    )
    assert status == 200
    # Either it finished before the drain completed (restored done) or
    # it was requeued; both ways it must reach done exactly once.
    deadline = time.monotonic() + 60.0
    while record["state"] != "done" and time.monotonic() < deadline:
        time.sleep(0.2)
        status, record = second.request(
            "GET", f"/v1/jobs/{accepted['job_id']}"
        )
    assert record["state"] == "done"
    assert record["result"] is not None
