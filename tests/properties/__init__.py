"""Test package."""
