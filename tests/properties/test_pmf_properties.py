"""Property-based tests (hypothesis) for the error-PMF algebra."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors.pmf import ErrorPMF


@st.composite
def pmfs(draw, max_support: int = 6, value_range: int = 20):
    """Strategy generating small normalized PMFs."""
    n = draw(st.integers(min_value=1, max_value=max_support))
    values = draw(
        st.lists(
            st.integers(-value_range, value_range),
            min_size=n, max_size=n, unique=True,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    total = sum(weights)
    return ErrorPMF({v: w / total for v, w in zip(values, weights)})


class TestAlgebraicLaws:
    @settings(max_examples=60, deadline=None)
    @given(a=pmfs(), b=pmfs())
    def test_convolution_commutative(self, a, b):
        assert a.convolve(b) == b.convolve(a)

    @settings(max_examples=40, deadline=None)
    @given(a=pmfs(max_support=4), b=pmfs(max_support=4), c=pmfs(max_support=4))
    def test_convolution_associative(self, a, b, c):
        assert a.convolve(b).convolve(c) == a.convolve(b.convolve(c))

    @settings(max_examples=60, deadline=None)
    @given(a=pmfs())
    def test_delta_identity(self, a):
        assert a.convolve(ErrorPMF.delta(0)) == a

    @settings(max_examples=60, deadline=None)
    @given(a=pmfs(), b=pmfs())
    def test_mean_additive_under_convolution(self, a, b):
        combined = a.convolve(b)
        assert math.isclose(combined.mean, a.mean + b.mean, abs_tol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(a=pmfs(), b=pmfs())
    def test_variance_additive_under_convolution(self, a, b):
        combined = a.convolve(b)
        assert math.isclose(
            combined.variance, a.variance + b.variance, abs_tol=1e-6
        )

    @settings(max_examples=60, deadline=None)
    @given(a=pmfs())
    def test_double_negation_is_identity(self, a):
        assert a.negate().negate() == a

    @settings(max_examples=60, deadline=None)
    @given(a=pmfs(), k=st.integers(min_value=1, max_value=8))
    def test_scale_scales_mean(self, a, k):
        assert math.isclose(a.scale(k).mean, k * a.mean, abs_tol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(a=pmfs(), offset=st.integers(-10, 10))
    def test_shift_shifts_mean_only(self, a, offset):
        shifted = a.shift(offset)
        assert math.isclose(shifted.mean, a.mean + offset, abs_tol=1e-9)
        assert math.isclose(shifted.variance, a.variance, abs_tol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(a=pmfs(max_support=4), n=st.integers(min_value=0, max_value=6))
    def test_convolve_n_mass_conserved(self, a, n):
        total = a.convolve_n(n)
        assert math.isclose(
            sum(p for _, p in total.items()), 1.0, abs_tol=1e-7
        )

    @settings(max_examples=60, deadline=None)
    @given(a=pmfs(), w=st.floats(min_value=0.0, max_value=1.0))
    def test_mixture_mean_interpolates(self, a, w):
        b = ErrorPMF.delta(0)
        mix = a.mixture(b, weight=w)
        assert math.isclose(mix.mean, w * a.mean, abs_tol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(a=pmfs())
    def test_scale_minus_one_is_negate(self, a):
        assert a.scale(-1) == a.negate()


class TestTotalVariationMetric:
    @settings(max_examples=60, deadline=None)
    @given(a=pmfs(), b=pmfs())
    def test_symmetric(self, a, b):
        assert math.isclose(
            a.total_variation(b), b.total_variation(a), abs_tol=1e-12
        )

    @settings(max_examples=60, deadline=None)
    @given(a=pmfs())
    def test_identity_of_indiscernibles(self, a):
        assert a.total_variation(a) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(a=pmfs(max_support=4), b=pmfs(max_support=4), c=pmfs(max_support=4))
    def test_triangle_inequality(self, a, b, c):
        assert (
            a.total_variation(c)
            <= a.total_variation(b) + b.total_variation(c) + 1e-12
        )

    @settings(max_examples=60, deadline=None)
    @given(a=pmfs(), b=pmfs())
    def test_bounded_unit_interval(self, a, b):
        tv = a.total_variation(b)
        assert -1e-12 <= tv <= 1.0 + 1e-12


class TestModeDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(a=pmfs())
    def test_mode_is_insertion_order_independent(self, a):
        reversed_pmf = ErrorPMF(dict(reversed(list(a.items()))))
        assert a.mode() == reversed_pmf.mode()

    @settings(max_examples=60, deadline=None)
    @given(a=pmfs())
    def test_mode_attains_maximal_probability(self, a):
        best = max(p for _, p in a.items())
        assert a.probability(a.mode()) == best
