"""Property-based scalar-vs-bitsim identity on random netlists.

The directed sweeps in ``tests/logic/test_bitsim.py`` cover the shipped
Table III / ripple netlists; this module closes the gap for arbitrary
structures by generating random acyclic netlists over the full cell
library (every gate draws inputs from already-driven nets, so DAGs by
construction) and asserting the two engines agree on every net.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cells import CELL_LIBRARY
from repro.logic.netlist import Netlist
from repro.logic.simulate import exhaustive_stimuli, toggle_counts

_CELL_NAMES = sorted(CELL_LIBRARY)


@st.composite
def random_netlists(draw, max_inputs=6, max_gates=12):
    """A random acyclic netlist plus the set of nets it drives."""
    n_inputs = draw(st.integers(min_value=1, max_value=max_inputs))
    inputs = [f"i{k}" for k in range(n_inputs)]
    netlist = Netlist("random", inputs=inputs)
    available = list(inputs) + ["GND", "VDD"]
    n_gates = draw(st.integers(min_value=1, max_value=max_gates))
    for g in range(n_gates):
        cell_name = draw(st.sampled_from(_CELL_NAMES))
        n_pins = CELL_LIBRARY[cell_name].n_inputs
        pins = [
            available[draw(st.integers(0, len(available) - 1))]
            for _ in range(n_pins)
        ]
        output = f"n{g}"
        netlist.add_gate(cell_name, pins, output)
        available.append(output)
    gate_outputs = [gate.output for gate in netlist.gates]
    n_outputs = draw(st.integers(min_value=1, max_value=len(gate_outputs)))
    netlist.set_outputs(gate_outputs[-n_outputs:])
    return netlist


@given(netlist=random_netlists())
@settings(max_examples=60, deadline=None)
def test_exhaustive_trace_identity(netlist):
    """Every net's full exhaustive waveform matches across engines."""
    stimuli = exhaustive_stimuli(netlist.inputs)
    scalar = netlist.evaluate(stimuli, trace=True, eval_mode="scalar")
    packed = netlist.evaluate(stimuli, trace=True, eval_mode="bitsim")
    assert set(scalar) == set(packed)
    for net in scalar:
        np.testing.assert_array_equal(scalar[net], packed[net], err_msg=net)


@given(netlist=random_netlists(), seed=st.integers(0, 2**16), n=st.integers(1, 200))
@settings(max_examples=40, deadline=None)
def test_random_stimulus_output_identity(netlist, seed, n):
    rng = np.random.default_rng(seed)
    stimuli = {
        net: rng.integers(0, 2, size=n, dtype=np.uint8)
        for net in netlist.inputs
    }
    scalar = netlist.evaluate(stimuli, eval_mode="scalar")
    packed = netlist.evaluate(stimuli, eval_mode="bitsim")
    for net in netlist.outputs:
        np.testing.assert_array_equal(scalar[net], packed[net], err_msg=net)


@given(netlist=random_netlists(max_inputs=4, max_gates=8),
       seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_toggle_count_identity(netlist, seed):
    rng = np.random.default_rng(seed)
    stimuli = {
        net: rng.integers(0, 2, size=130, dtype=np.uint8)
        for net in netlist.inputs
    }
    assert toggle_counts(
        netlist, stimuli, eval_mode="bitsim"
    ) == toggle_counts(netlist, stimuli, eval_mode="scalar")
