"""Property-based tests (hypothesis) for the GeAr error models.

Complements ``test_adder_properties.TestGeArProperties`` (behavioural
laws) with properties of the *statistical* layer: probability ranges,
accuracy-percentage ranges, error-magnitude caps, and the sub-adder
window structure of the error values.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders.gear import GeArAdder
from repro.adders.gear_error import (
    accuracy_percent,
    exact_error_probability,
    paper_error_probability,
)

from .test_adder_properties import gear_configs


class TestProbabilityRanges:
    @settings(max_examples=50, deadline=None)
    @given(config=gear_configs(max_n=20))
    def test_exact_probability_in_unit_interval(self, config):
        p = exact_error_probability(config)
        assert 0.0 <= p <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(config=gear_configs(max_n=16))
    def test_paper_probability_in_unit_interval(self, config):
        if config.r * (config.k - 1) > 18:
            return  # inclusion-exclusion blows up; model gated elsewhere
        p = paper_error_probability(config)
        assert 0.0 <= p <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(
        config=gear_configs(max_n=20),
        model=st.sampled_from(["exact", "paper"]),
    )
    def test_accuracy_percent_in_0_100(self, config, model):
        if model == "paper" and config.r * (config.k - 1) > 18:
            return
        acc = accuracy_percent(config, model=model)
        assert 0.0 <= acc <= 100.0

    @settings(max_examples=40, deadline=None)
    @given(config=gear_configs(max_n=14))
    def test_monte_carlo_accuracy_in_0_100(self, config):
        acc = accuracy_percent(config, model="monte_carlo")
        assert 0.0 <= acc <= 100.0


class TestErrorStructure:
    @settings(max_examples=40, deadline=None)
    @given(config=gear_configs(max_n=16), data=st.data())
    def test_error_magnitude_capped_by_missed_carries(self, config, data):
        """Sub-adder ``s`` keeps its window bits from position
        ``s*R + P`` up, so a missed carry costs exactly ``2**(s*R + P)``
        and the total deficit is bounded by the sum of those weights."""
        adder = GeArAdder(config)
        hi = (1 << config.n) - 1
        a = data.draw(st.integers(min_value=0, max_value=hi))
        b = data.draw(st.integers(min_value=0, max_value=hi))
        deficit = (a + b) - int(adder.add(a, b))
        cap = sum(1 << (s * config.r + config.p)
                  for s in range(1, config.k))
        assert 0 <= deficit <= min(cap, a + b)

    @settings(max_examples=40, deadline=None)
    @given(config=gear_configs(max_n=16), data=st.data())
    def test_error_is_sum_of_window_boundary_weights(self, config, data):
        """The deficit decomposes over the independent sub-adders: its
        set bits can only sit at the kept-window boundaries
        ``s*R + P``."""
        adder = GeArAdder(config)
        hi = (1 << config.n) - 1
        a = data.draw(st.integers(min_value=0, max_value=hi))
        b = data.draw(st.integers(min_value=0, max_value=hi))
        deficit = (a + b) - int(adder.add(a, b))
        allowed = sum(1 << (s * config.r + config.p)
                      for s in range(1, config.k))
        assert deficit & ~allowed == 0

    @settings(max_examples=30, deadline=None)
    @given(config=gear_configs(max_n=12))
    def test_more_prediction_bits_never_hurt(self, config):
        """Growing P (same N, R) only extends the speculative windows,
        so the exact error probability is non-increasing in P."""
        p_here = exact_error_probability(config)
        wider = config.p + config.r  # keeps (N - R - P) % R == 0
        if config.r + wider > config.n:
            return
        from repro.adders.gear import GeArConfig

        p_wider = exact_error_probability(
            GeArConfig(config.n, config.r, wider)
        )
        assert p_wider <= p_here + 1e-12


def _scalar_correction(config, x, y, cap):
    """Independent scalar enumeration of the Fig. 3 correction loop.

    Re-implements round-start (Jacobi-style) detection directly from
    the paper's description: every round, all boundaries observe the
    carry-outs of the *previous* round simultaneously, and an injection
    is (re)applied where the prediction bits propagate.
    """
    n, r, p, l, k = config.n, config.r, config.p, config.l, config.k
    x &= (1 << n) - 1
    y &= (1 << n) - 1
    mask_l = (1 << l) - 1
    sums = [
        ((x >> (i * r)) & mask_l) + ((y >> (i * r)) & mask_l)
        for i in range(k)
    ]
    propagates = [
        (((x >> (i * r)) ^ (y >> (i * r))) & ((1 << p) - 1)) == (1 << p) - 1
        if p else True
        for i in range(1, k)
    ]
    injected = [0] * k
    iterations = 0
    for _ in range(cap):
        couts = [(sums[i] >> l) & 1 for i in range(k - 1)]
        changed = False
        for i in range(1, k):
            want = 1 if (couts[i - 1] and propagates[i - 1]) else 0
            if want != injected[i]:
                sums[i] += want - injected[i]
                injected[i] = want
                changed = True
        if not changed:
            break
        iterations += 1
    result = sums[0] & mask_l
    for i in range(1, k):
        result |= ((sums[i] >> p) & ((1 << r) - 1)) << (i * r + p)
    result |= ((sums[-1] >> l) & 1) << n
    return result, iterations


class TestCorrectionEnumeration:
    """The vectorized correction loop against a scalar enumeration."""

    @settings(max_examples=80, deadline=None)
    @given(
        config=gear_configs(max_n=10),
        a=st.integers(min_value=0, max_value=(1 << 10) - 1),
        b=st.integers(min_value=0, max_value=(1 << 10) - 1),
        cap=st.integers(min_value=0, max_value=8),
    )
    def test_sums_and_iterations_match_scalar(self, config, a, b, cap):
        adder = GeArAdder(config)
        result, iters = adder.add_with_correction(a, b, max_iterations=cap)
        want_result, want_iters = _scalar_correction(config, a, b, cap)
        assert int(result) == want_result
        assert int(iters) == want_iters

    @settings(max_examples=80, deadline=None)
    @given(
        config=gear_configs(max_n=12),
        a=st.integers(min_value=0, max_value=(1 << 12) - 1),
        b=st.integers(min_value=0, max_value=(1 << 12) - 1),
    )
    def test_uncapped_fixpoint_is_exact_within_k_minus_1(self, config, a, b):
        adder = GeArAdder(config)
        mask = (1 << config.n) - 1
        result, iters = adder.add_with_correction(a & mask, b & mask)
        assert int(result) == (a & mask) + (b & mask)
        assert int(iters) <= config.k - 1
