"""Property-based tests: structural netlists vs behavioural models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders.fulladder import FULL_ADDER_NAMES
from repro.adders.netlist_builder import (
    build_ripple_adder_netlist,
    build_subtractor_netlist,
    evaluate_adder_netlist,
)
from repro.adders.ripple import ApproximateRippleAdder
from repro.multipliers.booth import BoothMultiplier, booth_recode


class TestAdderNetlistProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        fa=st.sampled_from(list(FULL_ADDER_NAMES)),
        lsbs=st.integers(min_value=0, max_value=6),
        a=st.integers(min_value=0, max_value=63),
        b=st.integers(min_value=0, max_value=63),
        cin=st.integers(min_value=0, max_value=1),
    )
    def test_structural_equals_behavioural_add(self, fa, lsbs, a, b, cin):
        adder = ApproximateRippleAdder(6, approx_fa=fa, num_approx_lsbs=lsbs)
        netlist = build_ripple_adder_netlist(adder)
        structural = int(
            evaluate_adder_netlist(netlist, np.array([a]), np.array([b]), cin)[0]
        )
        assert structural == int(adder.add(a, b, cin))

    @settings(max_examples=30, deadline=None)
    @given(
        fa=st.sampled_from(list(FULL_ADDER_NAMES)),
        lsbs=st.integers(min_value=0, max_value=6),
        a=st.integers(min_value=0, max_value=63),
        b=st.integers(min_value=0, max_value=63),
    )
    def test_structural_equals_behavioural_sub(self, fa, lsbs, a, b):
        adder = ApproximateRippleAdder(6, approx_fa=fa, num_approx_lsbs=lsbs)
        netlist = build_subtractor_netlist(adder)
        raw = int(
            evaluate_adder_netlist(
                netlist, np.array([a]), np.array([b]), cin=None
            )[0]
        )
        assert raw - 64 == int(adder.sub(a, b))


class TestBoothProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        width=st.sampled_from([4, 8, 12]),
        value=st.integers(min_value=-(1 << 11), max_value=(1 << 11) - 1),
    )
    def test_recode_reconstructs(self, width, value):
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        value = max(lo, min(hi, value))
        digits = booth_recode(np.array([value]), width)
        recon = sum(int(d[0]) * (4**i) for i, d in enumerate(digits))
        assert recon == value

    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(min_value=-128, max_value=127),
        b=st.integers(min_value=-128, max_value=127),
    )
    def test_exact_booth_is_signed_multiplication(self, a, b):
        mul = BoothMultiplier(8)
        assert int(mul.multiply(a, b)) == a * b

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.integers(min_value=-128, max_value=127),
        b=st.integers(min_value=-128, max_value=127),
        t=st.integers(min_value=0, max_value=4),
    )
    def test_truncation_bound_always_holds(self, a, b, t):
        mul = BoothMultiplier(8, truncate_digits=t)
        error = abs(int(mul.multiply(a, b)) - a * b)
        assert error <= mul.truncation_error_bound()


class TestHlsSoundnessProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        budget=st.integers(min_value=0, max_value=2000),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_synthesized_bound_never_violated(self, budget, seed):
        from repro.accelerators.dataflow import DataflowAccelerator
        from repro.accelerators.hls import ApproximateSynthesizer

        acc = DataflowAccelerator("t")
        xs = [acc.add_input(f"x{i}") for i in range(4)]
        s1 = acc.add_node("add", [xs[0], xs[1]])
        s2 = acc.add_node("add", [xs[2], xs[3]])
        acc.set_output(acc.add_node("add", [s1, s2]))
        result = ApproximateSynthesizer().synthesize(
            acc, {f"x{i}": (0, 255) for i in range(4)}, budget
        )
        assert result.error_bound <= budget
        rng = np.random.default_rng(seed)
        stim = {f"x{i}": rng.integers(0, 256, 500) for i in range(4)}
        exact = sum(stim[f"x{i}"] for i in range(4))
        observed = np.abs(acc.evaluate(stim) - exact)
        assert observed.max() <= result.error_bound
