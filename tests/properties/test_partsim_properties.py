"""Cross-path bit-identity of the partitioned-SIMD evaluator.

Two layers of evidence that ``eval_mode="partsim"`` is exactly the
datapath it claims to be:

* every oracle in the verification registry that exposes a ``partsim``
  path is swept against *all* of its other paths -- exhaustively when
  the input space fits, on the registry's structured stimuli otherwise;
* hypothesis draws random widths, partition layouts (via width ->
  slot selection), cell mixes, and operand distributions and checks the
  packed engines against the scalar references directly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders.fulladder import FULL_ADDER_NAMES
from repro.adders.gear import GeArAdder
from repro.adders.hetero import HeteroGeArAdder, HeteroGeArConfig
from repro.adders.ripple import MAX_WIDTH, ApproximateRippleAdder
from repro.datapath.partsim import PartitionLayout
from repro.verify.oracle import build_registry, operand_space
from repro.verify.report import Budget

from .test_adder_properties import gear_configs


def _partsim_oracles():
    return [
        oracle for oracle in build_registry().values()
        if "partsim" in oracle.paths
    ]


class TestRegistryConformance:
    def test_every_wired_family_has_partsim_paths(self):
        families = {oracle.family for oracle in _partsim_oracles()}
        assert families == {"ripple", "gear", "hetero", "recmul", "sad"}

    def test_partsim_agrees_with_every_path_exhaustively(self):
        """All-pairs bit-identity on the full input space of every
        registered component small enough to sweep (N <= 8 adders and
        multipliers are exhaustive by construction)."""
        budget = Budget(
            name="partsim-exhaustive", exhaustive_bits=17, n_samples=4000,
            mc_samples=0, gear_exhaustive_bits=0,
        )
        swept = 0
        for oracle in _partsim_oracles():
            if oracle.input_gen is not None:
                continue
            operands, exhaustive = operand_space(oracle, budget, seed=7)
            if not exhaustive:
                continue
            expected = oracle.paths["partsim"](*operands)
            for name, path in oracle.paths.items():
                assert np.array_equal(path(*operands), expected), (
                    f"{oracle.name}: partsim != {name}"
                )
            swept += 1
        assert swept >= 8

    def test_partsim_agrees_on_stratified_stimuli(self):
        """Components too wide to sweep get the registry's stratified
        operand strata (corners, sparse/dense, propagate chains)."""
        budget = Budget(
            name="partsim-sampled", exhaustive_bits=0, n_samples=3000,
            mc_samples=0, gear_exhaustive_bits=0,
        )
        for oracle in _partsim_oracles():
            operands, _ = operand_space(oracle, budget, seed=11)
            expected = oracle.paths["partsim"](*operands)
            for name, path in oracle.paths.items():
                assert np.array_equal(path(*operands), expected), (
                    f"{oracle.name}: partsim != {name}"
                )


class TestRippleCrossPath:
    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=MAX_WIDTH),
        fa=st.sampled_from(list(FULL_ADDER_NAMES)),
        lsbs_frac=st.floats(min_value=0.0, max_value=1.0),
        cin=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_width_and_layout(self, width, fa, lsbs_frac, cin, seed):
        """Random widths pick random slot layouts (8/16/32/64) and
        random approximate/accurate splits; partsim must equal the
        scalar loop everywhere."""
        lsbs = int(round(lsbs_frac * width))
        loop = ApproximateRippleAdder(
            width, approx_fa=fa, num_approx_lsbs=lsbs, eval_mode="loop"
        )
        partsim = ApproximateRippleAdder(
            width, approx_fa=fa, num_approx_lsbs=lsbs, eval_mode="partsim"
        )
        rng = np.random.default_rng(seed)
        hi = 1 << width
        a = rng.integers(0, hi, 64)
        b = rng.integers(0, hi, 64)
        # Mix in corner and propagate-chain operands.
        a[:4] = [0, hi - 1, hi - 1, hi >> 1]
        b[:4] = [0, hi - 1, 1, hi >> 1]
        b[4] = (~a[4]) & (hi - 1)
        assert np.array_equal(
            loop.add(a, b, cin), partsim.add(a, b, cin)
        )


class TestGeArCrossPath:
    @settings(max_examples=60, deadline=None)
    @given(
        config=gear_configs(max_n=24),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_configs(self, config, seed):
        window = GeArAdder(config)
        partsim = GeArAdder(config, eval_mode="partsim")
        rng = np.random.default_rng(seed)
        hi = 1 << config.n
        a = rng.integers(0, hi, 64)
        b = rng.integers(0, hi, 64)
        a[:2] = [hi - 1, 0]
        b[:2] = [1, 0]
        assert np.array_equal(window.add(a, b), partsim.add(a, b))


def hetero_segments():
    """Strategy for valid heterogeneous segment tuples.

    Block 0 has no prediction; later blocks predict at most down to bit
    0 (``p_i <= t_i``).
    """

    @st.composite
    def build(draw):
        k = draw(st.integers(min_value=2, max_value=4))
        segments = [(draw(st.integers(min_value=1, max_value=5)), 0)]
        for _ in range(k - 1):
            t = sum(r for r, _ in segments)
            r = draw(st.integers(min_value=1, max_value=5))
            p = draw(st.integers(min_value=0, max_value=min(t, 6)))
            segments.append((r, p))
        if sum(r for r, _ in segments) > 20:
            return None
        return tuple(segments)

    return build().filter(lambda s: s is not None)


class TestHeteroCrossPath:
    @settings(max_examples=60, deadline=None)
    @given(
        segments=hetero_segments(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_segmentations(self, segments, seed):
        config = HeteroGeArConfig(segments)
        window = HeteroGeArAdder(config)
        partsim = HeteroGeArAdder(config, eval_mode="partsim")
        rng = np.random.default_rng(seed)
        hi = 1 << config.n
        a = rng.integers(0, hi, 64)
        b = rng.integers(0, hi, 64)
        a[:2] = [hi - 1, 0]
        b[:2] = [1, hi - 1]
        assert np.array_equal(window.add(a, b), partsim.add(a, b))


class TestLayoutRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(
        field_bits=st.integers(min_value=1, max_value=63),
        count=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_pack_unpack_identity(self, field_bits, count, seed):
        layout = PartitionLayout(field_bits)
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << field_bits, (3, count))
        words = layout.pack(values)
        assert np.array_equal(layout.unpack(words, count), values)
