"""Property-based tests (hypothesis) for the adder models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders.fulladder import FULL_ADDER_NAMES, FULL_ADDERS
from repro.adders.gear import GeArAdder, GeArConfig
from repro.adders.ripple import ApproximateRippleAdder


def gear_configs(max_n: int = 20):
    """Strategy generating valid approximate GeAr configurations."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=4, max_value=max_n))
        r = draw(st.integers(min_value=1, max_value=n - 1))
        p = draw(st.integers(min_value=1, max_value=n - r))
        p += (n - r - p) % r  # snap P upward so R divides N - L
        if r + p > n:
            p -= r
        if p < 1 or r + p > n or (n - r - p) % r:
            return None
        return GeArConfig(n, r, p)

    return build().filter(lambda c: c is not None and c.k >= 2 and c.p >= 1)


class TestRippleProperties:
    @given(
        a=st.integers(min_value=0, max_value=(1 << 16) - 1),
        b=st.integers(min_value=0, max_value=(1 << 16) - 1),
        cin=st.integers(min_value=0, max_value=1),
    )
    def test_accurate_ripple_is_integer_addition(self, a, b, cin):
        adder = ApproximateRippleAdder(16)
        assert int(adder.add(a, b, cin)) == a + b + cin

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        fa=st.sampled_from([n for n in FULL_ADDER_NAMES if n != "AccuFA"]),
        k=st.integers(min_value=0, max_value=8),
    )
    def test_approx_error_bounded_by_lsb_window(self, a, b, fa, k):
        """Errors never escape past one carry position above the
        approximated LSB window."""
        adder = ApproximateRippleAdder(8, approx_fa=fa, num_approx_lsbs=k)
        error = abs(int(adder.add(a, b)) - (a + b))
        assert error < (1 << (k + 1))

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        fa=st.sampled_from(list(FULL_ADDER_NAMES)),
        k=st.integers(min_value=0, max_value=8),
    )
    def test_msbs_above_window_preserved(self, a, b, fa, k):
        """Bits strictly above position k+1 match exact addition."""
        adder = ApproximateRippleAdder(8, approx_fa=fa, num_approx_lsbs=k)
        approx = int(adder.add(a, b))
        exact = a + b
        assert abs(approx - exact) >> (k + 1) == 0

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        fa=st.sampled_from(list(FULL_ADDER_NAMES)),
        k=st.integers(min_value=0, max_value=8),
    )
    def test_sub_is_add_of_complement(self, a, b, fa, k):
        adder = ApproximateRippleAdder(8, approx_fa=fa, num_approx_lsbs=k)
        raw = int(adder.add(a, (~b) & 0xFF, cin=1))
        assert int(adder.sub(a, b)) == raw - 256


class TestRippleSumBounds:
    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        fa=st.sampled_from(list(FULL_ADDER_NAMES)),
        k=st.integers(min_value=0, max_value=8),
        cin=st.integers(min_value=0, max_value=1),
    )
    def test_result_fits_width_plus_one_bits(self, a, b, fa, k, cin):
        """Whatever the cells garble, the datapath is 9 wires wide."""
        adder = ApproximateRippleAdder(8, approx_fa=fa, num_approx_lsbs=k)
        assert 0 <= int(adder.add(a, b, cin)) < (1 << 9)

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        fa=st.sampled_from([n for n in FULL_ADDER_NAMES if n != "AccuFA"]),
        k=st.integers(min_value=1, max_value=8),
    )
    def test_error_cap_matches_oracle_registry(self, a, b, fa, k):
        """The inclusive cap declared by the verification oracles,
        ``|error| <= 2**(k+1) - 1``, holds for every cell and depth."""
        adder = ApproximateRippleAdder(8, approx_fa=fa, num_approx_lsbs=k)
        error = abs(int(adder.add(a, b)) - (a + b))
        assert error <= (1 << (k + 1)) - 1

    @settings(deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=(1 << 12) - 1),
        b=st.integers(min_value=0, max_value=(1 << 12) - 1),
        fa=st.sampled_from(["ApxFA2"]),
        k=st.integers(min_value=0, max_value=12),
    )
    def test_symmetric_cells_commute(self, a, b, fa, k):
        """AccuFA and ApxFA2 have A/B-symmetric tables, so any adder
        built purely from them is commutative (the other cells are not,
        which tests/verify's negative controls pin down)."""
        adder = ApproximateRippleAdder(12, approx_fa=fa, num_approx_lsbs=k)
        assert int(adder.add(a, b)) == int(adder.add(b, a))


class TestFullAdderProperties:
    @given(
        name=st.sampled_from(list(FULL_ADDER_NAMES)),
        a=st.integers(0, 1),
        b=st.integers(0, 1),
        c=st.integers(0, 1),
    )
    def test_netlist_agrees_with_truth_table(self, name, a, b, c):
        fa = FULL_ADDERS[name]
        nl = fa.netlist()
        out = nl.evaluate(
            {"a": np.array([a]), "b": np.array([b]), "cin": np.array([c])}
        )
        s, co = fa.evaluate(a, b, c)
        assert int(out["sum"][0]) == int(s)
        assert int(out["cout"][0]) == int(co)


class TestGeArProperties:
    @settings(max_examples=40, deadline=None)
    @given(config=gear_configs(), data=st.data())
    def test_correction_recovers_exact_sum(self, config, data):
        adder = GeArAdder(config)
        hi = (1 << config.n) - 1
        a = data.draw(st.integers(min_value=0, max_value=hi))
        b = data.draw(st.integers(min_value=0, max_value=hi))
        result, _ = adder.add_with_correction(a, b)
        assert int(result) == a + b

    @settings(max_examples=40, deadline=None)
    @given(config=gear_configs(), data=st.data())
    def test_approx_sum_never_exceeds_exact(self, config, data):
        """GeAr only loses carries: approx <= exact, and the deficit is a
        sum of distinct powers of two at sub-adder result boundaries."""
        adder = GeArAdder(config)
        hi = (1 << config.n) - 1
        a = data.draw(st.integers(min_value=0, max_value=hi))
        b = data.draw(st.integers(min_value=0, max_value=hi))
        approx = int(adder.add(a, b))
        assert approx <= a + b

    @settings(max_examples=40, deadline=None)
    @given(config=gear_configs(), data=st.data())
    def test_first_window_bits_always_exact(self, config, data):
        adder = GeArAdder(config)
        hi = (1 << config.n) - 1
        a = data.draw(st.integers(min_value=0, max_value=hi))
        b = data.draw(st.integers(min_value=0, max_value=hi))
        mask = (1 << config.l) - 1
        assert int(adder.add(a, b)) & mask == (a + b) & mask

    @settings(max_examples=30, deadline=None)
    @given(config=gear_configs(max_n=14))
    def test_error_probability_models_ordered(self, config):
        """Paper's IE model never exceeds the exact DP probability."""
        from repro.adders.gear_error import (
            exact_error_probability,
            paper_error_probability,
        )

        if config.r * (config.k - 1) > 18:
            return  # IE intractable; skip silently
        paper = paper_error_probability(config)
        exact = exact_error_probability(config)
        assert paper <= exact + 1e-9


class TestFastPathProperties:
    """Hypothesis spot checks: fast path == legacy loop at widths 16/32."""

    @settings(max_examples=60, deadline=None)
    @given(
        fa=st.sampled_from(list(FULL_ADDER_NAMES)),
        k=st.integers(min_value=0, max_value=16),
        cin=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_width16_batches_agree(self, fa, k, cin, seed):
        fast = ApproximateRippleAdder(16, approx_fa=fa, num_approx_lsbs=k)
        loop = ApproximateRippleAdder(
            16, approx_fa=fa, num_approx_lsbs=k, eval_mode="loop"
        )
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 1 << 16, 256)
        b = rng.integers(0, 1 << 16, 256)
        assert np.array_equal(fast.add(a, b, cin), loop.add(a, b, cin))

    @settings(max_examples=25, deadline=None)
    @given(
        fa=st.sampled_from(["ApxFA1", "ApxFA3", "ApxFA5"]),
        k=st.integers(min_value=0, max_value=24),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_width32_batches_agree(self, fa, k, seed):
        fast = ApproximateRippleAdder(32, approx_fa=fa, num_approx_lsbs=k)
        loop = ApproximateRippleAdder(
            32, approx_fa=fa, num_approx_lsbs=k, eval_mode="loop"
        )
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 1 << 32, 128)
        b = rng.integers(0, 1 << 32, 128)
        assert np.array_equal(fast.add(a, b), loop.add(a, b))
        assert np.array_equal(fast.sub(a, b), loop.sub(a, b))
