"""Property-based tests (hypothesis) for the multiplier models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multipliers.mul2x2 import MULTIPLIER_2X2_NAMES, multiplier_2x2
from repro.multipliers.recursive import RecursiveMultiplier
from repro.multipliers.wallace import WallaceMultiplier


class TestMul2x2Properties:
    @given(
        name=st.sampled_from(list(MULTIPLIER_2X2_NAMES)),
        a=st.integers(0, 3),
        b=st.integers(0, 3),
    )
    def test_commutative(self, name, a, b):
        spec = multiplier_2x2(name)
        assert int(spec.multiply(a, b)) == int(spec.multiply(b, a))

    @given(
        name=st.sampled_from(list(MULTIPLIER_2X2_NAMES)),
        a=st.integers(0, 3),
        b=st.integers(0, 3),
    )
    def test_zero_annihilates(self, name, a, b):
        spec = multiplier_2x2(name)
        assert int(spec.multiply(0, b)) == 0
        assert int(spec.multiply(a, 0)) == 0

    @given(name=st.sampled_from(list(MULTIPLIER_2X2_NAMES)), a=st.integers(0, 3),
           b=st.integers(0, 3))
    def test_error_within_published_max(self, name, a, b):
        spec = multiplier_2x2(name)
        assert abs(int(spec.multiply(a, b)) - a * b) <= spec.max_error_value


class TestRecursiveProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        width=st.sampled_from([2, 4, 8, 16]),
        a=st.integers(min_value=0, max_value=(1 << 16) - 1),
        b=st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    def test_accurate_configuration_exact(self, width, a, b):
        mul = RecursiveMultiplier(width, leaf_policy="none")
        mask = (1 << width) - 1
        assert int(mul.multiply(a, b)) == (a & mask) * (b & mask)

    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        leaf=st.sampled_from(["ApxMulSoA", "ApxMulOur"]),
    )
    def test_approximate_commutative(self, a, b, leaf):
        """The recursive structure is symmetric, so approximation
        preserves commutativity."""
        mul = RecursiveMultiplier(8, leaf_mul=leaf, leaf_policy="all")
        assert int(mul.multiply(a, b)) == int(mul.multiply(b, a))

    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    def test_zero_annihilates(self, a, b):
        mul = RecursiveMultiplier(8, leaf_policy="all")
        assert int(mul.multiply(a, 0)) == 0
        assert int(mul.multiply(0, b)) == 0

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    def test_our_leaf_error_bounded(self, a, b):
        """Each ApxMulOur leaf errs by at most 1; 16 leaves with exact
        adders bound the 8x8 error by the sum of leaf weights."""
        mul = RecursiveMultiplier(8, leaf_mul="ApxMulOur", leaf_policy="all")
        error = abs(int(mul.multiply(a, b)) - a * b)
        # Leaf at offsets (i, j) has weight 2**(2i + 2j); worst case all
        # 16 leaves err by 1 simultaneously.
        bound = sum(
            1 << (2 * i + 2 * j) for i in range(4) for j in range(4)
        )
        assert error <= bound


class TestWallaceProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(min_value=2, max_value=12),
        a=st.integers(min_value=0, max_value=(1 << 12) - 1),
        b=st.integers(min_value=0, max_value=(1 << 12) - 1),
    )
    def test_exact_configuration(self, width, a, b):
        mul = WallaceMultiplier(width)
        mask = (1 << width) - 1
        assert int(mul.multiply(a, b)) == (a & mask) * (b & mask)

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        t=st.integers(min_value=1, max_value=8),
    )
    def test_truncation_never_overestimates(self, a, b, t):
        mul = WallaceMultiplier(8, truncate_columns=t)
        assert int(mul.multiply(a, b)) <= a * b
