"""Published characterization constants transcribed from the paper.

The paper's absolute area/power numbers come from transistor-level ASIC
synthesis (Synopsys DC + PrimeTime on the IMPACT designs); our gate-level
substrate reproduces the *relative ordering* but not the absolute
values.  For side-by-side reporting, the published constants are kept
here with provenance notes.

Transcription notes:
* Table III (1-bit full adders): the area row reads
  ``4.41 / 4.23 / 1.94 / 1.59 / 1.76 / 0`` GE and the error-case row
  ``0 / 2 / 2 / 3 / 3 / 4``.  The power row is partially garbled in the
  source scan; the reading used here is
  ``1130 / 771 / 294 / 198 / 416 / 0`` nW (a stray ``73`` token in the
  scan is treated as an artifact).
* Fig. 5 (2x2 multipliers): table transcribed verbatim.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "TABLE_III_AREA_GE",
    "TABLE_III_POWER_NW",
    "TABLE_III_ERROR_CASES",
    "FIG5_AREA_GE",
    "FIG5_POWER_NW",
    "FIG5_ERROR_CASES",
    "FIG5_MAX_ERROR",
]

#: Table III, "Area [GE]" row.
TABLE_III_AREA_GE: Dict[str, float] = {
    "AccuFA": 4.41,
    "ApxFA1": 4.23,
    "ApxFA2": 1.94,
    "ApxFA3": 1.59,
    "ApxFA4": 1.76,
    "ApxFA5": 0.0,
}

#: Table III, "Power [nW]" row (see transcription note above).
TABLE_III_POWER_NW: Dict[str, float] = {
    "AccuFA": 1130.0,
    "ApxFA1": 771.0,
    "ApxFA2": 294.0,
    "ApxFA3": 198.0,
    "ApxFA4": 416.0,
    "ApxFA5": 0.0,
}

#: Table III, "#Error Cases" row.
TABLE_III_ERROR_CASES: Dict[str, int] = {
    "AccuFA": 0,
    "ApxFA1": 2,
    "ApxFA2": 2,
    "ApxFA3": 3,
    "ApxFA4": 3,
    "ApxFA5": 4,
}

#: Fig. 5 table, "Area [GE]" row.
FIG5_AREA_GE: Dict[str, float] = {
    "AccMul": 6.880,
    "ApxMulSoA": 3.704,
    "CfgMulSoA": 7.232,
    "ApxMulOur": 4.939,
    "CfgMulOur": 6.350,
}

#: Fig. 5 table, "Power [nW]" row.
FIG5_POWER_NW: Dict[str, float] = {
    "AccMul": 542.9,
    "ApxMulSoA": 363.0,
    "CfgMulSoA": 525.0,
    "ApxMulOur": 262.0,
    "CfgMulOur": 379.0,
}

#: Fig. 5 table, "No. of Error Cases" row (configurables are exact-capable).
FIG5_ERROR_CASES: Dict[str, int] = {
    "AccMul": 0,
    "ApxMulSoA": 1,
    "ApxMulOur": 3,
}

#: Fig. 5 table, "Max. Error Value" row.
FIG5_MAX_ERROR: Dict[str, int] = {
    "AccMul": 0,
    "ApxMulSoA": 2,
    "ApxMulOur": 1,
}
