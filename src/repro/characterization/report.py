"""ASCII table / CSV rendering for characterization records.

Every benchmark prints its reproduced table/figure data through these
helpers so outputs are uniform and machine-diffable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_records", "records_to_csv"]


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Render rows as a fixed-width ASCII table.

    Example:
        >>> print(format_table(["a", "b"], [[1, 2.5]]))
        a | b
        --+----
        1 | 2.5
    """
    cells = [[_cell(v) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells), 1)
        if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_records(
    records: Sequence[Dict], columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of record dictionaries as an ASCII table."""
    if not records:
        return title or "(no records)"
    columns = list(columns) if columns else list(records[0].keys())
    rows = [[record.get(col, "") for col in columns] for record in records]
    return format_table(columns, rows, title=title)


def records_to_csv(
    records: Sequence[Dict], columns: Sequence[str] | None = None
) -> str:
    """Serialize records to a simple CSV string (no quoting of commas)."""
    if not records:
        return ""
    columns = list(columns) if columns else list(records[0].keys())
    lines = [",".join(columns)]
    for record in records:
        lines.append(",".join(_cell(record.get(col, "")) for col in columns))
    return "\n".join(lines)
