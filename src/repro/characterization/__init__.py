"""Published paper constants and uniform report rendering."""

from . import paperdata
from .report import format_records, format_table, records_to_csv

__all__ = ["paperdata", "format_records", "format_table", "records_to_csv"]
