"""Design-space sweeps (paper Table IV, Fig. 4, Fig. 6).

:func:`explore_gear_space` enumerates every valid ``(R, P)`` of an
N-bit GeAr adder, evaluates the chosen accuracy model and the FPGA
LUT area proxy, and returns records suitable for
:mod:`repro.dse.pareto` and :mod:`repro.dse.selection` -- the Table IV /
Fig. 4 data.  :func:`explore_multiplier_space` does the same for the
recursive multiplier family of Fig. 6.

Both sweeps submit through the campaign engine
(:mod:`repro.campaign`): one task per configuration, with a
deterministic per-task seed derived from the sweep seed and the
configuration identity.  That makes Monte Carlo rows **reproducible**
(two sweeps with the same ``seed``/``n_samples`` agree bit for bit,
regardless of ``n_workers``) and makes large sweeps cacheable and
resumable via ``cache_dir``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..adders.gear import GeArConfig
from ..campaign import CampaignResult, CampaignTask, derive_seed, run_campaign
from ..multipliers.characterize import fig6_multiplier_family

__all__ = [
    "explore_gear_space",
    "explore_gear_space_campaign",
    "explore_multiplier_space",
    "gear_space_tasks",
]

_MODELS = ("exact", "paper", "monte_carlo")


def gear_space_tasks(
    n: int = 11,
    model: str = "exact",
    include_delay: bool = True,
    n_samples: int = 200_000,
    seed: int = 0,
) -> List[CampaignTask]:
    """One ``gear_dse_row`` campaign task per valid (R, P) configuration.

    Each task's seed is derived from ``(seed, n, r, p, model)``, so a
    row's Monte Carlo stream is pinned by what the row *is* -- not by
    enumeration order or worker count.
    """
    if model not in _MODELS:
        raise ValueError(f"unknown model {model!r}; known: {_MODELS}")
    tasks = []
    for config in GeArConfig.all_valid(n):
        params = {
            "n": config.n,
            "r": config.r,
            "p": config.p,
            "model": model,
            "include_delay": include_delay,
        }
        if model == "monte_carlo":
            params["n_samples"] = n_samples
        tasks.append(
            CampaignTask(
                kind="gear_dse_row",
                params=params,
                seed=derive_seed(seed, "gear_dse_row", config.n, config.r,
                                 config.p, model),
            )
        )
    return tasks


def explore_gear_space_campaign(
    n: int = 11,
    model: str = "exact",
    include_delay: bool = True,
    n_samples: int = 200_000,
    seed: int = 0,
    n_workers: int = 1,
    cache_dir: str | None = None,
    progress=None,
) -> CampaignResult:
    """Run the GeAr design-space sweep as a campaign.

    Returns the raw :class:`~repro.campaign.CampaignResult` (records in
    ``.results``, run metrics in ``.stats``); records are sorted by
    ``(r, p)`` like :func:`explore_gear_space`.
    """
    tasks = gear_space_tasks(
        n, model=model, include_delay=include_delay,
        n_samples=n_samples, seed=seed,
    )
    result = run_campaign(
        tasks, n_workers=n_workers, cache_dir=cache_dir, progress=progress
    )
    order = sorted(
        range(len(result.results)),
        key=lambda i: (result.results[i]["r"], result.results[i]["p"]),
    )
    result.tasks = [result.tasks[i] for i in order]
    result.results = [result.results[i] for i in order]
    return result


def explore_gear_space(
    n: int = 11,
    model: str = "exact",
    include_delay: bool = True,
    n_samples: int = 200_000,
    seed: int = 0,
    n_workers: int = 1,
    cache_dir: str | None = None,
) -> List[Dict]:
    """Characterize every valid approximate GeAr configuration of width n.

    Args:
        n: Operand width (the paper sweeps N = 11).
        model: Accuracy model -- ``"exact"`` (DP over generate/propagate
            strings), ``"paper"`` (inclusion-exclusion) or
            ``"monte_carlo"``.
        include_delay: Also record the critical-path delay proxy.
        n_samples: Monte Carlo sample count per configuration
            (``model="monte_carlo"`` only).
        seed: Sweep seed; per-row seeds derive from it deterministically,
            so repeated sweeps reproduce Table IV bit for bit.
        n_workers: Worker processes for the campaign (1 = serial).
        cache_dir: Optional campaign result cache (warm start / resume).

    Returns:
        One record per configuration with keys ``r``, ``p``, ``k``,
        ``l``, ``accuracy_percent``, ``lut_count``, ``area_ge`` (and
        ``delay_ps``), sorted by (r, p).
    """
    return list(
        explore_gear_space_campaign(
            n, model=model, include_delay=include_delay,
            n_samples=n_samples, seed=seed,
            n_workers=n_workers, cache_dir=cache_dir,
        ).results
    )


def explore_multiplier_space(
    widths: Iterable[int] = (4, 8),
    n_samples: int = 30_000,
    n_workers: int = 1,
    cache_dir: str | None = None,
) -> List[Dict]:
    """Characterization records for the recursive-multiplier family."""
    return [
        rec.as_row()
        for rec in fig6_multiplier_family(
            widths, n_samples=n_samples,
            n_workers=n_workers, cache_dir=cache_dir,
        )
    ]
