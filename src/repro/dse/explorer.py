"""Design-space sweeps (paper Table IV, Fig. 4, Fig. 6).

:func:`explore_gear_space` enumerates every valid ``(R, P)`` of an
N-bit GeAr adder, evaluates the analytic accuracy model and the FPGA
LUT area proxy, and returns records suitable for
:mod:`repro.dse.pareto` and :mod:`repro.dse.selection` -- the Table IV /
Fig. 4 data.  :func:`explore_multiplier_space` does the same for the
recursive multiplier family of Fig. 6.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..adders.gear import GeArAdder, GeArConfig
from ..adders.gear_error import exact_error_probability, monte_carlo_error_rate
from ..multipliers.characterize import fig6_multiplier_family

__all__ = ["explore_gear_space", "explore_multiplier_space"]


def explore_gear_space(
    n: int = 11, model: str = "exact", include_delay: bool = True
) -> List[Dict]:
    """Characterize every valid approximate GeAr configuration of width n.

    Args:
        n: Operand width (the paper sweeps N = 11).
        model: Accuracy model -- ``"exact"`` (DP over generate/propagate
            strings) or ``"monte_carlo"``.
        include_delay: Also record the critical-path delay proxy.

    Returns:
        One record per configuration with keys ``r``, ``p``, ``k``,
        ``l``, ``accuracy_percent``, ``lut_count``, ``area_ge`` (and
        ``delay_ps``), sorted by (r, p).
    """
    records: List[Dict] = []
    for config in GeArConfig.all_valid(n):
        if model == "exact":
            p_err = exact_error_probability(config)
        elif model == "monte_carlo":
            p_err = monte_carlo_error_rate(config)
        else:
            raise ValueError(f"unknown model {model!r}")
        adder = GeArAdder(config)
        record = {
            "name": config.name,
            "n": config.n,
            "r": config.r,
            "p": config.p,
            "k": config.k,
            "l": config.l,
            "accuracy_percent": 100.0 * (1.0 - p_err),
            "lut_count": adder.lut_count,
            "area_ge": adder.area_ge,
        }
        if include_delay:
            record["delay_ps"] = adder.delay_ps
        records.append(record)
    records.sort(key=lambda rec: (rec["r"], rec["p"]))
    return records


def explore_multiplier_space(
    widths: Iterable[int] = (4, 8), n_samples: int = 30_000
) -> List[Dict]:
    """Characterization records for the recursive-multiplier family."""
    return [
        rec.as_row() for rec in fig6_multiplier_family(widths, n_samples=n_samples)
    ]
