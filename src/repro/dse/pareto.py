"""Pareto-front utilities for design-space exploration (paper Fig. 7).

The paper's methodology selects "a set of pareto-optimal points ... in
the design space exploration process".  These helpers are generic over
record dictionaries so the same code explores adders (Table IV, Fig. 4),
multipliers (Fig. 6), and accelerator configurations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["dominates", "pareto_front", "pareto_indices"]

#: Objective direction: True = minimize, False = maximize.
Direction = bool


def _objective_vector(
    record: Dict, objectives: Sequence[Tuple[str, Direction]]
) -> Tuple[float, ...]:
    vector = []
    for key, minimize in objectives:
        value = float(record[key])
        vector.append(value if minimize else -value)
    return tuple(vector)


def dominates(
    a: Dict, b: Dict, objectives: Sequence[Tuple[str, Direction]]
) -> bool:
    """True if record ``a`` Pareto-dominates record ``b``.

    Args:
        a: Candidate record (mapping with the objective keys).
        b: Record possibly dominated.
        objectives: ``(key, minimize)`` pairs; ``minimize=False`` means
            the objective is maximized.
    """
    va = _objective_vector(a, objectives)
    vb = _objective_vector(b, objectives)
    return all(x <= y for x, y in zip(va, vb)) and any(
        x < y for x, y in zip(va, vb)
    )


def pareto_indices(
    records: Sequence[Dict], objectives: Sequence[Tuple[str, Direction]]
) -> List[int]:
    """Indices of the non-dominated records (stable order)."""
    if not objectives:
        raise ValueError("need at least one objective")
    front = []
    for i, candidate in enumerate(records):
        if not any(
            dominates(other, candidate, objectives)
            for j, other in enumerate(records)
            if j != i
        ):
            front.append(i)
    return front


def pareto_front(
    records: Sequence[Dict], objectives: Sequence[Tuple[str, Direction]]
) -> List[Dict]:
    """The non-dominated subset of ``records``.

    Example:
        >>> recs = [{"area": 1, "acc": 90}, {"area": 2, "acc": 80},
        ...         {"area": 2, "acc": 95}]
        >>> front = pareto_front(recs, [("area", True), ("acc", False)])
        >>> [r["acc"] for r in front]
        [90, 95]
    """
    return [records[i] for i in pareto_indices(records, objectives)]
