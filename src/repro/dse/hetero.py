"""Heterogeneous block-adder design-space exploration.

The homogeneous GeAr sweep (:func:`repro.dse.explore_gear_space`)
reproduces the paper's Table IV front.  This module Pareto-searches the
much larger *heterogeneous* space -- per-segment ``(r_i, p_i)`` choices,
Farahmand et al. (arXiv 2106.08800) -- which is only tractable because
every design point is evaluated by the exact PMF-convolution engine
(:mod:`repro.errors.analytic`) instead of simulation.

The sweep always unions the homogeneous embeddings into the candidate
set (tagged ``source="gear"``), so the heterogeneous front *provably*
matches or dominates the homogeneous front at equal area: every
homogeneous design is also a heterogeneous candidate.  The interesting
output is where the front strictly improves -- unequal blocks spending
prediction bits only where carries matter.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..adders.gear import GeArConfig
from ..adders.hetero import HeteroGeArConfig
from ..campaign import CampaignTask, derive_seed, run_campaign
from .pareto import dominates, pareto_front

__all__ = [
    "explore_hetero_space",
    "hetero_front_report",
    "hetero_space_tasks",
]

#: Table IV objectives: smaller area, higher accuracy.
OBJECTIVES: Tuple[Tuple[str, bool], ...] = (
    ("lut_count", True),
    ("accuracy_percent", False),
)


def hetero_space_tasks(
    n: int = 8,
    max_segments: int = 3,
    max_p: int | None = None,
    min_p: int = 0,
    include_homogeneous: bool = True,
    seed: int = 0,
) -> List[CampaignTask]:
    """One ``analytic`` campaign task per candidate configuration.

    Enumerates :meth:`HeteroGeArConfig.all_valid` under the given caps
    and (by default) the homogeneous ``GeArConfig.all_valid`` embeddings
    -- including those whose segment count exceeds ``max_segments``, so
    the comparison against the full Table IV front is fair.  Duplicate
    segment layouts keep their homogeneous tag.
    """
    candidates: Dict[Tuple[Tuple[int, int], ...], str] = {}
    for cfg in HeteroGeArConfig.all_valid(
        n, max_segments=max_segments, max_p=max_p, min_p=min_p
    ):
        candidates[cfg.segments] = "hetero"
    if include_homogeneous:
        for gear in GeArConfig.all_valid(n):
            candidates[HeteroGeArConfig.from_gear(gear).segments] = "gear"
    tasks = []
    for segments, source in sorted(candidates.items()):
        spec = [list(seg) for seg in segments]
        tasks.append(
            CampaignTask(
                kind="analytic",
                params={"segments": spec, "source": source},
                seed=derive_seed(seed, "analytic", n, str(segments)),
            )
        )
    return tasks


def explore_hetero_space(
    n: int = 8,
    max_segments: int = 3,
    max_p: int | None = None,
    min_p: int = 0,
    include_homogeneous: bool = True,
    seed: int = 0,
    n_workers: int = 1,
    cache_dir: str | None = None,
    progress=None,
) -> List[Dict]:
    """Exact analytic records for the heterogeneous design space.

    Args:
        n: Operand width.
        max_segments: Cap on heterogeneous segment count (the space
            grows fast; homogeneous embeddings are exempt).
        max_p: Cap on per-segment prediction depth (default: no cap).
        min_p: Floor on per-segment prediction depth.
        include_homogeneous: Also evaluate every valid homogeneous GeAr
            embedding (``source="gear"``), guaranteeing the combined
            front dominates the Table IV front.
        seed: Sweep seed (cache identity only -- records are exact).
        n_workers: Worker processes for the campaign (1 = serial).
        cache_dir: Optional campaign result cache.
        progress: Optional campaign progress callback.

    Returns:
        One record per configuration (see the ``analytic`` task kind),
        each tagged with its ``source``, sorted by ``lut_count`` then
        descending accuracy.
    """
    tasks = hetero_space_tasks(
        n, max_segments=max_segments, max_p=max_p, min_p=min_p,
        include_homogeneous=include_homogeneous, seed=seed,
    )
    result = run_campaign(
        tasks, n_workers=n_workers, cache_dir=cache_dir, progress=progress
    )
    records = []
    for task, record in zip(result.tasks, result.results):
        tagged = dict(record)
        tagged["source"] = task.params["source"]
        records.append(tagged)
    records.sort(key=lambda r: (r["lut_count"], -r["accuracy_percent"]))
    return records


def hetero_front_report(records: Sequence[Dict]) -> Dict:
    """Compare the combined Pareto front against the homogeneous one.

    Args:
        records: Output of :func:`explore_hetero_space` (must contain
            ``source``-tagged records, with ``source="gear"`` rows for
            the homogeneous baseline).

    Returns:
        A dict with the combined ``front``, the homogeneous
        ``gear_front``, ``matches_or_dominates`` (True when every
        homogeneous front point is matched or beaten at its area), and
        ``strict_wins`` -- heterogeneous front records that strictly
        dominate at least one homogeneous front point.
    """
    records = list(records)
    gear_records = [r for r in records if r.get("source") == "gear"]
    if not gear_records:
        raise ValueError(
            "records carry no source='gear' rows; run explore_hetero_space "
            "with include_homogeneous=True"
        )
    front = pareto_front(records, OBJECTIVES)
    gear_front = pareto_front(gear_records, OBJECTIVES)
    matches = all(
        any(
            f["lut_count"] <= g["lut_count"]
            and f["accuracy_percent"] >= g["accuracy_percent"]
            for f in front
        )
        for g in gear_front
    )
    strict_wins = [
        f
        for f in front
        if f.get("source") == "hetero"
        and any(dominates(f, g, OBJECTIVES) for g in gear_front)
    ]
    return {
        "front": front,
        "gear_front": gear_front,
        "matches_or_dominates": matches,
        "strict_wins": strict_wins,
    }
