"""Design-space exploration: sweeps, Pareto fronts, constrained selection."""

from .explorer import explore_gear_space, explore_multiplier_space
from .hetero import explore_hetero_space, hetero_front_report, hetero_space_tasks
from .pareto import dominates, pareto_front, pareto_indices
from .selection import filter_records, select_max_accuracy, select_min_area

__all__ = [
    "explore_gear_space",
    "explore_multiplier_space",
    "explore_hetero_space",
    "hetero_front_report",
    "hetero_space_tasks",
    "dominates",
    "pareto_front",
    "pareto_indices",
    "filter_records",
    "select_max_accuracy",
    "select_min_area",
]
