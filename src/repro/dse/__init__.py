"""Design-space exploration: sweeps, Pareto fronts, constrained selection."""

from .explorer import explore_gear_space, explore_multiplier_space
from .pareto import dominates, pareto_front, pareto_indices
from .selection import filter_records, select_max_accuracy, select_min_area

__all__ = [
    "explore_gear_space",
    "explore_multiplier_space",
    "dominates",
    "pareto_front",
    "pareto_indices",
    "filter_records",
    "select_max_accuracy",
    "select_min_area",
]
