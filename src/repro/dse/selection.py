"""Constraint-based configuration selection (paper Sec. 4.2 / Fig. 4).

The paper walks two selection queries over the N=11 GeAr space:

* "for the constraint of maximum accuracy percentage, GeAr (R=1, P=9)
  can be selected" -> :func:`select_max_accuracy`;
* "to find a low-area adder configuration with at least 90% accuracy
  ... R=3 and P=5" -> :func:`select_min_area` with
  ``min_accuracy_percent=90``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["select_max_accuracy", "select_min_area", "filter_records"]


def filter_records(
    records: Sequence[Dict], **minimums: float
) -> List[Dict]:
    """Keep records whose ``key`` is >= the given minimum for each kwarg.

    Example:
        >>> recs = [{"accuracy_percent": 95}, {"accuracy_percent": 80}]
        >>> len(filter_records(recs, accuracy_percent=90))
        1
    """
    kept = []
    for record in records:
        if all(float(record[key]) >= bound for key, bound in minimums.items()):
            kept.append(record)
    return kept


def select_max_accuracy(records: Sequence[Dict]) -> Dict:
    """The configuration with the highest accuracy (ties -> least area)."""
    if not records:
        raise ValueError("no records to select from")
    return max(
        records,
        key=lambda rec: (
            float(rec["accuracy_percent"]),
            -float(rec.get("lut_count", rec.get("area_ge", 0.0))),
        ),
    )


def select_min_area(
    records: Sequence[Dict],
    min_accuracy_percent: float,
    area_key: str = "lut_count",
) -> Dict:
    """Least-area configuration meeting an accuracy bound.

    Args:
        records: Exploration records (e.g. from
            :func:`repro.dse.explorer.explore_gear_space`).
        min_accuracy_percent: Quality constraint.
        area_key: Which area proxy to minimize (ties -> higher accuracy).

    Raises:
        ValueError: If no configuration meets the bound.
    """
    feasible = filter_records(records, accuracy_percent=min_accuracy_percent)
    if not feasible:
        raise ValueError(
            f"no configuration reaches {min_accuracy_percent}% accuracy"
        )
    return min(
        feasible,
        key=lambda rec: (
            float(rec[area_key]),
            -float(rec["accuracy_percent"]),
        ),
    )
