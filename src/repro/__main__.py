"""Make the package runnable: ``python -m repro`` == ``python -m repro.cli``.

The service tests (and operators) launch ``python -m repro serve`` as a
subprocess; routing through :func:`repro.cli.main` keeps one entry point.
"""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
