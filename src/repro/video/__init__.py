"""HEVC-lite video substrate: motion estimation, transform coding, rate
estimation, and the hybrid encoder used by the Fig. 8/9 experiments."""

from .bits import (
    coefficient_block_bits,
    motion_vector_bits,
    se_bits,
    ue_bits,
    zigzag_order,
)
from .codec import EncodeResult, HevcLiteEncoder
from .motion import MotionVector, full_search, motion_field, sad_surface
from .rd import RDPoint, bd_rate_percent, rd_sweep
from .transform import TransformStage

__all__ = [
    "coefficient_block_bits",
    "motion_vector_bits",
    "se_bits",
    "ue_bits",
    "zigzag_order",
    "EncodeResult",
    "HevcLiteEncoder",
    "MotionVector",
    "full_search",
    "motion_field",
    "sad_surface",
    "TransformStage",
    "RDPoint",
    "bd_rate_percent",
    "rd_sweep",
]
