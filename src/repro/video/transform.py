"""Residual transform and quantization for the HEVC-lite codec.

8x8 integer DCT-II (shared with :mod:`repro.accelerators.dct`) followed
by uniform scalar quantization with a dead zone, mirroring the
transform/quantization structure of block codecs.  The transform side of
the codec is exact by default -- in the paper's case study approximation
lives in the *motion estimation* SAD accelerator, and the bit-rate
increase of Fig. 9 is caused purely by poorer predictors.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..accelerators.dct import ApproximateDCT8x8

__all__ = ["TransformStage"]


class TransformStage:
    """Forward/inverse 8x8 transform with uniform quantization.

    Args:
        qp: Quantization step (larger = coarser = fewer bits).
        dct: Optional approximate DCT accelerator (``None`` -> exact).

    Example:
        >>> stage = TransformStage(qp=8)
        >>> block = np.full((8, 8), 3)
        >>> coeffs = stage.forward_quantize(block)
        >>> recon = stage.reconstruct(coeffs)
        >>> bool(np.all(np.abs(recon - block) <= stage.qp))
        True
    """

    BLOCK = 8

    def __init__(self, qp: int = 8, dct: ApproximateDCT8x8 | None = None) -> None:
        if qp < 1:
            raise ValueError(f"qp must be >= 1, got {qp}")
        self.qp = qp
        self.dct = dct or ApproximateDCT8x8()

    def forward_quantize(self, residual: np.ndarray) -> np.ndarray:
        """Transform a residual block and quantize the coefficients."""
        residual = np.asarray(residual, dtype=np.int64)
        if residual.shape != (self.BLOCK, self.BLOCK):
            raise ValueError(f"expected 8x8 residual, got {residual.shape}")
        coeffs = self.dct.forward(residual)
        # Dead-zone uniform quantizer (round half away from zero).
        return np.sign(coeffs) * ((np.abs(coeffs) + self.qp // 2) // self.qp)

    def reconstruct(self, quantized: np.ndarray) -> np.ndarray:
        """Dequantize and inverse-transform back to the residual domain."""
        quantized = np.asarray(quantized, dtype=np.int64)
        return self.dct.inverse(quantized * self.qp)
