"""Entropy-coding bit-cost model (exp-Golomb) for rate estimation.

A full CABAC engine is unnecessary to observe Fig. 9's effect (worse
motion vectors -> larger residual energy -> more coded bits), so rate is
estimated with the universal exponential-Golomb codes used by H.264/HEVC
for side information, applied per syntax element:

* ``ue(v)`` -- unsigned exp-Golomb: ``2 * floor(log2(v + 1)) + 1`` bits;
* ``se(v)`` -- signed exp-Golomb via the standard zig-zag mapping;
* coefficient blocks are costed as a (last-significant-position, then
  per-significant-coefficient level + sign) scan over the zig-zag order,
  so sparse blocks are cheap and energy monotonically costs bits.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

__all__ = [
    "ue_bits",
    "se_bits",
    "zigzag_order",
    "coefficient_block_bits",
    "motion_vector_bits",
]


def ue_bits(value: int) -> int:
    """Bit length of the unsigned exp-Golomb code of ``value`` (>= 0)."""
    if value < 0:
        raise ValueError(f"ue() needs a non-negative value, got {value}")
    return 2 * int(value + 1).bit_length() - 1


def se_bits(value: int) -> int:
    """Bit length of the signed exp-Golomb code of ``value``.

    Uses the standard mapping ``v > 0 -> 2v - 1``, ``v <= 0 -> -2v``.
    """
    mapped = 2 * value - 1 if value > 0 else -2 * value
    return ue_bits(mapped)


@lru_cache(maxsize=None)
def zigzag_order(size: int = 8) -> Tuple[Tuple[int, int], ...]:
    """Zig-zag scan order of an ``size x size`` block (low freq first)."""
    order: List[Tuple[int, int]] = []
    for s in range(2 * size - 1):
        coords = [
            (s - x, x) for x in range(max(0, s - size + 1), min(s, size - 1) + 1)
        ]
        if s % 2 == 0:
            coords.reverse()
        order.extend(coords)
    return tuple(order)


def coefficient_block_bits(quantized: np.ndarray) -> int:
    """Estimated bits to code one quantized coefficient block.

    Cost model: 1 bit coded-block flag; if any coefficient is
    significant, a ``ue`` code for the last significant scan position,
    then for each scanned coefficient up to that position a significance
    bit, and for significant ones a ``ue`` level code plus a sign bit.
    """
    block = np.asarray(quantized, dtype=np.int64)
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise ValueError(f"expected a square block, got {block.shape}")
    order = zigzag_order(block.shape[0])
    scanned = [int(block[y, x]) for (y, x) in order]
    last = -1
    for i, coeff in enumerate(scanned):
        if coeff != 0:
            last = i
    if last < 0:
        return 1  # coded-block flag only
    bits = 1 + ue_bits(last)
    for coeff in scanned[: last + 1]:
        bits += 1  # significance flag
        if coeff != 0:
            bits += ue_bits(abs(coeff) - 1) + 1
    return bits


def motion_vector_bits(dx: int, dy: int, pred: Tuple[int, int] = (0, 0)) -> int:
    """Bits to code a motion vector differentially against a predictor."""
    return se_bits(dx - pred[0]) + se_bits(dy - pred[1])
