"""HEVC-lite block encoder (the Fig. 9 substrate).

A deliberately small but complete hybrid video encoder:

* frame 0 is intra-coded (each block transform-coded directly);
* subsequent frames are inter-coded: full-search motion estimation on a
  pluggable SAD accelerator, motion-compensated residual, 8x8 DCT,
  uniform quantization, exp-Golomb rate estimation, and reconstruction
  for PSNR.

The reference for motion compensation is the *reconstructed* previous
frame, so encoder and (implicit) decoder stay in sync and approximation
in the SAD accelerator manifests exactly as the paper describes: the
pipeline still produces a standards-conformant-in-spirit bitstream, only
its *size* grows because predictors are poorer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..accelerators.sad import SADAccelerator
from ..errors.metrics import psnr
from .bits import coefficient_block_bits, motion_vector_bits
from .motion import MotionVector, full_search
from .transform import TransformStage

__all__ = ["EncodeResult", "HevcLiteEncoder"]


@dataclass(frozen=True)
class EncodeResult:
    """Outcome of encoding one sequence.

    Attributes:
        total_bits: Bits for the whole sequence.
        frame_bits: Bits per frame.
        psnr_db: Mean reconstruction PSNR over coded frames.
        motion_fields: Per-inter-frame mapping block -> motion vector.
    """

    total_bits: int
    frame_bits: Tuple[int, ...]
    psnr_db: float
    motion_fields: Tuple[Dict[Tuple[int, int], MotionVector], ...]

    def bitrate_increase_percent(self, baseline: "EncodeResult") -> float:
        """Percent bit-rate increase of this encode over a baseline."""
        if baseline.total_bits == 0:
            raise ValueError("baseline produced zero bits")
        return 100.0 * (self.total_bits - baseline.total_bits) / baseline.total_bits


class HevcLiteEncoder:
    """Hybrid block encoder with a pluggable SAD accelerator.

    Args:
        block_size: Coding block edge (8 -- must match the transform).
        search_range: Motion search range in pixels.
        qp: Quantization step.

    Example:
        >>> from repro.media.synthetic import moving_sequence
        >>> from repro.accelerators.sad import SADAccelerator
        >>> frames = moving_sequence(n_frames=2, size=32)
        >>> enc = HevcLiteEncoder(search_range=2)
        >>> sad = SADAccelerator(n_pixels=64)
        >>> result = enc.encode(frames, sad)
        >>> result.total_bits > 0
        True
    """

    def __init__(
        self, block_size: int = 8, search_range: int = 4, qp: int = 8
    ) -> None:
        if block_size != TransformStage.BLOCK:
            raise ValueError(
                f"block_size must equal the transform size "
                f"({TransformStage.BLOCK}), got {block_size}"
            )
        self.block_size = block_size
        self.search_range = search_range
        self.transform = TransformStage(qp=qp)

    # ------------------------------------------------------------------
    # per-frame coding
    # ------------------------------------------------------------------
    def _code_intra_frame(
        self, frame: np.ndarray
    ) -> Tuple[int, np.ndarray]:
        """Intra-code a frame; returns (bits, reconstruction)."""
        bs = self.block_size
        h, w = frame.shape
        bits = 0
        recon = np.zeros_like(frame, dtype=np.int64)
        for by in range(0, h, bs):
            for bx in range(0, w, bs):
                block = frame[by : by + bs, bx : bx + bs].astype(np.int64)
                # Predict from the block mean (cheap DC intra prediction).
                dc = int(np.round(block.mean()))
                residual = block - dc
                coeffs = self.transform.forward_quantize(residual)
                bits += 8 + coefficient_block_bits(coeffs)  # 8 bits for DC
                recon_block = dc + self.transform.reconstruct(coeffs)
                recon[by : by + bs, bx : bx + bs] = np.clip(recon_block, 0, 255)
        return bits, recon

    def _code_inter_frame(
        self,
        frame: np.ndarray,
        reference: np.ndarray,
        sad_accelerator: SADAccelerator,
    ) -> Tuple[int, np.ndarray, Dict[Tuple[int, int], MotionVector]]:
        """Inter-code a frame; returns (bits, reconstruction, motion field)."""
        bs = self.block_size
        h, w = frame.shape
        bits = 0
        recon = np.zeros_like(frame, dtype=np.int64)
        field: Dict[Tuple[int, int], MotionVector] = {}
        for by in range(0, h, bs):
            for bx in range(0, w, bs):
                mv = full_search(
                    frame, reference, (bx, by), bs, self.search_range,
                    sad_accelerator,
                )
                field[(bx, by)] = mv
                pred = reference[
                    by + mv.dy : by + mv.dy + bs, bx + mv.dx : bx + mv.dx + bs
                ].astype(np.int64)
                residual = frame[by : by + bs, bx : bx + bs].astype(np.int64) - pred
                coeffs = self.transform.forward_quantize(residual)
                bits += motion_vector_bits(mv.dx, mv.dy)
                bits += coefficient_block_bits(coeffs)
                recon_block = pred + self.transform.reconstruct(coeffs)
                recon[by : by + bs, bx : bx + bs] = np.clip(recon_block, 0, 255)
        return bits, recon, field

    # ------------------------------------------------------------------
    # sequence coding
    # ------------------------------------------------------------------
    def encode(
        self, frames: Sequence[np.ndarray], sad_accelerator: SADAccelerator
    ) -> EncodeResult:
        """Encode a sequence; frame 0 intra, the rest inter.

        Args:
            frames: Sequence of equally shaped 2-D uint8-like frames,
                with dimensions divisible by ``block_size``.
            sad_accelerator: SAD unit used by motion estimation; its
                ``n_pixels`` must equal ``block_size**2``.
        """
        if not frames:
            raise ValueError("need at least one frame")
        shapes = {np.asarray(f).shape for f in frames}
        if len(shapes) != 1:
            raise ValueError(f"frames must share one shape, got {shapes}")
        h, w = next(iter(shapes))
        if h % self.block_size or w % self.block_size:
            raise ValueError(
                f"frame {h}x{w} not divisible into "
                f"{self.block_size}x{self.block_size} blocks"
            )
        if sad_accelerator.n_pixels != self.block_size**2:
            raise ValueError(
                f"SAD accelerator reduces {sad_accelerator.n_pixels} pixels; "
                f"blocks have {self.block_size ** 2}"
            )

        frame_bits: List[int] = []
        psnrs: List[float] = []
        fields: List[Dict[Tuple[int, int], MotionVector]] = []
        reference: np.ndarray | None = None
        for index, raw in enumerate(frames):
            frame = np.asarray(raw, dtype=np.int64)
            if index == 0:
                bits, recon = self._code_intra_frame(frame)
            else:
                assert reference is not None
                bits, recon, field = self._code_inter_frame(
                    frame, reference, sad_accelerator
                )
                fields.append(field)
            frame_bits.append(bits)
            psnrs.append(psnr(recon, frame))
            reference = recon
        finite = [p for p in psnrs if np.isfinite(p)]
        mean_psnr = float(np.mean(finite)) if finite else float("inf")
        return EncodeResult(
            total_bits=int(sum(frame_bits)),
            frame_bits=tuple(frame_bits),
            psnr_db=mean_psnr,
            motion_fields=tuple(fields),
        )
