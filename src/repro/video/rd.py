"""Rate-distortion sweeps for the HEVC-lite encoder.

Fig. 9 compares encoders at one operating point; an RD sweep makes the
comparison complete: encode the same sequence at several quantization
steps and trace (bits, PSNR) curves per SAD accelerator.  The shape that
must hold (and that the tests assert): approximating the motion
estimation shifts the curve right (more bits at equal quality) without
changing its monotone character, and mild approximation keeps the curves
nearly overlapping -- the quantitative backing for "marginal bit-rate
increase".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..accelerators.sad import SADAccelerator
from .codec import HevcLiteEncoder

__all__ = ["RDPoint", "rd_sweep", "bd_rate_percent"]


@dataclass(frozen=True)
class RDPoint:
    """One rate-distortion operating point."""

    qp: int
    bits: int
    psnr_db: float


def rd_sweep(
    frames: Sequence[np.ndarray],
    sad_accelerator: SADAccelerator,
    qps: Sequence[int] = (2, 4, 8, 16),
    search_range: int = 4,
) -> List[RDPoint]:
    """Encode the sequence at each quantization step.

    Args:
        frames: Video frames (divisible into 8x8 blocks).
        sad_accelerator: Motion-estimation SAD unit.
        qps: Quantization steps to sweep (ascending recommended).
        search_range: Motion search range.

    Returns:
        One :class:`RDPoint` per qp.
    """
    points = []
    for qp in qps:
        encoder = HevcLiteEncoder(search_range=search_range, qp=qp)
        result = encoder.encode(frames, sad_accelerator)
        points.append(RDPoint(qp=qp, bits=result.total_bits,
                              psnr_db=result.psnr_db))
    return points


def bd_rate_percent(
    reference: Sequence[RDPoint], test: Sequence[RDPoint]
) -> float:
    """Bjontegaard-style average bit-rate overhead of ``test`` vs
    ``reference`` at equal quality.

    Both curves are interpolated (log-rate vs PSNR, piecewise linear)
    over their common PSNR range; the mean log-rate difference converts
    to an average percentage rate difference.  Positive = ``test`` needs
    more bits.

    Raises:
        ValueError: If fewer than two points per curve or no PSNR
            overlap exists.
    """
    if len(reference) < 2 or len(test) < 2:
        raise ValueError("need >= 2 RD points per curve")

    def curve(points: Sequence[RDPoint]) -> Tuple[np.ndarray, np.ndarray]:
        pts = sorted(points, key=lambda p: p.psnr_db)
        psnr = np.array([p.psnr_db for p in pts], dtype=float)
        log_rate = np.log(np.array([p.bits for p in pts], dtype=float))
        return psnr, log_rate

    psnr_ref, rate_ref = curve(reference)
    psnr_test, rate_test = curve(test)
    lo = max(psnr_ref.min(), psnr_test.min())
    hi = min(psnr_ref.max(), psnr_test.max())
    if hi <= lo:
        raise ValueError("RD curves share no PSNR range")
    grid = np.linspace(lo, hi, 64)
    ref_interp = np.interp(grid, psnr_ref, rate_ref)
    test_interp = np.interp(grid, psnr_test, rate_test)
    mean_log_diff = float(np.mean(test_interp - ref_interp))
    return 100.0 * (np.exp(mean_log_diff) - 1.0)
