"""Full-search block motion estimation on a pluggable SAD accelerator.

This is the motion-estimation stage of the paper's HEVC case study
(Sec. 6): for every block of the current frame, every candidate
displacement within a search window is scored with the SAD accelerator
(exact or any ``ApxSAD`` variant), and the argmin candidate becomes the
motion vector.  Because all candidates of a block are scored in one
vectorized accelerator call, the per-candidate SAD *surface* of Fig. 8
is a direct by-product (:func:`sad_surface`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..accelerators.sad import SADAccelerator

__all__ = ["MotionVector", "full_search", "sad_surface", "motion_field"]


@dataclass(frozen=True)
class MotionVector:
    """A block's motion vector and its matching cost."""

    dx: int
    dy: int
    sad: int


def _candidate_offsets(search_range: int) -> List[Tuple[int, int]]:
    return [
        (dx, dy)
        for dy in range(-search_range, search_range + 1)
        for dx in range(-search_range, search_range + 1)
    ]


def sad_surface(
    current: np.ndarray,
    reference: np.ndarray,
    block_xy: Tuple[int, int],
    block_size: int,
    search_range: int,
    accelerator: SADAccelerator,
) -> np.ndarray:
    """SAD of one block against every candidate displacement (Fig. 8).

    Args:
        current: Current frame (2-D uint8-like).
        reference: Reference frame (same shape).
        block_xy: Top-left ``(x, y)`` of the block in the current frame.
        block_size: Block edge length; ``block_size**2`` must equal the
            accelerator's ``n_pixels``.
        search_range: Maximum displacement in each direction.
        accelerator: SAD accelerator instance to score candidates with.

    Returns:
        Array of shape ``(2*search_range + 1, 2*search_range + 1)`` with
        the SAD at displacement ``(dy, dx)`` in cell
        ``[dy + search_range, dx + search_range]``; out-of-frame
        candidates hold a sentinel of ``2**62``.
    """
    cur = np.asarray(current, dtype=np.int64)
    ref = np.asarray(reference, dtype=np.int64)
    if cur.shape != ref.shape:
        raise ValueError(f"frame shapes differ: {cur.shape} vs {ref.shape}")
    if block_size * block_size != accelerator.n_pixels:
        raise ValueError(
            f"accelerator reduces {accelerator.n_pixels} pixels, block has "
            f"{block_size * block_size}"
        )
    bx, by = block_xy
    h, w = cur.shape
    if not (0 <= bx <= w - block_size and 0 <= by <= h - block_size):
        raise ValueError(f"block at {block_xy} does not fit the frame")
    block = cur[by : by + block_size, bx : bx + block_size].reshape(-1)

    offsets = _candidate_offsets(search_range)
    candidates = []
    valid = []
    for dx, dy in offsets:
        x, y = bx + dx, by + dy
        if 0 <= x <= w - block_size and 0 <= y <= h - block_size:
            candidates.append(
                ref[y : y + block_size, x : x + block_size].reshape(-1)
            )
            valid.append(True)
        else:
            valid.append(False)
    side = 2 * search_range + 1
    surface = np.full(side * side, 1 << 62, dtype=np.int64)
    if candidates:
        cand = np.stack(candidates, axis=0)
        sads = accelerator.sad(np.broadcast_to(block, cand.shape), cand)
        surface[np.asarray(valid)] = sads
    return surface.reshape(side, side)


def full_search(
    current: np.ndarray,
    reference: np.ndarray,
    block_xy: Tuple[int, int],
    block_size: int,
    search_range: int,
    accelerator: SADAccelerator,
) -> MotionVector:
    """Best motion vector of one block by exhaustive search.

    Ties are broken toward the smallest displacement magnitude, then
    raster order -- matching deterministic hardware search order.
    """
    surface = sad_surface(
        current, reference, block_xy, block_size, search_range, accelerator
    )
    side = surface.shape[0]
    best: Tuple[int, int, int] | None = None
    best_key = None
    for iy in range(side):
        for ix in range(side):
            sad = int(surface[iy, ix])
            if sad >= (1 << 62):
                continue
            dx, dy = ix - search_range, iy - search_range
            key = (sad, abs(dx) + abs(dy), dy, dx)
            if best_key is None or key < best_key:
                best_key = key
                best = (dx, dy, sad)
    if best is None:
        raise ValueError("no valid candidate in the search window")
    return MotionVector(dx=best[0], dy=best[1], sad=best[2])


def motion_field(
    current: np.ndarray,
    reference: np.ndarray,
    block_size: int,
    search_range: int,
    accelerator: SADAccelerator,
) -> Dict[Tuple[int, int], MotionVector]:
    """Motion vectors for every block of the current frame.

    Returns:
        Mapping from block top-left ``(x, y)`` to its motion vector.
    """
    cur = np.asarray(current)
    h, w = cur.shape
    if h % block_size or w % block_size:
        raise ValueError(
            f"frame {cur.shape} not divisible into {block_size}x{block_size} blocks"
        )
    field: Dict[Tuple[int, int], MotionVector] = {}
    for by in range(0, h, block_size):
        for bx in range(0, w, block_size):
            field[(bx, by)] = full_search(
                current, reference, (bx, by), block_size, search_range, accelerator
            )
    return field
