"""On-disk JSON result cache for campaign tasks.

One file per task, named by the stable task hash and sharded into
256 two-hex-digit subdirectories to keep directories small on large
sweeps.  Writes are atomic (temp file + ``os.replace``), so a campaign
killed mid-write never leaves a truncated entry behind -- the worst
case on resume is one recomputed task.

The cache doubles as the campaign checkpoint: the runner persists each
result as it arrives, and a restarted campaign simply skips every task
whose hash already resolves.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

__all__ = ["ResultCache"]


class ResultCache:
    """Filesystem-backed task-result store keyed by stable task hash.

    Args:
        cache_dir: Root directory; created on first write.
    """

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.root = Path(cache_dir)

    def _path(self, key: str) -> Path:
        if len(key) < 3 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Cached entry for ``key`` or ``None`` (corrupt entries miss)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A damaged entry is indistinguishable from a miss; the task
            # reruns and the entry is rewritten atomically.
            return None

    def put(self, key: str, entry: Dict[str, Any]) -> None:
        """Atomically persist ``entry`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # ".tmp" suffix keeps in-flight writes invisible to keys()'s
        # "*.json" glob.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def keys(self) -> Iterator[str]:
        """All cached task hashes (order unspecified)."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def evict(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False
