"""On-disk JSON result cache for campaign tasks.

One file per task, named by the stable task hash and sharded into
256 two-hex-digit subdirectories to keep directories small on large
sweeps.  Writes are atomic (temp file + ``os.replace``), so a campaign
killed mid-write never leaves a truncated entry behind -- the worst
case on resume is one recomputed task.

Every entry is wrapped with a **content checksum**: :meth:`ResultCache.
put` stores ``{"entry": ..., "sha256": <hex of the entry's canonical
JSON>}`` and :meth:`ResultCache.get` recomputes and compares it.  A
shard that was bit-flipped, truncated-but-still-valid-JSON, or edited
by hand therefore reads as a *miss* (and is evicted) instead of being
served as a silently wrong result -- the difference between a corrupt
disk costing one recompute and poisoning a whole resumed sweep.

The cache doubles as the campaign checkpoint: the runner persists each
result as it arrives, and a restarted campaign simply skips every task
whose hash already resolves.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

__all__ = ["ResultCache"]


def _entry_checksum(entry: Any) -> str:
    """Hex SHA-256 of the canonical JSON encoding of ``entry``."""
    canonical = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem-backed task-result store keyed by stable task hash.

    Args:
        cache_dir: Root directory; created on first write.
    """

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.root = Path(cache_dir)

    def _path(self, key: str) -> Path:
        if len(key) < 3 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Verified cached entry for ``key`` or ``None``.

        Unreadable, unparseable, checksum-less, or checksum-mismatching
        entries are treated as misses and evicted, so the task simply
        reruns and rewrites a healthy entry.

        Eviction is *stat-guarded*: with many processes sharing the
        store (the service layer makes same-key traffic the common
        case), a concurrent ``put`` may atomically replace the shard
        between this reader opening a damaged file and deciding to
        evict it.  Unlinking by path at that point would destroy the
        fresh, healthy entry.  The eviction therefore only fires if the
        path still holds the exact file object (device/inode/mtime/
        size) whose content failed verification.
        """
        path = self._path(key)
        try:
            fh = open(path, "r", encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return None
        with fh:
            try:
                stat = os.fstat(fh.fileno())
                wrapped = json.load(fh)
            except (json.JSONDecodeError, OSError, ValueError):
                # Damaged entry: indistinguishable from a miss; evict
                # (unless a concurrent writer already replaced it) so
                # the task reruns and rewrites a healthy entry.
                self._evict_stale(key, stat)
                return None
        if (
            not isinstance(wrapped, dict)
            or "entry" not in wrapped
            or wrapped.get("sha256") != _entry_checksum(wrapped["entry"])
        ):
            self._evict_stale(key, stat)
            return None
        return wrapped["entry"]

    def _evict_stale(self, key: str, stat: os.stat_result) -> bool:
        """Evict ``key`` only if the shard is still the file ``stat`` saw.

        A concurrent atomic replace changes the inode (and mtime), so a
        reader that lost the race leaves the fresh entry untouched --
        the damaged file it read is already gone.  The residual window
        between the stat comparison and the unlink is nanoseconds wide
        and, at worst, costs one recompute; it can never serve a torn
        entry (``get`` verifies checksums on every read).
        """
        path = self._path(key)
        try:
            current = os.stat(path)
        except (FileNotFoundError, OSError):
            return False
        if (
            (current.st_dev, current.st_ino,
             current.st_mtime_ns, current.st_size)
            != (stat.st_dev, stat.st_ino, stat.st_mtime_ns, stat.st_size)
        ):
            return False
        try:
            path.unlink()
            return True
        except (FileNotFoundError, OSError):
            return False

    def put(self, key: str, entry: Dict[str, Any]) -> None:
        """Atomically persist ``entry`` (plus its checksum) under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # ".tmp" suffix keeps in-flight writes invisible to keys()'s
        # "*.json" glob.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(
                    {"entry": entry, "sha256": _entry_checksum(entry)},
                    fh,
                    sort_keys=True,
                )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def keys(self) -> Iterator[str]:
        """All cached task hashes (order unspecified; not verified)."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def evict(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False
