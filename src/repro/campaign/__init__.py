"""Characterization campaign engine (batching / caching / resume).

The paper's quantitative results (Table III/IV, Fig. 4, Fig. 6, Fig. 9)
all come from sweeping component configurations through
characterization.  This package turns those sweeps into **campaigns**:
lists of pure, seeded, JSON-describable tasks fanned out over a process
pool, answered from an on-disk result cache when possible, and
checkpointed task-by-task so an interrupted sweep resumes exactly where
it died.

Entry points:

* :class:`CampaignTask` / :func:`derive_seed` -- task identity and
  deterministic per-task seeding (:mod:`repro.campaign.task`);
* :class:`ResultCache` -- atomic JSON store keyed by stable task hash
  (:mod:`repro.campaign.cache`);
* :func:`register` / :func:`task_kinds` -- the task-kind registry with
  the built-in characterization workloads
  (:mod:`repro.campaign.registry`);
* :func:`run_campaign` -- the parallel, crash-hardened runner
  (per-attempt process isolation, timeouts, backoff retries,
  quarantine) returning per-task results, :class:`CampaignStats`, and
  structured :class:`TaskFailure` records
  (:mod:`repro.campaign.runner`);
* :class:`WarmPool` -- the persistent pre-forked execution engine
  behind ``isolation="warm"``: same fault semantics, milliseconds less
  dispatch overhead per task (:mod:`repro.campaign.warmpool`).

The higher-level sweeps (:func:`repro.dse.explorer.explore_gear_space`,
:func:`repro.adders.characterize.characterize_ripple_family`,
:func:`repro.multipliers.characterize.fig6_multiplier_family`,
:func:`repro.accelerators.sad.characterize_sad_family`) submit through
this engine; the ``repro campaign`` CLI subcommand drives it directly.
"""

from .cache import ResultCache
from .registry import execute_task, get_task_function, register, task_kinds
from .runner import (
    CampaignResult,
    CampaignStats,
    CampaignTaskError,
    TaskAttemptFailure,
    TaskFailure,
    run_campaign,
)
from .task import CODE_VERSION, CampaignTask, derive_seed, stable_hash
from .warmpool import WarmPool

__all__ = [
    "CODE_VERSION",
    "CampaignTask",
    "CampaignResult",
    "CampaignStats",
    "CampaignTaskError",
    "ResultCache",
    "TaskAttemptFailure",
    "TaskFailure",
    "WarmPool",
    "derive_seed",
    "execute_task",
    "get_task_function",
    "register",
    "run_campaign",
    "stable_hash",
    "task_kinds",
]
