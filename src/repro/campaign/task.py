"""Campaign tasks: the unit of work of a characterization sweep.

A :class:`CampaignTask` names a registered task *kind* (see
:mod:`repro.campaign.registry`), its JSON-serializable parameters, and
the RNG seed the task must use.  Its identity is the **stable task
hash** -- a SHA-256 over the canonical JSON encoding of
``(kind, params, seed, code version)`` -- which keys the on-disk result
cache and makes sweeps resumable: re-submitting the same task after an
interruption maps to the same cache entry, while any change to the
parameters, the seed, or the engine's :data:`CODE_VERSION` invalidates
it.

Per-task seeds are *derived*, not enumerated: :func:`derive_seed`
hashes ``(base_seed, task key)`` so a task's seed depends only on what
the task *is*, never on submission order or worker count.  This is what
makes campaign results bit-identical across ``n_workers`` settings and
across kill/resume cycles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["CODE_VERSION", "CampaignTask", "derive_seed", "stable_hash"]

#: Version tag of the characterization code paths.  Bump whenever a
#: registered task function changes behaviour so stale cache entries
#: stop matching.
CODE_VERSION = "2026.08-2"


def _canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def stable_hash(obj: Any) -> str:
    """Hex SHA-256 of the canonical JSON encoding of ``obj``."""
    return hashlib.sha256(_canonical_json(obj).encode("utf-8")).hexdigest()


def derive_seed(base_seed: int, *key_parts: Any) -> int:
    """Deterministic 63-bit seed from a base seed and a task key.

    Independent of enumeration order and worker count: the same
    ``(base_seed, key)`` always yields the same seed, and distinct keys
    decorrelate through SHA-256.
    """
    digest = hashlib.sha256(
        _canonical_json([int(base_seed), list(key_parts)]).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


@dataclass(frozen=True)
class CampaignTask:
    """One cacheable unit of characterization work.

    Attributes:
        kind: Registered task kind (``repro.campaign.registry``).
        params: JSON-serializable keyword parameters of the task.
        seed: RNG seed the task function must use.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0

    @property
    def key(self) -> str:
        """Stable cache key: hash of kind, params, seed, code version."""
        return stable_hash(
            {
                "kind": self.kind,
                "params": self.params,
                "seed": self.seed,
                "code_version": CODE_VERSION,
            }
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "params": self.params,
            "seed": self.seed,
            "code_version": CODE_VERSION,
        }
