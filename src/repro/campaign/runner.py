"""Parallel, cached, resumable -- and crash-hardened -- campaign runner.

:func:`run_campaign` takes a list of :class:`CampaignTask` and returns
one result per task (input order preserved), fanning uncached tasks out
over isolated worker processes:

* **Caching** -- with a ``cache_dir``, every completed task is persisted
  to a :class:`~repro.campaign.cache.ResultCache` keyed by the stable
  task hash *as soon as it finishes*; already-cached tasks are never
  re-executed.  Failures are never cached, so a resume retries them.
* **Resume** -- the incremental cache writes double as a checkpoint: a
  killed campaign restarts and recomputes only the tasks whose results
  never landed on disk.
* **Determinism** -- task seeds travel *inside* the task (derived from
  the task identity, see :func:`~repro.campaign.task.derive_seed`), so
  results are bit-identical for any worker count, submission order, or
  kill/resume history.
* **Fault containment** -- every task attempt runs in its own worker
  process (whenever ``n_workers > 1`` or a ``timeout_s`` is set), so a
  task that raises, wedges, or outright kills its worker cannot abort
  the sweep.  Raising tasks become structured
  :class:`TaskFailure` records; hanging tasks are killed at
  ``timeout_s`` (and an attempt that *completes* over the limit by the
  worker's own clock is rejected as a timeout too, so verdicts do not
  depend on parent polling latency); failing tasks retry up to
  ``max_attempts`` times with
  exponential backoff plus deterministic jitter; a task still failing
  after its last attempt is **quarantined** (its result slot stays
  ``None``) and the campaign runs to completion.  Opt back into the old
  fail-fast behaviour with ``raise_on_error=True``.
* **Metrics** -- a :class:`CampaignStats` records tasks done, cache
  hits, retries, timeouts, crashes, quarantines, wall-clock, aggregate
  in-task compute time, and the implied worker utilization; a
  ``progress`` callback streams completion.

Duplicate tasks (same stable hash) are executed once and their result
(or failure) fanned out to every occurrence.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import random
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .cache import ResultCache
from .registry import execute_task, get_task_function
from .task import CampaignTask, derive_seed

__all__ = [
    "CampaignStats",
    "CampaignResult",
    "CampaignTaskError",
    "TaskAttemptFailure",
    "TaskFailure",
    "run_campaign",
]

ProgressCallback = Callable[[int, int], None]

#: Version tag of the machine-readable failure report layout.
FAILURE_REPORT_SCHEMA_VERSION = 1

#: Environment knob for the default execution engine of isolated
#: campaigns: ``process`` (process-per-attempt, the default) or
#: ``warm`` (persistent pre-forked pool, see
#: :mod:`repro.campaign.warmpool`).  Explicit ``isolation=`` arguments
#: always win over the environment.
ISOLATION_ENV_VAR = "REPRO_CAMPAIGN_ISOLATION"

_ISOLATION_MODES = ("process", "warm")

#: Grace period between SIGTERM and SIGKILL when reaping a worker.
_KILL_GRACE_S = 0.25


class CampaignTaskError(RuntimeError):
    """Raised (only with ``raise_on_error=True``) when a task is quarantined."""

    def __init__(self, failure: "TaskFailure") -> None:
        last = failure.attempts[-1]
        super().__init__(
            f"task {failure.kind!r} (key {failure.key[:12]}...) failed "
            f"permanently after {len(failure.attempts)} attempt(s): "
            f"[{last.outcome}] {last.error_type or ''} {last.message}".strip()
        )
        self.failure = failure


@dataclass(frozen=True)
class TaskAttemptFailure:
    """One failed attempt of one task."""

    attempt: int          # 1-based attempt number
    outcome: str          # "error" | "timeout" | "crash"
    error_type: Optional[str]
    message: str
    elapsed_s: float

    def to_record(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "error_type": self.error_type,
            "message": self.message,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class TaskFailure:
    """Structured record of a permanently failed (quarantined) task."""

    index: int            # first occurrence in the submitted task list
    key: str
    kind: str
    params: Dict[str, Any]
    seed: int
    status: str = "quarantined"
    attempts: List[TaskAttemptFailure] = field(default_factory=list)

    def to_record(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "key": self.key,
            "kind": self.kind,
            "params": self.params,
            "seed": self.seed,
            "status": self.status,
            "attempts": [a.to_record() for a in self.attempts],
        }


@dataclass
class CampaignStats:
    """Execution metrics of one :func:`run_campaign` call.

    Attributes:
        n_tasks: Tasks submitted (including duplicates).
        n_unique: Distinct task hashes among them.
        n_executed: Tasks actually computed this run.
        n_cache_hits: Tasks answered from the on-disk cache.
        n_workers: Worker processes used (1 = in-process serial).
        n_retries: Extra attempts spent on eventually-resolved tasks.
        n_timeouts: Attempts killed for exceeding ``timeout_s``.
        n_crashes: Attempts whose worker died without reporting.
        n_quarantined: Tasks that exhausted every attempt.
        wall_s: End-to-end wall-clock of the campaign.
        task_s: Summed in-task compute time of executed tasks.
        isolation: Execution engine used for isolated tasks --
            ``"process"`` (process-per-attempt) or ``"warm"``
            (persistent worker pool); ``"process"`` also covers the
            serial in-process fast path.
    """

    n_tasks: int = 0
    n_unique: int = 0
    n_executed: int = 0
    n_cache_hits: int = 0
    n_workers: int = 1
    n_retries: int = 0
    n_timeouts: int = 0
    n_crashes: int = 0
    n_quarantined: int = 0
    wall_s: float = 0.0
    task_s: float = 0.0
    isolation: str = "process"

    @property
    def worker_utilization(self) -> float:
        """Fraction of the worker-seconds budget spent inside tasks."""
        if self.n_executed == 0 or self.wall_s <= 0.0:
            return 0.0
        return min(1.0, self.task_s / (self.wall_s * self.n_workers))

    def summary(self) -> str:
        """One-line human-readable report for CLIs and benchmarks."""
        text = (
            f"{self.n_tasks} tasks ({self.n_unique} unique): "
            f"{self.n_executed} executed, {self.n_cache_hits} cache hits "
            f"in {self.wall_s:.2f}s wall "
            f"({self.n_workers} workers, "
            f"{100.0 * self.worker_utilization:.0f}% utilization)"
        )
        if self.n_quarantined or self.n_retries:
            text += (
                f"; {self.n_quarantined} quarantined, "
                f"{self.n_retries} retries "
                f"({self.n_timeouts} timeouts, {self.n_crashes} crashes)"
            )
        return text


@dataclass
class CampaignResult:
    """Results aligned with the submitted task list, plus run metrics.

    A quarantined task's slots hold ``None``; its structured failure is
    in :attr:`failures`.
    """

    tasks: List[CampaignTask]
    results: List[Any]
    stats: CampaignStats = field(default_factory=CampaignStats)
    failures: List[TaskFailure] = field(default_factory=list)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        """Whether every task produced a result."""
        return not self.failures

    def failure_report(self) -> Dict[str, Any]:
        """Machine-readable failure report (see ``docs/RESILIENCE.md``)."""
        return {
            "schema_version": FAILURE_REPORT_SCHEMA_VERSION,
            "n_tasks": self.stats.n_tasks,
            "n_quarantined": self.stats.n_quarantined,
            "n_retries": self.stats.n_retries,
            "n_timeouts": self.stats.n_timeouts,
            "n_crashes": self.stats.n_crashes,
            "failures": [f.to_record() for f in self.failures],
        }


# ----------------------------------------------------------------------
# isolated execution
# ----------------------------------------------------------------------

def _attempt_worker(task: CampaignTask, conn) -> None:
    """Child-process body: run one task attempt, report through the pipe."""
    try:
        start = time.perf_counter()
        result = execute_task(task)
        conn.send(("ok", result, time.perf_counter() - start))
    except BaseException as exc:  # noqa: BLE001 - crossing a process edge
        try:
            conn.send((
                "error",
                type(exc).__name__,
                str(exc),
                traceback.format_exc(limit=20),
            ))
        except Exception:
            pass
    finally:
        conn.close()


def _backoff_delay(
    task: CampaignTask, attempt: int,
    base_s: float, max_s: float,
) -> float:
    """Exponential backoff with deterministic per-(task, attempt) jitter."""
    delay = min(max_s, base_s * (2.0 ** (attempt - 1)))
    jitter = random.Random(derive_seed(task.seed, "backoff", task.key, attempt))
    return delay * (0.5 + jitter.random())


@dataclass
class _Pending:
    index: int
    task: CampaignTask
    attempt: int = 1
    not_before: float = 0.0
    failures: List[TaskAttemptFailure] = field(default_factory=list)


@dataclass
class _Running:
    slot: _Pending
    process: multiprocessing.process.BaseProcess
    conn: Any
    started: float
    deadline: Optional[float]


def _record_attempt_failure(
    slot: _Pending,
    failure: TaskAttemptFailure,
    pending: deque,
    on_quarantine: Callable[[_Pending], None],
    stats: CampaignStats,
    max_attempts: int,
    backoff_base_s: float,
    backoff_max_s: float,
) -> None:
    """Charge one failed attempt: requeue with backoff or quarantine.

    Shared by the process-per-attempt executor and the warm-pool
    scheduler so retry accounting and backoff scheduling stay
    bit-identical across engines.
    """
    slot.failures.append(failure)
    if slot.attempt < max_attempts:
        stats.n_retries += 1
        delay = _backoff_delay(
            slot.task, slot.attempt, backoff_base_s, backoff_max_s
        )
        slot.attempt += 1
        slot.not_before = time.monotonic() + delay
        pending.append(slot)
    else:
        on_quarantine(slot)


def _reap(running: _Running) -> None:
    """Terminate (then kill) one worker and release its resources."""
    process = running.process
    if process.is_alive():
        process.terminate()
        process.join(_KILL_GRACE_S)
        if process.is_alive():
            process.kill()
            process.join()
    else:
        process.join()
    running.conn.close()


class _IsolatedExecutor:
    """Process-per-attempt executor with timeouts, retries, quarantine."""

    def __init__(
        self,
        n_workers: int,
        timeout_s: Optional[float],
        max_attempts: int,
        backoff_base_s: float,
        backoff_max_s: float,
        stats: CampaignStats,
    ) -> None:
        self.context = multiprocessing.get_context()
        self.n_workers = max(1, n_workers)
        self.timeout_s = timeout_s
        self.max_attempts = max(1, max_attempts)
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.stats = stats

    def run(
        self,
        to_run: List[Tuple[int, CampaignTask]],
        on_success: Callable[[int, Any, float], None],
        on_quarantine: Callable[[_Pending], None],
    ) -> None:
        pending = deque(_Pending(index, task) for index, task in to_run)
        running: List[_Running] = []
        try:
            while pending or running:
                self._launch_eligible(pending, running)
                self._wait(pending, running)
                for entry in list(running):
                    outcome = self._poll(entry)
                    if outcome is None:
                        continue
                    running.remove(entry)
                    kind, payload = outcome
                    if kind == "ok":
                        result, elapsed = payload
                        on_success(entry.slot.index, result, elapsed)
                    else:
                        self._record_failure(
                            entry, payload, pending, on_quarantine
                        )
        finally:
            for entry in running:
                _reap(entry)

    # -- scheduling ----------------------------------------------------

    def _launch_eligible(
        self, pending: deque, running: List[_Running]
    ) -> None:
        now = time.monotonic()
        # Rotate through pending once, launching every eligible slot.
        for _ in range(len(pending)):
            if len(running) >= self.n_workers:
                break
            slot = pending.popleft()
            if slot.not_before > now:
                pending.append(slot)
                continue
            parent_conn, child_conn = self.context.Pipe(duplex=False)
            process = self.context.Process(
                target=_attempt_worker,
                args=(slot.task, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            deadline = (
                now + self.timeout_s if self.timeout_s is not None else None
            )
            running.append(_Running(slot, process, parent_conn, now, deadline))

    def _wait(self, pending: deque, running: List[_Running]) -> None:
        now = time.monotonic()
        horizon = 0.2
        for entry in running:
            if entry.deadline is not None:
                horizon = min(horizon, entry.deadline - now)
        for slot in pending:
            if slot.not_before > now:
                horizon = min(horizon, slot.not_before - now)
        horizon = max(0.005, horizon)
        conns = [entry.conn for entry in running]
        if conns:
            multiprocessing.connection.wait(conns, timeout=horizon)
        elif pending:
            time.sleep(horizon)

    # -- harvesting ----------------------------------------------------

    def _poll(self, entry: _Running) -> Optional[Tuple[str, Any]]:
        """Completed outcome of one running attempt, or ``None``."""
        now = time.monotonic()
        elapsed = now - entry.started
        message: Optional[tuple] = None
        if entry.conn.poll():
            try:
                message = entry.conn.recv()
            except (EOFError, OSError):
                message = None  # died mid-send: treat as a crash
        if message is not None:
            _reap(entry)
            if message[0] == "ok":
                task_elapsed = message[2]
                if (
                    self.timeout_s is not None
                    and task_elapsed > self.timeout_s
                ):
                    # The attempt finished, but over budget.  Judging by
                    # the worker's own clock (not the harvest deadline)
                    # keeps the verdict independent of parent polling
                    # latency: a result that beats the pipe to the first
                    # poll does not dodge its timeout.
                    self.stats.n_timeouts += 1
                    return "fail", TaskAttemptFailure(
                        attempt=entry.slot.attempt,
                        outcome="timeout",
                        error_type=None,
                        message=(
                            f"attempt exceeded timeout_s={self.timeout_s}"
                        ),
                        elapsed_s=task_elapsed,
                    )
                return "ok", (message[1], task_elapsed)
            _, error_type, text, trace = message
            return "fail", TaskAttemptFailure(
                attempt=entry.slot.attempt,
                outcome="error",
                error_type=error_type,
                message=(text or trace.strip().splitlines()[-1])[:500],
                elapsed_s=elapsed,
            )
        if not entry.process.is_alive():
            exitcode = entry.process.exitcode
            _reap(entry)
            self.stats.n_crashes += 1
            return "fail", TaskAttemptFailure(
                attempt=entry.slot.attempt,
                outcome="crash",
                error_type=None,
                message=f"worker died with exit code {exitcode}",
                elapsed_s=elapsed,
            )
        if entry.deadline is not None and now >= entry.deadline:
            _reap(entry)
            self.stats.n_timeouts += 1
            return "fail", TaskAttemptFailure(
                attempt=entry.slot.attempt,
                outcome="timeout",
                error_type=None,
                message=f"attempt exceeded timeout_s={self.timeout_s}",
                elapsed_s=elapsed,
            )
        return None

    def _record_failure(
        self,
        entry: _Running,
        failure: TaskAttemptFailure,
        pending: deque,
        on_quarantine: Callable[[_Pending], None],
    ) -> None:
        _record_attempt_failure(
            entry.slot, failure, pending, on_quarantine, self.stats,
            self.max_attempts, self.backoff_base_s, self.backoff_max_s,
        )


def _run_in_process(
    slot: _Pending,
    max_attempts: int,
    backoff_base_s: float,
    backoff_max_s: float,
    stats: CampaignStats,
) -> Optional[Tuple[Any, float]]:
    """Serial in-process attempts (no crash/hang isolation, no timeout)."""
    while True:
        start = time.perf_counter()
        try:
            result = execute_task(slot.task)
            return result, time.perf_counter() - start
        except Exception as exc:  # KeyboardInterrupt etc. still propagate
            slot.failures.append(TaskAttemptFailure(
                attempt=slot.attempt,
                outcome="error",
                error_type=type(exc).__name__,
                message=str(exc)[:500],
                elapsed_s=time.perf_counter() - start,
            ))
            if slot.attempt >= max_attempts:
                return None
            stats.n_retries += 1
            time.sleep(_backoff_delay(
                slot.task, slot.attempt, backoff_base_s, backoff_max_s
            ))
            slot.attempt += 1


# ----------------------------------------------------------------------
# campaign driver
# ----------------------------------------------------------------------

def run_campaign(
    tasks: Iterable[CampaignTask],
    n_workers: int = 1,
    cache_dir: str | None = None,
    progress: Optional[ProgressCallback] = None,
    chunksize: int = 1,
    timeout_s: Optional[float] = None,
    max_attempts: int = 1,
    backoff_base_s: float = 0.1,
    backoff_max_s: float = 5.0,
    raise_on_error: bool = False,
    isolation: Optional[str] = None,
    warm_pool: Optional[Any] = None,
    deadline_s: Optional[float] = None,
) -> CampaignResult:
    """Run a characterization campaign, in parallel and through the cache.

    Args:
        tasks: Tasks to evaluate; results come back in the same order.
        n_workers: Concurrent worker processes; ``<= 1`` runs serially
            (in-process unless ``timeout_s`` forces isolation; results
            are identical either way -- seeds are per-task, not
            per-worker).
        cache_dir: Optional result-cache directory.  Enables warm-start
            (cached tasks are skipped) and checkpointing (each finished
            task is persisted immediately, so an interrupted campaign
            resumes from where it died).  Failures are never cached.
        progress: Optional ``progress(done, total)`` callback, invoked
            after the cache scan and after every completed (or
            quarantined) task.
        chunksize: Deprecated; retained for API compatibility and
            ignored (each attempt is dispatched individually so it can
            be timed out and reaped).
        timeout_s: Per-attempt wall-clock limit.  An attempt past the
            limit is killed and counted as a ``timeout`` failure; an
            attempt that completes but reports a task runtime over the
            limit is rejected as a timeout as well.  Setting this
            forces process isolation even at ``n_workers=1``.
        max_attempts: Total attempts per task before quarantine
            (1 = no retry).
        backoff_base_s: First retry delay; doubles per further attempt.
        backoff_max_s: Upper bound of the (pre-jitter) retry delay.
        raise_on_error: Re-raise as :class:`CampaignTaskError` when a
            task fails permanently, instead of quarantining it (the
            pre-hardening fail-fast behaviour).
        isolation: Execution engine for isolated attempts --
            ``"process"`` spawns a fresh worker per attempt (default;
            strongest containment), ``"warm"`` streams tasks over the
            persistent pre-forked :class:`~repro.campaign.warmpool.WarmPool`
            (same fault semantics, milliseconds less dispatch overhead
            per task).  ``None`` reads the ``REPRO_CAMPAIGN_ISOLATION``
            environment variable (default ``"process"``); passing
            ``warm_pool`` implies ``"warm"``.  Results are bit-identical
            across engines.
        warm_pool: Optional already-started
            :class:`~repro.campaign.warmpool.WarmPool` to execute on
            (e.g. the service's shared pool); the campaign leases its
            workers for the duration and never closes it.  Without one,
            a pool is created for the run and torn down afterwards.
        deadline_s: Remaining end-to-end budget (the service's deadline
            net of queue wait).  Clamps ``timeout_s`` so no single
            attempt can outlive the budget; a clamped attempt that runs
            out is reported as an ordinary ``timeout`` failure.

    Returns:
        :class:`CampaignResult` with per-task results, run stats, and
        the structured failures of quarantined tasks.
    """
    del chunksize  # accepted for compatibility; dispatch is per-attempt
    if deadline_s is not None:
        timeout_s = (
            deadline_s if timeout_s is None else min(timeout_s, deadline_s)
        )
    if isolation is None:
        if warm_pool is not None:
            isolation = "warm"
        else:
            isolation = os.environ.get(ISOLATION_ENV_VAR, "process")
    if isolation not in _ISOLATION_MODES:
        raise ValueError(
            f"isolation must be one of {_ISOLATION_MODES}, got {isolation!r}"
        )
    task_list = list(tasks)
    for task in task_list:
        get_task_function(task.kind)  # fail fast on unknown kinds
    start = time.perf_counter()
    cache = ResultCache(cache_dir) if cache_dir else None
    results: List[Any] = [None] * len(task_list)
    stats = CampaignStats(n_tasks=len(task_list), n_workers=max(1, n_workers))
    failures: List[TaskFailure] = []

    # Resolve cache hits and collapse duplicates to one execution each.
    pending: Dict[str, List[int]] = {}
    hit_keys: Dict[str, Any] = {}
    for index, task in enumerate(task_list):
        key = task.key
        if key in hit_keys:
            results[index] = hit_keys[key]
            stats.n_cache_hits += 1
            continue
        if key in pending:
            pending[key].append(index)
            continue
        if cache is not None:
            entry = cache.get(key)
            if entry is not None:
                hit_keys[key] = entry["result"]
                results[index] = entry["result"]
                stats.n_cache_hits += 1
                continue
        pending[key] = [index]
    stats.n_unique = len(pending) + len(hit_keys)
    done = stats.n_cache_hits
    if progress is not None:
        progress(done, len(task_list))

    def complete(index: int, result: Any, elapsed: float) -> None:
        nonlocal done
        task = task_list[index]
        key = task.key
        for occurrence in pending[key]:
            results[occurrence] = result
        done += len(pending[key])
        stats.n_executed += 1
        stats.task_s += elapsed
        if cache is not None:
            cache.put(
                key,
                {
                    "task": task.as_dict(),
                    "result": result,
                    "elapsed_s": elapsed,
                },
            )
        if progress is not None:
            progress(done, len(task_list))

    def quarantine(slot: _Pending) -> None:
        nonlocal done
        task = slot.task
        failure = TaskFailure(
            index=slot.index,
            key=task.key,
            kind=task.kind,
            params=dict(task.params),
            seed=task.seed,
            attempts=list(slot.failures),
        )
        failures.append(failure)
        stats.n_quarantined += 1
        done += len(pending[task.key])
        if progress is not None:
            progress(done, len(task_list))
        if raise_on_error:
            raise CampaignTaskError(failure)

    to_run = [(indices[0], task_list[indices[0]]) for indices in pending.values()]
    isolate = timeout_s is not None or (n_workers > 1 and len(to_run) > 1)
    use_warm = isolation == "warm" and (warm_pool is not None or isolate)
    if use_warm:
        from .warmpool import WarmPool

        stats.isolation = "warm"
        pool = warm_pool
        owned = pool is None
        if owned:
            pool = WarmPool(n_workers=max(1, n_workers)).start()
        try:
            stats.n_workers = pool.n_workers
            pool.run_tasks(
                to_run, complete, quarantine, stats,
                timeout_s=timeout_s,
                max_attempts=max_attempts,
                backoff_base_s=backoff_base_s,
                backoff_max_s=backoff_max_s,
            )
        finally:
            if owned:
                pool.close()
    elif isolate:
        executor = _IsolatedExecutor(
            n_workers=n_workers,
            timeout_s=timeout_s,
            max_attempts=max_attempts,
            backoff_base_s=backoff_base_s,
            backoff_max_s=backoff_max_s,
            stats=stats,
        )
        executor.run(to_run, complete, quarantine)
    else:
        for index, task in to_run:
            slot = _Pending(index, task)
            outcome = _run_in_process(
                slot, max_attempts, backoff_base_s, backoff_max_s, stats
            )
            if outcome is None:
                quarantine(slot)
            else:
                complete(index, *outcome)

    stats.wall_s = time.perf_counter() - start
    return CampaignResult(
        tasks=task_list, results=results, stats=stats, failures=failures
    )
