"""Parallel, cached, resumable campaign runner.

:func:`run_campaign` takes a list of :class:`CampaignTask` and returns
one result per task (input order preserved), fanning uncached tasks out
over a ``multiprocessing`` pool:

* **Caching** -- with a ``cache_dir``, every completed task is persisted
  to a :class:`~repro.campaign.cache.ResultCache` keyed by the stable
  task hash *as soon as it finishes*; already-cached tasks are never
  re-executed.
* **Resume** -- the incremental cache writes double as a checkpoint: a
  killed campaign restarts and recomputes only the tasks whose results
  never landed on disk.
* **Determinism** -- task seeds travel *inside* the task (derived from
  the task identity, see :func:`~repro.campaign.task.derive_seed`), so
  results are bit-identical for any worker count, submission order, or
  kill/resume history.
* **Metrics** -- a :class:`CampaignStats` records tasks done, cache
  hits, wall-clock, aggregate in-task compute time, and the implied
  worker utilization; a ``progress`` callback streams completion.

Duplicate tasks (same stable hash) are executed once and their result
fanned out to every occurrence.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .cache import ResultCache
from .registry import execute_task, get_task_function
from .task import CampaignTask

__all__ = ["CampaignStats", "CampaignResult", "run_campaign"]

ProgressCallback = Callable[[int, int], None]


@dataclass
class CampaignStats:
    """Execution metrics of one :func:`run_campaign` call.

    Attributes:
        n_tasks: Tasks submitted (including duplicates).
        n_unique: Distinct task hashes among them.
        n_executed: Tasks actually computed this run.
        n_cache_hits: Tasks answered from the on-disk cache.
        n_workers: Worker processes used (1 = in-process serial).
        wall_s: End-to-end wall-clock of the campaign.
        task_s: Summed in-task compute time of executed tasks.
    """

    n_tasks: int = 0
    n_unique: int = 0
    n_executed: int = 0
    n_cache_hits: int = 0
    n_workers: int = 1
    wall_s: float = 0.0
    task_s: float = 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of the worker-seconds budget spent inside tasks."""
        if self.n_executed == 0 or self.wall_s <= 0.0:
            return 0.0
        return min(1.0, self.task_s / (self.wall_s * self.n_workers))

    def summary(self) -> str:
        """One-line human-readable report for CLIs and benchmarks."""
        return (
            f"{self.n_tasks} tasks ({self.n_unique} unique): "
            f"{self.n_executed} executed, {self.n_cache_hits} cache hits "
            f"in {self.wall_s:.2f}s wall "
            f"({self.n_workers} workers, "
            f"{100.0 * self.worker_utilization:.0f}% utilization)"
        )


@dataclass
class CampaignResult:
    """Results aligned with the submitted task list, plus run metrics."""

    tasks: List[CampaignTask]
    results: List[Any]
    stats: CampaignStats = field(default_factory=CampaignStats)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


def _run_indexed_task(
    payload: Tuple[int, CampaignTask],
) -> Tuple[int, Any, float]:
    """Pool worker: execute one task, returning (index, result, seconds)."""
    index, task = payload
    start = time.perf_counter()
    result = execute_task(task)
    return index, result, time.perf_counter() - start


def run_campaign(
    tasks: Iterable[CampaignTask],
    n_workers: int = 1,
    cache_dir: str | None = None,
    progress: Optional[ProgressCallback] = None,
    chunksize: int = 1,
) -> CampaignResult:
    """Run a characterization campaign, in parallel and through the cache.

    Args:
        tasks: Tasks to evaluate; results come back in the same order.
        n_workers: Worker processes; ``<= 1`` runs serially in-process
            (identical results -- seeds are per-task, not per-worker).
        cache_dir: Optional result-cache directory.  Enables warm-start
            (cached tasks are skipped) and checkpointing (each finished
            task is persisted immediately, so an interrupted campaign
            resumes from where it died).
        progress: Optional ``progress(done, total)`` callback, invoked
            after the cache scan and after every completed task.
        chunksize: Tasks per pool dispatch (raise for very short tasks).

    Returns:
        :class:`CampaignResult` with per-task results and run stats.
    """
    task_list = list(tasks)
    for task in task_list:
        get_task_function(task.kind)  # fail fast on unknown kinds
    start = time.perf_counter()
    cache = ResultCache(cache_dir) if cache_dir else None
    results: List[Any] = [None] * len(task_list)
    stats = CampaignStats(n_tasks=len(task_list), n_workers=max(1, n_workers))

    # Resolve cache hits and collapse duplicates to one execution each.
    pending: Dict[str, List[int]] = {}
    hit_keys: Dict[str, Any] = {}
    for index, task in enumerate(task_list):
        key = task.key
        if key in hit_keys:
            results[index] = hit_keys[key]
            stats.n_cache_hits += 1
            continue
        if key in pending:
            pending[key].append(index)
            continue
        if cache is not None:
            entry = cache.get(key)
            if entry is not None:
                hit_keys[key] = entry["result"]
                results[index] = entry["result"]
                stats.n_cache_hits += 1
                continue
        pending[key] = [index]
    stats.n_unique = len(pending) + len(hit_keys)
    done = stats.n_cache_hits
    if progress is not None:
        progress(done, len(task_list))

    def complete(index: int, result: Any, elapsed: float) -> None:
        nonlocal done
        task = task_list[index]
        key = task.key
        for occurrence in pending[key]:
            results[occurrence] = result
        done += len(pending[key])
        stats.n_executed += 1
        stats.task_s += elapsed
        if cache is not None:
            cache.put(
                key,
                {
                    "task": task.as_dict(),
                    "result": result,
                    "elapsed_s": elapsed,
                },
            )
        if progress is not None:
            progress(done, len(task_list))

    to_run = [(indices[0], task_list[indices[0]]) for indices in pending.values()]
    if n_workers > 1 and len(to_run) > 1:
        context = multiprocessing.get_context()
        with context.Pool(processes=min(n_workers, len(to_run))) as pool:
            for index, result, elapsed in pool.imap_unordered(
                _run_indexed_task, to_run, chunksize=max(1, chunksize)
            ):
                complete(index, result, elapsed)
    else:
        for payload in to_run:
            index, result, elapsed = _run_indexed_task(payload)
            complete(index, result, elapsed)

    stats.wall_s = time.perf_counter() - start
    return CampaignResult(tasks=task_list, results=results, stats=stats)
