"""Chaos task kinds: pathological workloads for hardening the runner.

Fault-sweep campaigns are *full* of pathological tasks -- configurations
that crash a worker, hang in a corner case, or fail transiently under
load.  These registered kinds reproduce each pathology on demand so the
runner's containment (timeouts, retries, quarantine) can be exercised by
the chaos test-suite, the nightly chaos CI job, and ad-hoc soak runs:

============== =======================================================
kind           behaviour
============== =======================================================
``chaos_ok``   returns ``{"value": params["x"] ** 2}`` immediately
``chaos_error``raises ``ValueError`` on every attempt
``chaos_crash``SIGKILLs its own worker process (hard crash, no
               traceback ever escapes)
``chaos_hang`` sleeps ``params["sleep_s"]`` seconds (default 3600)
``chaos_stubborn`` ignores SIGTERM, then hangs -- reapers must
               escalate to SIGKILL to reclaim the worker
``chaos_flaky``fails with ``RuntimeError`` for the first
               ``params["fail_times"]`` attempts, then succeeds; the
               attempt counter lives in ``params["scratch_dir"]`` so it
               survives worker isolation
``chaos_probe``sleeps ``params["sleep_s"]``, then appends one line to
               ``params["probe_file"]`` -- an execution counter for
               exactly-once assertions across service restarts
============== =======================================================

All kinds are deterministic given their params (plus, for
``chaos_flaky``, the scratch directory's attempt history), so they are
safe to cache like any other task.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path
from typing import Any, Dict

from .registry import register

__all__ = ["CHAOS_KINDS"]

CHAOS_KINDS = (
    "chaos_ok", "chaos_error", "chaos_crash", "chaos_hang",
    "chaos_stubborn", "chaos_flaky", "chaos_probe",
)


@register("chaos_ok")
def _chaos_ok(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A healthy task: deterministic function of params and seed."""
    x = int(params.get("x", 0))
    return {"value": x * x, "seed": seed}


@register("chaos_error")
def _chaos_error(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Raises on every attempt (the always-broken task)."""
    raise ValueError(params.get("message", "chaos_error: injected failure"))


@register("chaos_crash")
def _chaos_crash(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Hard-kills its own worker: no exception, no cleanup, no result."""
    os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(60)  # pragma: no cover - unreachable; SIGKILL is immediate
    return {}


@register("chaos_hang")
def _chaos_hang(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Wedges the worker well past any sane per-task timeout."""
    time.sleep(float(params.get("sleep_s", 3600.0)))
    return {"slept": True}


@register("chaos_stubborn")
def _chaos_stubborn(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Ignores SIGTERM and then hangs: only SIGKILL reclaims the worker.

    Exercises the reaper's terminate-then-kill escalation path (both
    the process-per-attempt reaper and warm-pool recycling).
    """
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(float(params.get("sleep_s", 3600.0)))
    return {"slept": True}


@register("chaos_flaky")
def _chaos_flaky(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Fails the first ``fail_times`` attempts, then succeeds.

    Attempt history is a set of marker files under ``scratch_dir``
    (created with ``O_EXCL`` so concurrent attempts cannot double-count),
    which works across process isolation boundaries.
    """
    scratch = Path(params["scratch_dir"])
    scratch.mkdir(parents=True, exist_ok=True)
    fail_times = int(params.get("fail_times", 2))
    for attempt in range(1, fail_times + 2):
        marker = scratch / f"attempt-{attempt}"
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        if attempt <= fail_times:
            raise RuntimeError(
                f"chaos_flaky: injected failure {attempt}/{fail_times}"
            )
        return {"value": int(params.get("x", 0)), "attempts": attempt}
    return {"value": int(params.get("x", 0)), "attempts": fail_times + 1}


@register("chaos_probe")
def _chaos_probe(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Sleeps, then appends one line to ``probe_file``: a side-effect probe.

    The order matters: a worker killed mid-sleep leaves *zero* lines,
    so after a crash-and-restart the line count equals the number of
    executions that ran to completion -- the observable the
    kill-restart suite asserts is exactly one per unique task.  The
    append is a single ``O_APPEND`` write (atomic for short lines on
    POSIX), so concurrent completions cannot interleave bytes.
    """
    time.sleep(float(params.get("sleep_s", 0.0)))
    line = f"{params.get('x', 0)} seed={seed}\n".encode("utf-8")
    fd = os.open(
        params["probe_file"], os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
    )
    try:
        os.write(fd, line)
    finally:
        os.close(fd)
    return {"value": int(params.get("x", 0)), "probed": True}
