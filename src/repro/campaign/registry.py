"""Registry of campaign task kinds.

A task *kind* maps a name to a module-level function
``fn(params: dict, seed: int) -> JSON-serializable result``.  Keeping
the mapping name-based (rather than shipping callables) is what lets
the runner hand tasks to a ``multiprocessing`` pool and key the result
cache on nothing but the task's canonical JSON description.

Task functions must be **pure and deterministic**: the result may
depend only on ``params``, ``seed``, and the library code (whose
behavioural version is pinned by
:data:`repro.campaign.task.CODE_VERSION`).  All heavy ``repro``
imports happen inside the task bodies so this module stays cheap to
import from anywhere (including the worker processes of a freshly
forked pool).

Built-in kinds cover the paper's characterization workloads:

========================  ====================================================
kind                      workload
========================  ====================================================
``gear_dse_row``          one Table IV / Fig. 4 design-space record
``gear_mc_chunk``         one Monte Carlo shard of a GeAr error-rate estimate
``analytic``              one exact analytic error record (GeAr or HeteroGeAr)
``ripple_adder``          one ripple-adder characterization (Sec. 6 library)
``gear_adder``            one simulated GeAr characterization
``multiplier``            one Fig. 6 recursive/2x2 multiplier record
``sad_quality``           one SAD-accelerator quality/energy record
``filter_ssim``           one Fig. 10 low-pass-filter SSIM record
``verify_component``      one differential-verification conformance report
``resilience``            one transient-fault sweep point (any layer)
``chaos_*``               pathological workloads for runner hardening
                          (:mod:`repro.campaign.chaos`)
========================  ====================================================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from .task import CampaignTask

__all__ = ["register", "get_task_function", "task_kinds", "execute_task"]

TaskFunction = Callable[[Dict[str, Any], int], Any]

_REGISTRY: Dict[str, TaskFunction] = {}


def register(kind: str) -> Callable[[TaskFunction], TaskFunction]:
    """Decorator registering ``fn`` as the implementation of ``kind``."""

    def decorator(fn: TaskFunction) -> TaskFunction:
        if kind in _REGISTRY:
            raise ValueError(f"task kind {kind!r} already registered")
        _REGISTRY[kind] = fn
        return fn

    return decorator


def get_task_function(kind: str) -> TaskFunction:
    """Implementation of ``kind``; raises ``KeyError`` when unknown."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown task kind {kind!r}; known: {known}") from None


def task_kinds() -> List[str]:
    """Registered kind names, sorted."""
    return sorted(_REGISTRY)


def execute_task(task: CampaignTask) -> Any:
    """Run one task in the current process and return its raw result."""
    return get_task_function(task.kind)(dict(task.params), task.seed)


# ----------------------------------------------------------------------
# built-in task kinds
# ----------------------------------------------------------------------


@register("gear_dse_row")
def _gear_dse_row(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One design-space record for a GeAr configuration (Table IV row)."""
    from ..adders.gear import GeArAdder, GeArConfig
    from ..adders.gear_error import (
        exact_error_probability,
        monte_carlo_error_rate,
        paper_error_probability,
    )

    config = GeArConfig(
        n=int(params["n"]), r=int(params["r"]), p=int(params["p"])
    )
    model = params.get("model", "exact")
    if model == "exact":
        p_err = exact_error_probability(config)
    elif model == "paper":
        p_err = paper_error_probability(config)
    elif model == "monte_carlo":
        p_err = monte_carlo_error_rate(
            config, n_samples=int(params.get("n_samples", 200_000)), seed=seed
        )
    else:
        raise ValueError(f"unknown model {model!r}")
    adder = GeArAdder(config)
    record: Dict[str, Any] = {
        "name": config.name,
        "n": config.n,
        "r": config.r,
        "p": config.p,
        "k": config.k,
        "l": config.l,
        "accuracy_percent": 100.0 * (1.0 - p_err),
        "lut_count": adder.lut_count,
        "area_ge": adder.area_ge,
    }
    if params.get("include_delay", True):
        record["delay_ps"] = adder.delay_ps
    return record


@register("gear_mc_chunk")
def _gear_mc_chunk(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One Monte Carlo shard of a GeAr error-rate estimate."""
    from ..adders.gear import GeArConfig
    from ..adders.gear_error import monte_carlo_error_rate

    config = GeArConfig(
        n=int(params["n"]), r=int(params["r"]), p=int(params["p"])
    )
    n_samples = int(params["n_samples"])
    rate = monte_carlo_error_rate(config, n_samples=n_samples, seed=seed)
    return {"error_rate": rate, "n_samples": n_samples}


@register("analytic")
def _analytic(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One exact analytic error record for a block adder configuration.

    ``params`` names the configuration either homogeneously
    (``n``/``r``/``p``) or heterogeneously (``segments``: a list of
    ``[r, p]`` pairs or a ``"r:p,r:p,..."`` string).  The record is
    computed by the PMF-convolution engine
    (:func:`repro.errors.analytic_summary`) -- no sampling, so ``seed``
    is part of the cache key but never consumed.
    """
    from ..adders.hetero import HeteroGeArAdder, HeteroGeArConfig
    from ..errors.analytic import analytic_summary

    if "segments" in params:
        spec = params["segments"]
        if isinstance(spec, str):
            config = HeteroGeArConfig.from_string(spec)
        else:
            config = HeteroGeArConfig(tuple((int(r), int(p)) for r, p in spec))
    else:
        config = HeteroGeArConfig.from_gear_params(
            int(params["n"]), int(params["r"]), int(params["p"])
        )
    adder = HeteroGeArAdder(config)
    record: Dict[str, Any] = {
        "name": params.get("name", config.name),
        "n": config.n,
        "k": config.k,
        "segments": [list(seg) for seg in config.segments],
        "never_overestimates": config.never_overestimates,
        "lut_count": adder.lut_count,
        "area_ge": adder.area_ge,
        "delay_ps": adder.delay_ps,
    }
    record.update(analytic_summary(config))
    return record


@register("ripple_adder")
def _ripple_adder(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Characterize one approximate ripple adder."""
    from ..adders.characterize import characterize_adder
    from ..adders.ripple import ApproximateRippleAdder

    adder = ApproximateRippleAdder(
        int(params["width"]),
        approx_fa=params["fa"],
        num_approx_lsbs=int(params["num_approx_lsbs"]),
    )
    record = characterize_adder(
        adder, n_samples=int(params.get("n_samples", 100_000)), seed=seed
    )
    return record.to_record()


@register("gear_adder")
def _gear_adder(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Characterize one GeAr configuration by simulation."""
    from ..adders.characterize import characterize_adder
    from ..adders.gear import GeArAdder, GeArConfig

    config = GeArConfig(
        n=int(params["n"]), r=int(params["r"]), p=int(params["p"])
    )
    record = characterize_adder(
        GeArAdder(config),
        n_samples=int(params.get("n_samples", 100_000)),
        seed=seed,
    )
    return record.to_record()


@register("multiplier")
def _multiplier(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Characterize one multiplier of the Fig. 6 family.

    ``params["leaf_policy"] == "spec2x2"`` selects the 2x2 leaf
    specification path (``params["leaf_mul"]`` names the cell);
    anything else builds a :class:`RecursiveMultiplier`.
    """
    from ..errors.metrics import compute_error_metrics
    from ..logic.simulate import estimate_power
    from ..multipliers.characterize import (
        MultiplierCharacterization,
        _operand_sweep,
        characterize_multiplier,
    )
    from ..multipliers.mul2x2 import multiplier_2x2
    from ..multipliers.recursive import RecursiveMultiplier

    n_samples = int(params.get("n_samples", 50_000))
    if params.get("leaf_policy") == "spec2x2":
        spec = multiplier_2x2(params["leaf_mul"])
        a, b = _operand_sweep(2, n_samples, seed)
        metrics = compute_error_metrics(
            spec.multiply(a, b), a * b, max_output=9.0
        )
        record = MultiplierCharacterization(
            name=params.get("name", params["leaf_mul"]),
            width=2,
            area_ge=spec.area_ge,
            power_nw=estimate_power(spec.netlist()).total_nw,
            metrics=metrics,
        )
        return record.to_record()
    mul = RecursiveMultiplier(
        int(params["width"]),
        leaf_mul=params.get("leaf_mul", "ApxMulOur"),
        leaf_policy=params.get("leaf_policy", "none"),
        adder_fa=params.get("adder_fa", "AccuFA"),
        adder_approx_lsbs=int(params.get("adder_approx_lsbs", 0)),
    )
    record = characterize_multiplier(
        mul, name=params.get("name"), n_samples=n_samples, seed=seed
    )
    return record.to_record()


@register("sad_quality")
def _sad_quality(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Quality/energy record for one SAD accelerator variant.

    The stimulus is regenerated from ``seed`` inside the task, so every
    variant evaluated with the same seed sees identical blocks -- the
    sharded sweep reproduces the serial family sweep bit for bit.
    """
    import numpy as np

    from ..accelerators.sad import SADAccelerator

    n_pixels = int(params["n_pixels"])
    n_samples = int(params.get("n_samples", 3000))
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, (n_samples, n_pixels))
    b = rng.integers(0, 256, (n_samples, n_pixels))
    truth = SADAccelerator(n_pixels).sad(a, b)
    fa = params.get("fa", "AccuFA")
    approx_lsbs = int(params.get("approx_lsbs", 0))
    accelerator = SADAccelerator(n_pixels, fa=fa, approx_lsbs=approx_lsbs)
    result = accelerator.sad(a, b)
    med = float(np.abs(result - truth).mean())
    mre = float(np.mean(np.abs(result - truth) / np.maximum(truth, 1)))
    return {
        "name": params.get("name", accelerator.name),
        "fa": fa,
        "approx_lsbs": approx_lsbs,
        "mean_error_distance": round(med, 2),
        "mean_relative_error": round(mre, 5),
        "energy_fj": round(accelerator.energy_per_op_fj, 0),
    }


@register("filter_ssim")
def _filter_ssim(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """SSIM of one approximate low-pass filter on one synthetic image.

    Reproduces a single point of the Fig. 10 data-dependent-resilience
    study: the named standard image is filtered by the exact 3x3
    binomial kernel and by the approximate adder-tree variant, and the
    two results are compared by SSIM.
    """
    from ..accelerators.filters import LowPassFilterAccelerator, gaussian3x3_exact
    from ..media.ssim import ssim
    from ..media.synthetic import standard_images

    image_name = params["image"]
    images = standard_images(size=int(params.get("size", 64)), seed=seed)
    if image_name not in images:
        known = ", ".join(sorted(images))
        raise KeyError(f"unknown standard image {image_name!r}; known: {known}")
    image = images[image_name]
    accelerator = LowPassFilterAccelerator(
        fa=params.get("fa", "AccuFA"),
        approx_lsbs=int(params.get("approx_lsbs", 0)),
    )
    exact = gaussian3x3_exact(image)
    approx = accelerator.apply(image)
    return {
        "image": image_name,
        "fa": accelerator.fa,
        "approx_lsbs": accelerator.approx_lsbs,
        "ssim": ssim(exact, approx),
        "area_ge": accelerator.area_ge,
    }


@register("verify_component")
def _verify_component(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One component's differential-verification conformance report.

    The named budget is part of ``params`` (and hence of the cache key),
    so cached fast-budget reports are never served to a full-budget run.
    """
    from ..verify.conformance import verify_component

    report = verify_component(
        params["component"], budget=params["budget"], seed=seed
    )
    return report.to_record()


@register("resilience")
def _resilience(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One fault-sweep point: a workload under a seeded transient plan.

    ``params["workload"]`` picks the layer and measurement (see
    :mod:`repro.resilience.sweep`); the fault plan derives from
    ``(seed, workload, rate)``, so the record is reproducible from the
    task alone -- like every other kind here.
    """
    from ..resilience.sweep import resilience_record

    return resilience_record(params, seed)


# Chaos kinds register themselves on import; keeping the import at the
# bottom (after ``register`` exists) resolves the intentional cycle.
from . import chaos  # noqa: E402,F401  (registration side effect)
