"""Warm persistent worker pool: amortized process isolation.

The hardened runner's process-per-attempt executor
(:class:`repro.campaign.runner._IsolatedExecutor`) buys airtight fault
containment at a steep price: every attempt pays a full
``multiprocessing.Process`` spawn (fork + pipe setup + scheduler churn,
milliseconds) before the task -- often hundreds of microseconds of real
work -- even starts.  For the short tasks that dominate service traffic
and fine-grained sweeps, dispatch is the bottleneck, not compute.

:class:`WarmPool` keeps the containment and kills the overhead:

* **Pre-forked, long-lived workers** -- each worker process is spawned
  once, imports the heavy dependency stack once
  (:data:`PRELOAD_MODULES`), and then executes a *stream* of tasks over
  a duplex pipe.  A task dispatch is one pickle round-trip (~10 us)
  instead of one process spawn (~2-4 ms).
* **Micro-batched dispatch** -- the campaign scheduler sends up to
  ``batch_size`` tasks per pipe message and the worker streams results
  back one message per task, so pipe wakeups amortize across a batch
  while per-task timeout verdicts stay exact.
* **Deadline enforcement by recycling** -- a worker that wedges past a
  task's ``timeout_s`` (or dies under it) is SIGTERM/SIGKILLed and a
  fresh worker forked in its place; tasks queued behind the dead head
  migrate to the replacement without being charged an attempt.  Retry,
  deterministic backoff, quarantine, and the
  :class:`~repro.campaign.runner.TaskFailure` schema are bit-identical
  to the process-per-attempt executor's.
* **Two front-ends** -- the single-threaded campaign scheduler
  (:meth:`WarmPool.run_tasks`, used by
  :func:`~repro.campaign.runner.run_campaign` under
  ``isolation="warm"``) and a thread-safe lease API
  (:meth:`WarmPool.execute`) for concurrent submitters such as the
  service's worker bridge (:mod:`repro.service.workers`).

Worker state *persists across tasks* in this mode -- that is the whole
point -- so process-per-attempt (``isolation="process"``) remains the
default and the right choice for chaos-prone or quarantine-heavy task
kinds where a contaminated interpreter must not outlive an attempt.
"""

from __future__ import annotations

import importlib
import multiprocessing
import multiprocessing.connection
import queue as thread_queue
import threading
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from .registry import execute_task
from .task import CampaignTask

__all__ = ["WarmPool", "PRELOAD_MODULES"]

#: Modules a fresh worker imports before serving tasks, so the first
#: task of a worker's life does not pay the import bill.  Best-effort:
#: a module that fails to import is skipped (task bodies import what
#: they actually need anyway).
PRELOAD_MODULES = (
    "numpy",
    "repro.errors.analytic",
    "repro.adders.gear",
    "repro.adders.hetero",
)

#: Grace period between SIGTERM and SIGKILL when recycling a worker.
_KILL_GRACE_S = 0.25


def _preload() -> None:
    for name in PRELOAD_MODULES:
        try:
            importlib.import_module(name)
        except Exception:  # noqa: BLE001 - preloading is best-effort
            pass


def _worker_main(conn) -> None:
    """Child-process body: serve micro-batches of tasks until EOF.

    Protocol: the parent sends either ``None`` (shut down) or a list of
    :class:`CampaignTask`; the worker answers **one message per task**,
    in order -- ``("ok", result, elapsed_s)`` or
    ``("error", type_name, message, traceback)`` -- so the parent can
    time out and harvest tasks individually even under batching.
    """
    _preload()
    while True:
        try:
            batch = conn.recv()
        except (EOFError, OSError):
            break
        if batch is None:
            break
        for task in batch:
            try:
                start = time.perf_counter()
                result = execute_task(task)
                message: Tuple[Any, ...] = (
                    "ok", result, time.perf_counter() - start
                )
            except BaseException as exc:  # noqa: BLE001 - process edge
                message = (
                    "error",
                    type(exc).__name__,
                    str(exc),
                    traceback.format_exc(limit=20),
                )
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                return
    try:
        conn.close()
    except OSError:
        pass


class _WorkerHandle:
    """Parent-side view of one long-lived worker process."""

    def __init__(self, context) -> None:
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.n_dispatched = 0  # tasks ever sent to this worker

    def dispatch(self, tasks: List[CampaignTask]) -> None:
        self.conn.send(tasks)
        self.n_dispatched += len(tasks)

    def kill(self) -> Optional[int]:
        """Terminate (then SIGKILL) the worker; returns its exit code."""
        process = self.process
        if process.is_alive():
            process.terminate()
            process.join(_KILL_GRACE_S)
            if process.is_alive():
                process.kill()
                process.join()
        else:
            process.join()
        try:
            self.conn.close()
        except OSError:
            pass
        return process.exitcode


def _timeout_failure(attempt: int, timeout_s: float, elapsed_s: float):
    from .runner import TaskAttemptFailure

    return TaskAttemptFailure(
        attempt=attempt,
        outcome="timeout",
        error_type=None,
        message=f"attempt exceeded timeout_s={timeout_s}",
        elapsed_s=elapsed_s,
    )


def _crash_failure(attempt: int, exitcode: Optional[int], elapsed_s: float):
    from .runner import TaskAttemptFailure

    return TaskAttemptFailure(
        attempt=attempt,
        outcome="crash",
        error_type=None,
        message=f"worker died with exit code {exitcode}",
        elapsed_s=elapsed_s,
    )


def _classify_message(
    message: tuple,
    attempt: int,
    timeout_s: Optional[float],
    elapsed_s: float,
) -> Tuple[str, Any]:
    """Map one worker message to ``("ok", (result, task_elapsed))`` or
    ``("fail", TaskAttemptFailure)``.

    Verdicts match the hardened runner bit for bit, including rejecting
    an attempt that *completed* over budget by the worker's own clock
    (so timeout verdicts never depend on parent polling latency).
    """
    from .runner import TaskAttemptFailure

    if message[0] == "ok":
        task_elapsed = message[2]
        if timeout_s is not None and task_elapsed > timeout_s:
            return "fail", _timeout_failure(attempt, timeout_s, task_elapsed)
        return "ok", (message[1], task_elapsed)
    _, error_type, text, trace = message
    return "fail", TaskAttemptFailure(
        attempt=attempt,
        outcome="error",
        error_type=error_type,
        message=(text or trace.strip().splitlines()[-1])[:500],
        elapsed_s=elapsed_s,
    )


class WarmPool:
    """Persistent pre-forked workers executing streams of campaign tasks.

    Args:
        n_workers: Long-lived worker processes to keep warm.
        batch_size: Upper bound on tasks sent per pipe message by the
            campaign scheduler (:meth:`run_tasks`); amortizes pipe
            wakeups without widening any timeout window.
        max_tasks_per_worker: Optional hygiene bound -- a worker that
            has executed this many tasks is recycled at the next idle
            moment, bounding cross-task state accumulation.
        context: ``multiprocessing`` context (defaults to the platform
            default, matching the hardened runner).

    The pool is a context manager; :meth:`close` (or ``with``-exit)
    kills every worker.  Counters (:attr:`n_spawned`,
    :attr:`n_recycled`, :attr:`n_tasks_done`) feed benchmarks, the
    service stats endpoint, and the chaos suite.
    """

    def __init__(
        self,
        n_workers: int = 1,
        batch_size: int = 4,
        max_tasks_per_worker: Optional[int] = None,
        context=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.n_workers = n_workers
        self.batch_size = batch_size
        self.max_tasks_per_worker = max_tasks_per_worker
        self.context = context or multiprocessing.get_context()
        self._idle: "thread_queue.Queue[_WorkerHandle]" = thread_queue.Queue()
        self._lock = threading.Lock()
        self._started = False
        self._closed = False
        self.n_spawned = 0
        self.n_recycled = 0
        self.n_tasks_done = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WarmPool":
        """Fork the workers (idempotent); returns ``self`` for chaining."""
        with self._lock:
            if self._closed:
                raise RuntimeError("warm pool already closed")
            if self._started:
                return self
            self._started = True
            for _ in range(self.n_workers):
                self._idle.put(self._spawn())
        return self

    def close(self) -> None:
        """Kill every idle worker and refuse further work (idempotent).

        Leased workers are killed by their leaseholder on release.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        while True:
            try:
                worker = self._idle.get_nowait()
            except thread_queue.Empty:
                break
            worker.kill()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WarmPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _spawn(self) -> _WorkerHandle:
        handle = _WorkerHandle(self.context)
        self.n_spawned += 1
        return handle

    def _recycle(
        self, worker: _WorkerHandle
    ) -> Tuple[Optional[int], Optional[_WorkerHandle]]:
        """Kill ``worker``; fork a replacement unless the pool is closed."""
        exitcode = worker.kill()
        self.n_recycled += 1
        if self._closed:
            return exitcode, None
        return exitcode, self._spawn()

    def _lease(self) -> _WorkerHandle:
        """Check one worker out (thread-safe); blocks until one is free."""
        if not self._started:
            self.start()
        while True:
            if self._closed:
                raise RuntimeError("warm pool closed")
            try:
                return self._idle.get(timeout=0.1)
            except thread_queue.Empty:
                continue

    def _release(self, worker: Optional[_WorkerHandle]) -> None:
        """Return a clean worker to the idle set (recycling a tired one)."""
        if worker is None:
            return
        if self._closed:
            worker.kill()
            return
        if (
            self.max_tasks_per_worker is not None
            and worker.n_dispatched >= self.max_tasks_per_worker
        ):
            _, worker = self._recycle(worker)
            if worker is None:
                return
        self._idle.put(worker)

    def to_record(self) -> Dict[str, Any]:
        return {
            "n_workers": self.n_workers,
            "batch_size": self.batch_size,
            "n_spawned": self.n_spawned,
            "n_recycled": self.n_recycled,
            "n_tasks_done": self.n_tasks_done,
            "closed": self._closed,
        }

    # -- thread-safe single-task front-end (service bridge) ------------

    def execute(
        self,
        task: CampaignTask,
        timeout_s: Optional[float] = None,
        max_attempts: int = 1,
        backoff_base_s: float = 0.1,
        backoff_max_s: float = 5.0,
        deadline_s: Optional[float] = None,
    ):
        """Run one task with full hardened semantics on a leased worker.

        Retries, deterministic backoff, timeout verdicts, and the
        quarantine record are bit-compatible with a single-task
        :func:`~repro.campaign.runner.run_campaign`: the same result or
        the same :class:`~repro.campaign.runner.TaskFailure` comes
        back.  Thread-safe -- concurrent callers lease distinct
        workers.

        ``deadline_s`` is an *absolute budget across all attempts*
        (the service's end-to-end deadline, already net of queue wait):
        each attempt's timeout is clamped to the remaining budget,
        backoff sleeps never overrun it, and once it is spent the
        remaining retries are abandoned with a ``timeout`` attempt
        record instead of being burned on an answer nobody will read.

        Returns:
            ``(result, None)`` on success, ``(None, TaskFailure)``
            after the last failed attempt.
        """
        from .runner import TaskAttemptFailure, TaskFailure, _backoff_delay

        max_attempts = max(1, max_attempts)
        deadline_at = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        failures: List[TaskAttemptFailure] = []
        for attempt in range(1, max_attempts + 1):
            attempt_timeout = timeout_s
            if deadline_at is not None:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0.0:
                    failures.append(TaskAttemptFailure(
                        attempt=attempt,
                        outcome="timeout",
                        error_type=None,
                        message=(
                            f"deadline budget ({deadline_s:.3f}s) exhausted "
                            f"before attempt {attempt}"
                        ),
                        elapsed_s=0.0,
                    ))
                    break
                attempt_timeout = (
                    remaining if attempt_timeout is None
                    else min(attempt_timeout, remaining)
                )
            try:
                worker = self._lease()
            except RuntimeError:
                failures.append(TaskAttemptFailure(
                    attempt=attempt,
                    outcome="crash",
                    error_type=None,
                    message="warm pool closed during execution",
                    elapsed_s=0.0,
                ))
                break
            outcome, worker = self._attempt(
                worker, task, attempt_timeout, attempt
            )
            self._release(worker)
            if outcome[0] == "ok":
                self.n_tasks_done += 1
                return outcome[1][0], None
            failures.append(outcome[1])
            if attempt < max_attempts and not self._closed:
                delay = _backoff_delay(
                    task, attempt, backoff_base_s, backoff_max_s
                )
                if deadline_at is not None:
                    delay = min(delay, max(0.0, deadline_at - time.monotonic()))
                time.sleep(delay)
        return None, TaskFailure(
            index=0,
            key=task.key,
            kind=task.kind,
            params=dict(task.params),
            seed=task.seed,
            attempts=failures,
        )

    def _attempt(
        self,
        worker: _WorkerHandle,
        task: CampaignTask,
        timeout_s: Optional[float],
        attempt: int,
    ) -> Tuple[Tuple[str, Any], Optional[_WorkerHandle]]:
        """One attempt on a leased worker.

        Returns ``(outcome, worker)`` where ``outcome`` is as produced
        by :func:`_classify_message` and ``worker`` is the (possibly
        freshly respawned) handle to release.
        """
        started = time.monotonic()
        deadline = started + timeout_s if timeout_s is not None else None
        try:
            worker.dispatch([task])
        except (BrokenPipeError, OSError):
            exitcode, worker = self._recycle(worker)
            return ("fail", _crash_failure(
                attempt, exitcode, time.monotonic() - started
            )), worker
        while True:
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                _, worker = self._recycle(worker)
                return ("fail", _timeout_failure(
                    attempt, timeout_s, now - started
                )), worker
            wait = 0.05 if deadline is None else min(
                0.05, max(0.001, deadline - now)
            )
            try:
                if not worker.conn.poll(wait):
                    continue
                message = worker.conn.recv()
            except (EOFError, OSError):
                # The worker died under the task (e.g. killed itself).
                exitcode, worker = self._recycle(worker)
                return ("fail", _crash_failure(
                    attempt, exitcode, time.monotonic() - started
                )), worker
            return _classify_message(
                message, attempt, timeout_s, time.monotonic() - started
            ), worker

    # -- campaign scheduler front-end ----------------------------------

    def run_tasks(
        self,
        to_run: List[Tuple[int, CampaignTask]],
        on_success: Callable[[int, Any, float], None],
        on_quarantine: Callable[[Any], None],
        stats,
        timeout_s: Optional[float] = None,
        max_attempts: int = 1,
        backoff_base_s: float = 0.1,
        backoff_max_s: float = 5.0,
    ) -> None:
        """Stream a campaign's unique tasks over the warm workers.

        Single-threaded scheduler with the exact retry / timeout /
        quarantine semantics of the process-per-attempt executor, but
        dispatching micro-batches onto persistent workers.  Checks
        every worker out of the lease queue for the duration, so a pool
        shared with a service bridge is driven safely by one front-end
        at a time per worker.
        """
        workers = [self._lease() for _ in range(self.n_workers)]
        scheduler = _WarmScheduler(
            pool=self,
            workers=workers,
            timeout_s=timeout_s,
            max_attempts=max(1, max_attempts),
            backoff_base_s=backoff_base_s,
            backoff_max_s=backoff_max_s,
            stats=stats,
        )
        try:
            scheduler.run(to_run, on_success, on_quarantine)
        finally:
            for i, worker in enumerate(scheduler.workers):
                if worker is None:
                    continue
                if scheduler.states[i].slots:
                    # Aborted mid-flight (e.g. raise_on_error): the pipe
                    # still carries unread results -- never return a
                    # dirty worker to the idle set.
                    _, replacement = self._recycle(worker)
                    self._release(replacement)
                else:
                    self._release(worker)


class _InFlight:
    """Tasks queued on one worker: a FIFO whose head is executing."""

    def __init__(self) -> None:
        self.slots: deque = deque()     # of runner._Pending
        self.head_started: float = 0.0  # when the head began executing


class _WarmScheduler:
    """Single-threaded micro-batching dispatcher over warm workers.

    Workers are addressed by list index; recycling swaps the handle at
    an index in place (``None`` if the closed pool refuses a
    replacement), so per-worker in-flight state survives a respawn.
    """

    def __init__(
        self,
        pool: WarmPool,
        workers: List[_WorkerHandle],
        timeout_s: Optional[float],
        max_attempts: int,
        backoff_base_s: float,
        backoff_max_s: float,
        stats,
    ) -> None:
        self.pool = pool
        self.workers: List[Optional[_WorkerHandle]] = list(workers)
        self.states = [_InFlight() for _ in workers]
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.stats = stats

    def run(self, to_run, on_success, on_quarantine) -> None:
        from .runner import _Pending

        pending = deque(_Pending(index, task) for index, task in to_run)
        while pending or any(state.slots for state in self.states):
            if all(worker is None for worker in self.workers):
                raise RuntimeError("warm pool closed during campaign")
            self._dispatch(pending)
            self._wait(pending)
            self._harvest(pending, on_success, on_quarantine)
            self._enforce_deadlines(pending, on_quarantine)

    # -- scheduling ----------------------------------------------------

    def _dispatch(self, pending: deque) -> None:
        now = time.monotonic()
        for i, worker in enumerate(self.workers):
            if worker is None or self.states[i].slots or not pending:
                continue
            batch: list = []
            for _ in range(len(pending)):
                if len(batch) >= self.pool.batch_size:
                    break
                slot = pending.popleft()
                if slot.not_before > now:
                    pending.append(slot)
                    continue
                batch.append(slot)
            if not batch:
                continue
            try:
                worker.dispatch([slot.task for slot in batch])
            except (BrokenPipeError, OSError):
                for slot in reversed(batch):
                    pending.appendleft(slot)
                self._replace(i)
                continue
            state = self.states[i]
            state.slots.extend(batch)
            state.head_started = now

    def _wait(self, pending: deque) -> None:
        now = time.monotonic()
        horizon = 0.2
        if self.timeout_s is not None:
            for i, worker in enumerate(self.workers):
                if worker is not None and self.states[i].slots:
                    deadline = self.states[i].head_started + self.timeout_s
                    horizon = min(horizon, deadline - now)
        for slot in pending:
            if slot.not_before > now:
                horizon = min(horizon, slot.not_before - now)
        horizon = max(0.005, horizon)
        conns = [
            worker.conn
            for i, worker in enumerate(self.workers)
            if worker is not None and self.states[i].slots
        ]
        if conns:
            multiprocessing.connection.wait(conns, timeout=horizon)
        elif pending:
            time.sleep(horizon)

    # -- harvesting ----------------------------------------------------

    def _harvest(self, pending, on_success, on_quarantine) -> None:
        for i in range(len(self.workers)):
            while self.workers[i] is not None and self.states[i].slots:
                worker = self.workers[i]
                state = self.states[i]
                try:
                    if not worker.conn.poll():
                        break
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    # Worker died under the head task: crash the head,
                    # migrate the rest, respawn.
                    elapsed = time.monotonic() - state.head_started
                    exitcode = self._replace(i)
                    self.stats.n_crashes += 1
                    self._fail_head(
                        i,
                        _crash_failure(
                            state.slots[0].attempt, exitcode, elapsed
                        ),
                        pending, on_quarantine, requeue_rest=True,
                    )
                    break
                kind, payload = _classify_message(
                    message,
                    state.slots[0].attempt,
                    self.timeout_s,
                    time.monotonic() - state.head_started,
                )
                if kind == "ok":
                    slot = state.slots.popleft()
                    state.head_started = time.monotonic()
                    self.pool.n_tasks_done += 1
                    result, task_elapsed = payload
                    on_success(slot.index, result, task_elapsed)
                else:
                    if payload.outcome == "timeout":
                        self.stats.n_timeouts += 1
                    self._fail_head(i, payload, pending, on_quarantine)

    def _enforce_deadlines(self, pending, on_quarantine) -> None:
        if self.timeout_s is None:
            return
        now = time.monotonic()
        for i, worker in enumerate(self.workers):
            state = self.states[i]
            if worker is None or not state.slots:
                continue
            elapsed = now - state.head_started
            if elapsed < self.timeout_s:
                continue
            self._replace(i)
            self.stats.n_timeouts += 1
            self._fail_head(
                i,
                _timeout_failure(
                    state.slots[0].attempt, self.timeout_s, elapsed
                ),
                pending, on_quarantine, requeue_rest=True,
            )

    def _fail_head(
        self, i, failure, pending, on_quarantine, requeue_rest=False
    ) -> None:
        from .runner import _record_attempt_failure

        state = self.states[i]
        slot = state.slots.popleft()
        if requeue_rest:
            # Tasks queued behind the dead head never ran: migrate them
            # back to pending without charging an attempt.
            while state.slots:
                pending.appendleft(state.slots.pop())
        state.head_started = time.monotonic()
        _record_attempt_failure(
            slot, failure, pending, on_quarantine, self.stats,
            self.max_attempts, self.backoff_base_s, self.backoff_max_s,
        )

    def _replace(self, i: int) -> Optional[int]:
        """Recycle worker ``i`` in place; returns the old exit code."""
        worker = self.workers[i]
        exitcode, replacement = self.pool._recycle(worker)
        self.workers[i] = replacement
        return exitcode
