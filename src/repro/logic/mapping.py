"""K-input LUT technology mapping (the Xilinx ISE substitute).

The paper's Table IV reports Virtex-6 LUT counts from ISE synthesis.
This module estimates LUT usage for any :class:`~repro.logic.netlist.
Netlist` with two classic bounds:

* **duplication-free greedy cone covering** (``n_luts``): gates are
  visited topologically and each gate absorbs single-fanout fanin cones
  while the combined support fits in K inputs -- the FlowMap-style
  heuristic restricted to fanout-free cones;
* **full-duplication estimate** (``n_luts_duplicated``): each primary
  output whose transitive input support fits in K inputs costs exactly
  one LUT (logic replication allowed), which is what ISE typically does
  for small arithmetic cells.

Real mappers land between the two; both are monotone in circuit
complexity, which is all the paper's area comparisons require.
Zero-area cells (``WIRE``) are routing and map for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, List, Set

from .netlist import Gate, Netlist

__all__ = ["LutMapping", "map_to_luts"]

_CONSTS = {"GND", "VDD"}


@dataclass(frozen=True)
class LutMapping:
    """Result of LUT-mapping a netlist.

    Attributes:
        n_luts: LUT count of the duplication-free greedy covering.
        n_luts_duplicated: LUT count allowing full logic duplication
            (every K-feasible output cone is one LUT).
        k: Targeted LUT input count.
        depth: LUT levels on the longest input-to-output path (greedy
            covering).
        cones: Leaf set of every greedy LUT root.
    """

    n_luts: int
    n_luts_duplicated: int
    k: int
    depth: int
    cones: Dict[str, FrozenSet[str]]


def _is_wire(gate: Gate) -> bool:
    return gate.cell.area_ge == 0.0 and gate.cell.n_inputs == 1


def map_to_luts(netlist: Netlist, k: int = 6) -> LutMapping:
    """Map a netlist onto K-input LUTs.

    Args:
        netlist: Combinational netlist (validated on entry).
        k: LUT input count (6 for the paper's Virtex-6 target).

    Returns:
        A :class:`LutMapping`.

    Raises:
        ValueError: If ``k < 2`` or a cell has more than ``k`` inputs.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    netlist.validate()
    drivers: Dict[str, Gate] = {g.output: g for g in netlist.gates}
    primary = set(netlist.inputs)

    fanout: Dict[str, int] = {}
    for gate in netlist.gates:
        for net in gate.inputs:
            fanout[net] = fanout.get(net, 0) + 1
    for net in netlist.outputs:
        fanout[net] = fanout.get(net, 0) + 1

    # -- forward pass: greedy duplication-free cones ---------------------
    support: Dict[str, FrozenSet[str]] = {}
    wire_alias: Dict[str, str] = {}  # wire output -> effective source net
    depth: Dict[str, int] = {net: 0 for net in primary | _CONSTS}

    def resolve(net: str) -> str:
        while net in wire_alias:
            net = wire_alias[net]
        return net

    def leaf_set(net: str) -> FrozenSet[str]:
        net = resolve(net)
        if net in primary:
            return frozenset([net])
        if net in _CONSTS:
            return frozenset()
        return support[net]

    for gate in netlist.topological_order():
        if _is_wire(gate):
            src = resolve(gate.inputs[0])
            wire_alias[gate.output] = src
            depth[gate.output] = depth.get(src, 0)
            continue
        if gate.cell.n_inputs > k:
            raise ValueError(
                f"cell {gate.cell.name} has {gate.cell.n_inputs} inputs; "
                f"cannot map onto {k}-LUTs without decomposition"
            )
        combined: Set[str] = set()
        level = 0
        for raw in gate.inputs:
            net = resolve(raw)
            if net in _CONSTS:
                continue
            absorbable = (
                net in drivers
                and fanout.get(net, 0) == 1
                and net not in netlist.outputs
            )
            if absorbable:
                merged = combined | set(leaf_set(net))
                if len(merged) <= k:
                    combined = merged
                    level = max(
                        [level]
                        + [depth.get(leaf, 0) for leaf in leaf_set(net)]
                    )
                    continue
            combined.add(net)
            level = max(level, depth.get(net, 0))
        support[gate.output] = frozenset(combined)
        depth[gate.output] = level + 1

    # -- collect greedy roots reachable from the outputs -----------------
    mapped: Dict[str, FrozenSet[str]] = {}
    stack: List[str] = [resolve(out) for out in netlist.outputs]
    while stack:
        net = stack.pop()
        if net in mapped or net in primary or net in _CONSTS:
            continue
        cone = leaf_set(net)
        mapped[net] = cone
        for leaf in cone:
            stack.append(resolve(leaf))
    n_luts = len(mapped)

    # -- duplication estimate: one LUT per K-feasible output cone --------
    full_support_cache: Dict[str, FrozenSet[str]] = {}

    def full_support(net: str) -> FrozenSet[str]:
        net = resolve(net)
        if net in primary:
            return frozenset([net])
        if net in _CONSTS:
            return frozenset()
        if net in full_support_cache:
            return full_support_cache[net]
        gate = drivers[net]
        total: Set[str] = set()
        for fanin in gate.inputs:
            total |= set(full_support(fanin))
        result = frozenset(total)
        full_support_cache[net] = result
        return result

    def greedy_roots_under(net: str, seen: Set[str]) -> int:
        """Greedy LUT roots in the transitive fanin of one output."""
        net = resolve(net)
        if net in primary or net in _CONSTS or net in seen:
            return 0
        seen.add(net)
        count = 1
        for leaf in mapped.get(net, frozenset()):
            count += greedy_roots_under(leaf, seen)
        return count

    n_dup = 0
    for out in netlist.outputs:
        net = resolve(out)
        if net in primary or net in _CONSTS:
            continue
        if len(full_support(net)) <= k:
            n_dup += 1
        else:
            n_dup += greedy_roots_under(net, set())

    max_depth = max(
        (depth.get(resolve(out), 0) for out in netlist.outputs), default=0
    )
    return LutMapping(
        n_luts=n_luts,
        n_luts_duplicated=min(n_dup, n_luts) if n_dup else 0,
        k=k,
        depth=max_depth,
        cones=dict(mapped),
    )
