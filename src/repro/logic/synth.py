"""Truth-table to gate-level synthesis (two-level, Quine-McCluskey).

This is the stand-in for the logic-synthesis step of the paper's ASIC flow
(Synopsys Design Compiler).  Given a multi-output truth table it:

1. finds all prime implicants per output (Quine-McCluskey),
2. selects a cover (essential primes + greedy set cover),
3. emits a sum-of-products :class:`~repro.logic.netlist.Netlist` with
   shared input inverters and balanced AND/OR trees.

The component truth tables in this library have at most 4 inputs, so the
exact QM procedure is always fast; the implementation nevertheless works
for any input count within reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from .netlist import Netlist

__all__ = [
    "Implicant",
    "prime_implicants",
    "minimum_cover",
    "minimize_sop",
    "synthesize_truth_table",
]


@dataclass(frozen=True)
class Implicant:
    """A product term over ``n`` variables.

    ``care`` has a 1 for every variable that appears in the product;
    ``value`` gives that variable's required polarity (only bits inside
    ``care`` are meaningful).  Variable ``i`` corresponds to bit ``i``
    of a minterm index (bit 0 = least significant input).
    """

    value: int
    care: int

    def covers(self, minterm: int) -> bool:
        """True if the product term evaluates to 1 on ``minterm``."""
        return (minterm & self.care) == (self.value & self.care)

    def literals(self, n_vars: int) -> List[Tuple[int, bool]]:
        """Return ``(variable index, positive polarity)`` pairs."""
        out = []
        for i in range(n_vars):
            if (self.care >> i) & 1:
                out.append((i, bool((self.value >> i) & 1)))
        return out

    def minterms(self, n_vars: int) -> List[int]:
        """Enumerate all minterms covered by this implicant."""
        free = [i for i in range(n_vars) if not ((self.care >> i) & 1)]
        base = self.value & self.care
        terms = []
        for k in range(1 << len(free)):
            m = base
            for j, var in enumerate(free):
                if (k >> j) & 1:
                    m |= 1 << var
            terms.append(m)
        return sorted(terms)


def prime_implicants(
    n_vars: int, ones: Iterable[int], dont_cares: Iterable[int] = ()
) -> List[Implicant]:
    """Compute all prime implicants of a single-output function.

    Args:
        n_vars: Number of input variables.
        ones: Minterm indices where the function is 1.
        dont_cares: Minterm indices whose value is unconstrained.

    Returns:
        All prime implicants, deterministically ordered.
    """
    full_care = (1 << n_vars) - 1
    current: Set[Tuple[int, int]] = {
        (m & full_care, full_care) for m in set(ones) | set(dont_cares)
    }
    primes: Set[Tuple[int, int]] = set()
    while current:
        merged: Set[Tuple[int, int]] = set()
        used: Set[Tuple[int, int]] = set()
        group = sorted(current)
        for (v1, c1), (v2, c2) in combinations(group, 2):
            if c1 != c2:
                continue
            diff = (v1 ^ v2) & c1
            if diff and (diff & (diff - 1)) == 0:  # single-bit difference
                merged.add((v1 & ~diff, c1 & ~diff))
                used.add((v1, c1))
                used.add((v2, c2))
        primes |= current - used
        current = merged
    return [Implicant(v, c) for v, c in sorted(primes)]


def minimum_cover(
    n_vars: int, ones: Sequence[int], primes: Sequence[Implicant]
) -> List[Implicant]:
    """Select a small cover of ``ones`` using essential primes + greed.

    The greedy step picks, at each round, the prime covering the most
    still-uncovered minterms (ties broken by fewer literals, then by
    deterministic ordering), which is optimal for all component tables in
    this library and near-optimal in general.
    """
    remaining: Set[int] = set(ones)
    chosen: List[Implicant] = []

    # Essential primes first.
    for minterm in sorted(remaining):
        covering = [p for p in primes if p.covers(minterm)]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for p in chosen:
        remaining -= set(p.minterms(n_vars))

    # Greedy set cover for the rest.
    candidates = [p for p in primes if p not in chosen]
    while remaining:
        best = None
        best_key = None
        for p in candidates:
            gain = len(remaining & set(p.minterms(n_vars)))
            if gain == 0:
                continue
            n_literals = bin(p.care).count("1")
            key = (-gain, n_literals, p.value, p.care)
            if best_key is None or key < best_key:
                best, best_key = p, key
        if best is None:
            raise ValueError("prime implicants do not cover all minterms")
        chosen.append(best)
        candidates.remove(best)
        remaining -= set(best.minterms(n_vars))
    return chosen


def minimize_sop(
    n_vars: int, ones: Sequence[int], dont_cares: Sequence[int] = ()
) -> List[Implicant]:
    """Minimize a single-output function into a short list of products."""
    ones = sorted(set(ones))
    if not ones:
        return []
    if len(ones) + len(set(dont_cares)) == (1 << n_vars):
        return [Implicant(0, 0)]  # constant 1
    primes = prime_implicants(n_vars, ones, dont_cares)
    return minimum_cover(n_vars, ones, primes)


def _tree_reduce(
    netlist: Netlist, nets: List[str], cell2: str, prefix: str
) -> str:
    """Reduce a list of nets with a balanced tree of 2-input cells."""
    if not nets:
        raise ValueError("cannot reduce an empty net list")
    level = 0
    while len(nets) > 1:
        nxt: List[str] = []
        for i in range(0, len(nets) - 1, 2):
            out = f"{prefix}_t{level}_{i // 2}"
            netlist.add_gate(cell2, [nets[i], nets[i + 1]], out)
            nxt.append(out)
        if len(nets) % 2:
            nxt.append(nets[-1])
        nets = nxt
        level += 1
    return nets[0]


def synthesize_truth_table(
    name: str,
    input_names: Sequence[str],
    output_tables: Dict[str, Sequence[int]],
    dont_cares: Dict[str, Sequence[int]] | None = None,
) -> Netlist:
    """Synthesize a multi-output truth table into a gate-level netlist.

    Args:
        name: Netlist name.
        input_names: Input net names; ``input_names[0]`` is the **MSB** of
            the row index (matching how truth tables are written down).
        output_tables: For each output net, a table of ``2**n`` output
            bits indexed by the row number.
        dont_cares: Optional per-output lists of don't-care row indices.

    Returns:
        A validated SOP netlist implementing the table, with product terms
        shared across outputs when they are bit-identical.
    """
    n = len(input_names)
    n_rows = 1 << n
    for out, table in output_tables.items():
        if len(table) != n_rows:
            raise ValueError(
                f"output {out!r}: table has {len(table)} rows, expected {n_rows}"
            )
    dont_cares = dont_cares or {}
    netlist = Netlist(name, inputs=list(input_names), outputs=list(output_tables))

    inverted: Dict[str, str] = {}

    def inv(net: str) -> str:
        if net not in inverted:
            out = f"{net}_n"
            netlist.add_gate("INV", [net], out)
            inverted[net] = out
        return inverted[net]

    # Row index bit i (in Implicant convention, bit 0 = LSB) corresponds to
    # input_names[n - 1 - i] because input_names[0] is the MSB.
    def var_net(var: int, positive: bool) -> str:
        base = input_names[n - 1 - var]
        return base if positive else inv(base)

    product_cache: Dict[FrozenSet[Tuple[int, bool]], str] = {}
    product_counter = [0]

    def product_net(implicant: Implicant) -> str:
        lits = implicant.literals(n)
        key = frozenset(lits)
        if key in product_cache:
            return product_cache[key]
        if not lits:
            net = "VDD"
        elif len(lits) == 1:
            var, pos = lits[0]
            net = var_net(var, pos)
        else:
            nets = [var_net(v, p) for v, p in lits]
            net = _tree_reduce(
                netlist, nets, "AND2", f"{name}_p{product_counter[0]}"
            )
        product_cache[key] = net
        product_counter[0] += 1
        return net

    for out_name, table in output_tables.items():
        ones = [i for i in range(n_rows) if table[i]]
        # Convert row index (MSB-first) to minterm index (bit i = var i,
        # LSB-first): row bit for input_names[j] sits at position n-1-j in
        # both conventions, so the integer is the same.
        cover = minimize_sop(n, ones, dont_cares.get(out_name, ()))
        if not ones:
            netlist.add_gate("BUF", ["GND"], out_name)
            continue
        if len(cover) == 1 and cover[0].care == 0:
            netlist.add_gate("BUF", ["VDD"], out_name)
            continue
        terms = [product_net(p) for p in cover]
        if len(terms) == 1:
            netlist.add_gate("BUF", [terms[0]], out_name)
        else:
            total = _tree_reduce(netlist, terms, "OR2", f"{name}_{out_name}_or")
            netlist.add_gate("BUF", [total], out_name)
    netlist.validate()
    return netlist
