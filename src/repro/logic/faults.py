"""Stuck-at fault injection for gate-level netlists.

The paper motivates approximate computing partly through technology
reliability: "each new technology node faces serious reliability
threats [19], which may lead to different types of hardware-level
faults".  This module lets the substrate quantify that interaction:

* :func:`inject_stuck_at` -- a copy of a netlist with one net forced to
  0 or 1 (the classic stuck-at fault model);
* :func:`fault_sites` -- enumerates injectable nets;
* :func:`fault_error_rates` -- output-error statistics of every
  single-fault machine against the fault-free design, i.e. how much a
  *defect* perturbs an (already approximate) component.

Combined with the error metrics this answers questions like "does an
approximate adder mask manufacturing faults better than the exact one?"
(see ``tests/integration`` and the fault-resilience bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import bitsim
from .netlist import Netlist
from .simulate import exhaustive_stimuli, random_stimuli

__all__ = ["StuckAtFault", "fault_sites", "inject_stuck_at", "fault_error_rates"]


@dataclass(frozen=True)
class StuckAtFault:
    """A single stuck-at fault site."""

    net: str
    value: int  # 0 or 1

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0/1, got {self.value}")


def fault_sites(netlist: Netlist) -> List[str]:
    """Nets where a stuck-at fault can be injected (all driven nets)."""
    return [gate.output for gate in netlist.gates]


def inject_stuck_at(netlist: Netlist, fault: StuckAtFault) -> Netlist:
    """Return a copy of ``netlist`` with ``fault.net`` tied to a constant.

    The faulty net's driver is kept (it still burns power in silicon)
    but every *consumer* of the net reads the stuck value instead, which
    is exactly the single-stuck-line fault model.

    Raises:
        ValueError: If the net is not an injectable site.
    """
    if fault.net not in {g.output for g in netlist.gates}:
        raise ValueError(f"net {fault.net!r} is not an injectable site")
    faulty = Netlist(
        f"{netlist.name}__sa{fault.value}_{fault.net}",
        inputs=list(netlist.inputs),
        outputs=list(netlist.outputs),
    )
    stuck_const = "VDD" if fault.value else "GND"
    stuck_alias = f"{fault.net}__stuck"
    for gate in netlist.gates:
        out = gate.output
        if out == fault.net:
            # Keep the original cone on a renamed net; expose the stuck
            # value under the original name via a wire.
            out = f"{fault.net}__orig"
        inputs = [
            stuck_alias if net == fault.net else net for net in gate.inputs
        ]
        faulty.add_gate(gate.cell.name, inputs, out)
    faulty.add_gate("WIRE", [stuck_const], stuck_alias)
    # Outputs that referenced the faulty net must also read the stuck value.
    if fault.net in netlist.outputs:
        faulty.add_gate("WIRE", [stuck_alias], fault.net)
    faulty.validate()
    return faulty


def _fault_rates_packed(
    netlist: Netlist,
    faults: Sequence[StuckAtFault],
    stimuli: Dict[str, np.ndarray],
) -> Dict[StuckAtFault, float]:
    """Bit-parallel fault sweep: one compile, one packed overlay per fault.

    Every fault machine reuses the fault-free compiled tape with a
    stuck-at overlay (:meth:`~repro.logic.bitsim.CompiledNetlist.
    run_packed`), so no netlist is rebuilt, re-validated or recompiled
    per fault; mismatches reduce via packed XOR + popcount.
    """
    inputs = list(netlist.inputs)
    n_vectors = int(np.asarray(stimuli[inputs[0]]).size)
    n_words = bitsim.n_words_for(n_vectors)
    valid = bitsim.lane_mask(n_vectors)
    compiled = bitsim.compile_netlist(netlist)
    packed = {net: bitsim.pack_lanes(stimuli[net]) for net in inputs}
    golden = compiled.run_packed(packed, n_words)
    out_slots = [compiled.slot_of(net) for net in netlist.outputs]
    sites = {gate.output for gate in netlist.gates}
    rates: Dict[StuckAtFault, float] = {}
    for fault in faults:
        if fault.net not in sites:
            raise ValueError(f"net {fault.net!r} is not an injectable site")
        table = compiled.run_packed(
            packed, n_words, stuck={fault.net: fault.value}
        )
        mismatch = np.zeros(n_words, dtype=np.uint64)
        for slot in out_slots:
            mismatch |= table[slot] ^ golden[slot]
        rates[fault] = bitsim.popcount(mismatch & valid) / n_vectors
    return rates


def fault_error_rates(
    netlist: Netlist,
    faults: Sequence[StuckAtFault] | None = None,
    n_random_vectors: int = 2048,
    seed: int = 0,
    stimuli: Dict[str, np.ndarray] | None = None,
    eval_mode: Optional[str] = None,
) -> Dict[StuckAtFault, float]:
    """Output-error rate of each single-fault machine vs the fault-free one.

    Args:
        netlist: Fault-free design.
        faults: Fault list; default is stuck-at-0 and stuck-at-1 on
            every injectable net.
        n_random_vectors: Vector count when the input space is large.
        seed: RNG seed.
        stimuli: Optional explicit stimulus (e.g. an exhaustive sweep of
            an input space above the automatic 16-input cutoff); when
            given, ``n_random_vectors``/``seed`` are ignored.
        eval_mode: ``"bitsim"`` (default) simulates every fault through
            a packed stuck-at overlay on one compiled tape;
            ``"scalar"`` rebuilds and re-simulates a faulty netlist per
            fault (the differential reference).  Rates are identical.

    Returns:
        Mapping fault -> fraction of vectors with any differing output.
    """
    if faults is None:
        faults = [
            StuckAtFault(net, v) for net in fault_sites(netlist) for v in (0, 1)
        ]
    inputs = list(netlist.inputs)
    if stimuli is None:
        if len(inputs) <= 16:
            stimuli = exhaustive_stimuli(inputs)
        else:
            stimuli = random_stimuli(inputs, n_random_vectors, seed)
    if bitsim.resolve_eval_mode(eval_mode) == "bitsim" and inputs:
        return _fault_rates_packed(netlist, faults, stimuli)
    golden = netlist.evaluate(stimuli, eval_mode="scalar")
    rates: Dict[StuckAtFault, float] = {}
    for fault in faults:
        faulty = inject_stuck_at(netlist, fault)
        out = faulty.evaluate(stimuli, eval_mode="scalar")
        mismatch = np.zeros(np.asarray(stimuli[inputs[0]]).shape, dtype=bool)
        for net in netlist.outputs:
            mismatch |= out[net] != golden[net]
        rates[fault] = float(np.mean(mismatch))
    return rates
