"""VCD waveform export and SAIF-style activity summaries.

The paper's tool flow (Fig. 2) simulates netlists "to obtain VCD (Value
Change Dump) and SAIF (Switching Activity Interchange Format) files for
power estimation".  This module completes that leg of the substrate:

* :func:`write_vcd` -- serialize a netlist simulation as a standard
  IEEE-1364 VCD text (loadable in GTKWave);
* :func:`saif_summary` -- per-net T0/T1/TC activity records (the SAIF
  content PrimeTime consumes), consistent by construction with
  :func:`repro.logic.simulate.toggle_counts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .netlist import Netlist

__all__ = ["NetActivity", "saif_summary", "write_vcd"]

#: Printable VCD identifier characters (IEEE 1364 allows '!' .. '~').
_ID_CHARS = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Short unique VCD identifier for the index-th net."""
    base = len(_ID_CHARS)
    out = []
    index += 1
    while index:
        index, rem = divmod(index - 1, base)
        out.append(_ID_CHARS[rem])
    return "".join(reversed(out))


@dataclass(frozen=True)
class NetActivity:
    """SAIF-style activity record of one net.

    Attributes:
        net: Net name.
        t0: Cycles spent at logic 0.
        t1: Cycles spent at logic 1.
        tc: Toggle count (0->1 and 1->0 transitions).
    """

    net: str
    t0: int
    t1: int
    tc: int


def _simulate_all(netlist: Netlist, stimuli: Dict[str, np.ndarray]):
    trace = netlist.evaluate(stimuli, trace=True)
    ordered = list(netlist.inputs) + [g.output for g in netlist.gates]
    return {net: np.asarray(trace[net]).astype(np.uint8) for net in ordered}


def saif_summary(
    netlist: Netlist, stimuli: Dict[str, np.ndarray]
) -> List[NetActivity]:
    """Per-net activity statistics over a stimulus (SAIF content).

    Args:
        netlist: The design.
        stimuli: Input vectors (one simulation cycle per vector).

    Returns:
        One :class:`NetActivity` per primary input and gate output, in
        declaration order.
    """
    waves = _simulate_all(netlist, stimuli)
    records = []
    for net, wave in waves.items():
        ones = int(np.count_nonzero(wave))
        toggles = (
            int(np.count_nonzero(wave[1:] != wave[:-1]))
            if wave.shape[0] > 1
            else 0
        )
        records.append(
            NetActivity(net=net, t0=int(wave.size - ones), t1=ones, tc=toggles)
        )
    return records


def write_vcd(
    netlist: Netlist,
    stimuli: Dict[str, np.ndarray],
    timescale: str = "1ns",
) -> str:
    """Serialize a netlist simulation as VCD text.

    One stimulus vector per timestep; only changing nets emit value
    changes (per the VCD format), with a full dump at time 0.

    Args:
        netlist: The design.
        stimuli: Input vectors.
        timescale: VCD timescale declaration.

    Returns:
        The VCD file contents as a string.
    """
    waves = _simulate_all(netlist, stimuli)
    nets = list(waves)
    identifiers = {net: _identifier(i) for i, net in enumerate(nets)}
    n_cycles = next(iter(waves.values())).shape[0]

    lines: List[str] = []
    lines.append("$date repro simulation $end")
    lines.append(f"$version repro.logic.vcd $end")
    lines.append(f"$timescale {timescale} $end")
    lines.append(f"$scope module {netlist.name} $end")
    for net in nets:
        lines.append(f"$var wire 1 {identifiers[net]} {net} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    lines.append("$dumpvars")
    for net in nets:
        lines.append(f"{int(waves[net][0])}{identifiers[net]}")
    lines.append("$end")
    for t in range(1, n_cycles):
        changes = [
            f"{int(waves[net][t])}{identifiers[net]}"
            for net in nets
            if waves[net][t] != waves[net][t - 1]
        ]
        if changes:
            lines.append(f"#{t}")
            lines.extend(changes)
    lines.append(f"#{n_cycles}")
    return "\n".join(lines) + "\n"
