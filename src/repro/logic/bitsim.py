"""Bit-parallel compiled netlist simulation (64 stimulus lanes per word).

The scalar engine in :mod:`repro.logic.netlist` walks the gate list once
per call and evaluates every gate with a truth-table gather over int64
index arrays -- one array *element* per stimulus vector.  This module
lowers a validated :class:`~repro.logic.netlist.Netlist` **once** into a
flat, topologically-scheduled gate tape and executes it with NumPy
``uint64`` bitwise ops, so each array element carries **64 packed
stimulus lanes**.  That is the classic word-level logic-simulation trick
block-based adder error-statistics work exploits to make exhaustive
analysis tractable (Wu et al.; Balasubramanian et al., "Gate-Level
Static Approximate Adders").

Lane packing layout
-------------------

Stimulus vector ``j`` lives in word ``j // 64`` at bit ``j % 64``
(LSB-first), for every net.  ``pack_lanes`` / ``unpack_lanes`` convert
between 0/1 vectors and packed words; :func:`packed_exhaustive_stimuli`
emits the full ``2**n`` counter sweep of
:func:`repro.logic.simulate.exhaustive_stimuli` directly in packed form
(input ``i`` is a periodic mask, no unpacked intermediate).  Invalid
lanes of the final partial word are architectural don't-cares: every
reduction masks them via :func:`lane_mask` before counting.

Fault-overlay encoding
----------------------

:meth:`CompiledNetlist.run_packed` accepts ``stuck={net: 0 | 1}``: after
a stuck net's driver is executed its word row is overwritten with the
all-zeros / all-ones constant, so every consumer (and the primary
output, if the net is one) reads the stuck value -- exactly the
single-stuck-line semantics of
:func:`repro.logic.faults.inject_stuck_at`, without rebuilding or
recompiling a netlist per fault.

The same encoding carries **transient** faults: ``flip={net: words}``
XORs a packed per-lane mask into a net's row after its driver executes,
so lane ``j`` of the mask models a single-cycle bit flip on that net
during stimulus vector ``j`` (soft-error / SEU semantics,
:mod:`repro.resilience`).  A net may appear in both overlays; ``stuck``
wins (a stuck line has no transient behaviour left to flip).

The compiled tape is cached on the netlist (``netlist._bitsim_cache``)
and invalidated by ``add_gate`` / ``set_outputs``; the scalar path stays
available as the differential reference (``eval_mode="scalar"``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DEFAULT_EVAL_MODE",
    "EVAL_MODES",
    "CompiledNetlist",
    "compile_netlist",
    "resolve_eval_mode",
    "set_default_eval_mode",
    "eval_mode",
    "pack_lanes",
    "unpack_lanes",
    "packed_exhaustive_stimuli",
    "lane_mask",
    "popcount",
    "packed_toggles",
]

#: Recognised evaluation engines.
EVAL_MODES = ("bitsim", "scalar")

#: Process-wide default engine.  ``bitsim`` everywhere; flip to
#: ``scalar`` (or use the :func:`eval_mode` context manager) to fall
#: back to the legacy per-gate reference path.
DEFAULT_EVAL_MODE = "bitsim"

_mode_lock = threading.Lock()

_WORD = np.uint64
_ALL_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

#: Periodic lane masks for the six fastest-toggling exhaustive inputs:
#: bit ``j`` of mask ``i`` equals ``(j >> i) & 1``.
_PERIODIC_MASKS = tuple(
    np.uint64(sum(1 << j for j in range(64) if (j >> i) & 1))
    for i in range(6)
)


def set_default_eval_mode(mode: str) -> None:
    """Set the process-wide default engine (``"bitsim"`` / ``"scalar"``)."""
    global DEFAULT_EVAL_MODE
    if mode not in EVAL_MODES:
        raise ValueError(f"eval_mode must be one of {EVAL_MODES}, got {mode!r}")
    with _mode_lock:
        DEFAULT_EVAL_MODE = mode


def resolve_eval_mode(mode: Optional[str]) -> str:
    """Resolve ``None`` to the process default; validate explicit modes."""
    if mode is None:
        return DEFAULT_EVAL_MODE
    if mode not in EVAL_MODES:
        raise ValueError(f"eval_mode must be one of {EVAL_MODES}, got {mode!r}")
    return mode


@contextmanager
def eval_mode(mode: str) -> Iterator[None]:
    """Temporarily switch the process-wide default engine."""
    previous = DEFAULT_EVAL_MODE
    set_default_eval_mode(mode)
    try:
        yield
    finally:
        set_default_eval_mode(previous)


# ----------------------------------------------------------------------
# lane packing
# ----------------------------------------------------------------------

def n_words_for(n_lanes: int) -> int:
    """Words needed to carry ``n_lanes`` stimulus lanes (min 1)."""
    return max(1, (int(n_lanes) + 63) // 64)


def pack_lanes(bits: np.ndarray) -> np.ndarray:
    """Pack a 1-D 0/1 vector into uint64 words, lane ``j`` at bit ``j%64``."""
    bits = np.ascontiguousarray(np.asarray(bits, dtype=np.uint8).ravel())
    packed8 = np.packbits(bits, bitorder="little")
    n_bytes = n_words_for(bits.size) * 8
    if packed8.size != n_bytes:
        packed8 = np.concatenate(
            [packed8, np.zeros(n_bytes - packed8.size, dtype=np.uint8)]
        )
    return packed8.view(_WORD)


def unpack_lanes(words: np.ndarray, n_lanes: int) -> np.ndarray:
    """Inverse of :func:`pack_lanes`: first ``n_lanes`` bits as uint8."""
    words = np.ascontiguousarray(words, dtype=_WORD)
    return np.unpackbits(words.view(np.uint8), bitorder="little")[:n_lanes]


def lane_mask(n_lanes: int) -> np.ndarray:
    """Validity mask: bit set for every real lane, clear in the padding."""
    n_words = n_words_for(n_lanes)
    mask = np.full(n_words, _ALL_ONES, dtype=_WORD)
    tail = n_lanes - 64 * (n_words - 1)
    if 0 < tail < 64:
        mask[-1] = _WORD((1 << tail) - 1)
    elif tail <= 0:  # n_lanes == 0 (degenerate): no valid lanes at all
        mask[-1] = _WORD(0)
    return mask


def packed_exhaustive_stimuli(
    input_names: Sequence[str],
) -> Dict[str, np.ndarray]:
    """The full ``2**n`` counter sweep, already packed.

    Bit-identical to ``pack_lanes`` applied to each column of
    :func:`repro.logic.simulate.exhaustive_stimuli` (``input_names[0]``
    toggles fastest), but built straight from periodic masks.
    """
    n = len(input_names)
    n_lanes = 1 << n
    n_words = n_words_for(n_lanes)
    valid = lane_mask(n_lanes)
    packed: Dict[str, np.ndarray] = {}
    word_index = np.arange(n_words, dtype=np.uint64)
    for i, name in enumerate(input_names):
        if i < 6:
            words = np.full(n_words, _PERIODIC_MASKS[i], dtype=_WORD)
        else:
            on = ((word_index >> _WORD(i - 6)) & _WORD(1)).astype(bool)
            words = np.where(on, _ALL_ONES, _WORD(0))
        packed[name] = words & valid
    return packed


# ----------------------------------------------------------------------
# popcount / packed reductions
# ----------------------------------------------------------------------

if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    def _word_popcount(words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words)
else:  # pragma: no cover - exercised only on numpy < 2.0
    _POPCOUNT8 = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def _word_popcount(words: np.ndarray) -> np.ndarray:
        by_byte = _POPCOUNT8[
            np.ascontiguousarray(words, dtype=_WORD).view(np.uint8)
        ]
        return by_byte.reshape(-1, 8).sum(axis=1).reshape(words.shape)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits across a packed word array."""
    return int(_word_popcount(np.asarray(words, dtype=_WORD)).sum())


def packed_toggles(words: np.ndarray, n_lanes: int) -> int:
    """Toggles between consecutive lanes of one packed waveform.

    Equals ``np.count_nonzero(wave[1:] != wave[:-1])`` on the unpacked
    vector: within-word transitions come from ``w ^ (w >> 1)`` (bit 63
    masked out), cross-word transitions compare bit 63 of each word with
    bit 0 of its successor, and transitions beyond the last valid lane
    are masked away.
    """
    if n_lanes < 2:
        return 0
    words = np.ascontiguousarray(words, dtype=_WORD)
    n_words = n_words_for(n_lanes)
    within = (words ^ (words >> _WORD(1))) & _WORD(0x7FFF_FFFF_FFFF_FFFF)
    # Valid within-word transition t sits between lanes t and t+1, so
    # the final word keeps transitions 0 .. tail-2 only.
    tail = n_lanes - 64 * (n_words - 1)
    if tail >= 1:
        within[-1] &= _WORD((1 << (tail - 1)) - 1)
    total = popcount(within)
    if n_words > 1:
        boundary = (words[:-1] >> _WORD(63)) ^ (words[1:] & _WORD(1))
        total += int(np.count_nonzero(boundary))
    return total


# ----------------------------------------------------------------------
# gate kernels
# ----------------------------------------------------------------------
# Each kernel receives the input word rows and returns the output row.
# Dispatch is by *truth table*, not cell name, so mutated or custom
# cells with a recognised function still get the dedicated kernel.

def _k_buf(a):
    return a.copy()


def _k_inv(a):
    return ~a


def _k_and(*ins):
    out = ins[0] & ins[1]
    for x in ins[2:]:
        out = out & x
    return out


def _k_or(*ins):
    out = ins[0] | ins[1]
    for x in ins[2:]:
        out = out | x
    return out


def _k_xor(*ins):
    out = ins[0] ^ ins[1]
    for x in ins[2:]:
        out = out ^ x
    return out


def _k_nand(*ins):
    return ~_k_and(*ins)


def _k_nor(*ins):
    return ~_k_or(*ins)


def _k_xnor(*ins):
    return ~_k_xor(*ins)


def _k_maj3(a, b, c):
    return (a & b) | (c & (a | b))


def _k_min3(a, b, c):
    return ~_k_maj3(a, b, c)


def _k_mux2(s, a, b):
    return (s & b) | (~s & a)


def _k_aoi21(a, b, c):
    return ~((a & b) | c)


def _k_oai21(a, b, c):
    return ~((a | b) & c)


def _truth_of(n_inputs: int, fn: Callable[..., int]) -> Tuple[int, ...]:
    """Truth tuple of a 0/1 python function (pin 0 is the index MSB)."""
    rows = []
    for index in range(1 << n_inputs):
        bits = [(index >> (n_inputs - 1 - k)) & 1 for k in range(n_inputs)]
        rows.append(int(bool(fn(*bits))))
    return tuple(rows)


def _build_kernel_registry() -> Dict[Tuple[int, ...], Callable]:
    """Map truth tables of common boolean functions to fast kernels."""
    registry: Dict[Tuple[int, ...], Callable] = {}
    scalar_forms: List[Tuple[int, Callable, Callable]] = [
        (1, lambda a: a, _k_buf),
        (1, lambda a: 1 - a, _k_inv),
        (3, lambda a, b, c: (a & b) | (c & (a | b)), _k_maj3),
        (3, lambda a, b, c: 1 - ((a & b) | (c & (a | b))), _k_min3),
        (3, lambda s, a, b: b if s else a, _k_mux2),
        (3, lambda a, b, c: 1 - ((a & b) | c), _k_aoi21),
        (3, lambda a, b, c: 1 - ((a | b) & c), _k_oai21),
    ]
    for n in (2, 3, 4):
        from functools import reduce

        scalar_forms += [
            (n, lambda *xs: reduce(lambda p, q: p & q, xs), _k_and),
            (n, lambda *xs: reduce(lambda p, q: p | q, xs), _k_or),
            (n, lambda *xs: reduce(lambda p, q: p ^ q, xs), _k_xor),
            (n, lambda *xs: 1 - reduce(lambda p, q: p & q, xs), _k_nand),
            (n, lambda *xs: 1 - reduce(lambda p, q: p | q, xs), _k_nor),
            (n, lambda *xs: 1 - reduce(lambda p, q: p ^ q, xs), _k_xnor),
        ]
    for n_inputs, scalar_fn, kernel in scalar_forms:
        registry.setdefault(_truth_of(n_inputs, scalar_fn), kernel)
    return registry


_KERNELS: Dict[Tuple[int, ...], Callable] = _build_kernel_registry()


def _generic_kernel(truth: Tuple[int, ...], n_inputs: int) -> Callable:
    """Sum-of-minterms fallback for truth tables with no fast kernel.

    Uses whichever of the on-set / off-set is smaller (complementing at
    the end for the off-set), so the op count never exceeds
    ``2**(n-1) * (n + 1)`` word ops.
    """
    on_set = [i for i, bit in enumerate(truth) if bit]
    off_set = [i for i, bit in enumerate(truth) if not bit]
    invert = len(off_set) < len(on_set)
    terms = off_set if invert else on_set

    def kernel(*ins):
        shape = ins[0].shape
        out = np.zeros(shape, dtype=_WORD)
        for minterm in terms:
            term = None
            for pin in range(n_inputs):
                literal = ins[pin]
                if not (minterm >> (n_inputs - 1 - pin)) & 1:
                    literal = ~literal
                term = literal if term is None else term & literal
            out |= term
        return ~out if invert else out

    if not terms:  # constant cell
        const = _ALL_ONES if invert else _WORD(0)

        def kernel(*ins):  # noqa: F811 - intentional constant override
            return np.full(ins[0].shape, const, dtype=_WORD)

    return kernel


# ----------------------------------------------------------------------
# compiler + executor
# ----------------------------------------------------------------------

class CompiledNetlist:
    """A netlist lowered to a flat, topologically-scheduled gate tape.

    Net rows live in one dense table indexed by slot: primary inputs
    first (declaration order), then ``GND``/``VDD``, then one slot per
    gate output in topological order.  Each tape entry binds a word
    kernel to its input/output slots, so :meth:`run_packed` is a single
    flat loop of NumPy bitwise ops.
    """

    def __init__(self, netlist) -> None:
        order = netlist.topological_order()  # raises on loops
        self.netlist_name: str = netlist.name
        self.inputs: Tuple[str, ...] = tuple(netlist.inputs)
        self.outputs: Tuple[str, ...] = tuple(netlist.outputs)

        slots: Dict[str, int] = {}
        for net in self.inputs:
            slots[net] = len(slots)
        self._gnd_slot = slots.setdefault("GND", len(slots))
        self._vdd_slot = slots.setdefault("VDD", len(slots))
        tape: List[Tuple[Callable, Tuple[int, ...], int]] = []
        for gate in order:
            for net in gate.inputs:
                if net not in slots:
                    # topological_order guarantees driver-before-consumer
                    # for gate-driven nets; anything left is undriven.
                    from .netlist import NetlistError

                    raise NetlistError(
                        f"gate {gate.cell.name} -> {gate.output}: "
                        f"input net {net!r} has no driver"
                    )
            out_slot = slots.setdefault(gate.output, len(slots))
            kernel = _KERNELS.get(tuple(gate.cell.truth))
            if kernel is None:
                kernel = _generic_kernel(
                    tuple(gate.cell.truth), gate.cell.n_inputs
                )
            tape.append((
                kernel,
                tuple(slots[net] for net in gate.inputs),
                out_slot,
            ))
        for net in self.outputs:
            if net not in slots:
                from .netlist import NetlistError

                raise NetlistError(f"primary output {net!r} has no driver")
        self._slots = slots
        self._tape = tape
        self.n_slots = len(slots)

    # -- execution -----------------------------------------------------

    def slot_of(self, net: str) -> int:
        """Row index of a net in the value table returned by run_packed."""
        return self._slots[net]

    def run_packed(
        self,
        packed_inputs: Dict[str, np.ndarray],
        n_words: Optional[int] = None,
        stuck: Optional[Dict[str, int]] = None,
        flip: Optional[Dict[str, np.ndarray]] = None,
    ) -> List[np.ndarray]:
        """Execute the tape on packed stimulus words.

        Args:
            packed_inputs: Mapping from every primary input to a uint64
                word array (all the same length).
            n_words: Word count; inferred from the first input when
                omitted (required for netlists without inputs).
            stuck: Optional stuck-at overlay ``{net: 0 | 1}`` applied to
                gate-driven nets (see module docstring).
            flip: Optional transient overlay ``{net: packed_mask}``;
                each mask is XORed into the net's row after its driver
                executes, flipping the net for exactly the lanes whose
                mask bit is set.  Applies to primary inputs too.  A net
                also present in ``stuck`` keeps the stuck value.

        Returns:
            Value table: one uint64 row per slot.  Padding lanes are
            unspecified; mask with :func:`lane_mask` before reducing.
        """
        if n_words is None:
            if not self.inputs:
                raise ValueError("n_words is required for input-less netlists")
            n_words = int(
                np.asarray(packed_inputs[self.inputs[0]]).shape[0]
            )
        values: List[Optional[np.ndarray]] = [None] * self.n_slots
        flips: Dict[int, np.ndarray] = {}
        if flip:
            flips = {
                self._slots[net]: np.ascontiguousarray(mask, dtype=_WORD)
                for net, mask in flip.items()
            }
        for net in self.inputs:
            slot = self._slots[net]
            row = np.ascontiguousarray(packed_inputs[net], dtype=_WORD)
            mask = flips.get(slot)
            values[slot] = row if mask is None else row ^ mask
        values[self._gnd_slot] = np.zeros(n_words, dtype=_WORD)
        values[self._vdd_slot] = np.full(n_words, _ALL_ONES, dtype=_WORD)
        if not stuck and not flips:
            for kernel, in_slots, out_slot in self._tape:
                values[out_slot] = kernel(*[values[s] for s in in_slots])
        else:
            overlay = {}
            if stuck:
                overlay = {
                    self._slots[net]: (
                        np.full(n_words, _ALL_ONES, dtype=_WORD)
                        if value
                        else np.zeros(n_words, dtype=_WORD)
                    )
                    for net, value in stuck.items()
                }
            for kernel, in_slots, out_slot in self._tape:
                row = overlay.get(out_slot)
                if row is None:
                    row = kernel(*[values[s] for s in in_slots])
                    mask = flips.get(out_slot)
                    if mask is not None:
                        row = row ^ mask
                values[out_slot] = row
        return values

    def output_rows(self, values: List[np.ndarray]) -> List[np.ndarray]:
        """Primary-output rows of a :meth:`run_packed` value table."""
        return [values[self._slots[net]] for net in self.outputs]

    def net_names(self) -> List[str]:
        """Every net in slot order (inputs, GND/VDD, gate outputs)."""
        names = [""] * self.n_slots
        for net, slot in self._slots.items():
            names[slot] = net
        return names

    def __repr__(self) -> str:
        return (
            f"CompiledNetlist({self.netlist_name!r}, {len(self.inputs)} in, "
            f"{len(self._tape)} ops, {self.n_slots} slots)"
        )


def compile_netlist(netlist) -> CompiledNetlist:
    """Compile (or fetch the cached compilation of) a netlist.

    The compiled tape is cached on the netlist instance and invalidated
    by the structural mutators (``add_gate``, ``set_outputs``).
    """
    cached = getattr(netlist, "_bitsim_cache", None)
    if cached is None:
        cached = CompiledNetlist(netlist)
        netlist._bitsim_cache = cached
    return cached
