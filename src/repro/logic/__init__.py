"""Gate-level substrate: cells, netlists, synthesis, simulation, power.

This subpackage replaces the ASIC leg of the paper's tool flow (Fig. 2):
Synopsys DC -> :mod:`repro.logic.synth`, ModelSim -> netlist evaluation,
SAIF/PrimeTime -> :mod:`repro.logic.simulate`.
"""

from .bitsim import (
    CompiledNetlist,
    compile_netlist,
    eval_mode,
    set_default_eval_mode,
)
from .cells import CELL_LIBRARY, Cell, cell
from .equivalence import EquivalenceReport, check_equivalence, count_error_cases
from .faults import StuckAtFault, fault_error_rates, fault_sites, inject_stuck_at
from .mapping import LutMapping, map_to_luts
from .netlist import Gate, Netlist, NetlistError
from .simulate import (
    PowerReport,
    estimate_power,
    exhaustive_stimuli,
    random_stimuli,
    toggle_counts,
)
from .vcd import NetActivity, saif_summary, write_vcd
from .synth import (
    Implicant,
    minimize_sop,
    minimum_cover,
    prime_implicants,
    synthesize_truth_table,
)

__all__ = [
    "CELL_LIBRARY",
    "Cell",
    "cell",
    "CompiledNetlist",
    "compile_netlist",
    "eval_mode",
    "set_default_eval_mode",
    "LutMapping",
    "map_to_luts",
    "EquivalenceReport",
    "check_equivalence",
    "count_error_cases",
    "StuckAtFault",
    "fault_error_rates",
    "fault_sites",
    "inject_stuck_at",
    "NetActivity",
    "saif_summary",
    "write_vcd",
    "Gate",
    "Netlist",
    "NetlistError",
    "PowerReport",
    "estimate_power",
    "exhaustive_stimuli",
    "random_stimuli",
    "toggle_counts",
    "Implicant",
    "minimize_sop",
    "minimum_cover",
    "prime_implicants",
    "synthesize_truth_table",
]
