"""Gate-level netlist representation and evaluation.

A :class:`Netlist` is a directed acyclic graph of standard-cell instances
connected by named nets.  It supports:

* vectorized functional evaluation over NumPy arrays of 0/1 values
  (ModelSim substitute), through either the bit-parallel compiled
  engine (:mod:`repro.logic.bitsim`, the default) or the legacy
  per-gate scalar walk (``eval_mode="scalar"``, kept as the
  differential reference),
* structural checks (single driver per net, no combinational loops),
* area roll-up in gate equivalents,
* longest-path delay estimation (static timing substitute).

The topological order and the compiled bit-parallel tape are both
cached on the instance and invalidated by the structural mutators
(:meth:`Netlist.add_gate`, :meth:`Netlist.set_outputs`).

Power estimation lives in :mod:`repro.logic.simulate` because it needs a
stimulus to count toggles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .cells import CELL_LIBRARY, Cell, cell

__all__ = ["Gate", "Netlist", "NetlistError"]

#: Reserved net names carrying constant logic values.
_CONST_NETS = {"GND": 0, "VDD": 1}


class NetlistError(ValueError):
    """Raised for structural problems in a netlist."""


@dataclass(frozen=True)
class Gate:
    """One standard-cell instance inside a netlist."""

    cell: Cell
    inputs: Tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        if len(self.inputs) != self.cell.n_inputs:
            raise NetlistError(
                f"gate {self.cell.name} -> {self.output}: expected "
                f"{self.cell.n_inputs} inputs, got {len(self.inputs)}"
            )


class Netlist:
    """A combinational gate-level netlist.

    Nets are identified by strings.  ``GND`` and ``VDD`` are implicit
    constant nets.  Primary inputs must be declared up front; primary
    outputs may be declared at construction or via :meth:`set_outputs`.

    Example:
        >>> nl = Netlist("half_adder", inputs=["a", "b"], outputs=["s", "c"])
        >>> _ = nl.add_gate("XOR2", ["a", "b"], "s")
        >>> _ = nl.add_gate("AND2", ["a", "b"], "c")
        >>> out = nl.evaluate({"a": np.array([0, 1, 1]), "b": np.array([1, 0, 1])})
        >>> out["s"].tolist(), out["c"].tolist()
        ([1, 1, 0], [0, 0, 1])
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str] = (),
    ) -> None:
        if len(set(inputs)) != len(inputs):
            raise NetlistError(f"duplicate primary input in {list(inputs)}")
        for net in inputs:
            if net in _CONST_NETS:
                raise NetlistError(f"{net} is a reserved constant net")
        self.name = name
        self.inputs: Tuple[str, ...] = tuple(inputs)
        self.outputs: Tuple[str, ...] = tuple(outputs)
        self.gates: List[Gate] = []
        self._drivers: Dict[str, Gate] = {}
        self._order_cache: List[Gate] | None = None
        self._bitsim_cache = None  # CompiledNetlist, see repro.logic.bitsim

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_gate(
        self, cell_name: str, inputs: Sequence[str], output: str
    ) -> Gate:
        """Instantiate ``cell_name`` driving net ``output``."""
        if output in self._drivers:
            raise NetlistError(f"net {output!r} already has a driver")
        if output in self.inputs or output in _CONST_NETS:
            raise NetlistError(f"net {output!r} cannot be driven by a gate")
        gate = Gate(cell(cell_name), tuple(inputs), output)
        self.gates.append(gate)
        self._drivers[output] = gate
        self._order_cache = None
        self._bitsim_cache = None
        return gate

    def add_buffer(self, src: str, dst: str) -> Gate:
        """Alias net ``src`` onto ``dst`` through a BUF cell."""
        return self.add_gate("BUF", [src], dst)

    def set_outputs(self, outputs: Sequence[str]) -> None:
        """Declare (or re-declare) the primary outputs."""
        self.outputs = tuple(outputs)
        self._bitsim_cache = None  # the compiled tape bakes in the outputs

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _known_nets(self) -> set:
        nets = set(self.inputs) | set(_CONST_NETS) | set(self._drivers)
        return nets

    def validate(self) -> None:
        """Check that every net is driven and the graph is acyclic."""
        known = self._known_nets()
        for gate in self.gates:
            for net in gate.inputs:
                if net not in known:
                    raise NetlistError(
                        f"gate {gate.cell.name} -> {gate.output}: "
                        f"input net {net!r} has no driver"
                    )
        for net in self.outputs:
            if net not in known:
                raise NetlistError(f"primary output {net!r} has no driver")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[Gate]:
        """Return gates in an evaluation-safe order (linear-time Kahn's).

        The order is computed once per structure and cached; every
        consumer (:meth:`evaluate`, :meth:`delay_ps`, :meth:`validate`,
        the bit-parallel compiler) reuses the cached schedule.
        """
        if self._order_cache is not None:
            return self._order_cache
        base = set(self.inputs) | set(_CONST_NETS)
        pending = [0] * len(self.gates)
        consumers: Dict[str, List[int]] = {}
        for index, gate in enumerate(self.gates):
            for net in gate.inputs:
                if net in base:
                    continue
                # One pending count per pin: nets without any gate
                # driver never decrement, so their consumers are
                # reported as unschedulable below.
                pending[index] += 1
                consumers.setdefault(net, []).append(index)
        queue = deque(
            index for index, count in enumerate(pending) if count == 0
        )
        order: List[Gate] = []
        while queue:
            index = queue.popleft()
            gate = self.gates[index]
            order.append(gate)
            for consumer in consumers.get(gate.output, ()):
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    queue.append(consumer)
        if len(order) != len(self.gates):
            stuck = [
                gate.output
                for count, gate in zip(pending, self.gates)
                if count > 0
            ]
            raise NetlistError(
                "combinational loop or undriven net involving: "
                + ", ".join(stuck[:5])
            )
        self._order_cache = order
        return order

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _checked_stimuli(
        self, stimuli: Dict[str, np.ndarray]
    ) -> Tuple[Dict[str, np.ndarray], Tuple[int, ...]]:
        """Validate and normalize a stimulus mapping to uint8 arrays."""
        missing = [net for net in self.inputs if net not in stimuli]
        if missing:
            raise NetlistError(f"missing stimuli for inputs: {missing}")
        values: Dict[str, np.ndarray] = {}
        shape = None
        for net in self.inputs:
            arr = np.asarray(stimuli[net]).astype(np.uint8)
            if shape is None:
                shape = arr.shape
            elif arr.shape != shape:
                raise NetlistError("stimulus arrays must share one shape")
            values[net] = arr
        if shape is None:  # netlist with no inputs (constant logic)
            shape = ()
        return values, shape

    def evaluate(
        self,
        stimuli: Dict[str, np.ndarray],
        trace: bool = False,
        eval_mode: Optional[str] = None,
    ) -> Dict[str, np.ndarray]:
        """Evaluate the netlist on vectors of 0/1 values.

        Args:
            stimuli: Mapping from every primary-input net to an array of
                0/1 values.  All arrays must share one shape.
            trace: When true, the returned mapping contains *every* net's
                waveform (needed for toggle counting), not just the
                primary outputs.
            eval_mode: ``"bitsim"`` packs the stimulus into 64-lane
                uint64 words and runs the compiled tape of
                :mod:`repro.logic.bitsim`; ``"scalar"`` walks the gate
                list with truth-table gathers (the differential
                reference).  ``None`` uses the process default
                (``bitsim``).  Both engines are bit-identical.

        Returns:
            Mapping from net name to its evaluated uint8 array.
        """
        from . import bitsim

        mode = bitsim.resolve_eval_mode(eval_mode)
        values, shape = self._checked_stimuli(stimuli)
        if mode == "bitsim":
            return self._evaluate_bitsim(values, shape, trace)
        values["GND"] = np.zeros(shape, dtype=np.uint8)
        values["VDD"] = np.ones(shape, dtype=np.uint8)

        for gate in self.topological_order():
            index = np.zeros(shape, dtype=np.int64)
            for net in gate.inputs:
                index = (index << 1) | values[net]
            lut = np.asarray(gate.cell.truth, dtype=np.uint8)
            values[gate.output] = lut[index]

        if trace:
            return values
        return {net: values[net] for net in self.outputs}

    def _evaluate_bitsim(
        self,
        values: Dict[str, np.ndarray],
        shape: Tuple[int, ...],
        trace: bool,
    ) -> Dict[str, np.ndarray]:
        """Pack a validated stimulus, run the compiled tape, unpack."""
        from . import bitsim

        compiled = bitsim.compile_netlist(self)
        n_lanes = 1
        for dim in shape:
            n_lanes *= dim
        packed = {
            net: bitsim.pack_lanes(values[net]) for net in self.inputs
        }
        table = compiled.run_packed(
            packed, n_words=bitsim.n_words_for(n_lanes)
        )

        def unpacked(slot: int) -> np.ndarray:
            return bitsim.unpack_lanes(table[slot], n_lanes).reshape(shape)

        if trace:
            return {
                net: unpacked(slot)
                for slot, net in enumerate(compiled.net_names())
            }
        return {
            net: unpacked(compiled.slot_of(net)) for net in self.outputs
        }

    def evaluate_int(
        self, stimuli: Dict[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Like :meth:`evaluate` but accepts/returns plain int arrays."""
        return self.evaluate(stimuli)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def area_ge(self) -> float:
        """Total cell area in gate equivalents."""
        return float(sum(g.cell.area_ge for g in self.gates))

    @property
    def leakage_nw(self) -> float:
        """Total static leakage power in nanowatts."""
        return float(sum(g.cell.leakage_nw for g in self.gates))

    def cell_counts(self) -> Dict[str, int]:
        """Histogram of cell usage by cell name."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.cell.name] = counts.get(gate.cell.name, 0) + 1
        return counts

    def delay_ps(self) -> float:
        """Longest combinational path delay (sum of cell delays)."""
        arrival: Dict[str, float] = {net: 0.0 for net in self.inputs}
        arrival.update({net: 0.0 for net in _CONST_NETS})
        worst = 0.0
        for gate in self.topological_order():
            t_in = max((arrival.get(net, 0.0) for net in gate.inputs), default=0.0)
            t_out = t_in + gate.cell.delay_ps
            arrival[gate.output] = t_out
            worst = max(worst, t_out)
        return worst

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, {len(self.inputs)} in, "
            f"{len(self.outputs)} out, {len(self.gates)} gates, "
            f"{self.area_ge:.2f} GE)"
        )
