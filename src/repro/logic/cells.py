"""Standard-cell library for the gate-level substrate.

The paper characterizes its approximate components with an ASIC flow
(Synopsys Design Compiler for area, PrimeTime for power).  We replace that
flow with a small technology library whose cells carry:

* ``area_ge`` -- area in *gate equivalents* (GE), the unit used by the
  paper's Table III and Fig. 5 (1 GE = area of one NAND2).
* ``energy_per_toggle_fj`` -- dynamic switching energy per output toggle,
  proportional to a typical cell's output capacitance.
* ``leakage_nw`` -- static leakage power.
* ``delay_ps`` -- pin-to-pin propagation delay used for longest-path
  timing estimates.

Absolute values are representative of a generic 65 nm library; the paper's
comparisons are *relative* (approximate vs. accurate variants of the same
block), and relative ordering is preserved by any library in which area,
energy and delay grow with transistor count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

__all__ = ["Cell", "CELL_LIBRARY", "cell"]


@dataclass(frozen=True)
class Cell:
    """A combinational standard cell.

    Attributes:
        name: Library name of the cell (e.g. ``"NAND2"``).
        n_inputs: Number of input pins.
        truth: Output bit for every input combination.  Index ``i`` holds
            the output when the input pins, read MSB-first, encode the
            integer ``i`` (pin 0 is the MSB of the index).
        area_ge: Cell area in gate equivalents.
        energy_per_toggle_fj: Dynamic energy dissipated per output toggle.
        leakage_nw: Static leakage power in nanowatts.
        delay_ps: Propagation delay in picoseconds.
    """

    name: str
    n_inputs: int
    truth: Tuple[int, ...]
    area_ge: float
    energy_per_toggle_fj: float
    leakage_nw: float
    delay_ps: float

    def __post_init__(self) -> None:
        if len(self.truth) != 1 << self.n_inputs:
            raise ValueError(
                f"cell {self.name}: truth table has {len(self.truth)} rows, "
                f"expected {1 << self.n_inputs}"
            )
        if any(bit not in (0, 1) for bit in self.truth):
            raise ValueError(f"cell {self.name}: truth table must be 0/1")

    def evaluate(self, *inputs: int) -> int:
        """Evaluate the cell on scalar 0/1 inputs (pin order as declared)."""
        if len(inputs) != self.n_inputs:
            raise ValueError(
                f"cell {self.name} expects {self.n_inputs} inputs, "
                f"got {len(inputs)}"
            )
        index = 0
        for bit in inputs:
            index = (index << 1) | (int(bit) & 1)
        return self.truth[index]


def _truth(n_inputs: int, fn: Callable[..., int]) -> Tuple[int, ...]:
    """Build a truth tuple from a Python function of 0/1 arguments."""
    rows = []
    for index in range(1 << n_inputs):
        bits = [(index >> (n_inputs - 1 - k)) & 1 for k in range(n_inputs)]
        rows.append(int(bool(fn(*bits))))
    return tuple(rows)


def _make_library() -> Dict[str, Cell]:
    """Construct the default technology library.

    Areas follow common GE conventions (NAND2/NOR2 = 1.0 GE, INV = 0.67 GE,
    XOR2 = 2.33 GE, ...).  Energy and delay scale with area so that larger
    cells are slower and hungrier, which is all the paper's relative
    comparisons require.
    """
    defs = [
        # name, n, fn, area_ge
        ("WIRE", 1, lambda a: a, 0.00),
        ("INV", 1, lambda a: 1 - a, 0.67),
        ("BUF", 1, lambda a: a, 1.00),
        ("NAND2", 2, lambda a, b: 1 - (a & b), 1.00),
        ("NOR2", 2, lambda a, b: 1 - (a | b), 1.00),
        ("AND2", 2, lambda a, b: a & b, 1.33),
        ("OR2", 2, lambda a, b: a | b, 1.33),
        ("XOR2", 2, lambda a, b: a ^ b, 2.33),
        ("XNOR2", 2, lambda a, b: 1 - (a ^ b), 2.33),
        ("NAND3", 3, lambda a, b, c: 1 - (a & b & c), 1.33),
        ("NOR3", 3, lambda a, b, c: 1 - (a | b | c), 1.33),
        ("AND3", 3, lambda a, b, c: a & b & c, 1.67),
        ("OR3", 3, lambda a, b, c: a | b | c, 1.67),
        ("XOR3", 3, lambda a, b, c: a ^ b ^ c, 4.67),
        ("MAJ3", 3, lambda a, b, c: (a & b) | (a & c) | (b & c), 2.33),
        ("MIN3", 3, lambda a, b, c: 1 - ((a & b) | (a & c) | (b & c)), 2.33),
        ("MUX2", 3, lambda s, a, b: b if s else a, 2.33),
        ("AOI21", 3, lambda a, b, c: 1 - ((a & b) | c), 1.33),
        ("OAI21", 3, lambda a, b, c: 1 - ((a | b) & c), 1.33),
        ("AND4", 4, lambda a, b, c, d: a & b & c & d, 2.00),
        ("OR4", 4, lambda a, b, c, d: a | b | c | d, 2.00),
    ]
    library: Dict[str, Cell] = {}
    for name, n_inputs, fn, area in defs:
        library[name] = Cell(
            name=name,
            n_inputs=n_inputs,
            truth=_truth(n_inputs, fn),
            area_ge=area,
            # 1 GE ~ 1.8 fJ/toggle and ~2.5 nW leakage in a generic 65 nm
            # node; delays ~12 ps per GE of complexity.
            energy_per_toggle_fj=1.8 * area,
            leakage_nw=2.5 * area,
            delay_ps=12.0 * area,
        )
    return library


#: The default technology library, keyed by cell name.
CELL_LIBRARY: Dict[str, Cell] = _make_library()


def cell(name: str) -> Cell:
    """Look up a cell by name, raising ``KeyError`` with a helpful message."""
    try:
        return CELL_LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(CELL_LIBRARY))
        raise KeyError(f"unknown cell {name!r}; known cells: {known}") from None
