"""Combinational equivalence checking and error-case counting.

The paper's flow verifies approximate designs functionally (ModelSim)
and counts their error cases against the accurate design (Table III,
Fig. 5).  This module does both at the netlist level:

* :func:`check_equivalence` -- exhaustive (small input counts) or
  random-vector comparison of two netlists, returning counterexamples;
* :func:`count_error_cases` -- the paper's "#Error Cases" metric
  computed directly between an approximate and a reference netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import bitsim
from .netlist import Netlist
from .simulate import exhaustive_stimuli, random_stimuli

__all__ = [
    "EquivalenceReport",
    "check_equivalence",
    "count_error_cases",
    "stratified_stimuli",
]

#: Input counts up to this bound are checked exhaustively.
_EXHAUSTIVE_INPUT_LIMIT = 20

#: Stimulus modes accepted by :func:`check_equivalence`.
_MODES = ("auto", "exhaustive", "random", "stratified")


def stratified_stimuli(
    input_names: Sequence[str], n_vectors: int, seed: int = 0
) -> Dict[str, np.ndarray]:
    """Corner-biased random stimuli for wide interfaces.

    Uniform vectors set each input to 1 with probability 1/2, which
    almost never produces the all-ones / all-zeros neighbourhoods where
    carry chains and speculative windows fail.  This generator spends
    equal budget shares on uniform vectors, sparse vectors (few 1s),
    dense vectors (few 0s), and exact corner vectors, mirroring the
    operand strata of :mod:`repro.verify.oracle`.
    """
    if n_vectors < 1:
        raise ValueError(f"n_vectors must be >= 1, got {n_vectors}")
    rng = np.random.default_rng(seed)
    n_inputs = len(input_names)
    columns = []
    n_corner = min(n_vectors, 2)
    corners = np.zeros((n_corner, n_inputs), dtype=np.uint8)
    if n_corner > 1:
        corners[1] = 1
    columns.append(corners)
    remaining = n_vectors - n_corner
    shares = (remaining // 3, remaining // 3,
              remaining - 2 * (remaining // 3))
    for stratum, share in zip(("uniform", "sparse", "dense"), shares):
        if share == 0:
            continue
        if stratum == "uniform":
            block = rng.integers(0, 2, size=(share, n_inputs), dtype=np.uint8)
        else:
            # Biased Bernoulli: ~2 flipped bits per vector on average.
            p_flip = min(1.0, 2.0 / max(n_inputs, 1))
            flips = rng.random(size=(share, n_inputs)) < p_flip
            base = 0 if stratum == "sparse" else 1
            block = np.where(flips, 1 - base, base).astype(np.uint8)
        columns.append(block)
    matrix = np.concatenate(columns, axis=0)[:n_vectors]
    return {
        name: np.ascontiguousarray(matrix[:, i])
        for i, name in enumerate(input_names)
    }


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of an equivalence check.

    Attributes:
        equivalent: True if no differing vector was found.
        exhaustive: Whether the check covered the full input space.
        n_vectors: Number of vectors compared.
        n_mismatches: Number of differing vectors.
        counterexamples: Up to 8 differing input assignments.
    """

    equivalent: bool
    exhaustive: bool
    n_vectors: int
    n_mismatches: int
    counterexamples: Tuple[Dict[str, int], ...]


def _comparable(a: Netlist, b: Netlist) -> None:
    if tuple(sorted(a.inputs)) != tuple(sorted(b.inputs)):
        raise ValueError(
            f"input mismatch: {sorted(a.inputs)} vs {sorted(b.inputs)}"
        )
    if tuple(sorted(a.outputs)) != tuple(sorted(b.outputs)):
        raise ValueError(
            f"output mismatch: {sorted(a.outputs)} vs {sorted(b.outputs)}"
        )


def _first_mismatch_lanes(
    mismatch_words: np.ndarray, limit: int = 8
) -> List[int]:
    """Lane indices of the first ``limit`` set bits, in lane order."""
    lanes: List[int] = []
    for word_index in np.flatnonzero(mismatch_words):
        word = int(mismatch_words[word_index])
        base = 64 * int(word_index)
        while word and len(lanes) < limit:
            low = word & -word
            lanes.append(base + low.bit_length() - 1)
            word ^= low
        if len(lanes) >= limit:
            break
    return lanes


def _check_equivalence_packed(
    golden: Netlist,
    candidate: Netlist,
    inputs: List[str],
    exhaustive: bool,
    stimuli: Optional[Dict[str, np.ndarray]],
    n_random_vectors: int,
) -> EquivalenceReport:
    """Bit-parallel equivalence core: packed XOR + popcount reduction.

    Exhaustive sweeps never materialize per-vector arrays at all -- the
    stimulus is generated directly in packed form and counterexample
    inputs are decoded from the mismatching lane index.
    """
    if exhaustive:
        n_vectors = 1 << len(inputs)
        packed = bitsim.packed_exhaustive_stimuli(inputs)
    else:
        n_vectors = n_random_vectors
        packed = {net: bitsim.pack_lanes(stimuli[net]) for net in inputs}
    n_words = bitsim.n_words_for(n_vectors)
    compiled_a = bitsim.compile_netlist(golden)
    compiled_b = bitsim.compile_netlist(candidate)
    table_a = compiled_a.run_packed(packed, n_words)
    table_b = compiled_b.run_packed(packed, n_words)
    mismatch = np.zeros(n_words, dtype=np.uint64)
    for net in golden.outputs:
        mismatch |= (
            table_a[compiled_a.slot_of(net)]
            ^ table_b[compiled_b.slot_of(net)]
        )
    mismatch &= bitsim.lane_mask(n_vectors)
    n_mismatches = bitsim.popcount(mismatch)
    lanes = _first_mismatch_lanes(mismatch)
    if exhaustive:
        counterexamples = tuple(
            {name: (lane >> i) & 1 for i, name in enumerate(inputs)}
            for lane in lanes
        )
    else:
        counterexamples = tuple(
            {name: int(stimuli[name][lane]) for name in inputs}
            for lane in lanes
        )
    return EquivalenceReport(
        equivalent=n_mismatches == 0,
        exhaustive=exhaustive,
        n_vectors=n_vectors,
        n_mismatches=n_mismatches,
        counterexamples=counterexamples,
    )


def check_equivalence(
    golden: Netlist,
    candidate: Netlist,
    n_random_vectors: int = 4096,
    seed: int = 0,
    mode: str = "auto",
    eval_mode: Optional[str] = None,
) -> EquivalenceReport:
    """Compare two netlists over their (shared) interface.

    Args:
        golden: Reference netlist.
        candidate: Netlist under check (same input/output names).
        n_random_vectors: Vector count when the input space is not
            enumerated.
        seed: RNG seed for the sampling modes.
        mode: Stimulus selection -- ``"auto"`` (default) enumerates
            small input spaces and falls back to ``"stratified"``
            sampling; ``"exhaustive"``, ``"random"`` and
            ``"stratified"`` force the respective generator
            (``"exhaustive"`` raises when the space is too large).
        eval_mode: Simulation engine -- ``"bitsim"`` (64 packed lanes
            per word, the default) or ``"scalar"`` (the per-gate
            reference walk).  Reports are bit-identical.

    Returns:
        An :class:`EquivalenceReport` (``exhaustive=True`` means the
        verdict is a proof, not a sample).
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    engine = bitsim.resolve_eval_mode(eval_mode)
    _comparable(golden, candidate)
    inputs = list(golden.inputs)
    fits = len(inputs) <= _EXHAUSTIVE_INPUT_LIMIT
    if mode == "exhaustive" and not fits:
        raise ValueError(
            f"{len(inputs)} inputs exceed the exhaustive limit "
            f"({_EXHAUSTIVE_INPUT_LIMIT}); pick a sampling mode"
        )
    exhaustive = fits if mode == "auto" else mode == "exhaustive"
    if exhaustive:
        stimuli = None if engine == "bitsim" else exhaustive_stimuli(inputs)
    elif mode == "random":
        stimuli = random_stimuli(inputs, n_random_vectors, seed)
    else:
        stimuli = stratified_stimuli(inputs, n_random_vectors, seed)
    if engine == "bitsim" and inputs:
        return _check_equivalence_packed(
            golden, candidate, inputs, exhaustive, stimuli, n_random_vectors
        )
    if stimuli is None:
        stimuli = exhaustive_stimuli(inputs)
    out_a = golden.evaluate(stimuli, eval_mode=engine)
    out_b = candidate.evaluate(stimuli, eval_mode=engine)
    mismatch = np.zeros(
        np.asarray(stimuli[inputs[0]]).shape, dtype=bool
    ) if inputs else np.zeros((), dtype=bool)
    for net in golden.outputs:
        mismatch |= out_a[net] != out_b[net]
    indices = np.flatnonzero(mismatch)
    counterexamples = tuple(
        {name: int(stimuli[name][idx]) for name in inputs}
        for idx in indices[:8]
    )
    return EquivalenceReport(
        equivalent=not indices.size,
        exhaustive=exhaustive,
        n_vectors=int(np.asarray(stimuli[inputs[0]]).shape[0]) if inputs else 1,
        n_mismatches=int(indices.size),
        counterexamples=counterexamples,
    )


def count_error_cases(
    golden: Netlist, candidate: Netlist, eval_mode: Optional[str] = None
) -> int:
    """The paper's '#Error Cases': differing input vectors (exhaustive).

    Raises:
        ValueError: If the input space is too large to enumerate.
    """
    _comparable(golden, candidate)
    if len(golden.inputs) > _EXHAUSTIVE_INPUT_LIMIT:
        raise ValueError(
            f"{len(golden.inputs)} inputs: error-case counting needs an "
            "exhaustive sweep; use check_equivalence for sampling"
        )
    report = check_equivalence(golden, candidate, eval_mode=eval_mode)
    return report.n_mismatches
