"""Combinational equivalence checking and error-case counting.

The paper's flow verifies approximate designs functionally (ModelSim)
and counts their error cases against the accurate design (Table III,
Fig. 5).  This module does both at the netlist level:

* :func:`check_equivalence` -- exhaustive (small input counts) or
  random-vector comparison of two netlists, returning counterexamples;
* :func:`count_error_cases` -- the paper's "#Error Cases" metric
  computed directly between an approximate and a reference netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .netlist import Netlist
from .simulate import exhaustive_stimuli, random_stimuli

__all__ = ["EquivalenceReport", "check_equivalence", "count_error_cases"]

#: Input counts up to this bound are checked exhaustively.
_EXHAUSTIVE_INPUT_LIMIT = 20


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of an equivalence check.

    Attributes:
        equivalent: True if no differing vector was found.
        exhaustive: Whether the check covered the full input space.
        n_vectors: Number of vectors compared.
        n_mismatches: Number of differing vectors.
        counterexamples: Up to 8 differing input assignments.
    """

    equivalent: bool
    exhaustive: bool
    n_vectors: int
    n_mismatches: int
    counterexamples: Tuple[Dict[str, int], ...]


def _comparable(a: Netlist, b: Netlist) -> None:
    if tuple(sorted(a.inputs)) != tuple(sorted(b.inputs)):
        raise ValueError(
            f"input mismatch: {sorted(a.inputs)} vs {sorted(b.inputs)}"
        )
    if tuple(sorted(a.outputs)) != tuple(sorted(b.outputs)):
        raise ValueError(
            f"output mismatch: {sorted(a.outputs)} vs {sorted(b.outputs)}"
        )


def check_equivalence(
    golden: Netlist,
    candidate: Netlist,
    n_random_vectors: int = 4096,
    seed: int = 0,
) -> EquivalenceReport:
    """Compare two netlists over their (shared) interface.

    Args:
        golden: Reference netlist.
        candidate: Netlist under check (same input/output names).
        n_random_vectors: Vector count when the input space is too large
            to enumerate.
        seed: RNG seed for the random mode.

    Returns:
        An :class:`EquivalenceReport` (``exhaustive=True`` means the
        verdict is a proof, not a sample).
    """
    _comparable(golden, candidate)
    inputs = list(golden.inputs)
    exhaustive = len(inputs) <= _EXHAUSTIVE_INPUT_LIMIT
    if exhaustive:
        stimuli = exhaustive_stimuli(inputs)
    else:
        stimuli = random_stimuli(inputs, n_random_vectors, seed)
    out_a = golden.evaluate(stimuli)
    out_b = candidate.evaluate(stimuli)
    mismatch = np.zeros(
        np.asarray(stimuli[inputs[0]]).shape, dtype=bool
    ) if inputs else np.zeros((), dtype=bool)
    for net in golden.outputs:
        mismatch |= out_a[net] != out_b[net]
    indices = np.flatnonzero(mismatch)
    counterexamples = tuple(
        {name: int(stimuli[name][idx]) for name in inputs}
        for idx in indices[:8]
    )
    return EquivalenceReport(
        equivalent=not indices.size,
        exhaustive=exhaustive,
        n_vectors=int(np.asarray(stimuli[inputs[0]]).shape[0]) if inputs else 1,
        n_mismatches=int(indices.size),
        counterexamples=counterexamples,
    )


def count_error_cases(golden: Netlist, candidate: Netlist) -> int:
    """The paper's '#Error Cases': differing input vectors (exhaustive).

    Raises:
        ValueError: If the input space is too large to enumerate.
    """
    _comparable(golden, candidate)
    if len(golden.inputs) > _EXHAUSTIVE_INPUT_LIMIT:
        raise ValueError(
            f"{len(golden.inputs)} inputs: error-case counting needs an "
            "exhaustive sweep; use check_equivalence for sampling"
        )
    report = check_equivalence(golden, candidate)
    return report.n_mismatches
