"""Vector simulation, switching-activity capture and power estimation.

This replaces the ModelSim + SAIF + PrimeTime leg of the paper's tool flow
(Fig. 2): a stimulus is applied to a netlist, per-net toggle counts are
recorded (the SAIF equivalent), and dynamic power is computed from the
per-cell switching energy in the technology library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from . import bitsim
from .netlist import Netlist

__all__ = [
    "PowerReport",
    "exhaustive_stimuli",
    "random_stimuli",
    "toggle_counts",
    "estimate_power",
]


@dataclass(frozen=True)
class PowerReport:
    """Power estimate for a netlist under a given stimulus.

    Attributes:
        dynamic_nw: Average dynamic (switching) power in nanowatts.
        static_nw: Leakage power in nanowatts.
        total_nw: Sum of the two.
        n_vectors: Number of stimulus vectors applied.
        frequency_hz: Clock frequency assumed for averaging.
    """

    dynamic_nw: float
    static_nw: float
    n_vectors: int
    frequency_hz: float

    @property
    def total_nw(self) -> float:
        return self.dynamic_nw + self.static_nw


def exhaustive_stimuli(input_names: Sequence[str]) -> Dict[str, np.ndarray]:
    """All ``2**n`` input combinations, LSB-first over the name list.

    ``input_names[0]`` toggles fastest, mirroring a counter sweep.
    """
    n = len(input_names)
    index = np.arange(1 << n, dtype=np.int64)
    return {
        name: ((index >> i) & 1).astype(np.uint8)
        for i, name in enumerate(input_names)
    }


def random_stimuli(
    input_names: Sequence[str], n_vectors: int, seed: int = 0
) -> Dict[str, np.ndarray]:
    """Uniform random 0/1 vectors for each input net."""
    rng = np.random.default_rng(seed)
    return {
        name: rng.integers(0, 2, size=n_vectors, dtype=np.int64).astype(np.uint8)
        for name in input_names
    }


def toggle_counts(
    netlist: Netlist,
    stimuli: Dict[str, np.ndarray],
    eval_mode: Optional[str] = None,
) -> Dict[str, int]:
    """Count output toggles per net across consecutive stimulus vectors.

    This is the information a SAIF file would carry: how often each net
    switched during the simulation.  Under the bit-parallel engine the
    toggles are reduced straight from the packed waveforms (XOR-shift +
    popcount) without materializing per-vector traces.
    """
    if (
        bitsim.resolve_eval_mode(eval_mode) == "bitsim"
        and netlist.inputs
        and all(np.asarray(stimuli.get(net, ())).ndim == 1
                for net in netlist.inputs)
    ):
        return _toggle_counts_packed(netlist, stimuli)
    trace = netlist.evaluate(stimuli, trace=True, eval_mode="scalar")
    counts: Dict[str, int] = {}
    for net, wave in trace.items():
        wave = np.asarray(wave)
        if wave.ndim == 0 or wave.shape[0] < 2:
            counts[net] = 0
        else:
            counts[net] = int(np.count_nonzero(wave[1:] != wave[:-1]))
    return counts


def _toggle_counts_packed(
    netlist: Netlist, stimuli: Dict[str, np.ndarray]
) -> Dict[str, int]:
    """Toggle counts from packed waveforms, one popcount pass per net."""
    inputs = list(netlist.inputs)
    missing = [net for net in inputs if net not in stimuli]
    if missing:
        from .netlist import NetlistError

        raise NetlistError(f"missing stimuli for inputs: {missing}")
    sizes = {int(np.asarray(stimuli[net]).size) for net in inputs}
    if len(sizes) > 1:
        from .netlist import NetlistError

        raise NetlistError("stimulus arrays must share one shape")
    n_vectors = sizes.pop()
    compiled = bitsim.compile_netlist(netlist)
    packed = {net: bitsim.pack_lanes(stimuli[net]) for net in inputs}
    table = compiled.run_packed(packed, bitsim.n_words_for(n_vectors))
    valid = bitsim.lane_mask(n_vectors)
    return {
        net: bitsim.packed_toggles(table[slot] & valid, n_vectors)
        for slot, net in enumerate(compiled.net_names())
    }


def estimate_power(
    netlist: Netlist,
    stimuli: Dict[str, np.ndarray] | None = None,
    frequency_hz: float = 100e6,
    seed: int = 0,
    n_random_vectors: int = 2048,
    eval_mode: Optional[str] = None,
) -> PowerReport:
    """Estimate average power of a netlist under a stimulus.

    Dynamic power is ``sum_over_gates(toggles * E_toggle) * f / n_vectors``
    (each vector is one clock cycle); static power is the sum of cell
    leakages.  If no stimulus is given, a reproducible uniform-random one
    is generated -- the same input-statistics assumption the paper's error
    models use.

    Args:
        netlist: The design under analysis.
        stimuli: Optional mapping from primary inputs to 0/1 vectors.
        frequency_hz: Assumed operating frequency.
        seed: Seed for the generated stimulus (ignored if one is given).
        n_random_vectors: Length of the generated stimulus.
        eval_mode: Simulation engine for the toggle capture
            (``"bitsim"`` default / ``"scalar"`` reference).

    Returns:
        A :class:`PowerReport`.
    """
    if stimuli is None:
        if len(netlist.inputs) <= 11:
            stimuli = exhaustive_stimuli(netlist.inputs)
        else:
            stimuli = random_stimuli(netlist.inputs, n_random_vectors, seed)
    n_vectors = int(np.asarray(next(iter(stimuli.values()))).shape[0])
    counts = toggle_counts(netlist, stimuli, eval_mode=eval_mode)
    energy_fj = 0.0
    for gate in netlist.gates:
        energy_fj += counts.get(gate.output, 0) * gate.cell.energy_per_toggle_fj
    cycles = max(n_vectors - 1, 1)
    # fJ * Hz = 1e-15 W; report nW (1e-9 W).
    dynamic_nw = energy_fj * 1e-15 * frequency_hz / cycles * 1e9
    return PowerReport(
        dynamic_nw=dynamic_nw,
        static_nw=netlist.leakage_nw,
        n_vectors=n_vectors,
        frequency_hz=frequency_hz,
    )
