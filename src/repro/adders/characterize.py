"""Characterization of multi-bit adders: area, delay, and quality.

Implements the "characterization" step of the paper's methodology flow
(Fig. 7): every adder in the library is swept (exhaustively when
feasible, by sampling otherwise) and reduced to the metric bundle used
for design-space exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List

import numpy as np

from ..errors.metrics import ErrorMetrics, compute_error_metrics
from .fulladder import FULL_ADDER_NAMES, FULL_ADDERS
from .gear import GeArAdder, GeArConfig
from .ripple import ApproximateRippleAdder

__all__ = [
    "AdderCharacterization",
    "characterize_adder",
    "characterize_ripple_family",
    "ripple_family_tasks",
    "characterize_gear",
    "adder_energy_per_op_fj",
]

#: Above this operand width, exhaustive pair enumeration is replaced by
#: uniform sampling.
_EXHAUSTIVE_WIDTH_LIMIT = 11


@dataclass(frozen=True)
class AdderCharacterization:
    """Characterization record of one adder instance.

    Attributes:
        name: Component name.
        width: Operand width in bits.
        area_ge: ASIC area estimate in gate equivalents.
        delay_ps: Critical-path delay estimate.
        metrics: Quality metrics versus exact addition.
        lut_count: FPGA LUT estimate (GeAr only; 0 otherwise).
    """

    name: str
    width: int
    area_ge: float
    delay_ps: float
    metrics: ErrorMetrics
    lut_count: int = 0

    def as_row(self) -> Dict[str, float]:
        """Flatten into a report row."""
        row = {
            "name": self.name,
            "width": self.width,
            "area_ge": round(self.area_ge, 2),
            "delay_ps": round(self.delay_ps, 1),
            "lut_count": self.lut_count,
        }
        row.update(
            {k: round(v, 6) for k, v in self.metrics.as_dict().items()}
        )
        return row

    def to_record(self) -> Dict:
        """Full-precision JSON-serializable form (campaign cache)."""
        return {
            "name": self.name,
            "width": self.width,
            "area_ge": self.area_ge,
            "delay_ps": self.delay_ps,
            "lut_count": self.lut_count,
            "metrics": self.metrics.as_dict(),
        }

    @classmethod
    def from_record(cls, record: Dict) -> "AdderCharacterization":
        """Inverse of :meth:`to_record`."""
        return cls(
            name=record["name"],
            width=int(record["width"]),
            area_ge=float(record["area_ge"]),
            delay_ps=float(record["delay_ps"]),
            metrics=ErrorMetrics.from_dict(record["metrics"]),
            lut_count=int(record["lut_count"]),
        )


def _operand_sweep(
    width: int, n_samples: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exhaustive operand pairs when small, uniform samples otherwise."""
    if width <= _EXHAUSTIVE_WIDTH_LIMIT:
        values = np.arange(1 << width, dtype=np.int64)
        a = np.repeat(values, 1 << width)
        b = np.tile(values, 1 << width)
        return a, b
    rng = np.random.default_rng(seed)
    hi = 1 << width
    return (
        rng.integers(0, hi, size=n_samples, dtype=np.int64),
        rng.integers(0, hi, size=n_samples, dtype=np.int64),
    )


def characterize_adder(
    adder,
    name: str | None = None,
    n_samples: int = 100_000,
    seed: int = 0,
) -> AdderCharacterization:
    """Characterize any adder exposing ``add``/``width``/``area_ge``.

    Args:
        adder: Adder instance (:class:`ApproximateRippleAdder`,
            :class:`GeArAdder`, or anything with the same protocol).
        name: Override for the record name.
        n_samples: Sample count when the width is too large to sweep
            exhaustively.
        seed: RNG seed for sampled sweeps.
    """
    width = adder.width
    a, b = _operand_sweep(width, n_samples, seed)
    approx = adder.add(a, b)
    exact = a + b
    metrics = compute_error_metrics(approx, exact, max_output=float(2 ** (width + 1)))
    return AdderCharacterization(
        name=name or adder.name,
        width=width,
        area_ge=float(getattr(adder, "area_ge", 0.0)),
        delay_ps=float(getattr(adder, "delay_ps", 0.0)),
        metrics=metrics,
        lut_count=int(getattr(adder, "lut_count", 0)),
    )


def ripple_family_tasks(
    width: int,
    approx_lsb_counts: Iterable[int] = (0, 2, 4, 6),
    fa_names: Iterable[str] | None = None,
    n_samples: int = 100_000,
    seed: int = 0,
) -> List["CampaignTask"]:
    """Campaign tasks for the (cell, #approx LSBs) ripple-adder sweep.

    Every task carries the *same* seed so the family shares one operand
    stimulus, exactly like the legacy serial loop.
    """
    from ..campaign import CampaignTask

    names = list(fa_names) if fa_names is not None else [
        n for n in FULL_ADDER_NAMES if n != "AccuFA"
    ]
    return [
        CampaignTask(
            kind="ripple_adder",
            params={
                "width": width,
                "fa": fa_name,
                "num_approx_lsbs": int(k),
                "n_samples": n_samples,
            },
            seed=seed,
        )
        for fa_name in names
        for k in approx_lsb_counts
    ]


def characterize_ripple_family(
    width: int,
    approx_lsb_counts: Iterable[int] = (0, 2, 4, 6),
    fa_names: Iterable[str] | None = None,
    n_samples: int = 100_000,
    seed: int = 0,
    n_workers: int = 1,
    cache_dir: str | None = None,
) -> List[AdderCharacterization]:
    """Characterize ripple adders over all (cell, #approx LSBs) choices.

    This reproduces the library-characterization sweep behind the
    paper's Sec. 6 case study (each ApxFA variant at 2/4/6 approximated
    LSBs).  The sweep runs as a campaign
    (:func:`repro.campaign.run_campaign`): pass ``n_workers`` to fan the
    variants out over processes and ``cache_dir`` to reuse / checkpoint
    results; records are bit-identical for any worker count.
    """
    from ..campaign import run_campaign

    tasks = ripple_family_tasks(
        width, approx_lsb_counts, fa_names, n_samples=n_samples, seed=seed
    )
    result = run_campaign(tasks, n_workers=n_workers, cache_dir=cache_dir)
    return [AdderCharacterization.from_record(rec) for rec in result.results]


def characterize_gear(
    config: GeArConfig, n_samples: int = 100_000, seed: int = 0
) -> AdderCharacterization:
    """Characterize one GeAr configuration by simulation."""
    return characterize_adder(GeArAdder(config), n_samples=n_samples, seed=seed)


def adder_energy_per_op_fj(adder) -> float:
    """Estimated switching energy per addition, from per-cell energies.

    For ripple adders this sums the synthesized per-bit cell energy
    scaled by a nominal 0.4 toggle activity per output; for GeAr the
    accurate cell model is applied to every sub-adder bit.  Used by the
    accelerator power roll-ups.
    """
    activity = 0.4
    if isinstance(adder, ApproximateRippleAdder):
        total = 0.0
        for bit in range(adder.width):
            nl = adder.cell_at(bit).netlist()
            total += sum(
                g.cell.energy_per_toggle_fj for g in nl.gates
            ) * activity
        return total
    if isinstance(adder, GeArAdder):
        nl = FULL_ADDERS["AccuFA"].netlist()
        per_bit = sum(g.cell.energy_per_toggle_fj for g in nl.gates) * activity
        return per_bit * adder.config.k * adder.config.l
    raise TypeError(f"cannot estimate energy for {type(adder).__name__}")
