"""Multi-bit ripple-carry adders built from 1-bit (approximate) cells.

This is the lpACLib-style construction used throughout the paper: an
N-bit ripple-carry adder whose ``num_approx_lsbs`` least-significant bit
positions use one of the approximate full adders of Table III while the
remaining (most-significant) positions use the accurate cell.  The same
structure doubles as a two's-complement subtractor (for the SAD
accelerator's ``|a - b|`` datapath).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .fulladder import FULL_ADDERS, FullAdderSpec, full_adder

__all__ = ["ApproximateRippleAdder", "ExactAdder"]


def _as_int_array(x) -> np.ndarray:
    arr = np.asarray(x, dtype=np.int64)
    if np.any(arr < 0):
        raise ValueError("operands must be non-negative integers")
    return arr


@dataclass(frozen=True)
class ExactAdder:
    """Reference integer adder with the same interface as the approximate one.

    Attributes:
        width: Operand width in bits; the result carries ``width + 1``
            bits (the final carry is kept).
    """

    width: int

    def add(self, a, b, cin: int = 0) -> np.ndarray:
        """Exact ``a + b + cin`` (inputs truncated to ``width`` bits)."""
        mask = (1 << self.width) - 1
        return (_as_int_array(a) & mask) + (_as_int_array(b) & mask) + int(cin)

    def sub(self, a, b) -> np.ndarray:
        """Exact ``a - b`` as a signed integer."""
        mask = (1 << self.width) - 1
        return (_as_int_array(a) & mask) - (_as_int_array(b) & mask)

    @property
    def name(self) -> str:
        return f"Exact{self.width}"

    @property
    def num_approx_lsbs(self) -> int:
        return 0

    @property
    def area_ge(self) -> float:
        return FULL_ADDERS["AccuFA"].area_ge * self.width

    @property
    def delay_ps(self) -> float:
        return FULL_ADDERS["AccuFA"].delay_ps * self.width


class ApproximateRippleAdder:
    """N-bit ripple-carry adder with approximate LSB cells.

    The ``num_approx_lsbs`` least-significant positions instantiate
    ``approx_fa``; the rest instantiate ``accurate_fa``.  Evaluation is
    bit-true and vectorized: operands are NumPy integer arrays, bits are
    extracted per position, looked up in the cell truth tables, and the
    carry is rippled.

    Example:
        >>> adder = ApproximateRippleAdder(8, approx_fa="ApxFA1",
        ...                                num_approx_lsbs=4)
        >>> int(adder.add(100, 27))  # inexact in the low 4 bits
        128
    """

    def __init__(
        self,
        width: int,
        approx_fa: str | FullAdderSpec = "ApxFA1",
        num_approx_lsbs: int = 0,
        accurate_fa: str | FullAdderSpec = "AccuFA",
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if not 0 <= num_approx_lsbs <= width:
            raise ValueError(
                f"num_approx_lsbs must be in [0, {width}], got {num_approx_lsbs}"
            )
        self.width = width
        self.num_approx_lsbs = num_approx_lsbs
        self.approx_fa = (
            full_adder(approx_fa) if isinstance(approx_fa, str) else approx_fa
        )
        self.accurate_fa = (
            full_adder(accurate_fa)
            if isinstance(accurate_fa, str)
            else accurate_fa
        )

    @property
    def name(self) -> str:
        return (
            f"RCA{self.width}[{self.approx_fa.name}"
            f"x{self.num_approx_lsbs}]"
        )

    def cell_at(self, position: int) -> FullAdderSpec:
        """The full-adder spec used at bit ``position`` (0 = LSB)."""
        if not 0 <= position < self.width:
            raise ValueError(f"bit position {position} out of range")
        if position < self.num_approx_lsbs:
            return self.approx_fa
        return self.accurate_fa

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def add(self, a, b, cin: int = 0) -> np.ndarray:
        """Approximate ``a + b + cin``; result has ``width + 1`` bits."""
        a = _as_int_array(a)
        b = _as_int_array(b)
        carry = np.broadcast_to(
            np.asarray(int(cin), dtype=np.int64), np.broadcast_shapes(a.shape, b.shape)
        ).copy()
        total = np.zeros_like(carry)
        for bit in range(self.width):
            spec = self.cell_at(bit)
            abit = (a >> bit) & 1
            bbit = (b >> bit) & 1
            s, carry_u8 = spec.evaluate(abit, bbit, carry)
            total |= s.astype(np.int64) << bit
            carry = carry_u8.astype(np.int64)
        total |= carry << self.width
        return total

    def add_modular(self, a, b, cin: int = 0) -> np.ndarray:
        """Approximate addition truncated to ``width`` bits (carry dropped)."""
        return self.add(a, b, cin) & ((1 << self.width) - 1)

    def sub(self, a, b) -> np.ndarray:
        """Approximate ``a - b`` via two's complement through this adder.

        ``b`` is inverted bitwise and added with a carry-in of 1, exactly
        as an adder/subtractor datapath would do.  The raw result
        ``a + ~b + 1`` carries ``width + 1`` bits and equals
        ``a - b + 2**width`` for an exact adder, so subtracting the bias
        recovers the signed difference over the full range
        ``[-(2**width - 1), 2**width - 1]``.
        """
        a = _as_int_array(a)
        b = _as_int_array(b)
        mask = (1 << self.width) - 1
        raw = self.add(a & mask, (~b) & mask, cin=1)
        return raw - (1 << self.width)

    # ------------------------------------------------------------------
    # physical roll-ups
    # ------------------------------------------------------------------
    @property
    def area_ge(self) -> float:
        """Total cell area (sum of the per-bit synthesized FA areas)."""
        return float(
            sum(self.cell_at(i).area_ge for i in range(self.width))
        )

    @property
    def delay_ps(self) -> float:
        """Critical-path delay: the full carry ripple through all cells."""
        return float(
            sum(self.cell_at(i).delay_ps for i in range(self.width))
        )

    def __repr__(self) -> str:
        return (
            f"ApproximateRippleAdder(width={self.width}, "
            f"approx_fa={self.approx_fa.name!r}, "
            f"num_approx_lsbs={self.num_approx_lsbs})"
        )
