"""Multi-bit ripple-carry adders built from 1-bit (approximate) cells.

This is the lpACLib-style construction used throughout the paper: an
N-bit ripple-carry adder whose ``num_approx_lsbs`` least-significant bit
positions use one of the approximate full adders of Table III while the
remaining (most-significant) positions use the accurate cell.  The same
structure doubles as a two's-complement subtractor (for the SAD
accelerator's ``|a - b|`` datapath).

Two bit-identical evaluation engines are provided (``eval_mode``):

* ``"loop"`` -- the legacy reference: a Python loop over every bit
  position with per-cell truth-table lookups;
* ``"lut"`` / ``"auto"`` -- the fast path of :mod:`.fastpath`: the
  approximate LSB segment is collapsed into one precomputed lookup
  table and the accurate MSB segment into a native integer add, so a
  whole batched ``add`` costs two NumPy gathers and one vector add.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .fastpath import (
    AUTO_LUT_MAX_BITS,
    LUT_MAX_BITS,
    approx_segment_lut,
    pack_segment_index,
)
from .fulladder import FULL_ADDERS, FullAdderSpec, full_adder

__all__ = ["ApproximateRippleAdder", "ExactAdder", "EVAL_MODES", "MAX_WIDTH"]

#: Recognized evaluation engines for :class:`ApproximateRippleAdder`.
EVAL_MODES = ("auto", "lut", "loop", "partsim")

#: Widest supported adder.  Every engine accumulates into signed int64
#: (the scalar reference contract), whose 63 value bits must hold the
#: ``width + 1``-bit result: the legacy bit-loop's ``carry << width``
#: lands on the sign bit at width 63 and overflows outright at 64, and
#: the exact reference ``a + b`` wraps the same way.  Wider adders are
#: rejected at construction instead of silently corrupting sums.
MAX_WIDTH = 62


def _as_int_array(x) -> np.ndarray:
    arr = np.asarray(x, dtype=np.int64)
    if np.any(arr < 0):
        raise ValueError("operands must be non-negative integers")
    return arr


def _as_carry_in(cin) -> int:
    cin = int(cin)
    if cin not in (0, 1):
        raise ValueError(f"cin must be 0 or 1, got {cin}")
    return cin


@dataclass(frozen=True)
class ExactAdder:
    """Reference integer adder with the same interface as the approximate one.

    Attributes:
        width: Operand width in bits; the result carries ``width + 1``
            bits (the final carry is kept).
    """

    width: int

    def __post_init__(self) -> None:
        if not 1 <= self.width <= MAX_WIDTH:
            raise ValueError(
                f"width must be in [1, {MAX_WIDTH}] (int64 reference "
                f"arithmetic), got {self.width}"
            )

    def add(self, a, b, cin: int = 0) -> np.ndarray:
        """Exact ``a + b + cin`` (inputs truncated to ``width`` bits)."""
        mask = (1 << self.width) - 1
        return (_as_int_array(a) & mask) + (_as_int_array(b) & mask) + _as_carry_in(cin)

    def sub(self, a, b) -> np.ndarray:
        """Exact ``a - b`` as a signed integer."""
        mask = (1 << self.width) - 1
        return (_as_int_array(a) & mask) - (_as_int_array(b) & mask)

    @property
    def name(self) -> str:
        return f"Exact{self.width}"

    @property
    def num_approx_lsbs(self) -> int:
        return 0

    @property
    def area_ge(self) -> float:
        return FULL_ADDERS["AccuFA"].area_ge * self.width

    @property
    def delay_ps(self) -> float:
        return FULL_ADDERS["AccuFA"].delay_ps * self.width


class ApproximateRippleAdder:
    """N-bit ripple-carry adder with approximate LSB cells.

    The ``num_approx_lsbs`` least-significant positions instantiate
    ``approx_fa``; the rest instantiate ``accurate_fa``.  Evaluation is
    bit-true and vectorized: operands are NumPy integer arrays.

    Args:
        width: Operand width in bits.
        approx_fa: Table III cell (name or spec) for the LSB segment.
        num_approx_lsbs: Number of approximated LSB positions.
        accurate_fa: Cell for the remaining MSB positions.
        eval_mode: Evaluation engine -- ``"auto"`` (default) uses the
            segment/LUT fast path, compiling a LUT for approximate
            segments up to ``AUTO_LUT_MAX_BITS`` bits and bit-looping
            only over wider segments; ``"lut"`` forces LUT compilation
            (up to ``LUT_MAX_BITS`` bits, else raises); ``"loop"`` is
            the legacy full bit-loop reference.  All modes produce
            bit-identical results.

    Example:
        >>> adder = ApproximateRippleAdder(8, approx_fa="ApxFA1",
        ...                                num_approx_lsbs=4)
        >>> int(adder.add(100, 27))  # inexact in the low 4 bits
        128
    """

    def __init__(
        self,
        width: int,
        approx_fa: str | FullAdderSpec = "ApxFA1",
        num_approx_lsbs: int = 0,
        accurate_fa: str | FullAdderSpec = "AccuFA",
        eval_mode: str = "auto",
    ) -> None:
        if not 1 <= width <= MAX_WIDTH:
            raise ValueError(
                f"width must be in [1, {MAX_WIDTH}] (int64 reference "
                f"arithmetic), got {width}"
            )
        if not 0 <= num_approx_lsbs <= width:
            raise ValueError(
                f"num_approx_lsbs must be in [0, {width}], got {num_approx_lsbs}"
            )
        if eval_mode not in EVAL_MODES:
            raise ValueError(
                f"eval_mode must be one of {EVAL_MODES}, got {eval_mode!r}"
            )
        self.width = width
        self.num_approx_lsbs = num_approx_lsbs
        self.approx_fa = (
            full_adder(approx_fa) if isinstance(approx_fa, str) else approx_fa
        )
        self.accurate_fa = (
            full_adder(accurate_fa)
            if isinstance(accurate_fa, str)
            else accurate_fa
        )
        self.eval_mode = eval_mode
        # The MSB segment reduces to a native integer add only when the
        # accurate cell really is the exact full adder.
        self._msb_native = (
            tuple(self.accurate_fa.table) == tuple(FULL_ADDERS["AccuFA"].table)
        )
        self._seg_lut: np.ndarray | None = None
        self._partsim_layout = None
        if eval_mode in ("auto", "lut") and num_approx_lsbs > 0:
            limit = LUT_MAX_BITS if eval_mode == "lut" else AUTO_LUT_MAX_BITS
            if num_approx_lsbs <= limit:
                self._seg_lut = approx_segment_lut(
                    self.approx_fa, num_approx_lsbs
                )
            elif eval_mode == "lut":
                raise ValueError(
                    f"eval_mode='lut' supports approximate segments up to "
                    f"{LUT_MAX_BITS} bits, got {num_approx_lsbs}"
                )

    @property
    def name(self) -> str:
        return (
            f"RCA{self.width}[{self.approx_fa.name}"
            f"x{self.num_approx_lsbs}]"
        )

    @property
    def uses_fast_path(self) -> bool:
        """True when ``add``/``sub`` run the segment/LUT engine."""
        return self.eval_mode != "loop"

    def cell_at(self, position: int) -> FullAdderSpec:
        """The full-adder spec used at bit ``position`` (0 = LSB)."""
        if not 0 <= position < self.width:
            raise ValueError(f"bit position {position} out of range")
        if position < self.num_approx_lsbs:
            return self.approx_fa
        return self.accurate_fa

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def add(self, a, b, cin: int = 0) -> np.ndarray:
        """Approximate ``a + b + cin``; result has ``width + 1`` bits."""
        a = _as_int_array(a)
        b = _as_int_array(b)
        cin = _as_carry_in(cin)
        if self.eval_mode == "loop":
            return self._add_loop(a, b, cin)
        if self.eval_mode == "partsim":
            return self._add_partsim(a, b, cin)
        return self._add_fast(a, b, cin)

    def _add_loop(self, a: np.ndarray, b: np.ndarray, cin: int) -> np.ndarray:
        """Legacy reference: per-cell ripple over every bit position."""
        carry = np.broadcast_to(
            np.asarray(cin, dtype=np.int64), np.broadcast_shapes(a.shape, b.shape)
        ).copy()
        total = np.zeros_like(carry)
        for bit in range(self.width):
            spec = self.cell_at(bit)
            abit = (a >> bit) & 1
            bbit = (b >> bit) & 1
            s, carry_u8 = spec.evaluate(abit, bbit, carry)
            total |= s.astype(np.int64) << bit
            carry = carry_u8.astype(np.int64)
        total |= carry << self.width
        return total

    def _ripple_segment(
        self, a: np.ndarray, b: np.ndarray, carry, start: int, stop: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Bit-loop over positions ``[start, stop)`` only.

        Returns the segment's partial sum (aligned at bit ``start``) and
        carry-out; used by the fast path for pieces it cannot collapse.
        """
        carry = np.broadcast_to(
            np.asarray(carry, dtype=np.int64),
            np.broadcast_shapes(a.shape, b.shape),
        ).copy()
        total = np.zeros_like(carry)
        for bit in range(start, stop):
            spec = self.cell_at(bit)
            abit = (a >> bit) & 1
            bbit = (b >> bit) & 1
            s, carry_u8 = spec.evaluate(abit, bbit, carry)
            total |= s.astype(np.int64) << bit
            carry = carry_u8.astype(np.int64)
        return total, carry

    def _add_fast(self, a: np.ndarray, b: np.ndarray, cin: int) -> np.ndarray:
        """Segment-split evaluation: LUT over the approximate LSBs plus a
        native integer add over the accurate MSBs.

        The LUT value is kept *packed* as ``(carry << s) | sum_lo``: with
        an exact MSB segment the total is simply
        ``((a_hi + b_hi) << s) + packed`` -- the carry lands on bit ``s``
        by construction -- so no unpack step is needed on the hot path.
        """
        s = self.num_approx_lsbs
        w = self.width
        if s == 0:
            if self._msb_native:
                mask = (1 << w) - 1
                total = (a & mask) + (b & mask) + cin
            else:
                hi, carry = self._ripple_segment(a, b, cin, 0, w)
                total = hi | (carry << w)
            return np.asarray(total, dtype=np.int64)
        if self._seg_lut is not None:
            mask_lo = (1 << s) - 1
            idx = pack_segment_index(a & mask_lo, b & mask_lo, cin, s)
            packed = self._seg_lut[idx]
            if packed.dtype != np.int64:  # only the very largest tables
                packed = packed.astype(np.int64)
            if s == w:
                # packed == (carry << w) | sum is already the result.
                return np.asarray(packed, dtype=np.int64)
            if self._msb_native:
                mask_hi = (1 << (w - s)) - 1
                hi = ((a >> s) & mask_hi) + ((b >> s) & mask_hi)
                return np.asarray((hi << s) + packed, dtype=np.int64)
            sum_lo = packed & mask_lo
            hi, carry = self._ripple_segment(a, b, packed >> s, s, w)
            return np.asarray(hi | sum_lo | (carry << w), dtype=np.int64)
        # Approximate segment too wide for a LUT: bit-loop it alone.
        sum_lo, carry = self._ripple_segment(a, b, cin, 0, s)
        if s == w:
            total = sum_lo | (carry << w)
        elif self._msb_native:
            mask_hi = (1 << (w - s)) - 1
            hi = ((a >> s) & mask_hi) + ((b >> s) & mask_hi) + carry
            total = (hi << s) | sum_lo
        else:
            hi, carry = self._ripple_segment(a, b, carry, s, w)
            total = hi | sum_lo | (carry << w)
        return np.asarray(total, dtype=np.int64)

    def _add_partsim(
        self, a: np.ndarray, b: np.ndarray, cin: int
    ) -> np.ndarray:
        """Partitioned-SIMD evaluation: several additions per uint64 word.

        The operands are packed into the fields of a
        :class:`~repro.datapath.partsim.PartitionLayout`; the
        approximate LSB segment ripples through the packed masked-cell
        evaluator (all fields at once per bit position) and a native
        accurate MSB segment is one guarded word addition.  Bit-identical
        to the other engines -- the segment evaluator applies the same
        truth table in the same cell order.
        """
        from ..datapath.partsim import PartitionLayout, packed_cell_ripple

        if self._partsim_layout is None:
            self._partsim_layout = PartitionLayout(self.width + 1)
        layout = self._partsim_layout
        mask = (1 << self.width) - 1
        shape = np.broadcast_shapes(a.shape, b.shape)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        aw = layout.pack(np.broadcast_to(a & mask, shape).ravel())
        bw = layout.pack(np.broadcast_to(b & mask, shape).ravel())
        carry = layout.base if cin else np.uint64(0)
        s, w = self.num_approx_lsbs, self.width
        sum_lo = np.uint64(0)
        if s:
            sum_lo, carry = packed_cell_ripple(
                layout, aw, bw, carry, self.approx_fa.table, 0, s
            )
        if s == w:
            out = sum_lo | (carry << w)
        elif self._msb_native:
            mask_hi = layout.spread((1 << (w - s)) - 1)
            hi = ((aw >> s) & mask_hi) + ((bw >> s) & mask_hi) + carry
            out = (hi << s) | sum_lo
        else:
            sum_hi, carry = packed_cell_ripple(
                layout, aw, bw, carry, self.accurate_fa.table, s, w
            )
            out = sum_lo | sum_hi | (carry << w)
        return layout.unpack(out, count).reshape(shape)

    def add_modular(self, a, b, cin: int = 0) -> np.ndarray:
        """Approximate addition truncated to ``width`` bits (carry dropped)."""
        return self.add(a, b, cin) & ((1 << self.width) - 1)

    def sub(self, a, b) -> np.ndarray:
        """Approximate ``a - b`` via two's complement through this adder.

        ``b`` is inverted bitwise and added with a carry-in of 1, exactly
        as an adder/subtractor datapath would do.  The raw result
        ``a + ~b + 1`` carries ``width + 1`` bits and equals
        ``a - b + 2**width`` for an exact adder, so subtracting the bias
        recovers the signed difference over the full range
        ``[-(2**width - 1), 2**width - 1]``.
        """
        a = _as_int_array(a)
        b = _as_int_array(b)
        mask = (1 << self.width) - 1
        raw = self.add(a & mask, (~b) & mask, cin=1)
        return raw - (1 << self.width)

    # ------------------------------------------------------------------
    # physical roll-ups
    # ------------------------------------------------------------------
    @property
    def area_ge(self) -> float:
        """Total cell area (sum of the per-bit synthesized FA areas)."""
        return float(
            sum(self.cell_at(i).area_ge for i in range(self.width))
        )

    @property
    def delay_ps(self) -> float:
        """Critical-path delay: the full carry ripple through all cells."""
        return float(
            sum(self.cell_at(i).delay_ps for i in range(self.width))
        )

    def __repr__(self) -> str:
        return (
            f"ApproximateRippleAdder(width={self.width}, "
            f"approx_fa={self.approx_fa.name!r}, "
            f"num_approx_lsbs={self.num_approx_lsbs})"
        )
