"""Heterogeneous GeAr: per-segment block sizes and carry predictions.

The homogeneous ``GeAr(N, R, P)`` model (paper Sec. 4.2) forces every
sub-adder to contribute the same ``R`` result bits with the same ``P``
prediction bits.  Farahmand et al. (arXiv 2106.08800) generalize this to
*heterogeneous* blocks: segment ``i`` contributes ``r_i`` result bits and
speculates its carry from the ``p_i`` bits immediately below its base.
Spending prediction bits where carries actually matter (the high
segments) buys better accuracy at equal area than any homogeneous split.

A configuration is a sequence of ``(r_i, p_i)`` segments.  With
``t_i = r_0 + ... + r_{i-1}`` the base of segment ``i``, sub-adder ``i``
sums the operand window ``[t_i - p_i, t_i + r_i)`` with carry-in 0 and
keeps its top ``r_i`` bits; the final carry (bit N) is the last window's
overflow.  Segment 0 has ``p_0 = 0`` and is always exact.  The
homogeneous ``GeAr(N, R, P)`` is the special case
``[(R+P, 0), (R, P), ..., (R, P)]`` (see :meth:`HeteroGeArConfig.from_gear`).

Segment ``i`` errs exactly when the true carry into bit ``t_i`` is 1 and
all ``p_i`` prediction positions propagate -- the same event structure as
GeAr, which is what lets ``repro.errors.analytic`` compute the exact
error PMF for both families with one DP.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List, Tuple

import numpy as np

__all__ = ["HeteroGeArConfig", "HeteroGeArAdder"]


def _as_int_array(x) -> np.ndarray:
    arr = np.asarray(x, dtype=np.int64)
    if np.any(arr < 0):
        raise ValueError("operands must be non-negative integers")
    return arr


def _compositions(n: int, k: int) -> List[Tuple[int, ...]]:
    """All ordered ways to write ``n`` as ``k`` positive parts."""
    if k == 1:
        return [(n,)]
    out: List[Tuple[int, ...]] = []
    for first in range(1, n - k + 2):
        for rest in _compositions(n - first, k - 1):
            out.append((first,) + rest)
    return out


@dataclass(frozen=True)
class HeteroGeArConfig:
    """Architectural parameters of a heterogeneous GeAr adder.

    Attributes:
        segments: ``(r_i, p_i)`` per sub-adder, low to high.  Segment 0
            must have ``p_0 = 0``; every ``p_i`` must fit below the
            segment base (``p_i <= t_i``).  The operand width ``N`` is
            the sum of the ``r_i``.

    Example:
        >>> cfg = HeteroGeArConfig(((4, 0), (2, 2), (2, 2)))
        >>> cfg.n, cfg.k
        (8, 3)
        >>> cfg == HeteroGeArConfig.from_gear_params(8, 2, 2)
        True
    """

    segments: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        segs = tuple((int(r), int(p)) for r, p in self.segments)
        object.__setattr__(self, "segments", segs)
        if not segs:
            raise ValueError("need at least one segment")
        base = 0
        for i, (r, p) in enumerate(segs):
            if r < 1:
                raise ValueError(f"segment {i}: r must be >= 1, got {r}")
            if p < 0:
                raise ValueError(f"segment {i}: p must be >= 0, got {p}")
            if i == 0 and p != 0:
                raise ValueError(
                    f"segment 0 has no lower bits to predict from; "
                    f"p_0 must be 0, got {p}"
                )
            if p > base:
                raise ValueError(
                    f"segment {i}: p={p} reaches below bit 0 "
                    f"(segment base is bit {base})"
                )
            base += r

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Operand width ``N = sum(r_i)``."""
        return sum(r for r, _ in self.segments)

    @property
    def k(self) -> int:
        """Number of sub-adders."""
        return len(self.segments)

    @property
    def is_exact(self) -> bool:
        """True when the configuration degenerates to a single full adder."""
        return self.k == 1

    def segment_starts(self) -> Tuple[int, ...]:
        """Result-bit base ``t_i`` of each segment."""
        starts, base = [], 0
        for r, _ in self.segments:
            starts.append(base)
            base += r
        return tuple(starts)

    def sub_adder_windows(self) -> List[Tuple[int, int]]:
        """``(start_bit, width)`` of each sub-adder's operand window."""
        return [
            (t - p, p + r)
            for (r, p), t in zip(self.segments, self.segment_starts())
        ]

    @property
    def never_overestimates(self) -> bool:
        """True when every error is non-positive (approx <= exact).

        A missed carry at segment ``i`` subtracts ``2**t_i`` unless the
        propagate run extends through the whole segment, in which case
        the result wraps to all-ones and temporarily *overshoots*; the
        overshoot is always cancelled by the next segment's own missed
        carry provided that segment can still see the run, i.e.
        ``p_{i+1} <= p_i + r_i``.  Homogeneous GeAr configurations
        satisfy this for every pair (``P <= P + R``); heterogeneous
        ones that concentrate prediction high may not, and can then
        genuinely overestimate the sum.
        """
        segs = self.segments
        return all(
            segs[i + 1][1] <= segs[i][1] + segs[i][0]
            for i in range(len(segs) - 1)
        )

    @property
    def name(self) -> str:
        """Canonical display name, e.g. ``HeteroGeAr(N=8,4:0,2:2,2:2)``."""
        body = ",".join(f"{r}:{p}" for r, p in self.segments)
        return f"HeteroGeAr(N={self.n},{body})"

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_gear(cls, config) -> "HeteroGeArConfig":
        """Embed a homogeneous :class:`~repro.adders.GeArConfig`.

        The resulting heterogeneous adder is bit-identical to the GeAr
        adder: segment 0 is the first full sub-adder (width ``L = R+P``,
        no prediction), and each later segment keeps ``R`` bits with
        ``P`` prediction bits.
        """
        return cls.from_gear_params(config.n, config.r, config.p)

    @classmethod
    def from_gear_params(cls, n: int, r: int, p: int) -> "HeteroGeArConfig":
        """Embed ``GeAr(n, r, p)`` given as raw parameters."""
        from .gear import GeArConfig

        cfg = GeArConfig(n, r, p)  # validates divisibility
        return cls(((cfg.l, 0),) + ((r, p),) * (cfg.k - 1))

    @classmethod
    def from_string(cls, text: str) -> "HeteroGeArConfig":
        """Parse a ``"r:p,r:p,..."`` spec (low segment first).

        Example:
            >>> HeteroGeArConfig.from_string("4:0,2:2,2:2").n
            8
        """
        segments = []
        for part in text.split(","):
            r, sep, p = part.partition(":")
            try:
                segments.append((int(r), int(p) if sep else 0))
            except ValueError:
                raise ValueError(
                    f"bad segment {part!r}; expected 'r:p' with integers"
                ) from None
        return cls(tuple(segments))

    @classmethod
    def all_valid(
        cls,
        n: int,
        max_segments: int = 3,
        max_p: int | None = None,
        min_p: int = 0,
    ) -> List["HeteroGeArConfig"]:
        """Enumerate approximate configurations for width ``n``.

        Every composition of ``n`` into ``2..max_segments`` positive
        result widths is combined with every per-segment prediction
        ``p_i`` in ``[min_p, min(t_i, max_p)]`` (``p_0`` is always 0).
        Only genuinely approximate configurations (``k >= 2``) are
        returned; the caps keep the space tractable -- it grows fast.
        """
        if max_p is None:
            max_p = n
        configs: List[HeteroGeArConfig] = []
        for k in range(2, max_segments + 1):
            for widths in _compositions(n, k):
                starts = [sum(widths[:i]) for i in range(k)]
                choices = [
                    range(min_p, min(t, max_p) + 1) for t in starts[1:]
                ]
                for ps in product(*choices):
                    configs.append(
                        cls(
                            ((widths[0], 0),)
                            + tuple(zip(widths[1:], ps))
                        )
                    )
        return configs


class HeteroGeArAdder:
    """Behavioural model of a heterogeneous GeAr adder (vectorized).

    Example:
        >>> adder = HeteroGeArAdder(HeteroGeArConfig(((4, 0), (2, 2), (2, 2))))
        >>> int(adder.add(0x0F, 0x01))    # the bit-4 carry is missed
        0
        >>> int(adder.add(0x05, 0x02))    # carry-free addition is exact
        7
    """

    def __init__(
        self, config: HeteroGeArConfig, eval_mode: str = "auto"
    ) -> None:
        from .gear import GEAR_EVAL_MODES

        if eval_mode not in GEAR_EVAL_MODES:
            raise ValueError(
                f"eval_mode must be one of {GEAR_EVAL_MODES}, "
                f"got {eval_mode!r}"
            )
        self.config = config
        self.eval_mode = eval_mode
        self._partsim_layout = None

    @property
    def name(self) -> str:
        """Display name of the underlying configuration."""
        return self.config.name

    @property
    def width(self) -> int:
        """Operand width in bits."""
        return self.config.n

    def _operands(self, a, b) -> Tuple[np.ndarray, np.ndarray]:
        """Validated operands, masked to the architectural N bits."""
        mask = (1 << self.config.n) - 1
        return _as_int_array(a) & mask, _as_int_array(b) & mask

    def add(self, a, b) -> np.ndarray:
        """Approximate ``a + b``; result has ``N + 1`` bits.

        Each sub-adder sums its operand window with carry-in 0; only its
        top ``r_i`` bits land in the result, and the final carry (bit N)
        is the last window's overflow.  Operands must be non-negative
        and are masked to ``N`` bits.
        """
        a, b = self._operands(a, b)
        if self.eval_mode == "partsim":
            return self._add_partsim(a, b)
        cfg = self.config
        result = np.zeros(np.broadcast_shapes(a.shape, b.shape), np.int64)
        last_sum, last_width = None, 0
        for (r, p), (start, width) in zip(
            cfg.segments, cfg.sub_adder_windows()
        ):
            mask_w = (1 << width) - 1
            window_sum = ((a >> start) & mask_w) + ((b >> start) & mask_w)
            mask_r = (1 << r) - 1
            result = result | (((window_sum >> p) & mask_r) << (start + p))
            last_sum, last_width = window_sum, width
        result = result | (((last_sum >> last_width) & 1) << cfg.n)
        return result

    def _add_partsim(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Packed evaluation of the heterogeneous window equation.

        Identical windowing to :meth:`add`, but each per-segment window
        sum runs on every packed field of a uint64 word at once -- the
        per-segment carry cuts are partition-mask edits, shared with the
        GeAr path through
        :func:`repro.datapath.partsim.packed_window_add`.
        """
        from ..datapath.partsim import PartitionLayout, packed_window_add

        cfg = self.config
        if self._partsim_layout is None:
            self._partsim_layout = PartitionLayout(cfg.n + 1)
        layout = self._partsim_layout
        shape = np.broadcast_shapes(a.shape, b.shape)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        wa = layout.pack(np.broadcast_to(a, shape).ravel())
        wb = layout.pack(np.broadcast_to(b, shape).ravel())
        windows = [
            (start, width, p, r)
            for (r, p), (start, width) in zip(
                cfg.segments, cfg.sub_adder_windows()
            )
        ]
        out = packed_window_add(layout, wa, wb, windows, cfg.n)
        return layout.unpack(out, count).reshape(shape)

    # ------------------------------------------------------------------
    # physical models
    # ------------------------------------------------------------------
    @property
    def lut_count(self) -> int:
        """FPGA resource model: one 6-LUT + carry per sub-adder bit.

        The same Virtex-6 proxy as :class:`~repro.adders.GeArAdder`:
        total LUTs equal the summed window widths ``sum(p_i + r_i)``.
        """
        return sum(p + r for r, p in self.config.segments)

    @property
    def area_ge(self) -> float:
        """ASIC area model: one accurate full adder per sub-adder bit."""
        from .fulladder import FULL_ADDERS

        return FULL_ADDERS["AccuFA"].area_ge * self.lut_count

    @property
    def delay_ps(self) -> float:
        """Critical path: the widest window's ripple (blocks run in
        parallel)."""
        from .fulladder import FULL_ADDERS

        widest = max(p + r for r, p in self.config.segments)
        return FULL_ADDERS["AccuFA"].delay_ps * widest

    def __repr__(self) -> str:
        return f"HeteroGeArAdder({self.config.name})"
