"""Approximate adders: 1-bit cells (Table III), multi-bit ripple adders,
and the GeAr accuracy-configurable adder model with its error models."""

from .configurable import ConfigurableGeArAdder, ModeCharacterization
from .netlist_builder import (
    build_ripple_adder_netlist,
    build_subtractor_netlist,
    evaluate_adder_netlist,
)
from .characterize import (
    AdderCharacterization,
    adder_energy_per_op_fj,
    characterize_adder,
    characterize_gear,
    characterize_ripple_family,
)
from .fulladder import (
    FULL_ADDER_NAMES,
    FULL_ADDERS,
    FullAdderSpec,
    accurate_full_adder,
    full_adder,
)
from .gear import GeArAdder, GeArConfig
from .hetero import HeteroGeArAdder, HeteroGeArConfig
from .gear_error import (
    ErrorEvent,
    accuracy_percent,
    error_events,
    exact_error_probability,
    exhaustive_error_rate,
    monte_carlo_error_rate,
    paper_error_probability,
)
from .fastpath import (
    AUTO_LUT_MAX_BITS,
    LUT_MAX_BITS,
    approx_segment_lut,
)
from .prefix import SpeculativePrefixAdder, build_kogge_stone_netlist
from .ripple import EVAL_MODES, ApproximateRippleAdder, ExactAdder
from .variants import aca_i, aca_ii, etaii, gda, known_adder_configs

__all__ = [
    "ConfigurableGeArAdder",
    "ModeCharacterization",
    "build_ripple_adder_netlist",
    "build_subtractor_netlist",
    "evaluate_adder_netlist",
    "AdderCharacterization",
    "adder_energy_per_op_fj",
    "characterize_adder",
    "characterize_gear",
    "characterize_ripple_family",
    "FULL_ADDER_NAMES",
    "FULL_ADDERS",
    "FullAdderSpec",
    "accurate_full_adder",
    "full_adder",
    "GeArAdder",
    "GeArConfig",
    "HeteroGeArAdder",
    "HeteroGeArConfig",
    "ErrorEvent",
    "accuracy_percent",
    "error_events",
    "exact_error_probability",
    "exhaustive_error_rate",
    "monte_carlo_error_rate",
    "paper_error_probability",
    "ApproximateRippleAdder",
    "ExactAdder",
    "EVAL_MODES",
    "AUTO_LUT_MAX_BITS",
    "LUT_MAX_BITS",
    "approx_segment_lut",
    "SpeculativePrefixAdder",
    "build_kogge_stone_netlist",
    "aca_i",
    "aca_ii",
    "etaii",
    "gda",
    "known_adder_configs",
]
