"""1-bit accurate and approximate full adders (paper Table III).

The paper implements the accurate full adder (``AccuFA``) and five
approximate variants (``ApxFA1`` .. ``ApxFA5``) based on the IMPACT
designs of Gupta et al. [11][12].  Each variant is defined by its truth
table; the table below is transcribed verbatim from Table III of the
paper (error cases relative to ``AccuFA`` are the paper's bold-red
entries and are re-derived here rather than hard-coded).

Design intent of each variant:

* ``AccuFA``  -- exact mirror-adder reference.
* ``ApxFA1``  -- IMPACT approximation 1 (simplified mirror adder,
  2 error cases).
* ``ApxFA2``  -- IMPACT approximation with ``Sum = not Cout`` on a
  simplified carry (2 error cases).
* ``ApxFA3``  -- inverts the approximate ``Cout`` to compute ``Sum``
  (3 error cases).
* ``ApxFA4``  -- further simplified carry logic (3 error cases).
* ``ApxFA5``  -- wire-only adder: ``Cout = A`` and ``Sum = B``
  (4 error cases, zero transistors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from ..logic.netlist import Netlist
from ..logic.synth import synthesize_truth_table

__all__ = [
    "FullAdderSpec",
    "FULL_ADDERS",
    "FULL_ADDER_NAMES",
    "full_adder",
    "accurate_full_adder",
]

#: Row order of the truth tables: index = (A << 2) | (B << 1) | Cin.
_ROW_ORDER = [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]

# (sum, cout) per row, rows indexed by (A<<2)|(B<<1)|Cin. Transcribed from
# Table III of the paper.
_TABLES: Dict[str, Tuple[Tuple[int, int], ...]] = {
    "AccuFA": ((0, 0), (1, 0), (1, 0), (0, 1), (1, 0), (0, 1), (0, 1), (1, 1)),
    "ApxFA1": ((0, 0), (1, 0), (0, 1), (0, 1), (0, 0), (0, 1), (0, 1), (1, 1)),
    "ApxFA2": ((1, 0), (1, 0), (1, 0), (0, 1), (1, 0), (0, 1), (0, 1), (0, 1)),
    "ApxFA3": ((1, 0), (1, 0), (0, 1), (0, 1), (1, 0), (0, 1), (0, 1), (0, 1)),
    "ApxFA4": ((0, 0), (1, 0), (0, 0), (1, 0), (0, 1), (0, 1), (0, 1), (1, 1)),
    "ApxFA5": ((0, 0), (0, 0), (1, 0), (1, 0), (0, 1), (0, 1), (1, 1), (1, 1)),
}

_DESCRIPTIONS: Dict[str, str] = {
    "AccuFA": "accurate mirror full adder (reference)",
    "ApxFA1": "IMPACT approximation 1: simplified mirror adder",
    "ApxFA2": "IMPACT approximation 2: Sum from simplified carry",
    "ApxFA3": "IMPACT approximation 3: Sum = NOT Cout",
    "ApxFA4": "IMPACT approximation 4: simplified carry logic",
    "ApxFA5": "wire-only adder: Cout = A, Sum = B",
}


@dataclass(frozen=True)
class FullAdderSpec:
    """Behavioural + structural model of a 1-bit (approximate) full adder.

    Attributes:
        name: Library name (``"AccuFA"``, ``"ApxFA1"``, ...).
        table: ``(sum, cout)`` for every row, indexed ``(A<<2)|(B<<1)|Cin``.
        description: Human-readable design intent.
    """

    name: str
    table: Tuple[Tuple[int, int], ...]
    description: str

    def __post_init__(self) -> None:
        if len(self.table) != 8:
            raise ValueError(f"{self.name}: full-adder table needs 8 rows")
        # Materialize the behavioural LUTs once: evaluate() sits on the
        # ripple-adder hot path and must not rebuild them per call.
        sum_lut = np.asarray([row[0] for row in self.table], dtype=np.uint8)
        cout_lut = np.asarray([row[1] for row in self.table], dtype=np.uint8)
        sum_lut.setflags(write=False)
        cout_lut.setflags(write=False)
        object.__setattr__(self, "_sum_lut", sum_lut)
        object.__setattr__(self, "_cout_lut", cout_lut)

    # -- behavioural -------------------------------------------------------
    @property
    def sum_lut(self) -> np.ndarray:
        """Sum output for each of the 8 input rows, as a uint8 LUT."""
        return self._sum_lut

    @property
    def cout_lut(self) -> np.ndarray:
        """Carry output for each of the 8 input rows, as a uint8 LUT."""
        return self._cout_lut

    def evaluate(
        self, a: np.ndarray, b: np.ndarray, cin: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized evaluation on arrays of 0/1 values.

        Returns:
            ``(sum, cout)`` arrays with the broadcast shape of the inputs.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        cin = np.asarray(cin, dtype=np.int64)
        index = (a << 2) | (b << 1) | cin
        return self.sum_lut[index], self.cout_lut[index]

    # -- quality -----------------------------------------------------------
    def error_cases(self) -> List[Tuple[int, int, int]]:
        """Input triples ``(A, B, Cin)`` whose output differs from AccuFA."""
        reference = _TABLES["AccuFA"]
        return [
            _ROW_ORDER_LOOKUP[i]
            for i in range(8)
            if self.table[i] != reference[i]
        ]

    @property
    def n_error_cases(self) -> int:
        """Number of erroneous rows (the paper's '#Error Cases')."""
        return len(self.error_cases())

    def error_magnitudes(self) -> List[int]:
        """Signed value error ``approx - exact`` (as 2*Cout + Sum) per row."""
        reference = _TABLES["AccuFA"]
        return [
            (2 * self.table[i][1] + self.table[i][0])
            - (2 * reference[i][1] + reference[i][0])
            for i in range(8)
        ]

    # -- structural --------------------------------------------------------
    def netlist(self) -> Netlist:
        """Gate-level netlist of this adder (technology-mapped).

        The netlist's inputs are ``["a", "b", "cin"]`` and its outputs
        ``["sum", "cout"]``.  Each adder uses the hand-mapped minimal
        structure implied by its truth table (e.g. ``sum = XOR3``/
        ``cout = MAJ3`` for AccuFA, minority/inverter pairs for the
        IMPACT variants); :meth:`sop_netlist` gives the generic two-level
        synthesis result instead.
        """
        return _structural_fa(self.name)

    def sop_netlist(self) -> Netlist:
        """Generic two-level (Quine-McCluskey) synthesis of the table."""
        return _synthesize_fa(self.name)

    @property
    def area_ge(self) -> float:
        """Synthesized cell area in gate equivalents (our model)."""
        return self.netlist().area_ge

    @property
    def delay_ps(self) -> float:
        """Synthesized longest-path delay in picoseconds (our model)."""
        return self.netlist().delay_ps()


_ROW_ORDER_LOOKUP = {((a << 2) | (b << 1) | c): (a, b, c) for a, b, c in _ROW_ORDER}


@lru_cache(maxsize=None)
def _synthesize_fa(name: str) -> Netlist:
    spec_table = _TABLES[name]
    return synthesize_truth_table(
        name + "_sop",
        input_names=["a", "b", "cin"],
        output_tables={
            "sum": [row[0] for row in spec_table],
            "cout": [row[1] for row in spec_table],
        },
    )


@lru_cache(maxsize=None)
def _structural_fa(name: str) -> Netlist:
    """Hand technology-mapped netlists (minimal forms of each table)."""
    nl = Netlist(name, inputs=["a", "b", "cin"], outputs=["sum", "cout"])
    if name == "AccuFA":
        nl.add_gate("XOR3", ["a", "b", "cin"], "sum")
        nl.add_gate("MAJ3", ["a", "b", "cin"], "cout")
    elif name == "ApxFA1":
        # sum = cin AND (a XNOR b); cout = b OR (a AND cin)
        nl.add_gate("XNOR2", ["a", "b"], "eq")
        nl.add_gate("AND2", ["cin", "eq"], "sum")
        nl.add_gate("AND2", ["a", "cin"], "ac")
        nl.add_gate("OR2", ["b", "ac"], "cout")
    elif name == "ApxFA2":
        # sum = minority(a, b, cin); cout = NOT sum (= exact majority)
        nl.add_gate("MIN3", ["a", "b", "cin"], "sum")
        nl.add_gate("INV", ["sum"], "cout")
    elif name == "ApxFA3":
        # sum = NOT(b OR (a AND cin)) as one AOI21; cout = NOT sum
        nl.add_gate("AOI21", ["a", "cin", "b"], "sum")
        nl.add_gate("INV", ["sum"], "cout")
    elif name == "ApxFA4":
        # sum = (NOT a OR b) AND cin as AOI21 on inverted pins; cout = a
        nl.add_gate("INV", ["b"], "b_n")
        nl.add_gate("INV", ["cin"], "cin_n")
        nl.add_gate("AOI21", ["a", "b_n", "cin_n"], "sum")
        nl.add_gate("WIRE", ["a"], "cout")
    elif name == "ApxFA5":
        # Wire-only: route inputs straight to outputs; no logic cost.
        nl.add_gate("WIRE", ["b"], "sum")
        nl.add_gate("WIRE", ["a"], "cout")
    else:
        raise KeyError(f"no structural mapping for {name!r}")
    nl.validate()
    return nl


#: All full adders of Table III, keyed by name, in paper order.
FULL_ADDERS: Dict[str, FullAdderSpec] = {
    name: FullAdderSpec(name, table, _DESCRIPTIONS[name])
    for name, table in _TABLES.items()
}

#: Paper order of the adder names.
FULL_ADDER_NAMES: Tuple[str, ...] = tuple(_TABLES)


def full_adder(name: str) -> FullAdderSpec:
    """Look up a full-adder spec by name (case-sensitive, paper names)."""
    try:
        return FULL_ADDERS[name]
    except KeyError:
        known = ", ".join(FULL_ADDER_NAMES)
        raise KeyError(
            f"unknown full adder {name!r}; known adders: {known}"
        ) from None


def accurate_full_adder() -> FullAdderSpec:
    """The exact reference full adder (``AccuFA``)."""
    return FULL_ADDERS["AccuFA"]
