"""State-of-the-art approximate adders expressed as GeAr configurations.

The paper (Sec. 4.2) notes that "various configurations of GeAr adder
model directly translate to state-of-the-art approximate adders (for
instance, ACA-I [7], ACA-II [9], ETAII [8] and GDA [13])".  This module
provides those mappings, following Table 1 of the original GeAr paper
(Shafique et al., DAC 2015):

* **ACA-I** (Verma et al., "almost correct adder"): every result bit is
  computed from the preceding ``L - 1`` bits, i.e. ``GeAr(R=1, P=L-1)``.
* **ACA-II** (Kahng/Kang accuracy-configurable adder): overlapping
  sub-adders of width ``L`` advancing by ``L/2``, i.e.
  ``GeAr(R=L/2, P=L/2)``.
* **ETAII** (Zhu et al., error-tolerant adder II): block-partitioned
  adder where each block's carry is predicted from the previous block,
  structurally ``GeAr(R=X, P=X)`` for block size ``X``.
* **GDA** (Ye et al., gracefully-degrading adder): configurable carry
  selection per block; its fixed-prediction operating points map to
  ``GeAr(R=block, P=prediction)``.
"""

from __future__ import annotations

from typing import Dict

from .gear import GeArConfig

__all__ = ["aca_i", "aca_ii", "etaii", "gda", "known_adder_configs"]


def aca_i(n: int, l: int) -> GeArConfig:
    """ACA-I almost-correct adder of width ``n`` with lookahead ``l``.

    Args:
        n: Operand width.
        l: Sub-adder (speculation window) width of the original design.
    """
    return GeArConfig(n=n, r=1, p=l - 1)


def aca_ii(n: int, l: int) -> GeArConfig:
    """ACA-II accuracy-configurable adder with sub-adder width ``l``."""
    if l % 2:
        raise ValueError(f"ACA-II needs an even sub-adder width, got {l}")
    return GeArConfig(n=n, r=l // 2, p=l // 2)


def etaii(n: int, block: int) -> GeArConfig:
    """ETAII error-tolerant adder with block size ``block``."""
    return GeArConfig(n=n, r=block, p=block)


def gda(n: int, block: int, prediction: int) -> GeArConfig:
    """GDA operating point: ``block``-bit blocks, ``prediction``-bit carry
    prediction per block."""
    return GeArConfig(n=n, r=block, p=prediction)


def known_adder_configs(n: int = 16) -> Dict[str, GeArConfig]:
    """A representative set of published adders at width ``n``.

    Returns a name -> config mapping covering the four designs the paper
    lists, at their commonly evaluated operating points.
    """
    configs: Dict[str, GeArConfig] = {}
    if n >= 8:
        configs[f"ACA-I({n},{n // 4})"] = aca_i(n, n // 4)
        configs[f"ACA-II({n},{n // 2})"] = aca_ii(n, n // 2)
        configs[f"ETAII({n},{n // 4})"] = etaii(n, n // 4)
        configs[f"GDA({n},{n // 8},{n // 8})"] = gda(n, n // 8, n // 8)
    else:
        raise ValueError(f"width {n} too small for the published designs")
    return configs
