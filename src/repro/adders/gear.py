"""GeAr: the Generic Accuracy-configurable adder model (paper Sec. 4.2).

A ``GeAr(N, R, P)`` adder splits an N-bit addition across ``k`` L-bit
sub-adders operating in parallel, with ``L = R + P``:

* sub-adder 0 covers bits ``[0, L)`` and contributes all L result bits;
* sub-adder ``i`` (``i >= 1``) covers bits ``[i*R, i*R + L)``; its low
  ``P`` bits are *carry-prediction* bits (they overlap the previous
  sub-adder) and only its top ``R`` bits contribute to the result;
* the final carry (bit N) comes from the last sub-adder.

``k = (N - L) / R + 1`` sub-adders are required, so a configuration is
valid only when ``R`` divides ``N - L``.

An error occurs at sub-adder ``i`` exactly when the true carry into bit
``i*R`` is 1 *and* all P prediction bits are in propagate mode -- then the
missed carry would have rippled into the result bits.  The optional error
detection/correction circuitry of the paper (Fig. 3, blue) detects
``Cout(sub-adder i-1) = 1 AND prediction bits propagate`` and re-executes
the offending sub-adder with an injected carry; iterated to fixpoint this
recovers the exact sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["GeArConfig", "GeArAdder", "GEAR_EVAL_MODES"]

#: Evaluation engines for :class:`GeArAdder.add`: ``"auto"``/``"window"``
#: is the vectorized int64 window equation; ``"partsim"`` packs several
#: additions per uint64 word and evaluates every sub-adder window as a
#: masked word operation (:mod:`repro.datapath.partsim`).  Both are
#: bit-identical (proven via the ``gear`` oracle family).
GEAR_EVAL_MODES = ("auto", "window", "partsim")


def _as_int_array(x) -> np.ndarray:
    arr = np.asarray(x, dtype=np.int64)
    if np.any(arr < 0):
        raise ValueError("operands must be non-negative integers")
    return arr


@dataclass(frozen=True)
class GeArConfig:
    """Architectural parameters of a GeAr adder.

    Attributes:
        n: Operand width in bits.
        r: Number of resultant bits contributed by each sub-adder.
        p: Number of previous (carry-prediction) bits per sub-adder.
    """

    n: int
    r: int
    p: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"N must be >= 1, got {self.n}")
        if self.r < 1:
            raise ValueError(f"R must be >= 1, got {self.r}")
        if self.p < 0:
            raise ValueError(f"P must be >= 0, got {self.p}")
        if self.l > self.n:
            raise ValueError(
                f"sub-adder width L=R+P={self.l} exceeds N={self.n}"
            )
        if (self.n - self.l) % self.r != 0:
            raise ValueError(
                f"invalid GeAr config N={self.n}, R={self.r}, P={self.p}: "
                f"R must divide N - (R + P) = {self.n - self.l}"
            )

    @property
    def l(self) -> int:
        """Sub-adder width ``L = R + P``."""
        return self.r + self.p

    @property
    def k(self) -> int:
        """Number of sub-adders ``k = (N - L) / R + 1``."""
        return (self.n - self.l) // self.r + 1

    @property
    def is_exact(self) -> bool:
        """True when the configuration degenerates to a single full adder."""
        return self.k == 1

    def sub_adder_windows(self) -> List[Tuple[int, int]]:
        """``(start_bit, width)`` of each sub-adder's operand window."""
        return [(i * self.r, self.l) for i in range(self.k)]

    @property
    def name(self) -> str:
        return f"GeAr(N={self.n},R={self.r},P={self.p})"

    @classmethod
    def all_valid(cls, n: int, min_p: int = 1) -> List["GeArConfig"]:
        """Enumerate every valid approximate configuration for width ``n``.

        Only genuinely approximate configurations (``k >= 2``) are
        returned, with ``P >= min_p`` (the paper's Table IV sweeps
        ``P >= 1``).
        """
        configs = []
        for r in range(1, n):
            for p in range(min_p, n - r + 1):
                if (n - r - p) % r != 0:
                    continue
                cfg = cls(n, r, p)
                if cfg.k >= 2:
                    configs.append(cfg)
        return configs


class GeArAdder:
    """Behavioural model of a GeAr adder (vectorized over NumPy arrays).

    Example:
        >>> adder = GeArAdder(GeArConfig(n=12, r=4, p=4))
        >>> int(adder.add(0x0FF, 0x001))    # the bit-8 carry is missed
        0
        >>> int(adder.add_with_correction(0x0FF, 0x001)[0])
        256
    """

    def __init__(self, config: GeArConfig, eval_mode: str = "auto") -> None:
        if eval_mode not in GEAR_EVAL_MODES:
            raise ValueError(
                f"eval_mode must be one of {GEAR_EVAL_MODES}, "
                f"got {eval_mode!r}"
            )
        self.config = config
        self.eval_mode = eval_mode
        self._partsim_layout = None

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def width(self) -> int:
        return self.config.n

    def _operands(self, a, b) -> Tuple[np.ndarray, np.ndarray]:
        """Validated operands, masked to the architectural N bits.

        The hardware datapath only ever sees N operand wires; bits above
        N cannot exist, and negative values have no encoding.  The
        behavioural model therefore rejects negatives (the silent
        arithmetic right-shift they would take through the window
        extraction corrupts every sub-adder) and truncates operands to
        N bits exactly like :class:`~repro.adders.ripple`.
        """
        mask = (1 << self.config.n) - 1
        return _as_int_array(a) & mask, _as_int_array(b) & mask

    # ------------------------------------------------------------------
    # approximate addition
    # ------------------------------------------------------------------
    def _window_sums(self, a: np.ndarray, b: np.ndarray) -> List[np.ndarray]:
        """Raw (L+1)-bit sums of every sub-adder window, carry-in = 0."""
        cfg = self.config
        mask_l = (1 << cfg.l) - 1
        return [
            ((a >> start) & mask_l) + ((b >> start) & mask_l)
            for start, _ in cfg.sub_adder_windows()
        ]

    def add(self, a, b) -> np.ndarray:
        """Approximate ``a + b``; result has ``N + 1`` bits.

        Operands must be non-negative and are masked to ``N`` bits.
        """
        a, b = self._operands(a, b)
        if self.eval_mode == "partsim":
            return self._add_partsim(a, b)
        cfg = self.config
        sums = self._window_sums(a, b)
        mask_l = (1 << cfg.l) - 1
        mask_r = (1 << cfg.r) - 1
        result = sums[0] & mask_l
        for i in range(1, cfg.k):
            start = i * cfg.r
            result = result | (((sums[i] >> cfg.p) & mask_r) << (start + cfg.p))
        # Final carry comes from the last sub-adder's window overflow.
        result = result | (((sums[-1] >> cfg.l) & 1) << cfg.n)
        return result

    def _add_partsim(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Packed evaluation: all sub-adder windows as word operations.

        Several operand pairs share one uint64 word; each sub-adder
        window is extracted with a shift plus a partition mask and
        summed with its carries confined to the field -- the dropped
        inter-block carry of the GeAr approximation is exactly the
        partition point between windows.
        """
        from ..datapath.partsim import PartitionLayout, packed_window_add

        cfg = self.config
        if self._partsim_layout is None:
            self._partsim_layout = PartitionLayout(cfg.n + 1)
        layout = self._partsim_layout
        shape = np.broadcast_shapes(a.shape, b.shape)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        wa = layout.pack(np.broadcast_to(a, shape).ravel())
        wb = layout.pack(np.broadcast_to(b, shape).ravel())
        windows = [
            (start, width, 0 if i == 0 else cfg.p, width if i == 0 else cfg.r)
            for i, (start, width) in enumerate(cfg.sub_adder_windows())
        ]
        out = packed_window_add(layout, wa, wb, windows, cfg.n)
        return layout.unpack(out, count).reshape(shape)

    # ------------------------------------------------------------------
    # error detection and correction
    # ------------------------------------------------------------------
    def detect_errors(self, a, b) -> np.ndarray:
        """Per-sub-adder error flags, shape ``(..., k - 1)``.

        Flag ``i`` (for sub-adder ``i + 1``) is raised when the previous
        sub-adder's carry-out is 1 and all P prediction bits of sub-adder
        ``i + 1`` are propagating -- the paper's ``Co1 AND Cp2`` condition.
        Detection is *local* (first-pass); cascaded errors surface in
        later correction iterations.  Operands must be non-negative and
        are masked to ``N`` bits.
        """
        a, b = self._operands(a, b)
        flags = self._detect_from_windows(a, b, self._window_sums(a, b))
        return np.stack(flags, axis=-1) if flags else np.zeros(a.shape + (0,), bool)

    def _detect_from_windows(
        self, a: np.ndarray, b: np.ndarray, sums: List[np.ndarray]
    ) -> List[np.ndarray]:
        cfg = self.config
        mask_p = (1 << cfg.p) - 1
        flags = []
        for i in range(1, cfg.k):
            start = i * cfg.r
            prev_cout = (sums[i - 1] >> cfg.l) & 1
            if cfg.p:
                propagate = (((a >> start) ^ (b >> start)) & mask_p) == mask_p
            else:
                propagate = np.ones_like(prev_cout, dtype=bool)
            flags.append((prev_cout == 1) & propagate)
        return flags

    def add_with_correction(
        self, a, b, max_iterations: int | None = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate addition with iterative error recovery.

        Each round detects sub-adders whose carry prediction failed and
        re-executes them with an injected carry (the paper forces the
        LSBs of the offending sub-adder's inputs to 1, which is
        equivalent to adding 1 at the window base when the prediction
        bits propagate).  Detection is simultaneous across sub-adders
        from the state at the *start* of the round -- Fig. 3's parallel
        detection logic -- so a missed carry that cascades through ``m``
        sub-adder boundaries genuinely costs ``m`` rounds, one per
        boundary.  (An earlier revision applied injections sequentially
        low-to-high *within* a round, which let any cascade collapse
        into a single reported round: ``iterations`` never exceeded 1
        and every partial-correction mode of the configurable adder was
        silently exact.)  With unlimited rounds the result is exact.

        Args:
            a: First operand (array-like of non-negative ints, masked to
                ``N`` bits).
            b: Second operand.
            max_iterations: Cap on correction rounds; ``None`` runs to
                fixpoint (at most ``k - 1`` rounds are ever needed).

        Returns:
            ``(sum, iterations)`` where ``iterations`` is the per-element
            number of correction rounds actually applied.
        """
        a, b = self._operands(a, b)
        cfg = self.config
        if max_iterations is None:
            # A missed carry can cascade through at most the k-1
            # downstream sub-adders, one per round, so the fixpoint is
            # always reached within k-1 rounds -- the documented cap.
            max_iterations = cfg.k - 1
        sums = self._window_sums(a, b)
        shape = np.broadcast_shapes(a.shape, b.shape)
        # Track per-window injected carries (0/1) as they stabilize.
        injected = [np.zeros(shape, dtype=np.int64) for _ in range(cfg.k)]
        iterations = np.zeros(shape, dtype=np.int64)
        mask_p = (1 << cfg.p) - 1
        propagates = []
        for i in range(1, cfg.k):
            start = i * cfg.r
            if cfg.p:
                propagates.append(
                    (((a >> start) ^ (b >> start)) & mask_p) == mask_p
                )
            else:
                propagates.append(np.ones(shape, dtype=bool))
        for _ in range(max_iterations):
            # Snapshot every carry-out before applying any injection:
            # all detectors observe the same round-start state.
            couts = [(sums[i] >> cfg.l) & 1 for i in range(cfg.k - 1)]
            changed = np.zeros(shape, dtype=bool)
            for i in range(1, cfg.k):
                want = ((couts[i - 1] == 1) & propagates[i - 1]).astype(
                    np.int64
                )
                flip = want != injected[i]
                if np.any(flip):
                    delta = want - injected[i]
                    sums[i] = sums[i] + np.where(flip, delta, 0)
                    injected[i] = want
                    changed |= flip
            if not np.any(changed):
                break
            iterations = iterations + changed.astype(np.int64)
        return self._assemble(sums), iterations

    def _assemble(self, sums: List[np.ndarray]) -> np.ndarray:
        cfg = self.config
        mask_l = (1 << cfg.l) - 1
        mask_r = (1 << cfg.r) - 1
        result = sums[0] & mask_l
        for i in range(1, cfg.k):
            start = i * cfg.r
            result = result | (((sums[i] >> cfg.p) & mask_r) << (start + cfg.p))
        result = result | (((sums[-1] >> cfg.l) & 1) << cfg.n)
        return result

    # ------------------------------------------------------------------
    # physical models
    # ------------------------------------------------------------------
    @property
    def lut_count(self) -> int:
        """FPGA resource model: one 6-LUT + carry per sub-adder bit.

        A Virtex-6 carry-chain adder consumes roughly one LUT per bit, so
        a GeAr adder with k sub-adders of L bits needs ``k * L`` LUTs.
        This is the monotone area proxy used for Table IV / Fig. 4.
        """
        return self.config.k * self.config.l

    @property
    def area_ge(self) -> float:
        """ASIC area model: one accurate full adder per sub-adder bit."""
        from .fulladder import FULL_ADDERS

        return FULL_ADDERS["AccuFA"].area_ge * self.config.k * self.config.l

    @property
    def delay_ps(self) -> float:
        """Critical path: one L-bit ripple (sub-adders run in parallel)."""
        from .fulladder import FULL_ADDERS

        return FULL_ADDERS["AccuFA"].delay_ps * self.config.l

    def __repr__(self) -> str:
        return f"GeArAdder({self.config.name})"
