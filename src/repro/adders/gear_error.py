"""Error-probability models for GeAr adders (paper Sec. 4.2).

Three complementary models are provided, from the paper's analytic
formula to ground truth:

1. :func:`paper_error_probability` -- the paper's inclusion-exclusion
   model over ``R x (k-1)`` error-generating events ``Z_i``.  Event
   ``Z_m`` of sub-adder ``s`` is *"a carry is generated at the m-th bit
   below sub-adder s's window and propagates through the remaining
   ``m - 1`` bits and all ``P`` prediction bits"*.  With uniform inputs
   each bit pair generates with probability 1/4 and propagates with
   probability 1/2, so ``rho[Z_m] = (1/4) * (1/2)**(m - 1 + P)``.
   Joint probabilities follow from per-bit-position independence
   (conflicting requirements zero the term), and the union is expanded
   by inclusion-exclusion exactly as printed in the paper.

2. :func:`exact_error_probability` -- an exact dynamic program over the
   i.i.d. generate/propagate/kill description of the operands.  The
   approximate sum differs from the exact one iff for some sub-adder
   ``s >= 1`` the *true* carry into bit ``s*R`` is 1 and all ``P``
   prediction bits propagate; the DP tracks the running carry and the
   oldest unresolved prediction watch, giving ``P[error]`` in
   ``O(N * P)`` states with no approximation.

3. :func:`monte_carlo_error_rate` / :func:`exhaustive_error_rate` --
   simulation-based ground truth against the behavioural model.

A result of this reproduction (see ``bench_error_model_ablation``): the
paper's event family is *complete* -- every erroneous operand pair
triggers at least one ``Z`` event (the generate feeding a missed carry
always falls inside the fresh R-bit window of some sub-adder, with the
required propagate run), and every ``Z`` event produces an error -- so
the inclusion-exclusion model is exact, matching the DP and exhaustive
enumeration to double precision.  Its cost, however, is exponential in
``R x (k-1)`` terms, whereas the DP computes the same number in
``O(N * P)`` states; truncating the expansion at odd/even order gives
the usual Bonferroni upper/lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .gear import GeArAdder, GeArConfig

__all__ = [
    "ErrorEvent",
    "error_events",
    "paper_error_probability",
    "exact_error_probability",
    "monte_carlo_error_rate",
    "monte_carlo_error_rate_sharded",
    "exhaustive_error_rate",
    "accuracy_percent",
]

#: Per-bit-position probabilities under i.i.d. uniform operand bits.
P_GENERATE = 0.25  # a = b = 1
P_PROPAGATE = 0.5  # a != b
P_KILL = 0.25  # a = b = 0


@dataclass(frozen=True)
class ErrorEvent:
    """One error-generating event ``Z`` of the paper's model.

    Attributes:
        sub_adder: Index of the affected sub-adder (``1 .. k-1``).
        generate_bit: Bit position that must generate a carry.
        propagate_bits: Bit positions that must all propagate (the bits
            between the generate position and the window, plus the P
            prediction bits).
    """

    sub_adder: int
    generate_bit: int
    propagate_bits: Tuple[int, ...]

    @property
    def probability(self) -> float:
        return P_GENERATE * P_PROPAGATE ** len(self.propagate_bits)


def error_events(config: GeArConfig) -> List[ErrorEvent]:
    """Enumerate the ``R x (k-1)`` error-generating events of the model."""
    events: List[ErrorEvent] = []
    for s in range(1, config.k):
        window_start = s * config.r
        for m in range(1, config.r + 1):
            gen = window_start - m
            props = tuple(range(gen + 1, window_start + config.p))
            events.append(ErrorEvent(s, gen, props))
    return events


def _joint_probability(events: Sequence[ErrorEvent]) -> float:
    """P[intersection] under per-bit independence; 0 on conflicts."""
    requirement: Dict[int, str] = {}
    for event in events:
        for bit in event.propagate_bits:
            if requirement.get(bit, "p") != "p":
                return 0.0
            requirement[bit] = "p"
        if requirement.get(event.generate_bit, "g") != "g":
            return 0.0
        requirement[event.generate_bit] = "g"
    prob = 1.0
    for kind in requirement.values():
        prob *= P_GENERATE if kind == "g" else P_PROPAGATE
    return prob


def paper_error_probability(
    config: GeArConfig, max_order: int | None = None
) -> float:
    """The paper's inclusion-exclusion error probability.

    Args:
        config: GeAr architecture.
        max_order: Optional truncation of the inclusion-exclusion depth
            (``None`` expands all ``2**(R*(k-1))`` terms; required events
            beyond ~20 would be intractable, so a cap is enforced).

    Returns:
        ``rho[Error]`` -- the modelled probability that the approximate
        sum differs from the exact sum for uniform random operands.
    """
    events = error_events(config)
    n_events = len(events)
    if max_order is None:
        if n_events > 22:
            raise ValueError(
                f"{n_events} events: full inclusion-exclusion intractable; "
                "pass max_order to truncate"
            )
        max_order = n_events
    total = 0.0
    for order in range(1, min(max_order, n_events) + 1):
        sign = 1.0 if order % 2 == 1 else -1.0
        layer = 0.0
        for subset in combinations(events, order):
            layer += _joint_probability(subset)
        total += sign * layer
    return total


def exact_error_probability(config: GeArConfig) -> float:
    """Exact ``P[approx != exact]`` for i.i.d. uniform operand bits.

    Dynamic program over bit positions.  State:

    * ``carry`` -- the exact ripple carry into the current position;
    * ``watch`` -- remaining propagate count of the *oldest* live
      prediction watch (``None`` if no watch is live).  A watch starts
      when a sub-adder boundary is crossed while ``carry == 1``; it
      completes (=> output error) after ``P`` consecutive propagates and
      dies at the first non-propagating position.  Only the oldest watch
      matters: younger watches require strictly more propagates and all
      watches die together.

    Error probability is the mass absorbed by the error flag.
    """
    boundaries = {s * config.r for s in range(1, config.k)}
    # state: (carry, watch_remaining or -1) -> probability, plus absorbed
    # error mass.
    states: Dict[Tuple[int, int], float] = {(0, -1): 1.0}
    error_mass = 0.0
    for position in range(config.n):
        if position in boundaries:
            moved: Dict[Tuple[int, int], float] = {}
            for (carry, watch), prob in states.items():
                if carry == 1 and watch == -1:
                    watch = config.p  # new watch; oldest by construction
                if watch == 0:
                    error_mass += prob  # P == 0: immediate error
                    continue
                moved[(carry, watch)] = moved.get((carry, watch), 0.0) + prob
            states = moved
        nxt: Dict[Tuple[int, int], float] = {}
        for (carry, watch), prob in states.items():
            for p_case, new_carry, keeps_watch in (
                (P_GENERATE, 1, False),
                (P_PROPAGATE, carry, True),
                (P_KILL, 0, False),
            ):
                mass = prob * p_case
                if watch == -1 or not keeps_watch:
                    new_watch = -1
                else:
                    new_watch = watch - 1
                if new_watch == 0:
                    error_mass += mass
                    continue
                key = (new_carry, new_watch)
                nxt[key] = nxt.get(key, 0.0) + mass
        states = nxt
    return error_mass


def monte_carlo_error_rate(
    config: GeArConfig, n_samples: int = 200_000, seed: int = 0
) -> float:
    """Simulated error rate of the behavioural GeAr model.

    Fully determined by ``(config, n_samples, seed)`` -- rerunning with
    the same arguments reproduces the estimate bit for bit.
    """
    rng = np.random.default_rng(seed)
    hi = 1 << config.n
    a = rng.integers(0, hi, size=n_samples, dtype=np.int64)
    b = rng.integers(0, hi, size=n_samples, dtype=np.int64)
    adder = GeArAdder(config)
    return float(np.mean(adder.add(a, b) != (a + b)))


def monte_carlo_error_rate_sharded(
    config: GeArConfig,
    n_samples: int = 200_000,
    seed: int = 0,
    chunk_samples: int = 50_000,
    n_workers: int = 1,
    cache_dir: str | None = None,
) -> float:
    """Sharded Monte Carlo error rate via the campaign engine.

    The sample budget is split into fixed ``chunk_samples``-sized shards
    (the split depends only on ``n_samples``/``chunk_samples``, never on
    ``n_workers``), each shard's seed is derived from the shard identity,
    and shards run through :func:`repro.campaign.run_campaign` -- so the
    estimate is bit-identical for any worker count, cacheable, and an
    interrupted sweep resumes from the shards already on disk.

    Note: the sharded estimate differs numerically from the
    single-stream :func:`monte_carlo_error_rate` (different RNG streams)
    while remaining statistically equivalent and exactly reproducible.

    Args:
        config: GeAr architecture.
        n_samples: Total Monte Carlo samples across all shards.
        seed: Base seed; shard seeds derive from it deterministically.
        chunk_samples: Samples per shard (fixes the shard layout).
        n_workers: Campaign worker processes.
        cache_dir: Optional campaign result cache.
    """
    from ..campaign import CampaignTask, derive_seed, run_campaign

    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if chunk_samples < 1:
        raise ValueError(f"chunk_samples must be >= 1, got {chunk_samples}")
    tasks = []
    remaining = n_samples
    index = 0
    while remaining > 0:
        size = min(chunk_samples, remaining)
        tasks.append(
            CampaignTask(
                kind="gear_mc_chunk",
                params={
                    "n": config.n,
                    "r": config.r,
                    "p": config.p,
                    "n_samples": size,
                },
                seed=derive_seed(
                    seed, "gear_mc_chunk", config.n, config.r, config.p,
                    index, size,
                ),
            )
        )
        remaining -= size
        index += 1
    result = run_campaign(tasks, n_workers=n_workers, cache_dir=cache_dir)
    errors = sum(r["error_rate"] * r["n_samples"] for r in result.results)
    return errors / n_samples


def exhaustive_error_rate(
    config: GeArConfig, chunk_bits: int = 22
) -> float:
    """Exact error rate by enumerating all ``4**N`` operand pairs.

    Feasible up to roughly N = 13; pairs are processed in chunks to
    bound memory.

    Args:
        config: GeAr architecture (``4**N`` must be enumerable).
        chunk_bits: Log2 of the chunk size used for enumeration.
    """
    if 2 * config.n > 30:
        raise ValueError(
            f"4**{config.n} pairs is too many to enumerate; "
            "use monte_carlo_error_rate or exact_error_probability"
        )
    adder = GeArAdder(config)
    total_pairs = 1 << (2 * config.n)
    chunk = 1 << min(chunk_bits, 2 * config.n)
    mask = (1 << config.n) - 1
    errors = 0
    for base in range(0, total_pairs, chunk):
        index = np.arange(base, min(base + chunk, total_pairs), dtype=np.int64)
        a = index & mask
        b = index >> config.n
        errors += int(np.count_nonzero(adder.add(a, b) != (a + b)))
    return errors / total_pairs


def accuracy_percent(config: GeArConfig, model: str = "exact") -> float:
    """Percentage accuracy ``100 * (1 - P[error])`` (paper Table IV).

    Args:
        config: GeAr architecture.
        model: ``"exact"`` (DP), ``"paper"`` (inclusion-exclusion) or
            ``"monte_carlo"``.
    """
    if model == "exact":
        p_err = exact_error_probability(config)
    elif model == "paper":
        p_err = paper_error_probability(config)
    elif model == "monte_carlo":
        p_err = monte_carlo_error_rate(config)
    else:
        raise ValueError(f"unknown model {model!r}")
    return 100.0 * (1.0 - p_err)
