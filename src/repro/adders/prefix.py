"""Parallel-prefix (Kogge-Stone) adders: exact and speculative.

The paper's library targets "low-power and high-performance"
components; on the performance axis the relevant exact baseline is not
the ripple adder but a logarithmic-depth parallel-prefix adder.  This
module provides:

* :func:`build_kogge_stone_netlist` -- a gate-level Kogge-Stone adder
  (generate/propagate preprocessing, log2(N) combine levels, sum
  postprocessing), the delay yardstick for the substrate;
* :class:`SpeculativePrefixAdder` -- a prefix adder whose carry tree is
  *truncated*: the carry into bit ``i`` considers only the previous
  ``lookahead`` positions (Verma et al.'s almost-correct-adder idea,
  ACA-I [7]).  This is provably the same function as
  ``GeAr(N, R=1, P=lookahead)``, which the test suite exploits as an
  independent cross-validation of both models.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..logic.netlist import Netlist
from .gear import GeArConfig

__all__ = ["build_kogge_stone_netlist", "SpeculativePrefixAdder"]


def build_kogge_stone_netlist(width: int) -> Netlist:
    """Gate-level Kogge-Stone adder of the given width.

    Interface matches :func:`repro.adders.netlist_builder.
    build_ripple_adder_netlist`: inputs ``a*``, ``b*``, ``cin``; outputs
    ``s*`` and ``cout``.

    Args:
        width: Operand width (>= 1).

    Returns:
        A validated netlist with logarithmic carry depth.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    inputs = (
        [f"a{i}" for i in range(width)]
        + [f"b{i}" for i in range(width)]
        + ["cin"]
    )
    outputs = [f"s{i}" for i in range(width)] + ["cout"]
    netlist = Netlist(f"ks{width}", inputs=inputs, outputs=outputs)

    # Preprocess: p_i = a_i ^ b_i, g_i = a_i & b_i.
    for i in range(width):
        netlist.add_gate("XOR2", [f"a{i}", f"b{i}"], f"p0_{i}")
        netlist.add_gate("AND2", [f"a{i}", f"b{i}"], f"g0_{i}")

    # Fold cin into position 0: g'_0 = g_0 | (p_0 & cin).
    netlist.add_gate("AND2", [f"p0_0", "cin"], "pc0")
    netlist.add_gate("OR2", [f"g0_0", "pc0"], "gc0_0")

    def g_net(level: int, i: int) -> str:
        if level == 0:
            return "gc0_0" if i == 0 else f"g0_{i}"
        return f"g{level}_{i}"

    def p_net(level: int, i: int) -> str:
        return f"p{level}_{i}" if level else f"p0_{i}"

    # Kogge-Stone combine: at level l, span 2**(l-1).
    level = 0
    span = 1
    while span < width:
        level += 1
        for i in range(width):
            if i >= span:
                lo = i - span
                netlist.add_gate(
                    "AND2", [p_net(level - 1, i), g_net(level - 1, lo)],
                    f"t{level}_{i}",
                )
                netlist.add_gate(
                    "OR2", [g_net(level - 1, i), f"t{level}_{i}"],
                    f"g{level}_{i}",
                )
                netlist.add_gate(
                    "AND2", [p_net(level - 1, i), p_net(level - 1, lo)],
                    f"p{level}_{i}",
                )
            else:
                netlist.add_gate("WIRE", [g_net(level - 1, i)], f"g{level}_{i}")
                netlist.add_gate("WIRE", [p_net(level - 1, i)], f"p{level}_{i}")
        span <<= 1

    # Postprocess: s_i = p_i ^ c_i with c_0 = cin, c_{i+1} = G_i.
    netlist.add_gate("XOR2", ["p0_0", "cin"], "s0")
    for i in range(1, width):
        netlist.add_gate("XOR2", [f"p0_{i}", g_net(level, i - 1)], f"s{i}")
    netlist.add_gate("WIRE", [g_net(level, width - 1)], "cout")
    netlist.validate()
    return netlist


class SpeculativePrefixAdder:
    """Prefix adder with a truncated (speculative) carry window.

    The carry into bit ``i`` is computed only from positions
    ``[max(0, i - lookahead), i)`` with an assumed zero carry into the
    window -- the ACA-I speculation.  Functionally identical to
    ``GeAr(N, R=1, P=lookahead)``.

    Example:
        >>> adder = SpeculativePrefixAdder(16, lookahead=4)
        >>> int(adder.add(0x00F0, 0x0010))   # carry chain of length 5
        256
    """

    def __init__(self, width: int, lookahead: int) -> None:
        if width < 2:
            raise ValueError(f"width must be >= 2, got {width}")
        if not 1 <= lookahead < width:
            raise ValueError(
                f"lookahead must be in [1, {width - 1}], got {lookahead}"
            )
        self.width = width
        self.lookahead = lookahead

    @property
    def name(self) -> str:
        return f"SpecPrefix{self.width}[L={self.lookahead}]"

    def equivalent_gear_config(self) -> GeArConfig:
        """The GeAr configuration computing the same function."""
        return GeArConfig(n=self.width, r=1, p=self.lookahead)

    def add(self, a, b) -> np.ndarray:
        """Speculative addition; result has ``width + 1`` bits."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        mask_all = (1 << self.width) - 1
        a &= mask_all
        b &= mask_all
        shape = np.broadcast_shapes(a.shape, b.shape)
        result = ((a ^ b) & 1).astype(np.int64)  # bit 0: no carry-in
        for i in range(1, self.width + 1):
            if i == self.width:
                # The carry-out reuses the top sum window (one extra bit
                # of speculation), matching the GeAr top sub-adder.
                lo = max(0, self.width - 1 - self.lookahead)
            else:
                lo = max(0, i - self.lookahead)
            window_mask = (1 << (i - lo)) - 1
            window_sum = ((a >> lo) & window_mask) + ((b >> lo) & window_mask)
            carry = (window_sum >> (i - lo)) & 1
            if i < self.width:
                bit = ((a >> i) ^ (b >> i) ^ carry) & 1
                result = result | (bit << i)
            else:
                result = result | (carry << self.width)
        return np.broadcast_to(result, shape) if result.shape != shape else result

    @property
    def delay_levels(self) -> int:
        """Carry-tree depth: log2 of the speculation window (+pre/post)."""
        return 2 + max(1, int(np.ceil(np.log2(self.lookahead))))

    def __repr__(self) -> str:
        return f"SpeculativePrefixAdder(width={self.width}, lookahead={self.lookahead})"
