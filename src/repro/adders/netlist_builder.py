"""Structural gate-level netlists for multi-bit adders and subtractors.

Composes the 1-bit cell netlists of Table III into complete N-bit
ripple-carry adder netlists, exactly as the lpACLib VHDL does.  This
closes the loop between the behavioural models (NumPy LUT evaluation)
and the gate-level substrate: the same adder can be simulated at the
netlist level, power-estimated from real toggle counts, LUT-mapped, and
cross-checked bit-for-bit against :class:`~repro.adders.ripple.
ApproximateRippleAdder`.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..logic.netlist import Netlist
from .fulladder import FullAdderSpec, full_adder
from .ripple import ApproximateRippleAdder

__all__ = [
    "build_ripple_adder_netlist",
    "build_subtractor_netlist",
    "evaluate_adder_netlist",
]


def _instantiate_fa(
    netlist: Netlist,
    spec: FullAdderSpec,
    a_net: str,
    b_net: str,
    cin_net: str,
    sum_net: str,
    cout_net: str,
    prefix: str,
) -> None:
    """Inline one full-adder cell netlist under a unique net prefix."""
    cell = spec.netlist()
    rename: Dict[str, str] = {
        "a": a_net,
        "b": b_net,
        "cin": cin_net,
        "sum": sum_net,
        "cout": cout_net,
        "GND": "GND",
        "VDD": "VDD",
    }

    def net_of(name: str) -> str:
        return rename.get(name, f"{prefix}_{name}")

    for gate in cell.gates:
        netlist.add_gate(
            gate.cell.name,
            [net_of(n) for n in gate.inputs],
            net_of(gate.output),
        )


def build_ripple_adder_netlist(adder: ApproximateRippleAdder) -> Netlist:
    """Structural netlist of an (approximate) ripple-carry adder.

    Inputs are ``a0..a{W-1}``, ``b0..b{W-1}`` and ``cin``; outputs are
    ``s0..s{W-1}`` and ``cout`` (the W+1-bit result), with the per-bit
    cell choice taken from the behavioural adder's configuration.

    Args:
        adder: The behavioural adder whose structure to replicate.

    Returns:
        A validated :class:`~repro.logic.netlist.Netlist`.
    """
    width = adder.width
    inputs = (
        [f"a{i}" for i in range(width)]
        + [f"b{i}" for i in range(width)]
        + ["cin"]
    )
    outputs = [f"s{i}" for i in range(width)] + ["cout"]
    netlist = Netlist(f"rca{width}", inputs=inputs, outputs=outputs)
    carry = "cin"
    for bit in range(width):
        spec = adder.cell_at(bit)
        next_carry = "cout" if bit == width - 1 else f"c{bit + 1}"
        _instantiate_fa(
            netlist,
            spec,
            a_net=f"a{bit}",
            b_net=f"b{bit}",
            cin_net=carry,
            sum_net=f"s{bit}",
            cout_net=next_carry,
            prefix=f"fa{bit}",
        )
        carry = next_carry
    netlist.validate()
    return netlist


def build_subtractor_netlist(adder: ApproximateRippleAdder) -> Netlist:
    """Structural two's-complement subtractor: ``a + ~b + 1``.

    Same interface as :func:`build_ripple_adder_netlist` minus the
    ``cin`` input (hard-wired to 1); ``b`` is inverted bitwise by an INV
    rank in front of the adder, exactly as the SAD datapath does.
    """
    width = adder.width
    inputs = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    outputs = [f"s{i}" for i in range(width)] + ["cout"]
    netlist = Netlist(f"sub{width}", inputs=inputs, outputs=outputs)
    for bit in range(width):
        netlist.add_gate("INV", [f"b{bit}"], f"bn{bit}")
    carry = "VDD"
    for bit in range(width):
        spec = adder.cell_at(bit)
        next_carry = "cout" if bit == width - 1 else f"c{bit + 1}"
        _instantiate_fa(
            netlist,
            spec,
            a_net=f"a{bit}",
            b_net=f"bn{bit}",
            cin_net=carry,
            sum_net=f"s{bit}",
            cout_net=next_carry,
            prefix=f"fa{bit}",
        )
        carry = next_carry
    netlist.validate()
    return netlist


def evaluate_adder_netlist(
    netlist: Netlist, a, b, cin=0, eval_mode: str | None = None
) -> np.ndarray:
    """Drive an adder/subtractor netlist with integer operands.

    Args:
        netlist: Netlist from one of the builders above.
        a: First operand array (non-negative ints).
        b: Second operand array.
        cin: Carry-in, a scalar or a per-element array of 0/1 values
            (the carry-in port is a primary input, so conformance sweeps
            drive it as a full operand); pass ``None`` for subtractor
            netlists (which have no ``cin`` port).
        eval_mode: Gate-simulation engine -- ``"bitsim"`` (64-lane
            packed words, the default) or ``"scalar"`` (per-gate
            reference walk); see :mod:`repro.logic.bitsim`.

    Returns:
        Integer results assembled from ``s*``/``cout``
        (``width + 1``-bit values).
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    width = sum(1 for net in netlist.inputs if net.startswith("a"))
    stimuli: Dict[str, np.ndarray] = {}
    for bit in range(width):
        stimuli[f"a{bit}"] = ((a >> bit) & 1).astype(np.uint8)
        stimuli[f"b{bit}"] = ((b >> bit) & 1).astype(np.uint8)
    if "cin" in netlist.inputs:
        carry = np.asarray(0 if cin is None else cin, dtype=np.int64)
        if np.any((carry != 0) & (carry != 1)):
            raise ValueError("cin values must be 0 or 1")
        stimuli["cin"] = np.broadcast_to(
            carry.astype(np.uint8),
            np.broadcast_shapes(a.shape, b.shape, carry.shape),
        )
    out = netlist.evaluate(stimuli, eval_mode=eval_mode)
    total = np.zeros(np.broadcast_shapes(a.shape, b.shape), dtype=np.int64)
    for bit in range(width):
        total |= out[f"s{bit}"].astype(np.int64) << bit
    total |= out["cout"].astype(np.int64) << width
    return total
