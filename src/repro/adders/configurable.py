"""Accuracy-configurable adder with runtime modes (paper Sec. 4.2 / 6).

"In case of adaptive systems, where an accelerator is required to
operate sometimes in approximate mode and sometimes in accurate mode, or
need to adaptively change the level of approximation, usage of
configurable adder/multiplier blocks is required.  A configuration word
can then set the control bits of different approximate logic blocks."

:class:`ConfigurableGeArAdder` realizes that for GeAr: the configuration
word selects how many error-correction iterations the (optional)
detection/recovery circuitry of Fig. 3 runs per addition.  Mode 0 is the
raw approximate adder (1 cycle); mode ``m`` runs up to ``m`` correction
iterations (each costing a cycle and correction energy); mode ``k-1``
is exact.  :meth:`characterize_modes` produces the per-mode
(quality, latency, energy) records the approximation manager consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .gear import GeArAdder, GeArConfig

__all__ = ["ModeCharacterization", "ConfigurableGeArAdder"]


@dataclass(frozen=True)
class ModeCharacterization:
    """Measured behaviour of one accuracy mode.

    Attributes:
        mode: Maximum correction iterations allowed (0 = raw).
        error_rate: Fraction of additions still erroneous in this mode.
        mean_error_distance: Mean |error| in this mode.
        mean_cycles: Average cycles per addition (1 + actual iterations).
        relative_energy: Energy per addition relative to mode 0
            (each correction iteration re-fires the affected sub-adder).
    """

    mode: int
    error_rate: float
    mean_error_distance: float
    mean_cycles: float
    relative_energy: float


class ConfigurableGeArAdder:
    """GeAr adder with a runtime accuracy-mode configuration word.

    Example:
        >>> adder = ConfigurableGeArAdder(GeArConfig(n=12, r=4, p=4))
        >>> adder.set_mode(0)
        >>> int(adder.add(0x0FF, 0x001))    # raw approximate
        0
        >>> adder.set_mode(adder.n_modes - 1)
        >>> int(adder.add(0x0FF, 0x001))    # fully corrected
        256
    """

    def __init__(self, config: GeArConfig) -> None:
        self._adder = GeArAdder(config)
        self._mode = 0

    @property
    def config(self) -> GeArConfig:
        return self._adder.config

    @property
    def n_modes(self) -> int:
        """Modes 0 .. k-1; mode k-1 guarantees the exact sum."""
        return self._adder.config.k

    @property
    def mode(self) -> int:
        return self._mode

    def set_mode(self, mode: int) -> None:
        """Write the configuration word (0 = raw, k-1 = exact)."""
        if not 0 <= mode < self.n_modes:
            raise ValueError(
                f"mode must be in [0, {self.n_modes - 1}], got {mode}"
            )
        self._mode = mode

    @property
    def name(self) -> str:
        return f"Cfg{self._adder.name}@mode{self._mode}"

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def add(self, a, b) -> np.ndarray:
        """Add in the current mode."""
        result, _ = self.add_with_stats(a, b)
        return result

    def add_with_stats(self, a, b) -> Tuple[np.ndarray, np.ndarray]:
        """Add in the current mode, returning per-element cycle counts."""
        if self._mode == 0:
            a_arr = np.asarray(a, dtype=np.int64)
            b_arr = np.asarray(b, dtype=np.int64)
            shape = np.broadcast_shapes(a_arr.shape, b_arr.shape)
            return self._adder.add(a, b), np.ones(shape, dtype=np.int64)
        result, iterations = self._adder.add_with_correction(
            a, b, max_iterations=self._mode
        )
        return result, iterations + 1

    # ------------------------------------------------------------------
    # characterization
    # ------------------------------------------------------------------
    def characterize_modes(
        self, n_samples: int = 50_000, seed: int = 0
    ) -> List[ModeCharacterization]:
        """Quality/latency/energy of every mode on uniform operands.

        Energy model: one base addition fires all ``k`` sub-adders; each
        correction iteration re-fires at most ``k - 1`` sub-adders, so
        ``relative_energy = 1 + mean_iterations * (k - 1) / k``.
        """
        rng = np.random.default_rng(seed)
        hi = 1 << self.config.n
        a = rng.integers(0, hi, n_samples, dtype=np.int64)
        b = rng.integers(0, hi, n_samples, dtype=np.int64)
        exact = a + b
        records = []
        saved_mode = self._mode
        try:
            for mode in range(self.n_modes):
                self.set_mode(mode)
                result, cycles = self.add_with_stats(a, b)
                errors = np.abs(result - exact)
                iterations = cycles - 1
                records.append(
                    ModeCharacterization(
                        mode=mode,
                        error_rate=float(np.mean(errors != 0)),
                        mean_error_distance=float(errors.mean()),
                        mean_cycles=float(cycles.mean()),
                        relative_energy=float(
                            1.0
                            + iterations.mean()
                            * (self.config.k - 1)
                            / self.config.k
                        ),
                    )
                )
        finally:
            self._mode = saved_mode
        return records

    def __repr__(self) -> str:
        return f"ConfigurableGeArAdder({self.config.name}, mode={self._mode})"
