"""Worst-case error-interval analysis for approximate datapaths.

Complements the probabilistic PMF propagation of
:mod:`repro.errors.propagation` with *guaranteed* bounds: every
component contributes an error interval ``[lo, hi]`` (e.g. a ripple
adder with k approximated LSBs errs by at most ``2**(k+1) - 1`` in either
direction; GeAr only ever loses carries, so its interval is one-sided),
and intervals compose through the datapath operators.  The resulting
output interval is a sound worst-case bound -- the quantity a designer
needs to certify that an accelerator can never exceed a maximum error
value (the Fig. 5 selection criterion).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..adders.gear import GeArAdder
from ..adders.ripple import ApproximateRippleAdder

__all__ = ["ErrorInterval", "adder_error_interval"]


@dataclass(frozen=True)
class ErrorInterval:
    """A closed integer interval ``[lo, hi]`` of possible error values."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors -------------------------------------------------
    @classmethod
    def exact(cls) -> "ErrorInterval":
        """The zero-error interval of an exact component."""
        return cls(0, 0)

    @classmethod
    def symmetric(cls, magnitude: int) -> "ErrorInterval":
        return cls(-magnitude, magnitude)

    # -- queries -------------------------------------------------------
    @property
    def max_abs(self) -> int:
        """Largest possible error magnitude."""
        return max(abs(self.lo), abs(self.hi))

    @property
    def width(self) -> int:
        return self.hi - self.lo

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    # -- interval arithmetic over error terms --------------------------
    def __add__(self, other: "ErrorInterval") -> "ErrorInterval":
        """Error of a sum: errors add."""
        return ErrorInterval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "ErrorInterval") -> "ErrorInterval":
        """Error of a difference: subtrahend error enters negated."""
        return ErrorInterval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "ErrorInterval":
        return ErrorInterval(-self.hi, -self.lo)

    def scale(self, factor: int) -> "ErrorInterval":
        """Error of ``factor * x`` (e.g. a shift by k scales by 2**k)."""
        a, b = self.lo * factor, self.hi * factor
        return ErrorInterval(min(a, b), max(a, b))

    def through_abs(self) -> "ErrorInterval":
        """Sound error interval after ``y = |x + e|`` vs ``|x|``.

        For any signal x: ``| |x + e| - |x| | <= |e|``, so the deviation
        interval is the symmetric hull of the input interval.
        """
        magnitude = self.max_abs
        return ErrorInterval(-magnitude, magnitude)

    def accumulate(self, n: int) -> "ErrorInterval":
        """Error of summing ``n`` independent terms with this interval."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return ErrorInterval(self.lo * n, self.hi * n)

    def union(self, other: "ErrorInterval") -> "ErrorInterval":
        """Hull of two alternatives (e.g. a mode multiplexer)."""
        return ErrorInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __repr__(self) -> str:
        return f"ErrorInterval([{self.lo}, {self.hi}])"


def adder_error_interval(adder) -> ErrorInterval:
    """Sound per-operation error interval of a library adder.

    * :class:`~repro.adders.ripple.ApproximateRippleAdder` with ``k``
      approximated LSBs: the approximate sum bits differ by at most
      ``2**k - 1`` and the carry into position ``k`` by at most
      ``2**k``, giving ``[-(2**(k+1) - 1), 2**(k+1) - 1]`` (zero for
      ``k = 0``).
    * :class:`~repro.adders.gear.GeArAdder`: carries can only be
      *missed*; each of the ``k - 1`` upper sub-adders can lose a carry
      worth ``2**(s*R + P)``, so the interval is one-sided:
      ``[-sum_s 2**(s*R + P), 0]``.
    """
    if isinstance(adder, ApproximateRippleAdder):
        k = adder.num_approx_lsbs
        if k == 0:
            return ErrorInterval.exact()
        bound = (1 << (k + 1)) - 1
        return ErrorInterval(-bound, bound)
    if isinstance(adder, GeArAdder):
        config = adder.config
        loss = sum(
            1 << (s * config.r + config.p) for s in range(1, config.k)
        )
        return ErrorInterval(-loss, 0)
    raise TypeError(
        f"no error-interval model for {type(adder).__name__}"
    )
