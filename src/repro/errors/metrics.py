"""Output-quality metrics for approximate arithmetic components.

All metrics compare an approximate output vector against the exact
reference, following the definitions standard in the approximate-
computing literature (and used implicitly throughout the paper):

* **ER** (error rate): fraction of inputs with any output deviation.
* **MED** (mean error distance): mean of ``|approx - exact|``.
* **NMED**: MED normalized by the maximum exact output magnitude.
* **MRED** (mean relative error distance): mean of
  ``|approx - exact| / |exact|`` over inputs with nonzero exact output.
* **max ED**: worst-case ``|approx - exact|`` (the paper's
  "maximum error value").
* **accuracy %**: ``100 * (1 - ER)`` -- the paper's Table IV metric.
* **PSNR**: peak signal-to-noise ratio for image-valued outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = [
    "ErrorMetrics",
    "compute_error_metrics",
    "error_rate",
    "mean_error_distance",
    "normalized_med",
    "mean_relative_error_distance",
    "max_error_distance",
    "accuracy_percent",
    "mse",
    "psnr",
]


def _pair(approx, exact):
    a = np.asarray(approx, dtype=np.float64)
    e = np.asarray(exact, dtype=np.float64)
    if a.shape != e.shape:
        raise ValueError(
            f"approx shape {a.shape} != exact shape {e.shape}"
        )
    if a.size == 0:
        raise ValueError("metrics need at least one sample")
    return a, e


def error_rate(approx, exact) -> float:
    """Fraction of samples where the approximate output is wrong."""
    a, e = _pair(approx, exact)
    return float(np.mean(a != e))


def mean_error_distance(approx, exact) -> float:
    """Mean absolute deviation ``E[|approx - exact|]`` (MED)."""
    a, e = _pair(approx, exact)
    return float(np.mean(np.abs(a - e)))


def normalized_med(approx, exact, max_output: float | None = None) -> float:
    """MED normalized by the maximum exact output magnitude (NMED)."""
    a, e = _pair(approx, exact)
    if max_output is None:
        max_output = float(np.max(np.abs(e)))
    if max_output == 0:
        raise ValueError("max_output is zero; NMED undefined")
    return mean_error_distance(a, e) / max_output


def mean_relative_error_distance(approx, exact) -> float:
    """MRED over samples with nonzero exact output."""
    a, e = _pair(approx, exact)
    nonzero = e != 0
    if not np.any(nonzero):
        raise ValueError("all exact outputs are zero; MRED undefined")
    return float(np.mean(np.abs(a[nonzero] - e[nonzero]) / np.abs(e[nonzero])))


def max_error_distance(approx, exact) -> float:
    """Worst-case absolute deviation (the paper's 'Max. Error Value')."""
    a, e = _pair(approx, exact)
    return float(np.max(np.abs(a - e)))


def accuracy_percent(approx, exact) -> float:
    """``100 * (1 - error rate)`` -- the paper's Table IV accuracy."""
    return 100.0 * (1.0 - error_rate(approx, exact))


def mse(approx, exact) -> float:
    """Mean squared error."""
    a, e = _pair(approx, exact)
    return float(np.mean((a - e) ** 2))


def psnr(approx, exact, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical signals)."""
    err = mse(approx, exact)
    if err == 0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / err))


@dataclass(frozen=True)
class ErrorMetrics:
    """Bundle of the standard quality metrics for one component.

    Attributes mirror the free functions of this module; ``n_samples``
    records the evaluation population size.
    """

    error_rate: float
    mean_error_distance: float
    normalized_med: float
    max_error_distance: float
    mean_relative_error_distance: float
    n_samples: int

    @property
    def accuracy_percent(self) -> float:
        return 100.0 * (1.0 - self.error_rate)

    @property
    def n_error_cases(self) -> int:
        """Number of erroneous samples (exact only for exhaustive sweeps)."""
        return round(self.error_rate * self.n_samples)

    def as_dict(self) -> Dict[str, float]:
        return {
            "error_rate": self.error_rate,
            "accuracy_percent": self.accuracy_percent,
            "mean_error_distance": self.mean_error_distance,
            "normalized_med": self.normalized_med,
            "max_error_distance": self.max_error_distance,
            "mean_relative_error_distance": self.mean_relative_error_distance,
            "n_samples": self.n_samples,
        }


def compute_error_metrics(
    approx, exact, max_output: float | None = None
) -> ErrorMetrics:
    """Compute the full :class:`ErrorMetrics` bundle in one pass.

    Args:
        approx: Approximate outputs.
        exact: Exact reference outputs (same shape).
        max_output: Normalization constant for NMED; defaults to the
            maximum observed exact magnitude (1.0 if all-zero).
    """
    a, e = _pair(approx, exact)
    if max_output is None:
        observed = float(np.max(np.abs(e)))
        max_output = observed if observed > 0 else 1.0
    nonzero = e != 0
    if np.any(nonzero):
        mred = float(
            np.mean(np.abs(a[nonzero] - e[nonzero]) / np.abs(e[nonzero]))
        )
    else:
        mred = 0.0
    med = float(np.mean(np.abs(a - e)))
    return ErrorMetrics(
        error_rate=float(np.mean(a != e)),
        mean_error_distance=med,
        normalized_med=med / max_output,
        max_error_distance=float(np.max(np.abs(a - e))),
        mean_relative_error_distance=mred,
        n_samples=int(a.size),
    )
