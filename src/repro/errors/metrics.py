"""Output-quality metrics for approximate arithmetic components.

All metrics compare an approximate output vector against the exact
reference, following the definitions standard in the approximate-
computing literature (and used implicitly throughout the paper):

* **ER** (error rate): fraction of inputs with any output deviation.
* **MED** (mean error distance): mean of ``|approx - exact|``.
* **NMED**: MED normalized by the maximum exact output magnitude.
* **MRED** (mean relative error distance): mean of
  ``|approx - exact| / |exact|`` over inputs with nonzero exact output.
* **max ED**: worst-case ``|approx - exact|`` (the paper's
  "maximum error value").
* **accuracy %**: ``100 * (1 - ER)`` -- the paper's Table IV metric.
* **PSNR**: peak signal-to-noise ratio for image-valued outputs.

Dtype guarantee
---------------
Integral inputs are compared in **integer arithmetic** -- they are never
silently cast to ``float64``, whose 53-bit mantissa would alias outputs
above ``2**53`` (e.g. 32x32-bit recursive-multiplier products) and make
ER / max-ED report zero error for genuinely wrong outputs.  Values that
exceed the ``int64`` range (Python-int inputs, or ``uint64`` arrays) are
handled via object-dtype exact integer arithmetic.  Floating point is
only entered where a metric's *definition* requires division or
averaging (MED, NMED, MRED, MSE, and the final scalar conversion), after
the element-wise comparisons/differences have been computed exactly.
Mixed integer/float input pairs fall back to ``float64`` throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = [
    "ErrorMetrics",
    "compute_error_metrics",
    "error_rate",
    "mean_error_distance",
    "normalized_med",
    "mean_relative_error_distance",
    "max_error_distance",
    "accuracy_percent",
    "mse",
    "psnr",
]


def _as_metric_array(x) -> np.ndarray:
    """Coerce input to an array without losing integer precision.

    Integer and object (big-int) dtypes pass through unchanged; bools
    are widened to ``int64``; anything else becomes ``float64``.
    """
    arr = np.asarray(x)
    if arr.dtype.kind == "b":
        return arr.astype(np.int64)
    if arr.dtype.kind in "iu" or arr.dtype == object:
        return arr
    return arr if arr.dtype.kind == "f" else arr.astype(np.float64)


def _pair(approx, exact):
    a = _as_metric_array(approx)
    e = _as_metric_array(exact)
    # Mixed integer/float pairs degrade to the legacy all-float path.
    a_float = a.dtype.kind == "f"
    e_float = e.dtype.kind == "f"
    if a_float != e_float:
        if not a_float:
            a = a.astype(np.float64)
        if not e_float:
            e = e.astype(np.float64)
    if a.shape != e.shape:
        raise ValueError(
            f"approx shape {a.shape} != exact shape {e.shape}"
        )
    if a.size == 0:
        raise ValueError("metrics need at least one sample")
    return a, e


def _abs_diff(a: np.ndarray, e: np.ndarray) -> np.ndarray:
    """Element-wise ``|a - e|``, exact for integral inputs.

    ``uint64`` subtraction wraps and mixed ``uint64``/``int64`` pairs
    promote to ``float64`` under NumPy's rules, so those go through
    object-dtype Python-int arithmetic instead.
    """
    if a.dtype.kind == "f":
        return np.abs(a - e)
    if (
        a.dtype == object
        or e.dtype == object
        or a.dtype == np.uint64
        or e.dtype == np.uint64
    ):
        return np.abs(a.astype(object) - e.astype(object))
    return np.abs(a.astype(np.int64) - e.astype(np.int64))


def _exact_max_abs(e: np.ndarray):
    """Maximum ``|e|`` without precision loss.

    Returns a Python ``int`` for integral/object inputs (values above
    ``2**53`` survive exactly) and a ``float`` only for float inputs.
    """
    if e.dtype.kind == "f":
        return float(np.max(np.abs(e)))
    if e.dtype == object or e.dtype == np.uint64:
        return max(abs(int(v)) for v in e.ravel())
    return int(np.max(np.abs(e.astype(np.int64))))


def _exact_ratio(d: np.ndarray, denominator) -> float:
    """``mean(d) / denominator`` with one final correctly-rounded ratio.

    For integral ``d`` and an integer ``denominator`` the whole
    computation stays in arbitrary-precision integer arithmetic --
    ``sum(d) / (n * denominator)`` is a single big-int division -- so
    wide-adder outputs above ``2**53`` cannot alias before the ratio.
    """
    if d.dtype.kind != "f" and isinstance(denominator, int):
        total = int(np.sum(d.astype(object)))
        return total / (d.size * denominator)
    return float(np.mean(np.asarray(d, dtype=np.float64))) / denominator


def error_rate(approx, exact) -> float:
    """Fraction of samples where the approximate output is wrong.

    Integral inputs are compared exactly (no float rounding), so outputs
    above ``2**53`` still register their errors.
    """
    a, e = _pair(approx, exact)
    return float(np.mean(a != e))


def mean_error_distance(approx, exact) -> float:
    """Mean absolute deviation ``E[|approx - exact|]`` (MED)."""
    a, e = _pair(approx, exact)
    return float(np.mean(_abs_diff(a, e)))


def normalized_med(approx, exact, max_output: float | None = None) -> float:
    """MED normalized by the maximum exact output magnitude (NMED).

    For integral inputs the normalizer and the error sum stay in exact
    integer arithmetic until the final ratio (a single big-int
    division), so exact outputs above ``2**53`` -- wide adders, large
    multiplier products -- do not silently alias in a ``float64``
    intermediate.
    """
    a, e = _pair(approx, exact)
    if max_output is None:
        max_output = _exact_max_abs(e)
    elif isinstance(max_output, float) and max_output.is_integer():
        max_output = int(max_output)
    if max_output == 0:
        raise ValueError("max_output is zero; NMED undefined")
    return _exact_ratio(_abs_diff(a, e), max_output)


def mean_relative_error_distance(approx, exact) -> float:
    """MRED over samples with nonzero exact output."""
    a, e = _pair(approx, exact)
    nonzero = e != 0
    if not np.any(nonzero):
        raise ValueError("all exact outputs are zero; MRED undefined")
    d = _abs_diff(a, e)[nonzero]
    return float(np.mean(d / np.abs(e[nonzero])))


def max_error_distance(approx, exact) -> float:
    """Worst-case absolute deviation (the paper's 'Max. Error Value').

    The deviation itself is computed in exact integer arithmetic for
    integral inputs; only the returned scalar is a float.
    """
    a, e = _pair(approx, exact)
    return float(np.max(_abs_diff(a, e)))


def accuracy_percent(approx, exact) -> float:
    """``100 * (1 - error rate)`` -- the paper's Table IV accuracy."""
    return 100.0 * (1.0 - error_rate(approx, exact))


def mse(approx, exact) -> float:
    """Mean squared error."""
    a, e = _pair(approx, exact)
    d = np.asarray(_abs_diff(a, e), dtype=np.float64)
    return float(np.mean(d * d))


def psnr(approx, exact, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical signals)."""
    err = mse(approx, exact)
    if err == 0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / err))


@dataclass(frozen=True)
class ErrorMetrics:
    """Bundle of the standard quality metrics for one component.

    Attributes mirror the free functions of this module; ``n_samples``
    records the evaluation population size.
    """

    error_rate: float
    mean_error_distance: float
    normalized_med: float
    max_error_distance: float
    mean_relative_error_distance: float
    n_samples: int

    @property
    def accuracy_percent(self) -> float:
        return 100.0 * (1.0 - self.error_rate)

    @property
    def n_error_cases(self) -> int:
        """Number of erroneous samples (exact only for exhaustive sweeps)."""
        return round(self.error_rate * self.n_samples)

    def as_dict(self) -> Dict[str, float]:
        return {
            "error_rate": self.error_rate,
            "accuracy_percent": self.accuracy_percent,
            "mean_error_distance": self.mean_error_distance,
            "normalized_med": self.normalized_med,
            "max_error_distance": self.max_error_distance,
            "mean_relative_error_distance": self.mean_relative_error_distance,
            "n_samples": self.n_samples,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "ErrorMetrics":
        """Rebuild from :meth:`as_dict` output (derived keys ignored)."""
        return cls(
            error_rate=float(data["error_rate"]),
            mean_error_distance=float(data["mean_error_distance"]),
            normalized_med=float(data["normalized_med"]),
            max_error_distance=float(data["max_error_distance"]),
            mean_relative_error_distance=float(
                data["mean_relative_error_distance"]
            ),
            n_samples=int(data["n_samples"]),
        )


def compute_error_metrics(
    approx, exact, max_output: float | None = None
) -> ErrorMetrics:
    """Compute the full :class:`ErrorMetrics` bundle in one pass.

    Args:
        approx: Approximate outputs.
        exact: Exact reference outputs (same shape).
        max_output: Normalization constant for NMED; defaults to the
            maximum observed exact magnitude (1.0 if all-zero).
    """
    a, e = _pair(approx, exact)
    d = _abs_diff(a, e)
    if max_output is None:
        observed = _exact_max_abs(e)
        max_output = observed if observed > 0 else 1
    elif isinstance(max_output, float) and max_output.is_integer():
        max_output = int(max_output)
    nonzero = e != 0
    if np.any(nonzero):
        mred = float(np.mean(d[nonzero] / np.abs(e[nonzero])))
    else:
        mred = 0.0
    med = float(np.mean(d))
    return ErrorMetrics(
        error_rate=float(np.mean(a != e)),
        mean_error_distance=med,
        normalized_med=_exact_ratio(d, max_output),
        max_error_distance=float(np.max(d)),
        mean_relative_error_distance=mred,
        n_samples=int(a.size),
    )
