"""Per-node error-sensitivity analysis of dataflow accelerators.

Supports the paper's Fig. 7 step "statistical error analysis ... to
adopt appropriate basic approximate logic blocks": before choosing
*which* nodes of an accelerator to approximate, rank them by how much a
unit of error injected at each node perturbs the output.  Nodes feeding
high-significance positions (or surviving abs/clip masking) rank high;
heavily masked nodes rank low -- those are the profitable places to
approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..accelerators.dataflow import DataflowAccelerator

__all__ = ["NodeSensitivity", "rank_node_sensitivity"]


@dataclass(frozen=True)
class NodeSensitivity:
    """Measured sensitivity of one dataflow node.

    Attributes:
        node_index: Index in the accelerator's node list.
        op: The node's operation.
        mean_output_shift: Mean |output change| per unit of injected
            error at the node.
        masked_fraction: Fraction of injections fully absorbed
            downstream (output unchanged).
    """

    node_index: int
    op: str
    mean_output_shift: float
    masked_fraction: float


def rank_node_sensitivity(
    accelerator: DataflowAccelerator,
    stimuli: Dict[str, np.ndarray],
    injection: int = 1,
) -> List[NodeSensitivity]:
    """Rank arithmetic nodes by output sensitivity to injected error.

    For every add/sub/mul node, the node's value is perturbed by
    ``+injection`` and the graph downstream is re-evaluated; the mean
    absolute output change and the fraction of fully masked injections
    are recorded.

    Args:
        accelerator: Evaluated graph (must have an output).
        stimuli: Input vectors to measure over.
        injection: Error magnitude injected at each node.

    Returns:
        Sensitivities sorted most-sensitive first.
    """
    if accelerator.output is None:
        raise ValueError("accelerator has no output; call set_output")
    baseline_values = accelerator.evaluate(stimuli, all_nodes=True)
    baseline_out = baseline_values[accelerator.output]

    results: List[NodeSensitivity] = []
    for node in accelerator.nodes:
        if node.op not in ("add", "sub", "mul"):
            continue
        perturbed = _evaluate_with_injection(
            accelerator, stimuli, node.index, injection, baseline_values
        )
        delta = np.abs(perturbed - baseline_out)
        results.append(
            NodeSensitivity(
                node_index=node.index,
                op=node.op,
                mean_output_shift=float(delta.mean()) / abs(injection),
                masked_fraction=float(np.mean(delta == 0)),
            )
        )
    results.sort(key=lambda s: (-s.mean_output_shift, s.node_index))
    return results


def _evaluate_with_injection(
    accelerator: DataflowAccelerator,
    stimuli: Dict[str, np.ndarray],
    inject_at: int,
    injection: int,
    baseline_values: List[np.ndarray],
) -> np.ndarray:
    """Re-evaluate downstream of ``inject_at`` with a perturbed value."""
    values = list(baseline_values)
    values[inject_at] = values[inject_at] + injection
    for node in accelerator.nodes[inject_at + 1 :]:
        unit = node.unit or accelerator.default_unit
        if node.op in ("input", "const"):
            continue
        if node.op == "add":
            values[node.index] = unit.add(
                values[node.args[0]], values[node.args[1]]
            )
        elif node.op == "sub":
            values[node.index] = unit.sub(
                values[node.args[0]], values[node.args[1]]
            )
        elif node.op == "mul":
            values[node.index] = unit.multiply(
                values[node.args[0]], values[node.args[1]]
            )
        elif node.op == "abs":
            values[node.index] = np.abs(values[node.args[0]])
        elif node.op == "neg":
            values[node.index] = -values[node.args[0]]
        elif node.op == "shl":
            values[node.index] = values[node.args[0]] << node.param
        elif node.op == "shr":
            values[node.index] = values[node.args[0]] >> node.param
        elif node.op == "clip":
            lo, hi = node.param
            values[node.index] = np.clip(values[node.args[0]], lo, hi)
    return values[accelerator.output]
