"""Statistical error propagation and masking analysis (paper Sec. 6).

Given per-component error PMFs (from :mod:`repro.errors.pmf`), this module
predicts the output-error distribution of composite datapaths without
numerical simulation -- the "statistical error analysis" step of the
paper's accelerator-generation methodology (Fig. 7) -- and quantifies the
error-masking effects the paper highlights:

* **adder trees**: errors of independent adder instances convolve;
* **subtraction**: one operand's error enters negated;
* **absolute value**: small errors on large-magnitude signals pass
  through, errors on near-zero signals partially fold (mask);
* **argmin selection** (motion estimation): a *common-mode* error shift
  across candidates is fully masked -- the Fig. 8 observation that the
  approximate SAD surface is "shifted [but] the global minima remains
  the same".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from .pmf import ErrorPMF

__all__ = [
    "propagate_adder_tree",
    "propagate_weighted_sum",
    "abs_masking_factor",
    "argmin_flip_probability",
    "predict_sad_error_pmf",
]


def propagate_adder_tree(
    leaf_error: ErrorPMF, n_leaves: int, node_error: ErrorPMF | None = None
) -> ErrorPMF:
    """Output-error PMF of a balanced adder tree.

    Args:
        leaf_error: Error PMF of each of the ``n_leaves`` input terms
            (i.i.d. assumption).
        n_leaves: Number of inputs reduced by the tree.
        node_error: Error PMF injected by each adder node itself
            (``n_leaves - 1`` nodes); ``None`` means exact adders.

    Returns:
        PMF of the tree-output error.
    """
    if n_leaves < 1:
        raise ValueError(f"n_leaves must be >= 1, got {n_leaves}")
    total = leaf_error.convolve_n(n_leaves)
    if node_error is not None and n_leaves > 1:
        total = total.convolve(node_error.convolve_n(n_leaves - 1))
    return total


def propagate_weighted_sum(
    term_errors: Sequence[ErrorPMF], weights: Sequence[int]
) -> ErrorPMF:
    """Error PMF of ``sum_i w_i * x_i`` with independent term errors."""
    if len(term_errors) != len(weights):
        raise ValueError("term_errors and weights must align")
    if not term_errors:
        raise ValueError("need at least one term")
    total = ErrorPMF.delta(0)
    for pmf, w in zip(term_errors, weights):
        total = total.convolve(pmf.scale(int(w)))
    return total


def abs_masking_factor(
    signal_values: np.ndarray, error: ErrorPMF
) -> float:
    """Fraction of mean error magnitude surviving an ``abs`` node.

    For ``y = |x + e|`` vs ``|x|``: when ``|x| >= |e|`` the deviation is
    at most ``|e|`` (sign-dependent), and when ``x`` is near zero part of
    the error folds back.  This computes the exact expected surviving
    deviation over an empirical signal distribution, returned relative to
    the raw mean error magnitude (1.0 = no masking).

    Args:
        signal_values: Empirical samples of the signed signal entering
            the abs node.
        error: Error PMF added to the signal before the abs.
    """
    x = np.asarray(signal_values, dtype=np.int64).ravel()
    if x.size == 0:
        raise ValueError("need signal samples")
    raw = error.mean_abs
    if raw == 0:
        return 1.0
    survived = 0.0
    for e_val, p in error.items():
        deviation = np.abs(np.abs(x + e_val) - np.abs(x))
        survived += p * float(np.mean(deviation))
    return survived / raw


def argmin_flip_probability(
    exact_scores: np.ndarray,
    error: ErrorPMF,
    n_trials: int = 2000,
    seed: int = 0,
    common_mode: ErrorPMF | None = None,
) -> float:
    """Probability that per-candidate errors change an argmin decision.

    Models the motion-estimation selection of Fig. 8: each candidate's
    score receives an i.i.d. error draw (plus an optional common-mode
    shift applied to *all* candidates, which provably cannot flip the
    argmin and is included to demonstrate exactly that).

    Args:
        exact_scores: Exact candidate scores (argmin = true winner).
        error: Per-candidate independent error PMF.
        n_trials: Monte-Carlo trials.
        seed: RNG seed.
        common_mode: Optional common shift PMF applied to every candidate.

    Returns:
        Estimated probability that the selected candidate changes.
    """
    scores = np.asarray(exact_scores, dtype=np.float64).ravel()
    if scores.size < 2:
        raise ValueError("need at least two candidates")
    rng = np.random.default_rng(seed)
    values = np.array(list(error.support), dtype=np.float64)
    probs = np.array([error.probability(int(v)) for v in error.support])
    probs = probs / probs.sum()
    true_winner = int(np.argmin(scores))
    flips = 0
    for _ in range(n_trials):
        draw = rng.choice(values, size=scores.size, p=probs)
        noisy = scores + draw
        if common_mode is not None:
            cm_vals = np.array(list(common_mode.support), dtype=np.float64)
            cm_probs = np.array(
                [common_mode.probability(int(v)) for v in common_mode.support]
            )
            noisy = noisy + rng.choice(cm_vals, p=cm_probs / cm_probs.sum())
        if int(np.argmin(noisy)) != true_winner:
            flips += 1
    return flips / n_trials


def predict_sad_error_pmf(
    abs_diff_error: ErrorPMF, adder_error: ErrorPMF, n_pixels: int
) -> ErrorPMF:
    """Predicted output-error PMF of a SAD accelerator.

    A SAD over ``n_pixels`` terms accumulates one ``|a-b|`` datapath error
    per pixel and one adder-node error per tree node (``n_pixels - 1``).

    Args:
        abs_diff_error: Error PMF of the subtract+abs stage per pixel.
        adder_error: Error PMF of one accumulation adder.
        n_pixels: Number of pixels in the SAD block.
    """
    return propagate_adder_tree(abs_diff_error, n_pixels, adder_error)
