"""Exact analytic error PMFs for block-based approximate adders.

The paper's Sec. 4.2 error model is exact but enumerates ``R x (k-1)``
exponentially many carry terms; Monte Carlo and exhaustive sweeps do not
scale either.  Wu et al. (arXiv 1703.03522) observe that a block adder's
error distribution is computable *exactly* by composing per-block error
events.  This module implements that idea as a single bit-level dynamic
program over uniform random operands, valid for homogeneous GeAr (and
its ACA-I/ACA-II/ETAII/GDA mappings) **and** the heterogeneous
:class:`~repro.adders.HeteroGeArConfig` family.

How it works
------------
Under uniform operands each bit position is independently *generate*
(``a=b=1``, prob 1/4), *propagate* (``a^b=1``, prob 1/2) or *kill*
(prob 1/4).  Segment ``i`` (base bit ``t_i``, prediction depth ``p_i``)
misses its carry exactly when the true carry into ``t_i`` is 1 **and**
the ``p_i`` positions below ``t_i`` all propagate -- equivalently, when
the running propagate-run length at ``t_i`` is at least ``p_i`` and the
carry survives it.  The DP therefore walks positions ``0..N-1`` with the
joint state

``(carry, run, pending)``

where ``carry`` is the true carry, ``run`` the current propagate-run
length (capped at ``max(p_i)``), and ``pending`` marks a missed carry
whose block result is still all-propagate.  A missed carry at a
non-final segment contributes ``-2**t_i`` unless every position of the
segment propagates, in which case the kept field wraps to all-ones and
the contribution is ``+(2**t_{i+1} - 2**t_i)`` (usually cancelled by the
next segment's own missed carry).  The final segment owns the carry-out
bit and can never wrap.  Each state carries the exact distribution of
the accumulated error, so the result is the *full* error PMF -- not just
a rate -- in ``O(N * max_p * support)`` time.

All probabilities are dyadic rationals (multiples of ``4**-N``), exact
in double precision up to ``N = 26``, so the analytic rates agree with
:func:`repro.adders.exact_error_probability` and exhaustive enumeration
to well below 1e-9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .pmf import ErrorPMF

__all__ = [
    "BlockErrorEvent",
    "analytic_error_pmf",
    "analytic_error_rate",
    "analytic_summary",
    "block_error_events",
    "config_from_params",
    "exhaustive_error_pmf",
    "predict_error_statistics",
]

#: Per-bit event probabilities for uniform random operands.
P_GENERATE = 0.25
P_PROPAGATE = 0.5
P_KILL = 0.25


def _segments(config) -> Tuple[Tuple[int, int], ...]:
    """Normalize any supported adder config to ``((r_i, p_i), ...)``.

    Accepts a heterogeneous config (``segments`` attribute) or a
    homogeneous GeAr-style config (``n``/``r``/``p`` attributes --
    including the ACA/ETAII/GDA variants, which are GeAr mappings).
    Duck typing avoids importing ``repro.adders`` at module level.
    """
    if hasattr(config, "segments"):
        return tuple((int(r), int(p)) for r, p in config.segments)
    if all(hasattr(config, f) for f in ("n", "r", "p")):
        n, r, p = config.n, config.r, config.p
        k = (n - (r + p)) // r + 1
        return ((r + p, 0),) + ((r, p),) * (k - 1)
    raise TypeError(
        f"unsupported config {config!r}: need .segments or .n/.r/.p"
    )


def _starts(segments: Tuple[Tuple[int, int], ...]) -> List[int]:
    starts, base = [], 0
    for r, _ in segments:
        starts.append(base)
        base += r
    return starts


# State: (carry in {0,1}, propagate-run length, pending-wrap flag).
_State = Tuple[int, int, bool]


def _accumulate(
    into: Dict[_State, Dict[int, float]],
    state: _State,
    errors: Dict[int, float],
    weight: float = 1.0,
    offset: int = 0,
) -> None:
    bucket = into.setdefault(state, {})
    for value, prob in errors.items():
        key = value + offset
        bucket[key] = bucket.get(key, 0.0) + prob * weight


def analytic_error_pmf(config) -> ErrorPMF:
    """Exact error PMF ``approx - exact`` for uniform random operands.

    Works for :class:`~repro.adders.GeArConfig` (and the ACA/ETAII/GDA
    variants, which are GeAr configs) and
    :class:`~repro.adders.HeteroGeArConfig`.

    Example:
        >>> from repro.adders import HeteroGeArConfig
        >>> pmf = analytic_error_pmf(HeteroGeArConfig(((1, 0), (1, 0))))
        >>> dict(pmf.items())
        {-2: 0.25, 0: 0.75}
    """
    segments = _segments(config)
    starts = _starts(segments)
    max_run = max(p for _, p in segments)
    last = len(segments) - 1

    dist: Dict[_State, Dict[int, float]] = {(0, 0, False): {0: 1.0}}
    for i, (r, p) in enumerate(segments):
        t = starts[i]
        # --- boundary t_i: resolve a surviving wrap from segment i-1,
        # then check segment i's own carry-miss event.
        boundary: Dict[_State, Dict[int, float]] = {}
        for (carry, run, pending), errors in dist.items():
            offset = (1 << t) - (1 << starts[i - 1]) if pending else 0
            if carry == 1 and run >= p:
                if i == last:
                    # Final segment owns the carry-out bit: no wrap.
                    offset -= 1 << t
                    _accumulate(
                        boundary, (carry, run, False), errors, 1.0, offset
                    )
                else:
                    _accumulate(
                        boundary, (carry, run, True), errors, 1.0, offset
                    )
            else:
                _accumulate(
                    boundary, (carry, run, False), errors, 1.0, offset
                )
        dist = boundary
        # --- positions t_i .. t_i + r_i - 1
        for _ in range(r):
            step: Dict[_State, Dict[int, float]] = {}
            for (carry, run, pending), errors in dist.items():
                # A non-propagate position settles any pending wrap into
                # a plain missed carry at the segment base.
                resolved = -(1 << t) if pending else 0
                _accumulate(step, (1, 0, False), errors, P_GENERATE, resolved)
                _accumulate(step, (0, 0, False), errors, P_KILL, resolved)
                _accumulate(
                    step,
                    (carry, min(run + 1, max_run), pending),
                    errors,
                    P_PROPAGATE,
                )
            dist = step

    merged: Dict[int, float] = {}
    for (carry, run, pending), errors in dist.items():
        assert not pending, "pending wrap cannot outlive the last segment"
        for value, prob in errors.items():
            merged[value] = merged.get(value, 0.0) + prob
    return ErrorPMF(merged)


def analytic_error_rate(config) -> float:
    """Exact ``P[approx != exact]`` for uniform random operands.

    No distinct error paths can cancel to a zero total (the lowest
    erring segment fixes the total modulo ``2**t_{m+1}``), so this is
    simply ``1 - P[error = 0]`` of :func:`analytic_error_pmf`.
    """
    return analytic_error_pmf(config).error_rate


@dataclass(frozen=True)
class BlockErrorEvent:
    """Marginal carry-miss statistics of one sub-adder segment.

    Attributes:
        index: Segment position (0 = least significant).
        start: Result-bit base ``t_i`` of the segment.
        r: Result bits contributed by the segment.
        p: Carry-prediction depth of the segment.
        probability: Marginal probability that the segment misses its
            carry (true carry into ``t_i`` is 1 and the ``p`` bits below
            all propagate) under uniform operands.
        magnitude: First-order error weight ``2**t_i`` of a miss.
    """

    index: int
    start: int
    r: int
    p: int
    probability: float
    magnitude: int


def block_error_events(config) -> List[BlockErrorEvent]:
    """Per-segment marginal carry-miss probabilities.

    A lighter DP than :func:`analytic_error_pmf`: it tracks only
    ``(carry, run)`` and reads off each segment's event probability at
    its base boundary.  The marginals are exact but *not* independent --
    convolving them does not give the joint PMF; use
    :func:`analytic_error_pmf` for that.
    """
    segments = _segments(config)
    starts = _starts(segments)
    max_run = max(p for _, p in segments)

    dist: Dict[Tuple[int, int], float] = {(0, 0): 1.0}
    events: List[BlockErrorEvent] = []
    for i, (r, p) in enumerate(segments):
        fired = sum(
            prob
            for (carry, run), prob in dist.items()
            if carry == 1 and run >= p
        )
        events.append(
            BlockErrorEvent(
                index=i,
                start=starts[i],
                r=r,
                p=p,
                probability=fired,
                magnitude=1 << starts[i],
            )
        )
        for _ in range(r):
            step: Dict[Tuple[int, int], float] = {}
            for (carry, run), prob in dist.items():
                step[(1, 0)] = step.get((1, 0), 0.0) + prob * P_GENERATE
                step[(0, 0)] = step.get((0, 0), 0.0) + prob * P_KILL
                key = (carry, min(run + 1, max_run))
                step[key] = step.get(key, 0.0) + prob * P_PROPAGATE
            dist = step
    return events


def analytic_summary(config) -> Dict[str, float]:
    """Headline analytic statistics as one plain dict.

    Keys: ``error_rate``, ``accuracy_percent``, ``mean``, ``med`` (mean
    error distance), ``nmed`` (MED over the maximum exact output
    ``2**(N+1) - 2``), ``max_abs`` and ``support_size`` -- the same
    quantities campaigns report from sampled data, but exact.
    """
    segments = _segments(config)
    n = sum(r for r, _ in segments)
    pmf = analytic_error_pmf(config)
    return {
        "error_rate": pmf.error_rate,
        "accuracy_percent": 100.0 * (1.0 - pmf.error_rate),
        "mean": pmf.mean,
        "med": pmf.mean_abs,
        "nmed": pmf.mean_abs / float((1 << (n + 1)) - 2),
        "max_abs": float(pmf.max_abs),
        "support_size": float(len(pmf.support)),
    }


def config_from_params(params: Dict) -> "object":
    """Block-adder config from JSON-ish task params, or ``None``.

    Accepts the parameter spellings the campaign kinds use --
    ``{"segments": [[r, p], ...]}``, ``{"segments": "r:p,r:p,..."}``,
    or homogeneous ``{"n": ..., "r": ..., "p": ...}`` -- and returns a
    :class:`~repro.adders.HeteroGeArConfig`.  Returns ``None`` when the
    params do not describe a block adder at all (so callers can skip
    prediction); raises ``ValueError`` when they *try* to but are
    invalid (so callers can reject the request).
    """
    from ..adders.hetero import HeteroGeArConfig

    if "segments" in params:
        spec = params["segments"]
        if isinstance(spec, str):
            return HeteroGeArConfig.from_string(spec)
        return HeteroGeArConfig(tuple((int(r), int(p)) for r, p in spec))
    if all(field in params for field in ("n", "r", "p")):
        return HeteroGeArConfig.from_gear_params(
            int(params["n"]), int(params["r"]), int(params["p"])
        )
    return None


def predict_error_statistics(params: Dict) -> Dict[str, float]:
    """Millisecond QoS prediction for a block-adder job's params.

    The service's admission controller calls this with a request's raw
    ``params`` to decide -- *before anything executes* -- whether the
    named approximate configuration meets a declared error budget.  The
    statistics are the exact :func:`analytic_summary` of the PMF
    engine, not an estimate, so an admission decision is a guarantee
    (the property suite checks it against exhaustive enumeration).

    Returns the summary dict plus ``n`` (operand width), ``k`` (segment
    count), and ``exact`` (whether the config degenerates to a plain
    adder).  Raises ``ValueError`` when the params do not describe a
    block adder.
    """
    config = config_from_params(params)
    if config is None:
        raise ValueError(
            f"params do not describe a block adder: {sorted(params)}"
        )
    stats = analytic_summary(config)
    stats["n"] = float(config.n)
    stats["k"] = float(config.k)
    stats["exact"] = bool(config.is_exact)
    return stats


def exhaustive_error_pmf(config) -> ErrorPMF:
    """Ground-truth error PMF by enumerating every operand pair.

    The behavioural counterpart of :func:`analytic_error_pmf`, used by
    tests and the verify layer to cross-validate the DP.  Guarded to
    ``2n <= 30`` (about a billion pairs beyond that).
    """
    segments = _segments(config)
    n = sum(r for r, _ in segments)
    if 2 * n > 30:
        raise ValueError(
            f"exhaustive enumeration infeasible for n={n} (2^{2 * n} pairs); "
            "use analytic_error_pmf instead"
        )
    from ..adders.hetero import HeteroGeArAdder, HeteroGeArConfig

    adder = HeteroGeArAdder(HeteroGeArConfig(segments))
    values = np.arange(1 << n, dtype=np.int64)
    a, b = np.meshgrid(values, values, sparse=True)
    approx = adder.add(a, b)
    exact = a + b
    diff = (approx - exact).ravel()
    uniq, counts = np.unique(diff, return_counts=True)
    total = diff.size
    return ErrorPMF({int(v): c / total for v, c in zip(uniq, counts)})
