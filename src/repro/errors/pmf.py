"""Discrete probability-mass-function algebra for error analysis.

The paper (Sec. 6) calls for *statistical error analysis* of approximate
logic blocks so that accelerator-level quality can be predicted "without
extensive numerical simulations".  :class:`ErrorPMF` is the workhorse:
a discrete distribution over integer error values supporting exactly the
operations error propagation needs -- convolution (sum of independent
errors), negation (subtraction datapaths), scaling by powers of two
(shift alignment), and moment/tail queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

__all__ = ["ErrorPMF"]


class ErrorPMF:
    """A discrete PMF over integer values (typically error magnitudes).

    Instances are immutable; all operations return new PMFs.  Probability
    mass below ``prune_tol`` is dropped (and the PMF re-normalized) to
    keep supports compact across long convolution chains.  Roundoff
    artifacts are tolerated and repaired on construction: negative
    masses within ``prune_tol`` of zero are pruned like positive dust,
    and total mass within ``mass_tol`` of 1.0 is renormalized exactly --
    so long convolution chains (``convolve_n`` at large ``n``) cannot
    let the total drift.  Genuinely negative masses or totals outside
    ``mass_tol`` still raise.

    Example:
        >>> coin = ErrorPMF({0: 0.5, 1: 0.5})
        >>> two = coin.convolve(coin)
        >>> two.probability(1)
        0.5
    """

    #: Mass threshold below which support points are pruned (applied
    #: symmetrically: tiny negative roundoff masses are dropped too).
    prune_tol = 1e-12

    #: Tolerated drift of the total mass from 1.0 before construction
    #: fails instead of renormalizing.
    mass_tol = 1e-6

    def __init__(self, mass: Mapping[int, float]) -> None:
        cleaned: Dict[int, float] = {}
        for value, prob in mass.items():
            if prob < -self.prune_tol:
                raise ValueError(f"negative probability {prob} at {value}")
            if prob > self.prune_tol:
                cleaned[int(value)] = cleaned.get(int(value), 0.0) + float(prob)
        if not cleaned:
            raise ValueError("PMF needs at least one support point")
        total = sum(cleaned.values())
        if abs(total - 1.0) > self.mass_tol:
            raise ValueError(
                f"PMF mass sums to {total}, expected 1 "
                f"(tolerance {self.mass_tol:g})"
            )
        self._mass: Dict[int, float] = {
            v: p / total for v, p in sorted(cleaned.items())
        }

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def delta(cls, value: int = 0) -> "ErrorPMF":
        """Point mass at ``value`` (an exact component has delta(0))."""
        return cls({value: 1.0})

    @classmethod
    def from_samples(cls, samples: Iterable[int]) -> "ErrorPMF":
        """Empirical PMF from integer samples."""
        arr = np.asarray(list(samples), dtype=np.int64)
        if arr.size == 0:
            raise ValueError("need at least one sample")
        values, counts = np.unique(arr, return_counts=True)
        return cls(
            {int(v): c / arr.size for v, c in zip(values, counts)}
        )

    @classmethod
    def from_pairs(cls, approx, exact) -> "ErrorPMF":
        """Empirical error PMF of ``approx - exact`` over paired outputs."""
        a = np.asarray(approx, dtype=np.int64)
        e = np.asarray(exact, dtype=np.int64)
        return cls.from_samples((a - e).ravel())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def support(self) -> Tuple[int, ...]:
        return tuple(self._mass)

    def probability(self, value: int) -> float:
        """Mass at ``value`` (0.0 outside the support)."""
        return self._mass.get(int(value), 0.0)

    def items(self) -> Iterable[Tuple[int, float]]:
        """Iterate over ``(value, probability)`` pairs, values ascending."""
        return self._mass.items()

    @property
    def error_rate(self) -> float:
        """Probability of a nonzero error."""
        return 1.0 - self.probability(0)

    @property
    def mean(self) -> float:
        return sum(v * p for v, p in self._mass.items())

    @property
    def variance(self) -> float:
        mu = self.mean
        return sum((v - mu) ** 2 * p for v, p in self._mass.items())

    @property
    def mean_abs(self) -> float:
        """Mean error distance implied by the PMF."""
        return sum(abs(v) * p for v, p in self._mass.items())

    @property
    def max_abs(self) -> int:
        """Largest error magnitude in the support."""
        return max(abs(v) for v in self._mass)

    def mode(self) -> int:
        """The most likely value (ties broken toward smaller values).

        Among all values sharing the maximum probability, the
        numerically smallest is returned -- e.g. a ``{-3, 3}`` tie
        yields ``-3`` -- so the result never depends on insertion
        order.
        """
        best = max(self._mass.values())
        return min(v for v, p in self._mass.items() if p == best)

    def tail_probability(self, threshold: int) -> float:
        """``P[|error| >= threshold]``."""
        return sum(p for v, p in self._mass.items() if abs(v) >= threshold)

    def total_variation(self, other: "ErrorPMF") -> float:
        """Total variation distance ``0.5 * sum_v |p(v) - q(v)|``.

        The standard statistical distance between two discrete
        distributions (0 = identical, 1 = disjoint supports); the
        verification subsystem uses it to compare sampled error
        distributions against exhaustively enumerated ones.
        """
        values = set(self._mass) | set(other._mass)
        return 0.5 * sum(
            abs(self.probability(v) - other.probability(v)) for v in values
        )

    def summary(self) -> Dict[str, float]:
        """Headline statistics as one plain dict (reports, logging)."""
        return {
            "error_rate": self.error_rate,
            "mean": self.mean,
            "variance": self.variance,
            "mean_abs": self.mean_abs,
            "max_abs": float(self.max_abs),
            "support_size": float(len(self._mass)),
        }

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def convolve(self, other: "ErrorPMF") -> "ErrorPMF":
        """PMF of the sum of two independent errors."""
        out: Dict[int, float] = {}
        for v1, p1 in self._mass.items():
            for v2, p2 in other._mass.items():
                out[v1 + v2] = out.get(v1 + v2, 0.0) + p1 * p2
        return ErrorPMF(out)

    def __add__(self, other: "ErrorPMF") -> "ErrorPMF":
        return self.convolve(other)

    def negate(self) -> "ErrorPMF":
        """PMF of ``-error`` (for subtraction datapaths)."""
        return ErrorPMF({-v: p for v, p in self._mass.items()})

    def scale(self, factor: int) -> "ErrorPMF":
        """PMF of ``factor * error`` (e.g. a left shift by k is 2**k)."""
        if factor == 0:
            return ErrorPMF.delta(0)
        return ErrorPMF({v * factor: p for v, p in self._mass.items()})

    def shift(self, offset: int) -> "ErrorPMF":
        """PMF of ``error + offset`` (applying a correction constant)."""
        return ErrorPMF({v + offset: p for v, p in self._mass.items()})

    def mixture(self, other: "ErrorPMF", weight: float) -> "ErrorPMF":
        """Mixture ``weight * self + (1 - weight) * other``."""
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"weight must be in [0, 1], got {weight}")
        out: Dict[int, float] = {}
        for v, p in self._mass.items():
            out[v] = out.get(v, 0.0) + weight * p
        for v, p in other._mass.items():
            out[v] = out.get(v, 0.0) + (1.0 - weight) * p
        return ErrorPMF(out)

    def convolve_n(self, n: int) -> "ErrorPMF":
        """PMF of the sum of ``n`` i.i.d. copies (fast doubling)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        result = ErrorPMF.delta(0)
        base = self
        while n:
            if n & 1:
                result = result.convolve(base)
            n >>= 1
            if n:
                base = base.convolve(base)
        return result

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ErrorPMF):
            return NotImplemented
        if set(self._mass) != set(other._mass):
            return False
        return all(
            abs(self._mass[v] - other._mass[v]) < 1e-9 for v in self._mass
        )

    def __hash__(self) -> int:  # immutable value type
        return hash(tuple(self._mass.items()))

    def __repr__(self) -> str:
        head = ", ".join(
            f"{v}: {p:.4f}" for v, p in list(self._mass.items())[:6]
        )
        more = "" if len(self._mass) <= 6 else ", ..."
        return f"ErrorPMF({{{head}{more}}})"
