"""Error metrics, discrete error-PMF algebra, and statistical propagation."""

from .metrics import (
    ErrorMetrics,
    accuracy_percent,
    compute_error_metrics,
    error_rate,
    max_error_distance,
    mean_error_distance,
    mean_relative_error_distance,
    mse,
    normalized_med,
    psnr,
)
from .analytic import (
    BlockErrorEvent,
    analytic_error_pmf,
    analytic_error_rate,
    analytic_summary,
    block_error_events,
    exhaustive_error_pmf,
)
from .interval import ErrorInterval, adder_error_interval
from .pmf import ErrorPMF
from .sensitivity import NodeSensitivity, rank_node_sensitivity
from .propagation import (
    abs_masking_factor,
    argmin_flip_probability,
    predict_sad_error_pmf,
    propagate_adder_tree,
    propagate_weighted_sum,
)

__all__ = [
    "ErrorMetrics",
    "accuracy_percent",
    "compute_error_metrics",
    "error_rate",
    "max_error_distance",
    "mean_error_distance",
    "mean_relative_error_distance",
    "mse",
    "normalized_med",
    "psnr",
    "ErrorPMF",
    "BlockErrorEvent",
    "analytic_error_pmf",
    "analytic_error_rate",
    "analytic_summary",
    "block_error_events",
    "exhaustive_error_pmf",
    "ErrorInterval",
    "adder_error_interval",
    "NodeSensitivity",
    "rank_node_sensitivity",
    "abs_masking_factor",
    "argmin_flip_probability",
    "predict_sad_error_pmf",
    "propagate_adder_tree",
    "propagate_weighted_sum",
]
