"""Dataflow-graph framework for approximate accelerators (paper Fig. 7).

The paper's methodology composes accelerators from a library of
(approximate) arithmetic blocks.  :class:`DataflowAccelerator` captures
exactly that: a DAG of arithmetic nodes, each optionally bound to an
approximate *unit* (an adder or multiplier instance from
:mod:`repro.adders` / :mod:`repro.multipliers`).  Evaluation is
vectorized; area/power/delay roll up from the bound units, which is the
characterization input the paper's design-space exploration consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["Node", "DataflowAccelerator", "ExactArithmetic"]

_OPS = ("input", "const", "add", "sub", "abs", "mul", "shl", "shr", "neg", "clip")


class ExactArithmetic:
    """Fallback unit performing exact arithmetic (infinite precision)."""

    name = "exact"
    area_ge = 0.0
    delay_ps = 0.0

    def add(self, a, b):
        return np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)

    def sub(self, a, b):
        return np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)

    def multiply(self, a, b):
        return np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)


@dataclass
class Node:
    """One operation in the accelerator datapath.

    Attributes:
        index: Position in the graph's node list.
        op: Operation name (see module-level ``_OPS``).
        args: Indices of operand nodes.
        unit: Arithmetic unit executing the op (``None`` -> exact).
        param: Extra operand (constant value, shift amount, clip bound).
        name: Optional label (required for inputs).
    """

    index: int
    op: str
    args: Tuple[int, ...] = ()
    unit: object | None = None
    param: int | Tuple[int, int] | None = None
    name: str | None = None


class DataflowAccelerator:
    """A DAG of arithmetic operations with pluggable approximate units.

    Example (a 2-term SAD):
        >>> acc = DataflowAccelerator("sad2")
        >>> a0, a1 = acc.add_input("a0"), acc.add_input("a1")
        >>> b0, b1 = acc.add_input("b0"), acc.add_input("b1")
        >>> d0 = acc.add_node("abs", [acc.add_node("sub", [a0, b0])])
        >>> d1 = acc.add_node("abs", [acc.add_node("sub", [a1, b1])])
        >>> out = acc.add_node("add", [d0, d1])
        >>> acc.set_output(out)
        >>> int(acc.evaluate({"a0": 5, "a1": 2, "b0": 9, "b1": 2}))
        4
    """

    def __init__(self, name: str, default_unit: object | None = None) -> None:
        self.name = name
        self.nodes: List[Node] = []
        self.inputs: Dict[str, int] = {}
        self.output: int | None = None
        self.default_unit = default_unit or ExactArithmetic()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> int:
        """Declare a named primary input; returns its node index."""
        if name in self.inputs:
            raise ValueError(f"duplicate input {name!r}")
        node = Node(index=len(self.nodes), op="input", name=name)
        self.nodes.append(node)
        self.inputs[name] = node.index
        return node.index

    def add_const(self, value: int) -> int:
        """A constant-valued node."""
        node = Node(index=len(self.nodes), op="const", param=int(value))
        self.nodes.append(node)
        return node.index

    def add_node(
        self,
        op: str,
        args: Sequence[int],
        unit: object | None = None,
        param: int | Tuple[int, int] | None = None,
    ) -> int:
        """Append an operation node; returns its index.

        Args:
            op: One of ``add sub abs mul shl shr neg clip``.
            args: Operand node indices (must precede this node).
            unit: Arithmetic unit override for this node.
            param: Shift amount (``shl``/``shr``) or ``(lo, hi)`` clip
                bounds.
        """
        if op not in _OPS or op in ("input", "const"):
            raise ValueError(f"unknown op {op!r}")
        expected = {"add": 2, "sub": 2, "mul": 2, "abs": 1, "shl": 1,
                    "shr": 1, "neg": 1, "clip": 1}[op]
        if len(args) != expected:
            raise ValueError(f"op {op!r} takes {expected} args, got {len(args)}")
        for arg in args:
            if not 0 <= arg < len(self.nodes):
                raise ValueError(f"arg index {arg} out of range")
        if op in ("shl", "shr") and not isinstance(param, int):
            raise ValueError(f"op {op!r} needs an int shift param")
        if op == "clip" and (
            not isinstance(param, tuple) or len(param) != 2
        ):
            raise ValueError("clip needs a (lo, hi) param")
        node = Node(
            index=len(self.nodes), op=op, args=tuple(args), unit=unit, param=param
        )
        self.nodes.append(node)
        return node.index

    def set_output(self, node_index: int) -> None:
        if not 0 <= node_index < len(self.nodes):
            raise ValueError(f"output index {node_index} out of range")
        self.output = node_index

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, stimuli: Dict[str, np.ndarray], all_nodes: bool = False
    ):
        """Evaluate the graph on (vectorized) inputs.

        Args:
            stimuli: Mapping from input name to array-like values.
            all_nodes: Return every node's value (list) instead of just
                the output.
        """
        if self.output is None and not all_nodes:
            raise ValueError("accelerator has no output; call set_output")
        missing = [n for n in self.inputs if n not in stimuli]
        if missing:
            raise ValueError(f"missing stimuli: {missing}")
        values: List[np.ndarray] = []
        for node in self.nodes:
            unit = node.unit or self.default_unit
            if node.op == "input":
                val = np.asarray(stimuli[node.name], dtype=np.int64)
            elif node.op == "const":
                val = np.asarray(node.param, dtype=np.int64)
            elif node.op == "add":
                val = unit.add(values[node.args[0]], values[node.args[1]])
            elif node.op == "sub":
                val = unit.sub(values[node.args[0]], values[node.args[1]])
            elif node.op == "mul":
                val = unit.multiply(values[node.args[0]], values[node.args[1]])
            elif node.op == "abs":
                val = np.abs(values[node.args[0]])
            elif node.op == "neg":
                val = -values[node.args[0]]
            elif node.op == "shl":
                val = values[node.args[0]] << node.param
            elif node.op == "shr":
                val = values[node.args[0]] >> node.param
            elif node.op == "clip":
                lo, hi = node.param
                val = np.clip(values[node.args[0]], lo, hi)
            else:  # pragma: no cover - guarded at construction
                raise AssertionError(node.op)
            values.append(np.asarray(val, dtype=np.int64))
        if all_nodes:
            return values
        return values[self.output]

    # ------------------------------------------------------------------
    # roll-ups
    # ------------------------------------------------------------------
    def units(self) -> List[object]:
        """Distinct arithmetic-unit instances bound to nodes."""
        seen: List[object] = []
        for node in self.nodes:
            unit = node.unit
            if unit is not None and all(unit is not u for u in seen):
                seen.append(unit)
        return seen

    @property
    def area_ge(self) -> float:
        """Sum of per-node unit areas (each node is its own hardware)."""
        total = 0.0
        for node in self.nodes:
            if node.op in ("add", "sub", "mul"):
                unit = node.unit or self.default_unit
                total += float(getattr(unit, "area_ge", 0.0))
        return total

    def n_arith_nodes(self) -> int:
        return sum(1 for n in self.nodes if n.op in ("add", "sub", "mul"))

    def __repr__(self) -> str:
        return (
            f"DataflowAccelerator({self.name!r}, {len(self.nodes)} nodes, "
            f"{self.n_arith_nodes()} arithmetic)"
        )
