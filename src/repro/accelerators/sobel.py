"""Sobel edge-detection accelerator with approximate arithmetic.

``sobel`` appears in the paper's Table I as one of the canonical
error-resilient kernels (Esmaeilzadeh et al.'s benchmark suite).  The
operator computes per-pixel gradient magnitudes

    Gx = [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]] * I
    Gy = Gx^T * I
    out = clip(|Gx| + |Gy|)

which is a shift/add/sub/abs datapath -- the same component classes as
the SAD accelerator, but with *signed* intermediate values, exercising
the subtractor path and the |.| masking that Sec. 6's error analysis
discusses.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..adders.ripple import ApproximateRippleAdder

__all__ = ["SobelAccelerator", "sobel_exact"]


def _gradients_exact(image: np.ndarray) -> tuple:
    img = np.asarray(image, dtype=np.int64)
    padded = np.pad(img, 1, mode="edge")

    def window(dy: int, dx: int) -> np.ndarray:
        return padded[dy : dy + img.shape[0], dx : dx + img.shape[1]]

    gx = (
        (window(0, 2) - window(0, 0))
        + ((window(1, 2) - window(1, 0)) << 1)
        + (window(2, 2) - window(2, 0))
    )
    gy = (
        (window(2, 0) - window(0, 0))
        + ((window(2, 1) - window(0, 1)) << 1)
        + (window(2, 2) - window(0, 2))
    )
    return gx, gy


def sobel_exact(image: np.ndarray) -> np.ndarray:
    """Reference Sobel magnitude ``clip(|Gx| + |Gy|, 0, 255)``."""
    gx, gy = _gradients_exact(image)
    return np.clip(np.abs(gx) + np.abs(gy), 0, 255)


class SobelAccelerator:
    """Sobel operator on approximate subtract/add hardware.

    Args:
        fa: Table III cell used in the approximated LSBs of every
            subtractor and adder.
        approx_lsbs: Number of approximated LSBs.
        pixel_bits: Input pixel width.

    Example:
        >>> acc = SobelAccelerator()
        >>> img = np.tile(np.arange(8), (8, 1)) * 30
        >>> bool(np.array_equal(acc.apply(img), sobel_exact(img)))
        True
    """

    def __init__(
        self, fa: str = "AccuFA", approx_lsbs: int = 0, pixel_bits: int = 8
    ) -> None:
        self.fa = fa
        self.approx_lsbs = approx_lsbs
        self.pixel_bits = pixel_bits
        # Differences span +-255; shifted terms +-510; gradient +-1020;
        # |Gx| + |Gy| <= 2040 -> 12-bit signed datapath.
        self._sub = ApproximateRippleAdder(
            pixel_bits + 1, approx_fa=fa,
            num_approx_lsbs=min(approx_lsbs, pixel_bits + 1),
        )
        self._acc = ApproximateRippleAdder(
            pixel_bits + 4, approx_fa=fa,
            num_approx_lsbs=min(approx_lsbs, pixel_bits + 4),
        )

    @property
    def name(self) -> str:
        return f"Sobel[{self.fa}x{self.approx_lsbs}]"

    def _gradient(
        self, taps: List[tuple], padded: np.ndarray, shape: tuple
    ) -> np.ndarray:
        def window(dy: int, dx: int) -> np.ndarray:
            return padded[dy : dy + shape[0], dx : dx + shape[1]]

        terms = []
        for (pos, neg, shift) in taps:
            diff = self._sub.sub(window(*pos), window(*neg))
            terms.append(diff << shift)
        # Signed accumulate through the wider approximate adder.
        total = terms[0]
        width = self._acc.width
        mask = (1 << width) - 1
        for term in terms[1:]:
            raw = self._acc.add_modular(total & mask, term & mask)
            total = raw - ((raw >> (width - 1)) << width)
        return total

    def apply(self, image: np.ndarray) -> np.ndarray:
        """Gradient-magnitude map, clipped to the pixel range."""
        img = np.asarray(image, dtype=np.int64)
        if img.ndim != 2:
            raise ValueError(f"expected a 2-D image, got shape {img.shape}")
        padded = np.pad(img, 1, mode="edge")
        gx = self._gradient(
            [((0, 2), (0, 0), 0), ((1, 2), (1, 0), 1), ((2, 2), (2, 0), 0)],
            padded, img.shape,
        )
        gy = self._gradient(
            [((2, 0), (0, 0), 0), ((2, 1), (0, 1), 1), ((2, 2), (0, 2), 0)],
            padded, img.shape,
        )
        width = self._acc.width
        mask = (1 << width) - 1
        raw = self._acc.add_modular(np.abs(gx) & mask, np.abs(gy) & mask)
        magnitude = raw - ((raw >> (width - 1)) << width)
        return np.clip(magnitude, 0, (1 << self.pixel_bits) - 1)

    @property
    def area_ge(self) -> float:
        """Six subtractors + four accumulation adders per pixel pipeline."""
        return 6 * self._sub.area_ge + 4 * self._acc.area_ge

    def __repr__(self) -> str:
        return f"SobelAccelerator(fa={self.fa!r}, approx_lsbs={self.approx_lsbs})"
